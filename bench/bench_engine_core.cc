// Engine-core micro-benchmarks: scan / filter / project / aggregate / sort
// / join throughput. These anchor the overhead percentages of the other
// benches (they show what the governance layers are measured against).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace lakeguard {
namespace bench {
namespace {

BenchEnv* SharedEnv() {
  static BenchEnv* env = [] {
    auto* e = new BenchEnv(MakeBenchEnv({}, 20000));
    e->MustSql("CREATE TABLE main.b.dim (b BIGINT, label STRING)");
    std::string sql = "INSERT INTO main.b.dim VALUES (0, 'l0')";
    for (int i = 1; i < 50; ++i) {
      sql += ", (" + std::to_string(i) + ", 'l" + std::to_string(i) + "')";
    }
    e->MustSql(sql);
    return e;
  }();
  return env;
}

void RunSql(benchmark::State& state, const std::string& sql) {
  BenchEnv* env = SharedEnv();
  for (auto _ : state) {
    auto rows = env->cluster->engine->ExecuteSql(sql, env->ctx);
    if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
    benchmark::DoNotOptimize(rows);
  }
}

void BM_Scan(benchmark::State& state) {
  RunSql(state, "SELECT * FROM main.b.data");
}
BENCHMARK(BM_Scan)->Unit(benchmark::kMillisecond);

void BM_Filter(benchmark::State& state) {
  RunSql(state, "SELECT a FROM main.b.data WHERE a % 10 = 3 AND b < 500");
}
BENCHMARK(BM_Filter)->Unit(benchmark::kMillisecond);

void BM_Project(benchmark::State& state) {
  RunSql(state,
         "SELECT a + b AS s, a * 2 AS d, UPPER(s) AS u FROM main.b.data");
}
BENCHMARK(BM_Project)->Unit(benchmark::kMillisecond);

void BM_Aggregate(benchmark::State& state) {
  RunSql(state,
         "SELECT b % 100 AS g, SUM(a) AS s, COUNT(*) AS n, AVG(a) AS m "
         "FROM main.b.data GROUP BY b % 100");
}
BENCHMARK(BM_Aggregate)->Unit(benchmark::kMillisecond);

void BM_Sort(benchmark::State& state) {
  RunSql(state, "SELECT a, b FROM main.b.data ORDER BY b DESC, a LIMIT 100");
}
BENCHMARK(BM_Sort)->Unit(benchmark::kMillisecond);

void BM_Join(benchmark::State& state) {
  RunSql(state,
         "SELECT d.a, m.label FROM (SELECT a, b FROM main.b.data LIMIT 500) "
         "AS d JOIN main.b.dim m ON d.b % 50 = m.b");
}
BENCHMARK(BM_Join)->Unit(benchmark::kMillisecond);

void BM_SecureViewOverhead(benchmark::State& state) {
  // The same scan with a TRUE row filter: measures policy-machinery cost.
  static bool initialized = [] {
    SharedEnv()->MustSql(
        "CREATE TABLE main.b.guarded (a BIGINT, b BIGINT, s STRING)");
    SharedEnv()->MustSql(
        "INSERT INTO main.b.guarded VALUES (1, 2, 'x'), (3, 4, 'y')");
    SharedEnv()->MustSql(
        "ALTER TABLE main.b.guarded SET ROW FILTER (TRUE)");
    return true;
  }();
  (void)initialized;
  RunSql(state, "SELECT a FROM main.b.guarded");
}
BENCHMARK(BM_SecureViewOverhead)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace lakeguard

BENCHMARK_MAIN();
