// Bytecode-verifier admission cost. Three measurements:
//
//   1. Microbench: cold verification latency (abstract interpretation, all
//      five passes) as a function of program size, for straight-line
//      programs and for a looping program whose fixpoint needs re-visits.
//   2. Cache behaviour: content-addressed certificate lookups over a
//      population of distinct programs — hit rate and warm-lookup latency.
//   3. Admission overhead: what cached re-verification adds to a real
//      end-to-end UDF query (per-query verifier lookups x warm-lookup cost
//      against the query's wall clock). The admission gate is supposed to
//      be noise — the headline asserts it stays under 1%.
//
// Results are printed and written to BENCH_verifier.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "udf/verifier/cache.h"
#include "udf/verifier/verifier.h"

namespace lakeguard {
namespace bench {
namespace {

// ---- Program populations ----------------------------------------------------

/// Straight-line two-argument reducer with ~2*adds+2 instructions: the
/// widest-block shape, no joins, one pass to the fixpoint.
UdfBytecode StraightLine(size_t adds, const std::string& tag = "") {
  UdfBuilder b("straight_" + std::to_string(adds) + tag, 2, TypeKind::kInt64);
  b.LoadArg(0);
  for (size_t i = 0; i < adds; ++i) b.LoadArg(1).Add();
  b.Ret();
  auto built = b.Build();
  if (!built.ok()) std::abort();
  return *built;
}

double MeasureColdVerifyMicros(const UdfBytecode& bc, int reps) {
  int64_t best = INT64_MAX;
  for (int round = 0; round < 5; ++round) {
    int64_t start = RealClock::Instance()->NowMicros();
    for (int i = 0; i < reps; ++i) {
      auto cert = VerifyBytecode(bc);
      benchmark::DoNotOptimize(cert);
    }
    best = std::min(best, RealClock::Instance()->NowMicros() - start);
  }
  return static_cast<double>(best) / reps;
}

double MeasureWarmLookupMicros(VerifiedProgramCache* cache,
                               const UdfBytecode& bc, int reps) {
  (void)cache->GetOrVerify(bc);  // ensure the entry exists
  int64_t best = INT64_MAX;
  for (int round = 0; round < 5; ++round) {
    int64_t start = RealClock::Instance()->NowMicros();
    for (int i = 0; i < reps; ++i) {
      auto cert = cache->GetOrVerify(bc);
      benchmark::DoNotOptimize(cert);
    }
    best = std::min(best, RealClock::Instance()->NowMicros() - start);
  }
  return static_cast<double>(best) / reps;
}

// ---- google-benchmark registrations -----------------------------------------

void BM_VerifyStraightLine(benchmark::State& state) {
  UdfBytecode bc = StraightLine(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto cert = VerifyBytecode(bc);
    benchmark::DoNotOptimize(cert);
  }
  state.SetItemsProcessed(static_cast<int64_t>(bc.code.size()) *
                          state.iterations());
}
BENCHMARK(BM_VerifyStraightLine)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->ArgName("adds")
    ->Unit(benchmark::kMicrosecond);

void BM_VerifyLoop(benchmark::State& state) {
  UdfBytecode bc = canned::HashUdf(100);
  for (auto _ : state) {
    auto cert = VerifyBytecode(bc);
    benchmark::DoNotOptimize(cert);
  }
}
BENCHMARK(BM_VerifyLoop)->Unit(benchmark::kMicrosecond);

void BM_CachedLookup(benchmark::State& state) {
  VerifiedProgramCache cache;
  UdfBytecode bc = StraightLine(static_cast<size_t>(state.range(0)));
  (void)cache.GetOrVerify(bc);
  for (auto _ : state) {
    auto cert = cache.GetOrVerify(bc);
    benchmark::DoNotOptimize(cert);
  }
}
BENCHMARK(BM_CachedLookup)
    ->Arg(8)->Arg(512)
    ->ArgName("adds")
    ->Unit(benchmark::kMicrosecond);

// ---- Headline table + BENCH_verifier.json -----------------------------------

struct SizePoint {
  size_t instructions = 0;
  double cold_us = 0;
  double warm_us = 0;
};

struct CacheStudy {
  uint64_t programs = 0, lookups = 0, hits = 0, misses = 0;
  double hit_rate = 0;
};

/// N distinct programs, each looked up `rounds` times against one cache —
/// the dispatch-path access pattern (every dispatch re-checks by hash).
CacheStudy MeasureCache(size_t programs, int rounds) {
  VerifiedProgramCache cache;
  std::vector<UdfBytecode> population;
  population.reserve(programs);
  for (size_t i = 0; i < programs; ++i) {
    population.push_back(StraightLine(8, "_p" + std::to_string(i)));
  }
  for (int r = 0; r < rounds; ++r) {
    for (const UdfBytecode& bc : population) {
      auto cert = cache.GetOrVerify(bc);
      if (!cert.ok()) std::abort();
    }
  }
  VerifierCacheStats stats = cache.stats();
  CacheStudy study;
  study.programs = programs;
  study.lookups = stats.hits + stats.misses;
  study.hits = stats.hits;
  study.misses = stats.misses;
  study.hit_rate = static_cast<double>(stats.hits) /
                   static_cast<double>(std::max<uint64_t>(study.lookups, 1));
  return study;
}

struct Overhead {
  double query_ms = 0;
  double lookups_per_query = 0;
  double warm_lookup_us = 0;
  double overhead_percent = 0;
};

/// End-to-end governed UDF query; the verifier's share of it is the number
/// of per-query certificate lookups times the warm-lookup cost of the
/// program the query actually dispatches (every lookup is a hit after the
/// first query — content-addressed, never invalidated).
Overhead MeasureAdmissionOverhead() {
  VerifiedProgramCache probe_cache;
  const double warm_lookup_us =
      MeasureWarmLookupMicros(&probe_cache, canned::SumUdf(), 20000);
  BenchEnv env = MakeBenchEnv({}, /*rows=*/4096);
  RegisterSumUdfs(&env, 1);
  const std::string sql = SumUdfQuery(1);
  env.MustSql(sql);  // warm: sandbox provisioned, certificate cached

  VerifierCacheStats before = VerifiedProgramCache::Global()->stats();
  const int reps = 20;
  int64_t best = INT64_MAX;
  for (int i = 0; i < reps; ++i) {
    int64_t start = RealClock::Instance()->NowMicros();
    env.MustSql(sql);
    best = std::min(best, RealClock::Instance()->NowMicros() - start);
  }
  VerifierCacheStats after = VerifiedProgramCache::Global()->stats();

  Overhead o;
  o.query_ms = static_cast<double>(best) / 1000;
  o.lookups_per_query =
      static_cast<double>((after.hits + after.misses) -
                          (before.hits + before.misses)) /
      reps;
  o.warm_lookup_us = warm_lookup_us;
  o.overhead_percent = o.lookups_per_query * warm_lookup_us /
                       (o.query_ms * 1000) * 100;
  return o;
}

void PrintAndWrite() {
  std::printf("\n=== Bytecode verifier: admission-time static analysis ===\n");

  const size_t curve_adds[] = {8, 32, 128, 512};
  SizePoint curve[4];
  VerifiedProgramCache warm_cache;
  for (int i = 0; i < 4; ++i) {
    UdfBytecode bc = StraightLine(curve_adds[i]);
    curve[i].instructions = bc.code.size();
    curve[i].cold_us = MeasureColdVerifyMicros(bc, 2000);
    curve[i].warm_us = MeasureWarmLookupMicros(&warm_cache, bc, 20000);
    std::printf("  %4zu instructions: cold verify %7.2f us | cached lookup "
                "%7.2f us\n",
                curve[i].instructions, curve[i].cold_us, curve[i].warm_us);
  }
  UdfBytecode loop = canned::HashUdf(100);
  double loop_cold = MeasureColdVerifyMicros(loop, 2000);
  std::printf("  loop (%zu instructions, back edge): cold verify %.2f us\n",
              loop.code.size(), loop_cold);

  CacheStudy cache = MeasureCache(/*programs=*/64, /*rounds=*/50);
  std::printf("  cache: %llu lookups over %llu programs -> %llu hits / %llu "
              "misses (%.2f%% hit rate)\n",
              static_cast<unsigned long long>(cache.lookups),
              static_cast<unsigned long long>(cache.programs),
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              cache.hit_rate * 100);

  Overhead o = MeasureAdmissionOverhead();
  std::printf("  admission overhead: %.2f ms query, %.1f cached lookups per "
              "query x %.2f us = %.4f%% of query time%s\n",
              o.query_ms, o.lookups_per_query, o.warm_lookup_us,
              o.overhead_percent,
              o.overhead_percent < 1.0 ? " (< 1% target met)"
                                       : " (OVER 1% TARGET)");

  AtomicJsonWriter writer("BENCH_verifier.json");
  FILE* f = writer.file();
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"verify_latency_curve\": [\n");
  for (int i = 0; i < 4; ++i) {
    std::fprintf(f,
                 "    {\"instructions\": %zu, \"cold_verify_us\": %.3f, "
                 "\"cached_lookup_us\": %.3f}%s\n",
                 curve[i].instructions, curve[i].cold_us, curve[i].warm_us,
                 i + 1 < 4 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"loop_program\": {\"instructions\": %zu, "
               "\"cold_verify_us\": %.3f},\n",
               loop.code.size(), loop_cold);
  std::fprintf(
      f,
      "  \"cache\": {\"programs\": %llu, \"lookups\": %llu, \"hits\": %llu, "
      "\"misses\": %llu, \"hit_rate\": %.4f},\n",
      static_cast<unsigned long long>(cache.programs),
      static_cast<unsigned long long>(cache.lookups),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses), cache.hit_rate);
  std::fprintf(
      f,
      "  \"admission_overhead\": {\"query_ms\": %.3f, "
      "\"cached_lookups_per_query\": %.1f, \"cached_lookup_us\": %.3f, "
      "\"overhead_percent\": %.4f, \"under_one_percent\": %s}\n}\n",
      o.query_ms, o.lookups_per_query, o.warm_lookup_us, o.overhead_percent,
      o.overhead_percent < 1.0 ? "true" : "false");
  if (!writer.Commit()) {
    std::fprintf(stderr, "failed to publish BENCH_verifier.json\n");
  }
  std::printf("\nwrote BENCH_verifier.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintAndWrite();
  return 0;
}
