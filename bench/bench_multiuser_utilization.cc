// Regenerates the **multi-user utilization comparison** implicit in §2.5
// and §7: one shared Lakeguard Standard cluster vs (a) an EMR-Membrane-
// style split cluster and (b) legacy per-user clusters, on the same bursty
// multi-user workload and the same total hardware. Also prints the §2.2
// replica-cost comparison.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>

#include "baselines/capabilities.h"
#include "baselines/membrane.h"

namespace lakeguard {
namespace bench {
namespace {

std::vector<SimJob> MakeWorkload(int users, int jobs_per_user,
                                 double user_code_fraction, unsigned seed) {
  std::mt19937 rng(seed);
  std::exponential_distribution<double> inter_arrival(1.0 / 30'000.0);
  std::lognormal_distribution<double> duration(11.0, 0.8);  // ~60 ms median
  std::uniform_real_distribution<double> coin(0, 1);
  std::vector<SimJob> jobs;
  for (int u = 0; u < users; ++u) {
    double t = 0;
    for (int j = 0; j < jobs_per_user; ++j) {
      t += inter_arrival(rng);
      SimJob job;
      job.user = "user-" + std::to_string(u);
      job.arrival_micros = static_cast<int64_t>(t);
      job.duration_micros =
          std::max<int64_t>(1000, static_cast<int64_t>(duration(rng)));
      job.has_user_code = coin(rng) < user_code_fraction;
      jobs.push_back(job);
    }
  }
  std::sort(jobs.begin(), jobs.end(), [](const SimJob& a, const SimJob& b) {
    return a.arrival_micros < b.arrival_micros;
  });
  return jobs;
}

void PrintRow(const char* name, const SimResult& r) {
  std::printf("  %-28s makespan %8.1f ms | mean wait %8.1f ms | "
              "utilization %5.1f%%\n",
              name, static_cast<double>(r.makespan_micros) / 1000,
              r.mean_wait_micros / 1000, r.utilization * 100);
}

void PrintUtilizationTables() {
  std::printf("=== Multi-user compute sharing: Lakeguard shared pool vs "
              "Membrane split vs per-user clusters ===\n");
  std::printf("(same total slots in every configuration)\n");
  for (auto [users, udf_frac] :
       std::vector<std::pair<int, double>>{{4, 0.8}, {8, 0.8}, {8, 0.2},
                                           {16, 0.5}}) {
    const size_t total_slots = 16;
    auto jobs = MakeWorkload(users, 50, udf_frac, 42 + users);
    std::printf("\n%d users, %zu jobs, %.0f%% with user code, %zu slots:\n",
                users, jobs.size(), udf_frac * 100, total_slots);
    PrintRow("Lakeguard shared pool",
             RunSharedPoolSimulation(jobs, total_slots));
    MembraneConfig membrane;
    membrane.total_slots = total_slots;
    membrane.untrusted_fraction = 0.5;
    PrintRow("Membrane split 50/50", RunMembraneSimulation(jobs, membrane));
    membrane.untrusted_fraction = 0.25;
    PrintRow("Membrane split 75/25", RunMembraneSimulation(jobs, membrane));
    PrintRow("per-user clusters",
             RunPerUserClustersSimulation(
                 jobs, std::max<size_t>(1, total_slots / users)));
  }

  std::printf("\n=== §2.2 replica-based FGAC vs catalog policies "
              "(storage & churn) ===\n");
  std::printf("%12s | %10s | %16s | %16s | %14s\n", "table", "audiences",
              "replica storage", "policy storage", "daily churn");
  for (auto [gb, audiences] :
       std::vector<std::pair<int, int>>{{10, 2}, {10, 5}, {100, 5},
                                        {100, 20}}) {
    ReplicaCostModel model;
    model.base_table_bytes = static_cast<uint64_t>(gb) * (1ULL << 30);
    model.policy_audiences = static_cast<size_t>(audiences);
    model.refreshes_per_day = 1.0;
    std::printf("%10d GB | %10d | %13.0f GB | %13.0f GB | %11.0f GB\n", gb,
                audiences,
                static_cast<double>(model.ReplicaStorageBytes()) / (1 << 30),
                static_cast<double>(model.PolicyStorageBytes()) / (1 << 30),
                model.ReplicaDailyChurnBytes() / (1 << 30));
  }
}

void BM_SharedPoolSim(benchmark::State& state) {
  auto jobs = MakeWorkload(8, 100, 0.5, 7);
  for (auto _ : state) {
    SimResult r = RunSharedPoolSimulation(jobs, 16);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SharedPoolSim);

void BM_MembraneSim(benchmark::State& state) {
  auto jobs = MakeWorkload(8, 100, 0.5, 7);
  MembraneConfig config;
  config.total_slots = 16;
  for (auto _ : state) {
    SimResult r = RunMembraneSimulation(jobs, config);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MembraneSim);

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintUtilizationTables();
  return 0;
}
