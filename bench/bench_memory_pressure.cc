// Memory-pressure benchmark.
//
// Part 1 (wall clock): spill ladder under shrinking budgets. One sort over a
// fixed working set runs with an operation budget of infinity, 2x, 1x and
// 0.5x the input's byte size. Reported per point: throughput, the governor's
// peak charged bytes, and the spill counters — the degradation story is
// "throughput bends, peak memory stays pinned under the budget, the query
// still finishes with identical results".
//
// Part 2 (wall clock): load shedding vs offered concurrency. A ConnectService
// with 2 execution slots and a 2-deep admission queue is stormed by K
// concurrent clients (K = 2, 4, 8, 12); clients retry typed sheds until their
// query completes. Reported per point: sheds, queue waits, and end-to-end
// makespan — overload degrades to queuing and retries, never to failure.
//
// Results are printed and written to BENCH_memory.json.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/memory_budget.h"
#include "common/retry.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr int kReps = 3;

RecordBatch WideBatch(int64_t rows) {
  TableBuilder builder(Schema({{"k", TypeKind::kInt64, false},
                               {"v", TypeKind::kInt64, false},
                               {"s", TypeKind::kString, false}}));
  uint64_t x = 88172645463325252ull;
  for (int64_t i = 0; i < rows; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    (void)builder.AppendRow(
        {Value::Int(i % 1501), Value::Int(static_cast<int64_t>(x % 100000)),
         Value::String("payload-" + std::to_string(x % 997) + "-" +
                       std::to_string(i))});
  }
  return *builder.Build().Combine();
}

struct PressureMeasurement {
  std::string budget_label;
  uint64_t budget_bytes = 0;  // 0 = unlimited
  double seconds = 0;
  double rows_per_sec = 0;
  uint64_t peak_bytes = 0;
  uint64_t spill_runs = 0;
  uint64_t spill_bytes = 0;
  uint64_t budget_refusals = 0;
};

PressureMeasurement MeasurePressure(BenchEnv* env, const PlanPtr& plan,
                                    int64_t rows,
                                    const std::string& label,
                                    uint64_t budget_bytes) {
  PressureMeasurement m;
  m.budget_label = label;
  m.budget_bytes = budget_bytes;
  for (int rep = 0; rep < kReps; ++rep) {
    ExecutionContext ctx = env->ctx;
    auto budget = std::make_shared<MemoryBudget>("bench-op", budget_bytes);
    ctx.memory = budget;
    auto start = std::chrono::steady_clock::now();
    auto stream = env->cluster->engine->ExecutePlanStreaming(plan, ctx);
    if (!stream.ok()) std::abort();
    uint64_t out_rows = 0;
    while (true) {
      auto batch = (*stream)->Next();
      if (!batch.ok()) std::abort();
      if (!batch->has_value()) break;
      out_rows += (*batch)->num_rows();
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (out_rows != static_cast<uint64_t>(rows)) std::abort();
    if (rep == 0 || secs < m.seconds) {
      m.seconds = secs;
      m.rows_per_sec = static_cast<double>(rows) / secs;
      const ExecutorStats& stats = (*stream)->stats();
      m.spill_runs = stats.spill_runs;
      m.spill_bytes = stats.spill_bytes;
      m.budget_refusals = stats.budget_refusals;
    }
    m.peak_bytes = std::max(m.peak_bytes, budget->peak_bytes());
  }
  return m;
}

struct AdmissionMeasurement {
  int offered_concurrency = 0;
  int completed = 0;
  uint64_t shed_operations = 0;
  uint64_t queued_operations = 0;
  uint64_t admitted_operations = 0;
  double makespan_seconds = 0;
};

AdmissionMeasurement MeasureAdmission(int clients_count) {
  LakeguardPlatform::Options options;
  options.use_simulated_clock = false;
  options.sandbox_cold_start_micros = 0;
  options.admission_config.max_concurrent_operations = 2;
  options.admission_config.max_queue_depth = 2;
  options.admission_config.max_queue_wait_micros = 100'000;
  LakeguardPlatform platform(options);
  (void)platform.AddUser("admin");
  platform.RegisterToken("tok", "admin");
  ClusterHandle* cluster = platform.CreateStandardCluster();

  std::vector<ConnectClient> clients;
  for (int i = 0; i < clients_count; ++i) {
    auto client = platform.Connect(cluster, "tok");
    if (!client.ok()) std::abort();
    clients.push_back(std::move(*client));
  }
  RecordBatch batch = WideBatch(6000);  // streaming result: slot held while
                                        // chunks are fetched

  std::atomic<int> completed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int i = 0; i < clients_count; ++i) {
    threads.emplace_back([&, i] {
      for (int attempt = 0; attempt < 10'000; ++attempt) {
        auto table = clients[static_cast<size_t>(i)].FromBatch(batch).Collect();
        if (table.ok()) {
          ++completed;
          return;
        }
        if (!IsTransientError(table.status())) return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  AdmissionMeasurement m;
  m.offered_concurrency = clients_count;
  m.completed = completed.load();
  m.makespan_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ConnectServiceStats stats = cluster->service->service_stats();
  m.shed_operations = stats.shed_operations;
  m.queued_operations = stats.queued_operations;
  m.admitted_operations = stats.admitted_operations;
  return m;
}

void Report(uint64_t working_set,
            const std::vector<PressureMeasurement>& pressures,
            const std::vector<AdmissionMeasurement>& admissions) {
  std::printf("working set: %llu bytes\n\n",
              static_cast<unsigned long long>(working_set));
  std::printf("%-12s %12s %12s %14s %12s %12s %12s %10s\n", "budget",
              "bytes", "seconds", "rows/s", "peak", "spill runs",
              "spill bytes", "refusals");
  for (const PressureMeasurement& m : pressures) {
    std::printf("%-12s %12llu %12.4f %14.0f %12llu %12llu %12llu %10llu\n",
                m.budget_label.c_str(),
                static_cast<unsigned long long>(m.budget_bytes), m.seconds,
                m.rows_per_sec, static_cast<unsigned long long>(m.peak_bytes),
                static_cast<unsigned long long>(m.spill_runs),
                static_cast<unsigned long long>(m.spill_bytes),
                static_cast<unsigned long long>(m.budget_refusals));
  }
  std::printf("\n%-12s %10s %8s %8s %10s %14s\n", "concurrency", "completed",
              "sheds", "queued", "admitted", "makespan (s)");
  for (const AdmissionMeasurement& m : admissions) {
    std::printf("%-12d %10d %8llu %8llu %10llu %14.4f\n",
                m.offered_concurrency, m.completed,
                static_cast<unsigned long long>(m.shed_operations),
                static_cast<unsigned long long>(m.queued_operations),
                static_cast<unsigned long long>(m.admitted_operations),
                m.makespan_seconds);
  }

  bench::AtomicJsonWriter writer("BENCH_memory.json");
  FILE* f = writer.file();
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"memory_pressure\",\n");
  std::fprintf(f, "  \"working_set_bytes\": %llu,\n",
               static_cast<unsigned long long>(working_set));
  std::fprintf(f, "  \"spill_ladder\": [\n");
  for (size_t i = 0; i < pressures.size(); ++i) {
    const PressureMeasurement& m = pressures[i];
    std::fprintf(
        f,
        "    {\"budget\": \"%s\", \"budget_bytes\": %llu, "
        "\"seconds\": %.6f, \"rows_per_sec\": %.0f, \"peak_bytes\": %llu, "
        "\"spill_runs\": %llu, \"spill_bytes\": %llu, "
        "\"budget_refusals\": %llu}%s\n",
        m.budget_label.c_str(),
        static_cast<unsigned long long>(m.budget_bytes), m.seconds,
        m.rows_per_sec, static_cast<unsigned long long>(m.peak_bytes),
        static_cast<unsigned long long>(m.spill_runs),
        static_cast<unsigned long long>(m.spill_bytes),
        static_cast<unsigned long long>(m.budget_refusals),
        i + 1 < pressures.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"admission\": [\n");
  for (size_t i = 0; i < admissions.size(); ++i) {
    const AdmissionMeasurement& m = admissions[i];
    std::fprintf(f,
                 "    {\"offered_concurrency\": %d, \"completed\": %d, "
                 "\"shed_operations\": %llu, \"queued_operations\": %llu, "
                 "\"admitted_operations\": %llu, \"makespan_seconds\": "
                 "%.6f}%s\n",
                 m.offered_concurrency, m.completed,
                 static_cast<unsigned long long>(m.shed_operations),
                 static_cast<unsigned long long>(m.queued_operations),
                 static_cast<unsigned long long>(m.admitted_operations),
                 m.makespan_seconds,
                 i + 1 < admissions.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (!writer.Commit()) std::fprintf(stderr, "failed to publish BENCH_memory.json\n");
  std::printf("\nwrote BENCH_memory.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main() {
  using namespace lakeguard;
  using namespace lakeguard::bench;
  namespace fs = std::filesystem;

  const std::string spill_base =
      (fs::temp_directory_path() / "lg-bench-memory").string();
  fs::create_directories(spill_base);

  QueryEngineConfig config;
  config.exec.batch_size = 1024;
  config.exec.spill_dir = spill_base;
  BenchEnv env = MakeBenchEnv(config);

  constexpr int64_t kRows = 60'000;
  RecordBatch input = WideBatch(kRows);
  const uint64_t working_set = input.ByteSize();
  PlanPtr plan = MakeSort(MakeLocalRelation(input),
                          {{Col("v"), true}, {Col("s"), false}});

  std::vector<PressureMeasurement> pressures;
  pressures.push_back(
      MeasurePressure(&env, plan, kRows, "unlimited", 0));
  pressures.push_back(
      MeasurePressure(&env, plan, kRows, "2x", working_set * 2));
  pressures.push_back(MeasurePressure(&env, plan, kRows, "1x", working_set));
  pressures.push_back(
      MeasurePressure(&env, plan, kRows, "0.5x", working_set / 2));

  std::vector<AdmissionMeasurement> admissions;
  for (int k : {2, 4, 8, 12}) {
    admissions.push_back(MeasureAdmission(k));
  }

  Report(working_set, pressures, admissions);

  std::error_code ec;
  fs::remove_all(spill_base, ec);
  return 0;
}
