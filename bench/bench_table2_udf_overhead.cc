// Reproduces **Table 2** of the paper: the relative worst-case overhead of
// executing user code in a sandbox versus unisolated, for
//   * the Simple UDF  — sum(a + b), boundary-cost dominated;
//   * the Hash UDF    — 100 x SHA256 per row, CPU dominated;
// at 1, 2, 5 and 10 UDFs per query (fusion keeps the curve flat).
//
// The paper's absolute numbers come from a 2-node r6id.xlarge Databricks
// cluster; here the engine is this library's simulator, so the *shape* is
// the reproduction target: simple-UDF overhead markedly higher than
// hash-UDF overhead, both roughly flat in the number of UDFs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr size_t kSimpleRows = 20000;
constexpr size_t kHashRows = 200;

BenchEnv MakeUdfEnv(bool isolated, bool hash, size_t rows) {
  QueryEngineConfig config;
  config.exec.isolate_udfs = isolated;
  config.exec.fuse_udfs = true;
  BenchEnv env = MakeBenchEnv(config, rows);
  if (hash) {
    RegisterHashUdfs(&env, 10);
  } else {
    RegisterSumUdfs(&env, 10);
  }
  return env;
}

void BM_UdfQuery(benchmark::State& state) {
  const bool isolated = state.range(0) != 0;
  const bool hash = state.range(1) != 0;
  const size_t num_udfs = static_cast<size_t>(state.range(2));
  const size_t rows = hash ? kHashRows : kSimpleRows;
  BenchEnv env = MakeUdfEnv(isolated, hash, rows);
  std::string sql = hash ? HashUdfQuery(num_udfs) : SumUdfQuery(num_udfs);
  // Warm up (provisions the sandboxes, so steady-state is measured — the
  // paper reports continuous overhead, cold start separately).
  for (int i = 0; i < 2; ++i) {
    auto warm = env.cluster->engine->ExecuteSql(sql, env.ctx);
    if (!warm.ok()) state.SkipWithError(warm.status().ToString().c_str());
  }
  for (auto _ : state) {
    auto result = env.cluster->engine->ExecuteSql(sql, env.ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["udfs"] = static_cast<double>(num_udfs);
}

BENCHMARK(BM_UdfQuery)
    ->ArgsProduct({{0, 1}, {0, 1}, {1, 2, 5, 10}})
    ->ArgNames({"isolated", "hash", "udfs"})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

/// Measures baseline and sandboxed execution *interleaved* (rep by rep), so
/// machine drift hits both equally; reports best-of-reps for each.
struct Pair {
  double base_micros = 0;
  double iso_micros = 0;
};

Pair MeasurePair(bool hash, size_t num_udfs) {
  const size_t rows = hash ? kHashRows : kSimpleRows;
  BenchEnv base_env = MakeUdfEnv(/*isolated=*/false, hash, rows);
  BenchEnv iso_env = MakeUdfEnv(/*isolated=*/true, hash, rows);
  std::string sql = hash ? HashUdfQuery(num_udfs) : SumUdfQuery(num_udfs);
  auto time_one = [&sql](BenchEnv& env) -> int64_t {
    int64_t start = RealClock::Instance()->NowMicros();
    auto result = env.cluster->engine->ExecuteSql(sql, env.ctx);
    int64_t elapsed = RealClock::Instance()->NowMicros() - start;
    if (!result.ok()) std::abort();
    return elapsed;
  };
  // Warm-up both (provisions sandboxes; steady-state is the target).
  time_one(base_env);
  time_one(iso_env);
  const int reps = hash ? 7 : 11;
  int64_t best_base = INT64_MAX, best_iso = INT64_MAX;
  for (int r = 0; r < reps; ++r) {
    best_base = std::min(best_base, time_one(base_env));
    best_iso = std::min(best_iso, time_one(iso_env));
  }
  return {static_cast<double>(best_base), static_cast<double>(best_iso)};
}

/// Direct timed comparison printed in the paper's Table 2 layout.
void PrintTable2() {
  std::printf("\n=== Table 2: relative worst-case overhead of sandboxed "
              "UDF execution ===\n");
  std::printf("(paper, 2-node r6id.xlarge: Simple 9.5-12%%, Hash 3.4-4.8%%)\n\n");
  std::printf("%8s | %-26s | %-26s\n", "Num UDF", "Simple UDF sum(a+b)",
              "Hash UDF 100x SHA256");
  std::printf("---------+----------------------------+------------------\n");
  for (size_t num_udfs : {1, 2, 5, 10}) {
    Pair simple = MeasurePair(/*hash=*/false, num_udfs);
    Pair hash = MeasurePair(/*hash=*/true, num_udfs);
    double simple_overhead =
        100.0 * (simple.iso_micros - simple.base_micros) / simple.base_micros;
    double hash_overhead =
        100.0 * (hash.iso_micros - hash.base_micros) / hash.base_micros;
    std::printf("%8zu | %8.2f%%  (%.1f/%.1f ms)  | %8.2f%%  (%.1f/%.1f ms)\n",
                num_udfs, simple_overhead, simple.iso_micros / 1000,
                simple.base_micros / 1000, hash_overhead,
                hash.iso_micros / 1000, hash.base_micros / 1000);
  }
  std::printf("\n(percent = sandboxed vs unisolated; ms = sandboxed/"
              "unisolated best-of-n, interleaved)\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintTable2();
  return 0;
}
