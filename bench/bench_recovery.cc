// Recovery-time benchmark for the crash-consistent durability subsystem
// (DESIGN.md §14): how long a restarted platform takes to reopen its
// catalog WAL + checkpoint and audit WAL, as a function of (a) how many
// publishes the WAL holds and (b) how often checkpoints were taken.
//
// The curve this exists to show: without checkpoints recovery is linear in
// WAL length (every CatalogImage replays); with checkpoints it is bounded
// by the records since the last checkpoint, so the interval knob trades
// steady-state publish overhead against restart time.
//
// Output: BENCH_recovery.json — one point per (checkpoint_interval,
// wal_length) pair.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/platform.h"

namespace lakeguard {
namespace bench {
namespace {

namespace fs = std::filesystem;

struct RecoveryPoint {
  uint64_t checkpoint_interval = 0;
  uint64_t wal_length = 0;  // catalog publishes before the restart
  double publish_seconds = 0;
  double recovery_seconds = 0;
  uint64_t recovered_epoch = 0;
  uint64_t audit_events = 0;
  uint64_t sessions_recovered = 0;
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

LakeguardPlatform::Options DurableOptions(const std::string& root,
                                          uint64_t checkpoint_interval) {
  LakeguardPlatform::Options options;
  options.use_simulated_clock = false;
  options.sandbox_cold_start_micros = 0;
  options.durable_root = root;
  options.catalog_checkpoint_every = checkpoint_interval;
  return options;
}

void RegisterPrincipals(LakeguardPlatform* platform, bool fresh) {
  (void)platform->AddUser("admin");
  (void)platform->AddUser("alice");
  platform->RegisterToken("tok-admin", "admin");
  platform->RegisterToken("tok-alice", "alice");
  if (fresh) platform->AddMetastoreAdmin("admin");
}

RecoveryPoint Measure(uint64_t checkpoint_interval, uint64_t wal_length,
                      size_t sessions) {
  std::string root =
      (fs::temp_directory_path() /
       ("lg-bench-recovery-" + std::to_string(::getpid()) + "-" +
        std::to_string(checkpoint_interval) + "-" +
        std::to_string(wal_length)))
          .string();
  fs::remove_all(root);

  RecoveryPoint point;
  point.checkpoint_interval = checkpoint_interval;
  point.wal_length = wal_length;
  {
    auto platform = std::make_unique<LakeguardPlatform>(
        DurableOptions(root, checkpoint_interval));
    RegisterPrincipals(platform.get(), /*fresh=*/true);
    UnityCatalog& catalog = platform->catalog();
    (void)catalog.CreateCatalog("admin", "main");
    (void)catalog.CreateSchema("admin", "main.s");
    TableInfo info;
    info.full_name = "main.s.t";
    info.schema = Schema({{"x", TypeKind::kInt64, true}});
    (void)catalog.CreateTable("admin", info);
    ClusterHandle* cluster = platform->CreateStandardCluster();
    for (size_t i = 0; i < sessions; ++i) {
      auto session = cluster->service->OpenSession("tok-alice");
      if (session.ok()) {
        (void)cluster->service->PrepareStatement(
            *session, "SELECT COUNT(*) AS n FROM main.s.t");
      }
    }
    // Grant/revoke toggles keep the CatalogImage a constant size, so the
    // curve isolates WAL length from image growth.
    auto start = std::chrono::steady_clock::now();
    uint64_t base = catalog.epoch();
    while (catalog.epoch() - base < wal_length) {
      (void)catalog.Grant("admin", "main.s.t", Privilege::kSelect, "alice");
      (void)catalog.Revoke("admin", "main.s.t", Privilege::kSelect, "alice");
    }
    point.publish_seconds = Seconds(start);
  }

  auto start = std::chrono::steady_clock::now();
  auto platform = std::make_unique<LakeguardPlatform>(
      DurableOptions(root, checkpoint_interval));
  if (!platform->durability_status().ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 platform->durability_status().ToString().c_str());
    std::abort();
  }
  RegisterPrincipals(platform.get(), /*fresh=*/false);
  ClusterHandle* cluster = platform->CreateStandardCluster();
  auto stats = cluster->service->RecoverSessions();
  point.recovery_seconds = Seconds(start);
  point.recovered_epoch = platform->catalog().epoch();
  point.audit_events = platform->catalog().audit().size();
  point.sessions_recovered = stats.ok() ? stats->recovered : 0;
  platform.reset();
  fs::remove_all(root);
  return point;
}

int Run() {
  const std::vector<uint64_t> intervals = {8, 64, 1u << 30};  // last = never
  const std::vector<uint64_t> lengths = {128, 512, 2048};
  constexpr size_t kSessions = 8;

  std::vector<RecoveryPoint> points;
  std::printf(
      "%12s %10s %12s %12s %10s %8s %9s\n", "ckpt_every", "wal_len",
      "publish_s", "recover_s", "epoch", "audit", "sessions");
  for (uint64_t interval : intervals) {
    for (uint64_t length : lengths) {
      RecoveryPoint p = Measure(interval, length, kSessions);
      std::printf("%12llu %10llu %12.4f %12.4f %10llu %8llu %9llu\n",
                  static_cast<unsigned long long>(p.checkpoint_interval),
                  static_cast<unsigned long long>(p.wal_length),
                  p.publish_seconds, p.recovery_seconds,
                  static_cast<unsigned long long>(p.recovered_epoch),
                  static_cast<unsigned long long>(p.audit_events),
                  static_cast<unsigned long long>(p.sessions_recovered));
      points.push_back(p);
    }
  }

  AtomicJsonWriter writer("BENCH_recovery.json");
  FILE* f = writer.file();
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const RecoveryPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"checkpoint_interval\": %llu, \"wal_length\": %llu, "
        "\"publish_seconds\": %.6f, \"recovery_seconds\": %.6f, "
        "\"recovered_epoch\": %llu, \"audit_events\": %llu, "
        "\"sessions_recovered\": %llu}%s\n",
        static_cast<unsigned long long>(p.checkpoint_interval),
        static_cast<unsigned long long>(p.wal_length), p.publish_seconds,
        p.recovery_seconds, static_cast<unsigned long long>(p.recovered_epoch),
        static_cast<unsigned long long>(p.audit_events),
        static_cast<unsigned long long>(p.sessions_recovered),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (!writer.Commit()) {
    std::fprintf(stderr, "failed to publish BENCH_recovery.json\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main() { return lakeguard::bench::Run(); }
