// Benchmarks the **Spark Connect layer** (Fig. 5): plan serialization,
// request/response encoding, IPC result framing, and the full
// client->wire->service->engine->wire->client round-trip versus calling the
// engine directly — the cost of the client/server separation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "columnar/ipc.h"
#include "connect/client.h"
#include "plan/plan_serde.h"
#include "sql/parser.h"

namespace lakeguard {
namespace bench {
namespace {

PlanPtr BuildDeepPlan(int depth) {
  PlanPtr plan = MakeTableRef("main.b.data");
  for (int i = 0; i < depth; ++i) {
    plan = MakeFilter(plan, BinOp(BinaryOpKind::kGt, Col("a"), LitInt(i)));
    plan = MakeProject(plan,
                       {Col("a"), Col("b"),
                        BinOp(BinaryOpKind::kAdd, Col("a"), Col("b"))},
                       {"a", "b", "c"});
  }
  return plan;
}

void BM_PlanSerialize(benchmark::State& state) {
  PlanPtr plan = BuildDeepPlan(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto bytes = PlanToBytes(plan);
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] =
      static_cast<double>(PlanToBytes(plan).size());
}
BENCHMARK(BM_PlanSerialize)->Arg(1)->Arg(5)->Arg(20);

void BM_PlanDeserialize(benchmark::State& state) {
  auto bytes = PlanToBytes(BuildDeepPlan(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto plan = PlanFromBytes(bytes);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_PlanDeserialize)->Arg(1)->Arg(5)->Arg(20);

void BM_RequestEncodeDecode(benchmark::State& state) {
  ConnectRequest request;
  request.session_id = "sess-123";
  request.auth_token = "tok-123";
  request.plan_bytes = PlanToBytes(BuildDeepPlan(5));
  for (auto _ : state) {
    auto decoded = DecodeRequest(EncodeRequest(request));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RequestEncodeDecode);

void BM_IpcBatchRoundTrip(benchmark::State& state) {
  TableBuilder builder(Schema({{"a", TypeKind::kInt64, true},
                               {"s", TypeKind::kString, true}}));
  for (int64_t i = 0; i < state.range(0); ++i) {
    (void)builder.AppendRow(
        {Value::Int(i), Value::String("row-" + std::to_string(i))});
  }
  RecordBatch batch = *builder.Build().Combine();
  for (auto _ : state) {
    auto back = ipc::DeserializeBatch(ipc::SerializeBatch(batch));
    benchmark::DoNotOptimize(back);
  }
  state.counters["frame_bytes"] =
      static_cast<double>(ipc::SerializeBatch(batch).size());
}
BENCHMARK(BM_IpcBatchRoundTrip)->Arg(100)->Arg(1000)->Arg(10000);

// Full wire round-trip vs direct engine call.
void BM_SqlOverWire(benchmark::State& state) {
  BenchEnv env = MakeBenchEnv({}, 2000);
  auto client = env.platform->Connect(env.cluster, "tok-admin");
  if (!client.ok()) {
    state.SkipWithError("connect failed");
    return;
  }
  for (auto _ : state) {
    auto rows = client->Sql("SELECT a, b FROM main.b.data");
    if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SqlOverWire)->Unit(benchmark::kMillisecond);

void BM_SqlDirectEngine(benchmark::State& state) {
  BenchEnv env = MakeBenchEnv({}, 2000);
  for (auto _ : state) {
    auto rows = env.cluster->engine->ExecuteSql(
        "SELECT a, b FROM main.b.data", env.ctx);
    if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_SqlDirectEngine)->Unit(benchmark::kMillisecond);

void PrintSeparationCost() {
  BenchEnv env = MakeBenchEnv({}, 2000);
  auto client = env.platform->Connect(env.cluster, "tok-admin");
  if (!client.ok()) std::abort();
  auto time_best = [](auto&& fn) {
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < 9; ++rep) {
      int64_t start = RealClock::Instance()->NowMicros();
      fn();
      best = std::min(best, RealClock::Instance()->NowMicros() - start);
    }
    return static_cast<double>(best) / 1000;
  };
  const char* sql = "SELECT a, b FROM main.b.data";
  double wire = time_best([&] { (void)client->Sql(sql); });
  double direct =
      time_best([&] { (void)env.cluster->engine->ExecuteSql(sql, env.ctx); });
  std::printf("\n=== Cost of the client/server separation (Fig. 5) ===\n");
  std::printf("  direct engine call: %8.2f ms\n", direct);
  std::printf("  over the Connect wire: %8.2f ms (+%.1f%%)\n", wire,
              100.0 * (wire - direct) / direct);
  std::printf("(the delta buys version independence, client isolation and "
              "multi-user sessions)\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintSeparationCost();
  return 0;
}
