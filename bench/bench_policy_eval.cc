// Fused policy evaluation (compile-then-execute scan evaluators) vs the
// tree-walking interpreter. Three measurements:
//
//   1. Microbench: one policy-heavy batch pipeline — row filter + two
//      column masks + pushed-down user filter — run (a) as the three
//      interpreted passes the pre-fusion executor performed, (b) compiled
//      fresh every query (cache miss), (c) compiled once (cache hit).
//   2. End-to-end: the same policy region through the whole engine with
//      `fuse_policies` off vs on.
//   3. Cache behaviour: hit rate over repeated same-principal queries
//      against the platform-wide PolicyEvalCache.
//
// Results are printed and written to BENCH_policy_eval.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "expr/compiler/compiler.h"
#include "expr/compiler/policy_eval_cache.h"
#include "expr/evaluator.h"

namespace lakeguard {
namespace bench {
namespace {

// ---- The policy-heavy region under test -------------------------------------

Schema PolicySchema() {
  return Schema({{"a", TypeKind::kInt64, true},
                 {"b", TypeKind::kInt64, true},
                 {"s", TypeKind::kString, true},
                 {"d", TypeKind::kFloat64, true}});
}

RecordBatch MakeBatch(size_t rows) {
  TableBuilder builder(PolicySchema());
  for (size_t i = 0; i < rows; ++i) {
    auto append = builder.AppendRow(
        {Value::Int(static_cast<int64_t>(i)),
         Value::Int(static_cast<int64_t>(i * 7 % 1000)),
         Value::String("tenant-" + std::to_string(i % 97)),
         Value::Double(static_cast<double>(i % 512) * 0.5)});
    if (!append.ok()) std::abort();
  }
  auto combined = builder.Build().Combine();
  if (!combined.ok()) std::abort();
  return *combined;
}

/// Row filter: int-arithmetic heavy with one string comparison — the shape
/// of a real multi-clause FGAC predicate (tenancy + range + bucketing +
/// blocklist clauses ANDed together). Selectivity ~ 50%.
ExprPtr RowFilter() {
  ExprPtr tenancy =
      BinOp(BinaryOpKind::kLt,
            BinOp(BinaryOpKind::kMod, Col("a"), LitInt(100)), LitInt(50));
  ExprPtr range = And(BinOp(BinaryOpKind::kGe, Col("b"), LitInt(10)),
                      BinOp(BinaryOpKind::kLe,
                            BinOp(BinaryOpKind::kMul, Col("b"), LitInt(3)),
                            LitInt(2998)));
  ExprPtr bucket = Not(Eq(
      BinOp(BinaryOpKind::kMod,
            BinOp(BinaryOpKind::kAdd,
                  BinOp(BinaryOpKind::kMul, Col("a"), LitInt(7)), Col("b")),
            LitInt(13)),
      LitInt(0)));
  ExprPtr blocklist = Not(Eq(Col("s"), LitString("tenant-13")));
  return And(And(tenancy, range), And(bucket, blocklist));
}

/// Masks: redact the tenant string, clamp the measure column.
std::vector<ExprPtr> ColumnMasks() {
  std::vector<ExprPtr> masks(4);
  masks[2] = std::make_shared<CaseExpr>(
      std::vector<CaseExpr::Branch>{
          {BinOp(BinaryOpKind::kGt, Col("b"), LitInt(500)),
           LitString("REDACTED")}},
      Col("s"));
  masks[3] = std::make_shared<CaseExpr>(
      std::vector<CaseExpr::Branch>{
          {BinOp(BinaryOpKind::kGe, Col("d"), LitDouble(100.0)),
           LitDouble(100.0)}},
      Col("d"));
  return masks;
}

/// Pushed-down user predicate (evaluated over the MASKED schema).
ExprPtr UserFilter() {
  return And(And(Eq(BinOp(BinaryOpKind::kMod, Col("a"), LitInt(3)), LitInt(0)),
                 BinOp(BinaryOpKind::kLe, Col("d"), LitDouble(100.0))),
             Not(Eq(BinOp(BinaryOpKind::kMod,
                          BinOp(BinaryOpKind::kAdd, Col("a"), Col("b")),
                          LitInt(5)),
                    LitInt(4))));
}

/// The pre-fusion evaluation strategy, exactly as the interpreted operators
/// perform it: three separate tree-walking passes with an intermediate
/// materialization between each.
size_t InterpretedPipeline(const ExprPtr& row_filter,
                           const std::vector<ExprPtr>& masks,
                           const ExprPtr& user_filter,
                           const RecordBatch& batch, const EvalContext& ctx) {
  auto keep = EvaluatePredicateMask(row_filter, batch, ctx);
  if (!keep.ok()) std::abort();
  RecordBatch filtered = batch.Filter(*keep);
  std::vector<Column> cols;
  cols.reserve(masks.size());
  for (size_t i = 0; i < masks.size(); ++i) {
    if (masks[i] == nullptr) {
      cols.push_back(filtered.column(i));
      continue;
    }
    auto col = EvaluateExpr(masks[i], filtered, ctx);
    if (!col.ok()) std::abort();
    cols.push_back(std::move(*col));
  }
  RecordBatch masked(filtered.schema(), std::move(cols));
  auto user_keep = EvaluatePredicateMask(user_filter, masked, ctx);
  if (!user_keep.ok()) std::abort();
  return masked.Filter(*user_keep).num_rows();
}

size_t FusedPipeline(const FusedPolicyProgram& program,
                     const CompiledExpr& user_filter, const RecordBatch& batch,
                     const EvalContext& ctx) {
  auto out = RunFusedPolicy(program, &user_filter, batch, ctx);
  if (!out.ok()) std::abort();
  return out->has_value() ? (*out)->num_rows() : 0;
}

FusedPolicyProgram CompileRegion(const Schema& schema) {
  auto program = CompileFusedPolicy("main.b.data", "analyst", /*epoch=*/1,
                                    schema, RowFilter(), ColumnMasks());
  if (!program.ok()) std::abort();
  return *program;
}

CompiledExpr CompileUser(const Schema& output_schema) {
  auto user = CompileExpr(UserFilter(), output_schema);
  if (!user.ok()) std::abort();
  return *user;
}

// ---- google-benchmark registrations -----------------------------------------

void BM_PolicyPipeline(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0=interp 1=fused 2=cached
  const size_t rows = static_cast<size_t>(state.range(1));
  RecordBatch batch = MakeBatch(rows);
  EvalContext ctx;
  ctx.current_user = "analyst";
  ExprPtr row_filter = RowFilter();
  std::vector<ExprPtr> masks = ColumnMasks();
  ExprPtr user_filter = UserFilter();
  FusedPolicyProgram program = CompileRegion(batch.schema());
  CompiledExpr user = CompileUser(program.output_schema);
  for (auto _ : state) {
    size_t out_rows = 0;
    switch (mode) {
      case 0:
        out_rows = InterpretedPipeline(row_filter, masks, user_filter, batch,
                                       ctx);
        break;
      case 1: {  // compile per query: the cache-miss cost
        FusedPolicyProgram fresh = CompileRegion(batch.schema());
        CompiledExpr fresh_user = CompileUser(fresh.output_schema);
        out_rows = FusedPipeline(fresh, fresh_user, batch, ctx);
        break;
      }
      default:
        out_rows = FusedPipeline(program, user, batch, ctx);
        break;
    }
    benchmark::DoNotOptimize(out_rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(rows) * state.iterations());
}

BENCHMARK(BM_PolicyPipeline)
    ->ArgsProduct({{0, 1, 2}, {512, 1024, 4096}})
    ->ArgNames({"mode", "rows"})
    ->Unit(benchmark::kMicrosecond);

// ---- Headline table + BENCH_policy_eval.json --------------------------------

struct Measured {
  double interpreted = 0, fused = 0, fused_cached = 0;  // rows/sec
};

Measured MeasureRows(size_t rows) {
  RecordBatch batch = MakeBatch(rows);
  EvalContext ctx;
  ctx.current_user = "analyst";
  ExprPtr row_filter = RowFilter();
  std::vector<ExprPtr> masks = ColumnMasks();
  ExprPtr user_filter = UserFilter();
  FusedPolicyProgram program = CompileRegion(batch.schema());
  CompiledExpr user = CompileUser(program.output_schema);

  // Interleaved best-of-N windows: each round times all three modes
  // back-to-back so machine-load drift cannot skew the ratios.
  const int reps = static_cast<int>(std::max<size_t>(200'000 / rows, 3));
  auto window_rate = [&](auto&& body) {
    int64_t start = RealClock::Instance()->NowMicros();
    for (int i = 0; i < reps; ++i) body();
    int64_t micros = RealClock::Instance()->NowMicros() - start;
    return static_cast<double>(rows) * reps * 1e6 /
           static_cast<double>(std::max<int64_t>(micros, 1));
  };
  Measured m;
  for (int round = 0; round < 9; ++round) {
    m.interpreted = std::max(m.interpreted, window_rate([&] {
      benchmark::DoNotOptimize(
          InterpretedPipeline(row_filter, masks, user_filter, batch, ctx));
    }));
    m.fused = std::max(m.fused, window_rate([&] {
      FusedPolicyProgram fresh = CompileRegion(batch.schema());
      CompiledExpr fresh_user = CompileUser(fresh.output_schema);
      benchmark::DoNotOptimize(FusedPipeline(fresh, fresh_user, batch, ctx));
    }));
    m.fused_cached = std::max(m.fused_cached, window_rate([&] {
      benchmark::DoNotOptimize(FusedPipeline(program, user, batch, ctx));
    }));
  }
  return m;
}

/// End-to-end engine latency for the governed query, fused vs interpreted,
/// and the cache hit rate over `queries` repeated same-principal runs.
struct EndToEnd {
  double interpreted_ms = 0, fused_ms = 0;
  PolicyEvalCache::Stats cache;
  uint64_t queries = 0;
};

BenchEnv MakePolicyEnv(bool fuse_policies) {
  QueryEngineConfig config;
  config.exec.fuse_policies = fuse_policies;
  BenchEnv env = MakeBenchEnv(config, /*rows=*/20'000, "tenant-");
  (void)env.platform->AddUser("analyst");
  env.MustSql("ALTER TABLE main.b.data SET ROW FILTER "
              "(a % 100 < 50 AND b >= 10 AND b * 3 <= 2998 AND "
              "NOT (a * 7 + b) % 13 = 0 AND NOT s = 'tenant-13')");
  env.MustSql("ALTER TABLE main.b.data ALTER COLUMN s SET MASK "
              "(CASE WHEN b > 500 THEN 'REDACTED' ELSE s END)");
  env.MustSql("GRANT USE CATALOG ON main TO analyst");
  env.MustSql("GRANT USE SCHEMA ON main.b TO analyst");
  env.MustSql("GRANT SELECT ON main.b.data TO analyst");
  return env;
}

EndToEnd MeasureEndToEnd() {
  const char* sql = "SELECT a, b, s FROM main.b.data WHERE a % 3 = 0";
  auto best_ms = [&](BenchEnv& env, const ExecutionContext& ctx) {
    (void)env.cluster->engine->ExecuteSql(sql, ctx);  // warm-up / compile
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < 7; ++rep) {
      int64_t start = RealClock::Instance()->NowMicros();
      auto result = env.cluster->engine->ExecuteSql(sql, ctx);
      if (!result.ok()) std::abort();
      best = std::min(best, RealClock::Instance()->NowMicros() - start);
    }
    return static_cast<double>(best) / 1000;
  };

  EndToEnd e;
  {
    BenchEnv off = MakePolicyEnv(/*fuse_policies=*/false);
    ExecutionContext ctx = *off.platform->DirectContext(off.cluster, "analyst");
    e.interpreted_ms = best_ms(off, ctx);
  }
  BenchEnv on = MakePolicyEnv(/*fuse_policies=*/true);
  ExecutionContext ctx = *on.platform->DirectContext(on.cluster, "analyst");
  e.fused_ms = best_ms(on, ctx);

  // Hit-rate study: a fresh cache, then N identical same-principal queries.
  on.platform->policy_cache().Clear();
  PolicyEvalCache::Stats before = on.platform->policy_cache().stats();
  e.queries = 200;
  for (uint64_t i = 0; i < e.queries; ++i) {
    auto result = on.cluster->engine->ExecuteSql(sql, ctx);
    if (!result.ok()) std::abort();
  }
  PolicyEvalCache::Stats after = on.platform->policy_cache().stats();
  e.cache.hits = after.hits - before.hits;
  e.cache.misses = after.misses - before.misses;
  e.cache.revalidations = after.revalidations - before.revalidations;
  e.cache.invalidations = after.invalidations - before.invalidations;
  e.cache.compiles = after.compiles - before.compiles;
  return e;
}

void PrintAndWrite() {
  std::printf("\n=== Fused policy evaluation: compiled scan evaluators vs "
              "interpreter ===\n");
  // Executor batch granularities: scans re-slice stored parts to
  // ExecutionOptions::batch_size (default 1024), so these are the batch
  // shapes the fused program actually sees in the engine.
  const size_t curve_rows[] = {512, 1024, 4096};
  Measured curve[3];
  for (int i = 0; i < 3; ++i) {
    curve[i] = MeasureRows(curve_rows[i]);
    std::printf("  rows=%-6zu interpreted %10.0f rows/s | fused %10.0f "
                "rows/s | fused+cached %10.0f rows/s | speedup %.2fx\n",
                curve_rows[i], curve[i].interpreted, curve[i].fused,
                curve[i].fused_cached,
                curve[i].fused_cached / curve[i].interpreted);
  }
  EndToEnd e = MeasureEndToEnd();
  const double denom =
      static_cast<double>(std::max<uint64_t>(e.cache.hits + e.cache.misses, 1));
  const double hit_rate = static_cast<double>(e.cache.hits) / denom;
  std::printf("  end-to-end governed query: interpreted %.2f ms, fused "
              "%.2f ms (%.2fx)\n",
              e.interpreted_ms, e.fused_ms, e.interpreted_ms / e.fused_ms);
  std::printf("  cache over %llu repeated queries: %llu hits / %llu misses "
              "(%.2f%% hit rate), %llu compiles\n",
              static_cast<unsigned long long>(e.queries),
              static_cast<unsigned long long>(e.cache.hits),
              static_cast<unsigned long long>(e.cache.misses), hit_rate * 100,
              static_cast<unsigned long long>(e.cache.compiles));

  bench::AtomicJsonWriter writer("BENCH_policy_eval.json");
  FILE* f = writer.file();
  if (f == nullptr) return;
  std::fprintf(f, "{\n  \"microbench_curve\": [\n");
  for (int i = 0; i < 3; ++i) {
    std::fprintf(
        f,
        "    {\"rows\": %zu, \"interpreted_rows_per_sec\": %.0f, "
        "\"fused_rows_per_sec\": %.0f, \"fused_cached_rows_per_sec\": %.0f, "
        "\"speedup_fused_vs_interpreted\": %.2f, "
        "\"speedup_fused_cached_vs_interpreted\": %.2f}%s\n",
        curve_rows[i], curve[i].interpreted, curve[i].fused,
        curve[i].fused_cached, curve[i].fused / curve[i].interpreted,
        curve[i].fused_cached / curve[i].interpreted, i + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"end_to_end\": {\"interpreted_ms\": %.3f, \"fused_ms\": "
               "%.3f, \"speedup\": %.2f},\n",
               e.interpreted_ms, e.fused_ms, e.interpreted_ms / e.fused_ms);
  std::fprintf(
      f,
      "  \"cache\": {\"queries\": %llu, \"hits\": %llu, \"misses\": %llu, "
      "\"compiles\": %llu, \"hit_rate\": %.4f}\n}\n",
      static_cast<unsigned long long>(e.queries),
      static_cast<unsigned long long>(e.cache.hits),
      static_cast<unsigned long long>(e.cache.misses),
      static_cast<unsigned long long>(e.cache.compiles), hit_rate);
  if (!writer.Commit()) std::fprintf(stderr, "failed to publish BENCH_policy_eval.json\n");
  std::printf("\nwrote BENCH_policy_eval.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintAndWrite();
  return 0;
}
