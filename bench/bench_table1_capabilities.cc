// Regenerates **Table 1**: the governance capability matrix. The four
// competitor rows are the published properties the paper quotes; the
// Lakeguard row is *measured* — every cell is backed by an actual scenario
// run against this library (a probe that fails flips the cell).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/capabilities.h"
#include "core/platform.h"
#include "udf/builder.h"

namespace lakeguard {
namespace bench {
namespace {

struct ProbeResult {
  PlatformCapabilities row;
  std::vector<std::string> failures;
};

ProbeResult ProbeLakeguard() {
  ProbeResult out;
  out.row.name = "Lakeguard (this library)";

  LakeguardPlatform platform;
  auto fail = [&out](const std::string& what) {
    out.failures.push_back(what);
    return false;
  };
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) fail(what);
    return ok;
  };

  (void)platform.AddUser("admin");
  (void)platform.AddUser("sql_user");
  (void)platform.AddUser("ds_user");
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  platform.RegisterToken("tok-sql", "sql_user");
  platform.RegisterToken("tok-ds", "ds_user");
  (void)platform.catalog().CreateCatalog("admin", "main");
  (void)platform.catalog().CreateSchema("admin", "main.s");
  ClusterHandle* cluster = platform.CreateStandardCluster();
  auto admin_ctx = *platform.DirectContext(cluster, "admin");
  auto sql = [&](const std::string& text) {
    return cluster->engine->ExecuteSql(text, admin_ctx);
  };

  bool setup_ok =
      sql("CREATE TABLE main.s.t (region STRING, amount BIGINT, ssn STRING)")
          .ok() &&
      sql("INSERT INTO main.s.t VALUES ('US', 1, 'a'), ('EU', 2, 'b')").ok();
  check(setup_ok, "setup");
  for (const char* u : {"sql_user", "ds_user"}) {
    (void)platform.catalog().Grant("admin", "main", Privilege::kUseCatalog, u);
    (void)platform.catalog().Grant("admin", "main.s", Privilege::kUseSchema,
                                   u);
    (void)platform.catalog().Grant("admin", "main.s.t", Privilege::kSelect,
                                   u);
  }

  // Row filter probe: policy set via SQL, enforced for another user.
  bool rf = sql("ALTER TABLE main.s.t SET ROW FILTER (region = 'US')").ok();
  if (rf) {
    auto sql_ctx = *platform.DirectContext(cluster, "sql_user");
    auto rows = cluster->engine->ExecuteSql(
        "SELECT amount FROM main.s.t", sql_ctx);
    rf = rows.ok() && rows->num_rows() == 1;
  }
  out.row.row_filter = check(rf, "row filter");

  // Column mask probe.
  bool cm =
      sql("ALTER TABLE main.s.t ALTER COLUMN ssn SET MASK (REDACT(ssn))")
          .ok();
  if (cm) {
    auto sql_ctx = *platform.DirectContext(cluster, "sql_user");
    auto rows = cluster->engine->ExecuteSql("SELECT ssn FROM main.s.t",
                                            sql_ctx);
    cm = rows.ok() && rows->num_rows() == 1 &&
         rows->Combine()->CellAt(0, 0).string_value() == "[REDACTED]";
  }
  out.row.column_masks = check(cm, "column mask");

  // View probe (definer's rights).
  bool views = sql("CREATE VIEW main.s.v AS SELECT amount FROM main.s.t")
                   .ok() &&
               platform.catalog()
                   .Grant("admin", "main.s.v", Privilege::kSelect, "sql_user")
                   .ok();
  if (views) {
    auto sql_ctx = *platform.DirectContext(cluster, "sql_user");
    views = cluster->engine
                ->ExecuteSql("SELECT amount FROM main.s.v", sql_ctx)
                .ok();
  }
  out.row.views = check(views, "views");

  // Materialized view probe.
  bool mv = sql("CREATE MATERIALIZED VIEW main.s.mv AS "
                "SELECT region, SUM(amount) AS total FROM main.s.t "
                "GROUP BY region")
                .ok() &&
            sql("SELECT total FROM main.s.mv").ok();
  out.row.materialized_views = check(mv, "materialized view");

  // Catalog UDF probe: cataloged user code executed in a sandbox.
  FunctionInfo fn;
  fn.full_name = "main.s.udf";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body = canned::SumUdf();
  bool udfs = platform.catalog().CreateFunction("admin", fn).ok() &&
              sql("SELECT main.s.udf(amount, 1) AS v FROM main.s.t").ok();
  for (const char* u : {"sql_user", "ds_user"}) {
    (void)platform.catalog().Grant("admin", "main.s.udf",
                                   Privilege::kExecute, u);
  }
  out.row.catalog_udfs = check(udfs, "catalog UDF") ? "LGVM (sandboxed)"
                                                    : "no";

  // Multi-user probe: two identities on ONE cluster, each with correctly
  // filtered results AND sandboxed user code.
  bool multi = true;
  {
    auto c1 = platform.Connect(cluster, "tok-sql");
    auto c2 = platform.Connect(cluster, "tok-ds");
    multi = c1.ok() && c2.ok();
    if (multi) {
      auto r1 = c1->Sql("SELECT COUNT(*) AS n FROM main.s.t");
      auto r2 = c2->Sql("SELECT main.s.udf(amount, 1) AS v FROM main.s.t");
      multi = r1.ok() && r2.ok();
    }
  }
  check(multi, "multi-user");
  out.row.single_user_langs = "SQL, LGVM user code";
  out.row.multi_user_langs = multi ? "SQL, LGVM user code" : "none";

  // External filtering probe: eFGAC query from a dedicated cluster.
  (void)platform.AddUser("ml_user");
  for (auto&& [sec, priv] :
       std::vector<std::pair<std::string, Privilege>>{
           {"main", Privilege::kUseCatalog},
           {"main.s", Privilege::kUseSchema},
           {"main.s.t", Privilege::kSelect}}) {
    (void)platform.catalog().Grant("admin", sec, priv, "ml_user");
  }
  ClusterHandle* dedicated =
      platform.CreateDedicatedCluster("ml_user", false);
  auto ml_ctx = *platform.DirectContext(dedicated, "ml_user");
  auto efgac = dedicated->engine->ExecuteSql(
      "SELECT SUM(amount) AS t FROM main.s.t", ml_ctx);
  bool external = efgac.ok() &&
                  platform.serverless_backend().stats().execute_calls > 0;
  out.row.external_filtering =
      check(external, "external filtering") ? "yes (eFGAC, full subqueries)"
                                            : "no";

  // Unified policies: same catalog objects governed both the SQL/warehouse
  // path (standard cluster) and the DS/ML path (dedicated + eFGAC) above.
  out.row.unified_policies =
      (rf && cm && external) ? "yes (measured on both paths)" : "no";
  return out;
}

void PrintTable1() {
  ProbeResult lakeguard = ProbeLakeguard();
  std::printf("=== Table 1: governance capability matrix ===\n");
  std::printf("(Lakeguard row measured by live probes; competitor rows as "
              "published in the paper)\n\n");
  std::vector<PlatformCapabilities> all;
  all.push_back(lakeguard.row);
  for (auto& p : ReferencePlatforms()) all.push_back(p);
  std::printf("%s\n", RenderCapabilityTable(all).c_str());
  if (lakeguard.failures.empty()) {
    std::printf("all Lakeguard capability probes PASSED\n");
  } else {
    std::printf("FAILED probes:\n");
    for (const std::string& f : lakeguard.failures) {
      std::printf("  - %s\n", f.c_str());
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintTable1();
  return 0;
}
