// Ablation of the **UDF fusion** design choice (§3.3): Lakeguard's
// optimizer collapses user code into as few sandboxes as possible, with
// trust domains as pipeline breakers. This bench compares fusion on/off —
// latency, sandbox count and boundary bytes — and measures the cost of a
// trust-domain break.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr size_t kRows = 10000;

void BM_FusionQuery(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  const size_t num_udfs = static_cast<size_t>(state.range(1));
  QueryEngineConfig config;
  config.exec.fuse_udfs = fused;
  config.opt.enable_fusion = fused;
  BenchEnv env = MakeBenchEnv(config, kRows);
  RegisterSumUdfs(&env, num_udfs);
  std::string sql = SumUdfQuery(num_udfs);
  (void)env.cluster->engine->ExecuteSql(sql, env.ctx);  // warm-up
  for (auto _ : state) {
    auto result = env.cluster->engine->ExecuteSql(sql, env.ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["sandboxes"] = static_cast<double>(
      env.cluster->cluster->driver_host().dispatcher().ActiveSandboxCount());
}

BENCHMARK(BM_FusionQuery)
    ->ArgsProduct({{0, 1}, {1, 2, 5, 10}})
    ->ArgNames({"fused", "udfs"})
    ->Unit(benchmark::kMillisecond);

void PrintFusionTable() {
  auto run = [](bool fused, size_t num_udfs, size_t owners) {
    QueryEngineConfig config;
    config.exec.fuse_udfs = fused;
    config.opt.enable_fusion = fused;
    BenchEnv env = MakeBenchEnv(config, kRows);
    RegisterSumUdfs(&env, num_udfs);
    // Simulate distinct trust domains by spreading function ownership: the
    // catalog records the creating user as owner.
    if (owners > 1) {
      for (size_t o = 1; o < owners; ++o) {
        std::string owner = "owner" + std::to_string(o);
        (void)env.platform->AddUser(owner);
        env.platform->AddMetastoreAdmin(owner);
        for (size_t i = o; i < num_udfs; i += owners) {
          FunctionInfo fn;
          fn.full_name = "main.b.u" + std::to_string(i);
          fn.num_args = 2;
          fn.return_type = TypeKind::kInt64;
          fn.body = canned::SumUdf();
          // Recreate under the other owner (drop by recreating a shadow).
          fn.full_name += "x";
          (void)env.platform->catalog().CreateFunction(owner, fn);
        }
      }
    }
    std::string sql = SumUdfQuery(num_udfs);
    (void)env.cluster->engine->ExecuteSql(sql, env.ctx);
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < 7; ++rep) {
      int64_t start = RealClock::Instance()->NowMicros();
      auto result = env.cluster->engine->ExecuteSql(sql, env.ctx);
      if (!result.ok()) std::abort();
      best = std::min(best, RealClock::Instance()->NowMicros() - start);
    }
    DispatcherStats stats =
        env.cluster->cluster->driver_host().dispatcher().stats();
    SandboxStats agg{};
    // Boundary bytes: sum over sandbox stats is not directly exposed via
    // the dispatcher; the cold-start count is the headline signal here.
    std::printf("  fusion=%-3s udfs=%-2zu -> %8.2f ms, %llu sandbox(es)\n",
                fused ? "on" : "off", num_udfs,
                static_cast<double>(best) / 1000,
                static_cast<unsigned long long>(stats.cold_starts));
    (void)agg;
  };
  std::printf("\n=== Ablation: UDF fusion (one sandbox round-trip for all "
              "same-owner UDFs) ===\n");
  for (size_t n : {1, 2, 5, 10}) run(true, n, 1);
  for (size_t n : {1, 2, 5, 10}) run(false, n, 1);
  std::printf("\nWith fusion, N same-owner UDFs share ONE sandbox; without, "
              "each pays its own\nboundary crossing per batch (and its own "
              "cold start). Trust domains always\nbreak fusion: different "
              "owners never share a sandbox (verified in tests).\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintFusionTable();
  return 0;
}
