// Ablation of the **UDF fusion** design choice (§3.3): Lakeguard's
// optimizer collapses user code into as few sandboxes as possible, with
// trust domains as pipeline breakers. This bench compares fusion on/off —
// latency, sandbox count and boundary bytes — and measures the cost of a
// trust-domain break.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr size_t kRows = 10000;

void BM_FusionQuery(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  const size_t num_udfs = static_cast<size_t>(state.range(1));
  QueryEngineConfig config;
  config.exec.fuse_udfs = fused;
  config.opt.enable_fusion = fused;
  BenchEnv env = MakeBenchEnv(config, kRows);
  RegisterSumUdfs(&env, num_udfs);
  std::string sql = SumUdfQuery(num_udfs);
  (void)env.cluster->engine->ExecuteSql(sql, env.ctx);  // warm-up
  for (auto _ : state) {
    auto result = env.cluster->engine->ExecuteSql(sql, env.ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
  state.counters["sandboxes"] = static_cast<double>(
      env.cluster->cluster->driver_host().dispatcher().ActiveSandboxCount());
}

BENCHMARK(BM_FusionQuery)
    ->ArgsProduct({{0, 1}, {1, 2, 5, 10}})
    ->ArgNames({"fused", "udfs"})
    ->Unit(benchmark::kMillisecond);

void PrintFusionTable() {
  auto run = [](bool fused, size_t num_udfs, size_t owners) {
    QueryEngineConfig config;
    config.exec.fuse_udfs = fused;
    config.opt.enable_fusion = fused;
    BenchEnv env = MakeBenchEnv(config, kRows);
    RegisterSumUdfs(&env, num_udfs);
    // Simulate distinct trust domains by spreading function ownership: the
    // catalog records the creating user as owner.
    if (owners > 1) {
      for (size_t o = 1; o < owners; ++o) {
        std::string owner = "owner" + std::to_string(o);
        (void)env.platform->AddUser(owner);
        env.platform->AddMetastoreAdmin(owner);
        for (size_t i = o; i < num_udfs; i += owners) {
          FunctionInfo fn;
          fn.full_name = "main.b.u" + std::to_string(i);
          fn.num_args = 2;
          fn.return_type = TypeKind::kInt64;
          fn.body = canned::SumUdf();
          // Recreate under the other owner (drop by recreating a shadow).
          fn.full_name += "x";
          (void)env.platform->catalog().CreateFunction(owner, fn);
        }
      }
    }
    std::string sql = SumUdfQuery(num_udfs);
    (void)env.cluster->engine->ExecuteSql(sql, env.ctx);
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < 7; ++rep) {
      int64_t start = RealClock::Instance()->NowMicros();
      auto result = env.cluster->engine->ExecuteSql(sql, env.ctx);
      if (!result.ok()) std::abort();
      best = std::min(best, RealClock::Instance()->NowMicros() - start);
    }
    DispatcherStats stats =
        env.cluster->cluster->driver_host().dispatcher().stats();
    SandboxStats agg{};
    // Boundary bytes: sum over sandbox stats is not directly exposed via
    // the dispatcher; the cold-start count is the headline signal here.
    std::printf("  fusion=%-3s udfs=%-2zu -> %8.2f ms, %llu sandbox(es)\n",
                fused ? "on" : "off", num_udfs,
                static_cast<double>(best) / 1000,
                static_cast<unsigned long long>(stats.cold_starts));
    (void)agg;
  };
  std::printf("\n=== Ablation: UDF fusion (one sandbox round-trip for all "
              "same-owner UDFs) ===\n");
  for (size_t n : {1, 2, 5, 10}) run(true, n, 1);
  for (size_t n : {1, 2, 5, 10}) run(false, n, 1);
  std::printf("\nWith fusion, N same-owner UDFs share ONE sandbox; without, "
              "each pays its own\nboundary crossing per batch (and its own "
              "cold start). Trust domains always\nbreak fusion: different "
              "owners never share a sandbox (verified in tests).\n");
}

/// Ablation of **policy fusion** (the compiled scan-evaluator path): the
/// same governed query with (a) `fuse_policies` off — three interpreted
/// passes per batch, (b) fused with the program cache cleared before every
/// query — compile cost on the critical path, (c) fused with a warm cache.
/// The full curve with microbenchmarks lives in bench_policy_eval /
/// BENCH_policy_eval.json; this table is the end-to-end sanity view.
void PrintPolicyFusionTable() {
  auto make_env = [](bool fuse_policies) {
    QueryEngineConfig config;
    config.exec.fuse_policies = fuse_policies;
    BenchEnv env = MakeBenchEnv(config, kRows);
    (void)env.platform->AddUser("analyst");
    env.MustSql("ALTER TABLE main.b.data SET ROW FILTER "
                "(a % 100 < 50 AND b >= 10)");
    env.MustSql("ALTER TABLE main.b.data ALTER COLUMN s SET MASK "
                "(CASE WHEN b > 500 THEN 'REDACTED' ELSE s END)");
    env.MustSql("GRANT USE CATALOG ON main TO analyst");
    env.MustSql("GRANT USE SCHEMA ON main.b TO analyst");
    env.MustSql("GRANT SELECT ON main.b.data TO analyst");
    return env;
  };
  const char* sql = "SELECT a, b, s FROM main.b.data WHERE a % 3 = 0";
  auto best_ms = [&](BenchEnv& env, const ExecutionContext& ctx,
                     bool clear_cache_each_run) {
    (void)env.cluster->engine->ExecuteSql(sql, ctx);  // warm-up
    int64_t best = INT64_MAX;
    for (int rep = 0; rep < 7; ++rep) {
      if (clear_cache_each_run) env.platform->policy_cache().Clear();
      int64_t start = RealClock::Instance()->NowMicros();
      auto result = env.cluster->engine->ExecuteSql(sql, ctx);
      if (!result.ok()) std::abort();
      best = std::min(best, RealClock::Instance()->NowMicros() - start);
    }
    return static_cast<double>(best) / 1000;
  };

  std::printf("\n=== Ablation: policy fusion (compiled scan evaluators) "
              "===\n");
  {
    BenchEnv off = make_env(false);
    ExecutionContext ctx = *off.platform->DirectContext(off.cluster,
                                                        "analyst");
    std::printf("  interpreted   -> %8.2f ms\n", best_ms(off, ctx, false));
  }
  BenchEnv on = make_env(true);
  ExecutionContext ctx = *on.platform->DirectContext(on.cluster, "analyst");
  std::printf("  fused (cold)  -> %8.2f ms  (compile on critical path)\n",
              best_ms(on, ctx, /*clear_cache_each_run=*/true));
  std::printf("  fused+cached  -> %8.2f ms\n", best_ms(on, ctx, false));
  PolicyEvalCache::Stats stats = on.platform->policy_cache().stats();
  std::printf("  cache: %llu hits, %llu misses, %llu compiles\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.compiles));
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintFusionTable();
  lakeguard::bench::PrintPolicyFusionTable();
  return 0;
}
