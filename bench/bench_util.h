#ifndef LAKEGUARD_BENCH_BENCH_UTIL_H_
#define LAKEGUARD_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/platform.h"
#include "udf/builder.h"

namespace lakeguard {
namespace bench {

/// Atomic BENCH_*.json publisher: the report is written to `<path>.tmp`,
/// flushed and fsynced, and only then renamed over the final path — an
/// interrupted or crashed benchmark never leaves a torn half-written JSON
/// where a previous complete run's report used to be (same tmp-write →
/// fsync → rename protocol as the durable stores). Destruction without
/// `Commit` discards the tmp file.
class AtomicJsonWriter {
 public:
  explicit AtomicJsonWriter(std::string path)
      : path_(std::move(path)), tmp_(path_ + ".tmp") {
    file_ = std::fopen(tmp_.c_str(), "w");
  }

  AtomicJsonWriter(const AtomicJsonWriter&) = delete;
  AtomicJsonWriter& operator=(const AtomicJsonWriter&) = delete;

  ~AtomicJsonWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
      std::remove(tmp_.c_str());
    }
  }

  /// Null if the tmp file could not be opened.
  FILE* file() { return file_; }

  /// Flush + fsync + close + rename into place. False (and no final file
  /// is touched) if any step fails.
  bool Commit() {
    if (file_ == nullptr) return false;
    bool ok = std::fflush(file_) == 0;
    ok = ::fsync(::fileno(file_)) == 0 && ok;
    ok = std::fclose(file_) == 0 && ok;
    file_ = nullptr;
    if (!ok || std::rename(tmp_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_.c_str());
      return false;
    }
    return true;
  }

 private:
  std::string path_;
  std::string tmp_;
  FILE* file_ = nullptr;
};

/// A ready-to-measure platform: admin user, catalog main.b, one standard
/// cluster, and a data table with integer and string columns.
struct BenchEnv {
  std::unique_ptr<LakeguardPlatform> platform;
  ClusterHandle* cluster = nullptr;
  ExecutionContext ctx;

  Table MustSql(const std::string& sql) {
    auto result = cluster->engine->ExecuteSql(sql, ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "bench setup failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), sql.c_str());
      std::abort();
    }
    return *result;
  }
};

/// Builds a platform for wall-clock measurement: real clock, zero modeled
/// sandbox cold-start (cold start is studied separately on virtual time).
inline BenchEnv MakeBenchEnv(QueryEngineConfig engine_config = {},
                             size_t rows = 0,
                             const std::string& payload = "payload-") {
  BenchEnv env;
  LakeguardPlatform::Options options;
  options.use_simulated_clock = false;
  options.sandbox_cold_start_micros = 0;
  options.engine_config = engine_config;
  env.platform = std::make_unique<LakeguardPlatform>(options);
  (void)env.platform->AddUser("admin");
  env.platform->AddMetastoreAdmin("admin");
  env.platform->RegisterToken("tok-admin", "admin");
  (void)env.platform->catalog().CreateCatalog("admin", "main");
  (void)env.platform->catalog().CreateSchema("admin", "main.b");
  env.cluster = env.platform->CreateStandardCluster();
  env.ctx = *env.platform->DirectContext(env.cluster, "admin");
  env.MustSql("CREATE TABLE main.b.data (a BIGINT, b BIGINT, s STRING)");
  size_t inserted = 0;
  while (inserted < rows) {
    std::string sql = "INSERT INTO main.b.data VALUES ";
    size_t chunk = std::min<size_t>(500, rows - inserted);
    for (size_t i = 0; i < chunk; ++i) {
      if (i > 0) sql += ", ";
      size_t n = inserted + i;
      sql += "(" + std::to_string(n) + ", " + std::to_string(n * 7 % 1000) +
             ", '" + payload + std::to_string(n % 97) + "')";
    }
    env.MustSql(sql);
    inserted += chunk;
  }
  return env;
}

/// Registers `count` two-argument SUM UDFs named main.b.u0..u<count-1>.
inline void RegisterSumUdfs(BenchEnv* env, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    FunctionInfo fn;
    fn.full_name = "main.b.u" + std::to_string(i);
    fn.num_args = 2;
    fn.return_type = TypeKind::kInt64;
    fn.body = canned::SumUdf();
    (void)env->platform->catalog().CreateFunction("admin", fn);
  }
}

/// Registers `count` one-argument 100x-SHA256 UDFs named main.b.h0...
inline void RegisterHashUdfs(BenchEnv* env, size_t count,
                             int64_t iterations = 100) {
  for (size_t i = 0; i < count; ++i) {
    FunctionInfo fn;
    fn.full_name = "main.b.h" + std::to_string(i);
    fn.num_args = 1;
    fn.return_type = TypeKind::kString;
    fn.body = canned::HashUdf(iterations);
    (void)env->platform->catalog().CreateFunction("admin", fn);
  }
}

/// SELECT with `count` sum-UDF columns over main.b.data.
inline std::string SumUdfQuery(size_t count) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) sql += ", ";
    sql += "main.b.u" + std::to_string(i) + "(a, b) AS r" +
           std::to_string(i);
  }
  return sql + " FROM main.b.data";
}

/// SELECT with `count` hash-UDF columns over main.b.data.
inline std::string HashUdfQuery(size_t count) {
  std::string sql = "SELECT ";
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) sql += ", ";
    sql += "main.b.h" + std::to_string(i) + "(s) AS r" + std::to_string(i);
  }
  return sql + " FROM main.b.data";
}

}  // namespace bench
}  // namespace lakeguard

#endif  // LAKEGUARD_BENCH_BENCH_UTIL_H_
