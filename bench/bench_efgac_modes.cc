// Benchmarks the **eFGAC result-return modes** (§3.4) — inline for small
// results vs cloud-storage spill for large ones — and compares local FGAC
// enforcement (Standard cluster) against external enforcement (Dedicated
// cluster via the serverless endpoint).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/platform.h"

namespace lakeguard {
namespace bench {
namespace {

struct EfgacEnv {
  std::unique_ptr<LakeguardPlatform> platform;
  ClusterHandle* standard = nullptr;
  ClusterHandle* dedicated = nullptr;
  ExecutionContext admin_ctx;
  ExecutionContext eve_std_ctx;
  ExecutionContext eve_ded_ctx;
};

EfgacEnv MakeEfgacEnv(size_t rows, size_t spill_threshold) {
  EfgacEnv env;
  LakeguardPlatform::Options options;
  options.use_simulated_clock = false;
  options.sandbox_cold_start_micros = 0;
  options.efgac_spill_threshold_bytes = spill_threshold;
  env.platform = std::make_unique<LakeguardPlatform>(options);
  (void)env.platform->AddUser("admin");
  (void)env.platform->AddUser("eve");
  env.platform->AddMetastoreAdmin("admin");
  (void)env.platform->catalog().CreateCatalog("admin", "main");
  (void)env.platform->catalog().CreateSchema("admin", "main.b");
  env.standard = env.platform->CreateStandardCluster();
  env.admin_ctx = *env.platform->DirectContext(env.standard, "admin");
  auto sql = [&env](const std::string& text) {
    auto result = env.standard->engine->ExecuteSql(text, env.admin_ctx);
    if (!result.ok()) std::abort();
  };
  sql("CREATE TABLE main.b.sales (region STRING, amount BIGINT, "
      "note STRING)");
  size_t inserted = 0;
  while (inserted < rows) {
    std::string text = "INSERT INTO main.b.sales VALUES ";
    size_t chunk = std::min<size_t>(500, rows - inserted);
    for (size_t i = 0; i < chunk; ++i) {
      if (i > 0) text += ", ";
      size_t n = inserted + i;
      text += "('" + std::string(n % 2 ? "US" : "EU") + "', " +
              std::to_string(n) + ", 'note-" + std::string(40, 'x') + "')";
    }
    sql(text);
    inserted += chunk;
  }
  sql("ALTER TABLE main.b.sales SET ROW FILTER (region = 'US')");
  for (auto&& [sec, priv] : std::vector<std::pair<std::string, Privilege>>{
           {"main", Privilege::kUseCatalog},
           {"main.b", Privilege::kUseSchema},
           {"main.b.sales", Privilege::kSelect}}) {
    (void)env.platform->catalog().Grant("admin", sec, priv, "eve");
  }
  env.dedicated = env.platform->CreateDedicatedCluster("eve", false);
  env.eve_std_ctx = *env.platform->DirectContext(env.standard, "eve");
  env.eve_ded_ctx = *env.platform->DirectContext(env.dedicated, "eve");
  return env;
}

void BM_LocalEnforcement(benchmark::State& state) {
  EfgacEnv env = MakeEfgacEnv(static_cast<size_t>(state.range(0)),
                              256 * 1024);
  for (auto _ : state) {
    auto result = env.standard->engine->ExecuteSql(
        "SELECT amount, note FROM main.b.sales", env.eve_std_ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LocalEnforcement)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_ExternalEnforcement(benchmark::State& state) {
  EfgacEnv env = MakeEfgacEnv(static_cast<size_t>(state.range(0)),
                              256 * 1024);
  for (auto _ : state) {
    auto result = env.dedicated->engine->ExecuteSql(
        "SELECT amount, note FROM main.b.sales", env.eve_ded_ctx);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExternalEnforcement)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void PrintModesTable() {
  std::printf("\n=== eFGAC result modes: inline vs cloud-storage spill ===\n");
  std::printf("(§3.4: small results return inline; larger ones persist to "
              "storage and are\nre-read by the origin cluster)\n\n");
  std::printf("%10s | %10s | %8s | %10s | %12s\n", "rows", "threshold",
              "mode", "ms", "spill bytes");
  for (auto [rows, threshold] :
       std::vector<std::pair<size_t, size_t>>{{500, 256 * 1024},
                                              {5000, 256 * 1024},
                                              {20000, 256 * 1024},
                                              {20000, 64 * 1024 * 1024}}) {
    EfgacEnv env = MakeEfgacEnv(rows, threshold);
    env.platform->serverless_backend().ResetStats();
    env.platform->store().ResetStats();
    int64_t start = RealClock::Instance()->NowMicros();
    auto result = env.dedicated->engine->ExecuteSql(
        "SELECT amount, note FROM main.b.sales", env.eve_ded_ctx);
    int64_t elapsed = RealClock::Instance()->NowMicros() - start;
    if (!result.ok()) std::abort();
    const EfgacStats& stats = env.platform->serverless_backend().stats();
    std::printf("%10zu | %9zuK | %8s | %10.2f | %12llu\n", rows,
                threshold / 1024,
                stats.spilled_results > 0 ? "spill" : "inline",
                static_cast<double>(elapsed) / 1000,
                static_cast<unsigned long long>(stats.spilled_bytes));
  }

  std::printf("\n=== Local (Standard) vs external (Dedicated/eFGAC) "
              "enforcement of the same query ===\n");
  for (size_t rows : {1000, 5000, 20000}) {
    EfgacEnv env = MakeEfgacEnv(rows, 256 * 1024);
    auto time_query = [](ClusterHandle* cluster, const ExecutionContext& ctx)
        -> double {
      const char* sql = "SELECT SUM(amount) AS t FROM main.b.sales";
      (void)cluster->engine->ExecuteSql(sql, ctx);
      int64_t best = INT64_MAX;
      for (int rep = 0; rep < 5; ++rep) {
        int64_t start = RealClock::Instance()->NowMicros();
        auto result = cluster->engine->ExecuteSql(sql, ctx);
        if (!result.ok()) std::abort();
        best = std::min(best, RealClock::Instance()->NowMicros() - start);
      }
      return static_cast<double>(best) / 1000;
    };
    double local = time_query(env.standard, env.eve_std_ctx);
    double external = time_query(env.dedicated, env.eve_ded_ctx);
    std::printf("  rows=%-6zu local %8.2f ms | external %8.2f ms "
                "(x%.2f)\n",
                rows, local, external, external / local);
  }
  std::printf("\nExternal enforcement pays plan shipping + remote analysis + "
              "result transfer —\nthe price of privileged machine access "
              "(§3.4); Standard clusters enforce locally.\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintModesTable();
  return 0;
}
