// Streaming-pipeline benchmark: the memory and throughput effect of the
// pull-based executor. Compares a pure pipeline query (scan -> filter ->
// project, batches discarded as they arrive) against the same query forced
// through a pipeline breaker (ORDER BY, which materializes its input) and
// against the collect-all wrapper (the pre-streaming execution surface).
//
// Memory is reported via the executor's resident-batch proxy:
// `peak_resident_batches` counts batches concurrently held by operators,
// scaled by the measured bytes of one batch. A pipeline holds O(1) batches
// regardless of input size; a breaker holds O(rows / batch_size).
//
// Results are printed and written to BENCH_streaming.json in the working
// directory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace lakeguard {
namespace bench {
namespace {

struct Measurement {
  std::string name;
  double seconds = 0;          // best of kReps
  uint64_t rows = 0;
  uint64_t peak_resident_batches = 0;
  double peak_resident_bytes = 0;
  double rows_per_sec() const { return seconds > 0 ? rows / seconds : 0; }
};

constexpr int kReps = 5;

/// Runs `sql` through the streaming API, discarding batches as they
/// arrive (the minimal-footprint consumer the streaming executor enables).
Measurement RunStreaming(BenchEnv* env, const std::string& name,
                         const std::string& sql) {
  Measurement m;
  m.name = name;
  double batch_bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto stream = env->cluster->engine->ExecuteSqlStreaming(sql, env->ctx);
    if (!stream.ok()) {
      std::fprintf(stderr, "bench query failed: %s\n",
                   stream.status().ToString().c_str());
      std::abort();
    }
    uint64_t rows = 0;
    while (true) {
      auto batch = (*stream)->Next();
      if (!batch.ok() || !batch->has_value()) break;
      rows += (*batch)->num_rows();
      if (batch_bytes == 0 && (*batch)->num_rows() > 0) {
        batch_bytes = static_cast<double>((*batch)->ByteSize());
      }
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.rows = rows;
    m.peak_resident_batches = (*stream)->stats().peak_resident_batches;
  }
  m.peak_resident_bytes = m.peak_resident_batches * batch_bytes;
  return m;
}

/// Runs `sql` through the collect-all wrapper: the whole result is
/// materialized into one Table before the caller sees a row.
Measurement RunCollectAll(BenchEnv* env, const std::string& name,
                          const std::string& sql) {
  Measurement m;
  m.name = name;
  for (int rep = 0; rep < kReps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    Table table = env->MustSql(sql);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (rep == 0 || secs < m.seconds) m.seconds = secs;
    m.rows = table.num_rows();
    // The wrapper holds the full result: its footprint is the table itself.
    m.peak_resident_bytes = static_cast<double>(table.ByteSize());
    m.peak_resident_batches = 0;
  }
  return m;
}

void Report(const std::vector<Measurement>& all) {
  std::printf("%-34s %12s %14s %10s %16s\n", "case", "rows", "rows/sec",
              "peak#", "peak bytes");
  for (const Measurement& m : all) {
    std::printf("%-34s %12llu %14.0f %10llu %16.0f\n", m.name.c_str(),
                static_cast<unsigned long long>(m.rows), m.rows_per_sec(),
                static_cast<unsigned long long>(m.peak_resident_batches),
                m.peak_resident_bytes);
  }
  bench::AtomicJsonWriter writer("BENCH_streaming.json");
  FILE* f = writer.file();
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"streaming_pipeline\",\n");
  std::fprintf(f, "  \"memory_proxy\": \"peak_resident_batches * measured_batch_bytes\",\n");
  std::fprintf(f, "  \"cases\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const Measurement& m = all[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"rows\": %llu, \"seconds\": %.6f, "
                 "\"rows_per_sec\": %.0f, \"peak_resident_batches\": %llu, "
                 "\"peak_resident_bytes\": %.0f}%s\n",
                 m.name.c_str(), static_cast<unsigned long long>(m.rows),
                 m.seconds, m.rows_per_sec(),
                 static_cast<unsigned long long>(m.peak_resident_batches),
                 m.peak_resident_bytes, i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (!writer.Commit()) std::fprintf(stderr, "failed to publish BENCH_streaming.json\n");
  std::printf("\nwrote BENCH_streaming.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main() {
  using namespace lakeguard;
  using namespace lakeguard::bench;

  constexpr size_t kRows = 50000;
  BenchEnv env = MakeBenchEnv({}, kRows);

  const std::string pipeline_sql =
      "SELECT a + b AS v, s FROM main.b.data WHERE a % 10 <> 0";
  const std::string breaker_sql =
      "SELECT a + b AS v, s FROM main.b.data WHERE a % 10 <> 0 ORDER BY v";
  const std::string limit_sql =
      "SELECT a + b AS v, s FROM main.b.data WHERE a % 10 <> 0 LIMIT 100";

  std::vector<Measurement> all;
  all.push_back(RunStreaming(&env, "stream: scan-filter-project", pipeline_sql));
  all.push_back(RunStreaming(&env, "stream: + ORDER BY (breaker)", breaker_sql));
  all.push_back(RunStreaming(&env, "stream: + LIMIT 100", limit_sql));
  all.push_back(RunCollectAll(&env, "collect-all wrapper", pipeline_sql));
  Report(all);
  return 0;
}
