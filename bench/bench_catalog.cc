// Catalog concurrency benchmark.
//
// Part 1 (wall clock): reader scaling / availability curve. N reader threads
// (N = 1, 2, 4, 8) hammer `UnityCatalog::InspectPolicies` on a
// policy-bearing table while one paced writer thread applies policy + grant
// mutations against a metastore populated with hundreds of securables. Two
// modes over identical code:
//   - "snapshot": the catalog as built — readers pin an immutable epoch
//     snapshot with one atomic load and never take a lock;
//   - "mutex": the pre-rework baseline, modeled by serializing every catalog
//     call (reads AND writes) through one global mutex — what a single
//     coarse catalog mutex did in the seed implementation.
// The primary metric is *read availability under churn*: reads completed
// per second of mutation-in-flight time. Under the global mutex a mutation
// freezes every reader for its whole duration, so that rate is ~0; under
// snapshots readers proceed at full speed while the writer copies and
// publishes. (On this container's single core, *aggregate* wall-clock
// throughput is work-conserving — both modes share one CPU and differ only
// by scheduler artifacts — so the aggregate is reported for transparency
// but the speedup is the availability ratio, which is also what multi-core
// scaling is made of: reads that need not wait.) `speedup` is floored to
// one completed read per window on the baseline side to stay finite.
//
// Part 2: snapshot staleness under continuous churn. Readers pair each
// pinned inspection with an immediately-following head-epoch load and record
// the lag; the writer publishes throughout. A pinned snapshot is the head at
// the instant of the atomic load, so the witnessed lag must stay <= 1 (the
// one publish that may overlap the read). Each sample takes the min of 3
// back-to-back trials to discard scheduler-preemption artifacts (a
// descheduled thread is not a stale snapshot).
//
// Results are printed and written to BENCH_catalog.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "expr/expr.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr double kSeconds = 0.5;  // per measured point

/// The baseline's coarse lock: one mutex in front of the whole catalog.
std::mutex g_catalog_mu;

/// One writer mutation: flip the row filter between two generations and
/// churn a grant — the mix a busy metastore sees. The catalog is populated
/// with hundreds of securables (below), so each mutation pays a realistic
/// state-copy cost.
void WriterMutation(UnityCatalog* catalog, uint64_t i) {
  RowFilterPolicy filter;
  filter.predicate = Eq(Col("region"), LitString(i % 2 == 0 ? "US" : "EU"));
  (void)catalog->SetRowFilter("admin", "main.b.data", std::move(filter));
  if (i % 2 == 0) {
    (void)catalog->Grant("admin", "main.b.data", Privilege::kSelect,
                         "reader");
  } else {
    (void)catalog->Revoke("admin", "main.b.data", Privilege::kSelect,
                          "reader");
  }
}

/// Fills the metastore with `count` policy-bearing tables, the standing
/// population a real workspace accumulates.
void PopulateCatalog(UnityCatalog* catalog, int count) {
  for (int i = 0; i < count; ++i) {
    TableInfo info;
    info.full_name = "main.b.t" + std::to_string(i);
    info.owner = "admin";
    info.storage_root = "mem://main/b/t" + std::to_string(i);
    info.schema = Schema({{"region", TypeKind::kString},
                          {"amount", TypeKind::kInt64},
                          {"s", TypeKind::kString}});
    info.row_filter.emplace();
    info.row_filter->predicate = Eq(Col("region"), LitString("US"));
    ColumnMaskPolicy mask;
    mask.column = "s";
    mask.mask_expr = Func("REDACT", {Col("s")});
    info.column_masks.push_back(std::move(mask));
    if (!catalog->CreateTable("admin", std::move(info)).ok()) std::abort();
  }
}

struct Rates {
  double total_reads_per_sec = 0;
  double reads_per_sec_during_writes = 0;
  uint64_t reads_during_writes = 0;
  double write_window_seconds = 0;
  uint64_t mutations = 0;
};

struct ScalePoint {
  int readers = 0;
  Rates snapshot;
  Rates mutex_mode;
  double speedup = 0;        // availability ratio (during-write reads/sec)
  double total_speedup = 0;  // aggregate wall-clock ratio, for transparency
};

Rates MeasureReads(UnityCatalog* catalog, const ComputeContext& compute,
                   int reader_count, bool global_mutex) {
  std::atomic<bool> stop{false};
  std::atomic<bool> mutating{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> reads_during{0};
  Rates rates;

  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto t0 = std::chrono::steady_clock::now();
      if (global_mutex) {
        std::lock_guard<std::mutex> lock(g_catalog_mu);
        mutating.store(true, std::memory_order_release);
        WriterMutation(catalog, i);
        mutating.store(false, std::memory_order_release);
      } else {
        mutating.store(true, std::memory_order_release);
        WriterMutation(catalog, i);
        mutating.store(false, std::memory_order_release);
      }
      rates.write_window_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      ++rates.mutations;
      ++i;
      // Paced churn: the metastore writes far less often than engines read.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < reader_count; ++r) {
    readers.emplace_back([&] {
      uint64_t local = 0;
      uint64_t local_during = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (global_mutex) {
          std::lock_guard<std::mutex> lock(g_catalog_mu);
          PolicyInspection info =
              catalog->InspectPolicies("admin", compute, "main.b.data");
          if (!info.found) std::abort();
        } else {
          PolicyInspection info =
              catalog->InspectPolicies("admin", compute, "main.b.data");
          if (!info.found) std::abort();
        }
        ++local;
        if (mutating.load(std::memory_order_relaxed)) ++local_during;
      }
      reads.fetch_add(local, std::memory_order_relaxed);
      reads_during.fetch_add(local_during, std::memory_order_relaxed);
    });
  }

  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(kSeconds));
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  writer.join();
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  rates.total_reads_per_sec = static_cast<double>(reads.load()) / secs;
  rates.reads_during_writes = reads_during.load();
  // Floor at one completed read per total window time so ratios stay finite
  // when the baseline completes literally zero reads during mutations.
  double window = std::max(rates.write_window_seconds, 1e-9);
  rates.reads_per_sec_during_writes =
      static_cast<double>(std::max<uint64_t>(reads_during.load(), 1)) /
      window;
  return rates;
}

struct StalenessResult {
  uint64_t samples = 0;
  uint64_t max_epoch_lag = 0;
  uint64_t lag_zero = 0;
  uint64_t epochs_published = 0;
};

StalenessResult MeasureStaleness(UnityCatalog* catalog,
                                 const ComputeContext& compute) {
  StalenessResult result;
  std::atomic<bool> stop{false};
  uint64_t epoch_before = catalog->epoch();

  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      WriterMutation(catalog, i++);
    }
  });

  constexpr int kSamples = 20'000;
  for (int s = 0; s < kSamples; ++s) {
    uint64_t lag = ~0ull;
    for (int trial = 0; trial < 3; ++trial) {
      PolicyInspection info =
          catalog->InspectPolicies("admin", compute, "main.b.data");
      uint64_t head = catalog->epoch();
      lag = std::min(lag, head - info.epoch);
    }
    result.max_epoch_lag = std::max(result.max_epoch_lag, lag);
    if (lag == 0) ++result.lag_zero;
    ++result.samples;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  result.epochs_published = catalog->epoch() - epoch_before;
  return result;
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main() {
  using namespace lakeguard;
  using namespace lakeguard::bench;

  BenchEnv env = MakeBenchEnv();
  (void)env.platform->AddUser("reader");
  UnityCatalog* catalog = &env.platform->catalog();
  const ComputeContext compute = env.ctx.compute;
  PopulateCatalog(catalog, 300);

  // Seed the policy the readers inspect.
  RowFilterPolicy filter;
  filter.predicate = Eq(Col("region"), LitString("US"));
  if (!catalog->SetRowFilter("admin", "main.b.data", std::move(filter))
           .ok()) {
    std::abort();
  }

  std::printf("catalog reads under policy churn (paced writer)\n");
  std::printf("%8s %14s %14s | %16s %16s %9s\n", "readers", "snap-total/s",
              "mutex-total/s", "snap-during-wr/s", "mutex-during-wr/s",
              "speedup");
  std::vector<ScalePoint> points;
  for (int readers : {1, 2, 4, 8}) {
    ScalePoint p;
    p.readers = readers;
    p.mutex_mode =
        MeasureReads(catalog, compute, readers, /*global_mutex=*/true);
    p.snapshot =
        MeasureReads(catalog, compute, readers, /*global_mutex=*/false);
    p.speedup = p.snapshot.reads_per_sec_during_writes /
                p.mutex_mode.reads_per_sec_during_writes;
    p.total_speedup = p.snapshot.total_reads_per_sec /
                      p.mutex_mode.total_reads_per_sec;
    std::printf("%8d %14.0f %14.0f | %16.0f %16.0f %8.1fx\n", p.readers,
                p.snapshot.total_reads_per_sec,
                p.mutex_mode.total_reads_per_sec,
                p.snapshot.reads_per_sec_during_writes,
                p.mutex_mode.reads_per_sec_during_writes, p.speedup);
    points.push_back(p);
  }

  StalenessResult staleness = MeasureStaleness(catalog, compute);
  std::printf(
      "\nstaleness under churn: %llu samples, %llu epochs published, "
      "max lag %llu, lag==0 in %.2f%%\n",
      static_cast<unsigned long long>(staleness.samples),
      static_cast<unsigned long long>(staleness.epochs_published),
      static_cast<unsigned long long>(staleness.max_epoch_lag),
      100.0 * static_cast<double>(staleness.lag_zero) /
          static_cast<double>(staleness.samples));

  bench::AtomicJsonWriter writer("BENCH_catalog.json");
  FILE* f = writer.file();
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n  \"scaling\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    std::fprintf(
        f,
        "    {\"readers\": %d, \"snapshot_reads_per_sec\": %.0f, "
        "\"mutex_reads_per_sec\": %.0f, "
        "\"snapshot_reads_per_sec_during_writes\": %.0f, "
        "\"mutex_reads_per_sec_during_writes\": %.0f, "
        "\"snapshot_mutations\": %llu, \"mutex_mutations\": %llu, "
        "\"speedup\": %.2f, \"total_speedup\": %.2f}%s\n",
        p.readers, p.snapshot.total_reads_per_sec,
        p.mutex_mode.total_reads_per_sec,
        p.snapshot.reads_per_sec_during_writes,
        p.mutex_mode.reads_per_sec_during_writes,
        static_cast<unsigned long long>(p.snapshot.mutations),
        static_cast<unsigned long long>(p.mutex_mode.mutations), p.speedup,
        p.total_speedup, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"staleness\": {\"samples\": %llu, "
               "\"epochs_published\": %llu, \"max_epoch_lag\": %llu, "
               "\"lag_zero_fraction\": %.4f}\n}\n",
               static_cast<unsigned long long>(staleness.samples),
               static_cast<unsigned long long>(staleness.epochs_published),
               static_cast<unsigned long long>(staleness.max_epoch_lag),
               static_cast<double>(staleness.lag_zero) /
                   static_cast<double>(staleness.samples));
  if (!writer.Commit()) std::fprintf(stderr, "failed to publish BENCH_catalog.json\n");
  std::printf("\nwrote BENCH_catalog.json\n");
  return 0;
}
