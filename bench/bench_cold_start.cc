// Reproduces the **§5 cold-start analysis**: sandbox provisioning costs
// ≈2 s for the first Python UDF of a session; subsequent queries reuse the
// warm sandbox and the startup cost amortizes. Provisioning latency is
// modeled on a virtual clock (the paper's 2 s), execution work is real.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/platform.h"
#include "udf/builder.h"

namespace lakeguard {
namespace bench {
namespace {

struct ColdStartEnv {
  std::unique_ptr<LakeguardPlatform> platform;
  ClusterHandle* cluster = nullptr;
  ExecutionContext ctx;
};

ColdStartEnv MakeEnv(int64_t cold_start_micros) {
  ColdStartEnv env;
  LakeguardPlatform::Options options;
  options.use_simulated_clock = true;  // virtual time: no real sleeping
  options.sandbox_cold_start_micros = cold_start_micros;
  env.platform = std::make_unique<LakeguardPlatform>(options);
  (void)env.platform->AddUser("admin");
  env.platform->AddMetastoreAdmin("admin");
  (void)env.platform->catalog().CreateCatalog("admin", "main");
  (void)env.platform->catalog().CreateSchema("admin", "main.b");
  env.cluster = env.platform->CreateStandardCluster();
  env.ctx = *env.platform->DirectContext(env.cluster, "admin");
  auto t = env.cluster->engine->ExecuteSql(
      "CREATE TABLE main.b.t (a BIGINT, b BIGINT)", env.ctx);
  auto i = env.cluster->engine->ExecuteSql(
      "INSERT INTO main.b.t VALUES (1, 2), (3, 4)", env.ctx);
  if (!t.ok() || !i.ok()) std::abort();
  FunctionInfo fn;
  fn.full_name = "main.b.f";
  fn.num_args = 2;
  fn.return_type = TypeKind::kInt64;
  fn.body = canned::SumUdf();
  (void)env.platform->catalog().CreateFunction("admin", fn);
  return env;
}

/// Virtual-clock micros consumed by one UDF query.
int64_t VirtualCost(ColdStartEnv* env) {
  int64_t before = env->platform->clock()->NowMicros();
  auto result = env->cluster->engine->ExecuteSql(
      "SELECT main.b.f(a, b) AS s FROM main.b.t", env->ctx);
  if (!result.ok()) std::abort();
  return env->platform->clock()->NowMicros() - before;
}

void PrintColdStartTable() {
  std::printf("=== §5 cold start: sandbox provisioning and amortization ===\n");
  std::printf("(paper: first Python UDF of a session pays <= ~2 s; "
              "later queries reuse the sandbox)\n\n");

  ColdStartEnv env = MakeEnv(2'000'000);
  std::printf("%-28s %14s\n", "query in session", "modeled latency");
  for (int q = 1; q <= 5; ++q) {
    int64_t cost = VirtualCost(&env);
    std::printf("  query %-2d %-17s %11.3f s\n", q,
                q == 1 ? "(cold start)" : "(warm reuse)",
                static_cast<double>(cost) / 1e6);
  }
  DispatcherStats stats =
      env.cluster->cluster->driver_host().dispatcher().stats();
  std::printf("\ndispatcher: %llu cold start(s), %llu reuse(s)\n",
              static_cast<unsigned long long>(stats.cold_starts),
              static_cast<unsigned long long>(stats.reuses));

  // Amortization curve: mean per-query cost over sessions of length N.
  std::printf("\n%-20s %20s\n", "queries per session",
              "mean cost per query");
  for (int n : {1, 2, 5, 10, 50, 100}) {
    ColdStartEnv fresh = MakeEnv(2'000'000);
    int64_t total = 0;
    for (int q = 0; q < n; ++q) total += VirtualCost(&fresh);
    std::printf("%-20d %17.4f s\n", n,
                static_cast<double>(total) / n / 1e6);
  }

  // A second user on the same cluster pays their own cold start (sandboxes
  // are per-session, never shared across identities).
  ColdStartEnv shared = MakeEnv(2'000'000);
  (void)VirtualCost(&shared);
  (void)shared.platform->AddUser("other");
  auto ctx2 = *shared.platform->DirectContext(shared.cluster, "other");
  (void)shared.platform->catalog().Grant("admin", "main",
                                         Privilege::kUseCatalog, "other");
  (void)shared.platform->catalog().Grant("admin", "main.b",
                                         Privilege::kUseSchema, "other");
  (void)shared.platform->catalog().Grant("admin", "main.b.t",
                                         Privilege::kSelect, "other");
  (void)shared.platform->catalog().Grant("admin", "main.b.f",
                                         Privilege::kExecute, "other");
  int64_t before = shared.platform->clock()->NowMicros();
  auto result = shared.cluster->engine->ExecuteSql(
      "SELECT main.b.f(a, b) AS s FROM main.b.t", ctx2);
  int64_t second_user = shared.platform->clock()->NowMicros() - before;
  std::printf("\nsecond user's first UDF on the same cluster: %.3f s "
              "(own sandbox, own cold start: %s)\n",
              static_cast<double>(second_user) / 1e6,
              result.ok() ? "ok" : result.status().ToString().c_str());
}

/// Wall-clock benchmark of the real (non-modeled) provisioning work.
void BM_SandboxProvision(benchmark::State& state) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment host_env(&clock);
  LocalSandboxProvisioner provisioner(&host_env, &clock,
                                      /*cold_start_micros=*/0);
  for (auto _ : state) {
    auto sandbox = provisioner.Provision("owner", SandboxPolicy::LockedDown());
    benchmark::DoNotOptimize(sandbox);
  }
}
BENCHMARK(BM_SandboxProvision);

void BM_DispatcherAcquireWarm(benchmark::State& state) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment host_env(&clock);
  LocalSandboxProvisioner provisioner(&host_env, &clock, 0);
  Dispatcher dispatcher(&provisioner, &clock);
  (void)dispatcher.Acquire("s", "o", SandboxPolicy::LockedDown());
  for (auto _ : state) {
    auto sandbox = dispatcher.Acquire("s", "o", SandboxPolicy::LockedDown());
    benchmark::DoNotOptimize(sandbox);
  }
}
BENCHMARK(BM_DispatcherAcquireWarm);

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  lakeguard::bench::PrintColdStartTable();
  return 0;
}
