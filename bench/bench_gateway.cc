// Gateway resilience benchmark (BENCH_gateway.json).
//
// Opens 10,000 concurrent sessions for 8 tenants across a replica fleet
// (max 2048 sessions per replica -> 5 replicas), then drives query load
// through the gateway in three phases:
//
//   baseline         steady-state routing, no faults
//   replica_kill     one replica is killed mid-run; affected clients must
//                    complete after at most ONE typed retryable error
//   rolling_upgrade  the whole fleet is drained and replaced under load
//                    (live migration of every session)
//
// Each client query makes at most two attempts: one initial try and, if it
// fails with a typed *retryable* status, one retry. Anything else — a
// non-retryable failure, or a second consecutive failure — is a contract
// violation. The bench asserts zero violations and zero lost sessions, and
// reports throughput and p50/p99 latency per phase so the degradation
// during failover and upgrade is visible.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/retry.h"
#include "core/platform.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr size_t kSessions = 10'000;
constexpr size_t kTenants = 8;
constexpr size_t kThreads = 8;
constexpr size_t kQueriesPerThread = 400;

struct PhaseResult {
  std::string name;
  double seconds = 0;
  size_t queries = 0;
  uint64_t retryable_errors = 0;
  uint64_t violations = 0;
  int64_t p50_us = 0;
  int64_t p99_us = 0;
};

int64_t Percentile(std::vector<int64_t>* latencies, double p) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  size_t index = static_cast<size_t>(p * (latencies->size() - 1));
  return (*latencies)[index];
}

/// Runs kThreads workers, each issuing kQueriesPerThread queries against
/// randomly chosen sessions with the two-attempt client contract. Returns
/// latency/violation accounting; `disrupt` (may be empty) runs on the main
/// thread while the workers hammer the gateway.
PhaseResult RunPhase(const std::string& name, LakeguardPlatform* platform,
                     const std::vector<std::string>& sessions,
                     const std::function<void()>& disrupt) {
  std::atomic<uint64_t> retryable{0};
  std::atomic<uint64_t> violations{0};
  std::mutex latency_mu;
  std::vector<int64_t> latencies;
  latencies.reserve(kThreads * kQueriesPerThread);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<int64_t> local;
      local.reserve(kQueriesPerThread);
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const std::string& session = sessions[rng % sessions.size()];
        auto begin = std::chrono::steady_clock::now();
        auto rows = platform->gateway().ExecuteSql(
            session, "SELECT COUNT(*) AS n FROM main.g.t");
        if (!rows.ok()) {
          if (!IsTransientError(rows.status())) {
            // Non-retryable failure: contract broken.
            if (violations++ == 0) {
              std::fprintf(stderr, "violation (non-retryable): %s\n",
                           rows.status().ToString().c_str());
            }
            continue;
          }
          ++retryable;
          rows = platform->gateway().ExecuteSql(
              session, "SELECT COUNT(*) AS n FROM main.g.t");
          if (!rows.ok()) {
            // Second consecutive failure: contract broken.
            if (violations++ == 0) {
              std::fprintf(stderr, "violation (retry failed): %s\n",
                           rows.status().ToString().c_str());
            }
            continue;
          }
        }
        local.push_back(std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - begin)
                            .count());
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  if (disrupt) disrupt();
  for (std::thread& worker : workers) worker.join();

  PhaseResult result;
  result.name = name;
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  result.queries = latencies.size();
  result.retryable_errors = retryable.load();
  result.violations = violations.load();
  result.p50_us = Percentile(&latencies, 0.50);
  result.p99_us = Percentile(&latencies, 0.99);
  return result;
}

void Run() {
  LakeguardPlatform::Options options;
  options.use_simulated_clock = false;
  options.sandbox_cold_start_micros = 0;
  options.gateway_config.max_sessions_per_backend = 2048;
  options.gateway_config.backend_cold_start_micros = 0;
  LakeguardPlatform platform(options);

  (void)platform.AddUser("admin");
  platform.AddMetastoreAdmin("admin");
  platform.RegisterToken("tok-admin", "admin");
  (void)platform.catalog().CreateCatalog("admin", "main");
  (void)platform.catalog().CreateSchema("admin", "main.g");
  ClusterHandle* setup = platform.CreateStandardCluster();
  auto ctx = *platform.DirectContext(setup, "admin");
  auto must = [&](const std::string& sql) {
    auto result = setup->engine->ExecuteSql(sql, ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "setup failed: %s\n  sql: %s\n",
                   result.status().ToString().c_str(), sql.c_str());
      std::abort();
    }
  };
  must("CREATE TABLE main.g.t (x BIGINT)");
  {
    std::string sql = "INSERT INTO main.g.t VALUES ";
    for (int i = 0; i < 100; ++i) {
      if (i > 0) sql += ", ";
      sql += "(" + std::to_string(i) + ")";
    }
    must(sql);
  }
  std::vector<std::string> tokens;
  for (size_t t = 0; t < kTenants; ++t) {
    std::string user = "tenant" + std::to_string(t);
    (void)platform.AddUser(user);
    platform.RegisterToken("tok-" + std::to_string(t), user);
    must("GRANT USE CATALOG ON main TO " + user);
    must("GRANT USE SCHEMA ON main.g TO " + user);
    must("GRANT SELECT ON main.g.t TO " + user);
    tokens.push_back("tok-" + std::to_string(t));
  }

  // ---- Phase 0: open 10k sessions ------------------------------------------
  std::vector<std::string> sessions;
  sessions.reserve(kSessions);
  auto open_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < kSessions; ++i) {
    auto session = platform.gateway().OpenSession(tokens[i % kTenants]);
    if (!session.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   session.status().ToString().c_str());
      std::abort();
    }
    sessions.push_back(*session);
  }
  double open_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - open_start)
                            .count();
  size_t replicas_before = platform.gateway().BackendCount();
  std::printf("opened %zu sessions in %.2fs (%.0f/s) across %zu replicas\n",
              kSessions, open_seconds, kSessions / open_seconds,
              replicas_before);

  // ---- Phase 1: baseline ---------------------------------------------------
  PhaseResult baseline = RunPhase("baseline", &platform, sessions, nullptr);

  // ---- Phase 2: replica kill mid-run ---------------------------------------
  PhaseResult kill = RunPhase(
      "replica_kill", &platform, sessions, [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        std::vector<std::string> ids = platform.gateway().ReplicaIds();
        if (!ids.empty()) (void)platform.gateway().KillReplica(ids[0]);
      });

  // ---- Phase 3: rolling upgrade under load ---------------------------------
  PhaseResult upgrade = RunPhase(
      "rolling_upgrade", &platform, sessions, [&] {
        Status upgraded = platform.gateway().RollingUpgrade();
        if (!upgraded.ok()) {
          std::fprintf(stderr, "rolling upgrade failed: %s\n",
                       upgraded.ToString().c_str());
          std::abort();
        }
      });

  // ---- Verify: zero lost sessions ------------------------------------------
  size_t lost = 0;
  for (const std::string& session : sessions) {
    auto rows = platform.gateway().ExecuteSql(
        session, "SELECT COUNT(*) AS n FROM main.g.t");
    if (!rows.ok() && IsTransientError(rows.status())) {
      rows = platform.gateway().ExecuteSql(
          session, "SELECT COUNT(*) AS n FROM main.g.t");
    }
    if (!rows.ok()) ++lost;
  }
  GatewayStats stats = platform.gateway().stats();

  const PhaseResult* phases[] = {&baseline, &kill, &upgrade};
  for (const PhaseResult* phase : phases) {
    std::printf(
        "%-16s %6zu queries in %6.2fs (%7.0f qps)  p50 %6ld us  p99 %6ld us"
        "  retryable %3lu  violations %lu\n",
        phase->name.c_str(), phase->queries, phase->seconds,
        phase->queries / phase->seconds,
        static_cast<long>(phase->p50_us), static_cast<long>(phase->p99_us),
        static_cast<unsigned long>(phase->retryable_errors),
        static_cast<unsigned long>(phase->violations));
  }
  std::printf(
      "migrations %lu  failovers %lu  mid-call retryables %lu  "
      "drains %lu  lost sessions %zu\n",
      static_cast<unsigned long>(stats.migrations),
      static_cast<unsigned long>(stats.failovers),
      static_cast<unsigned long>(stats.lost_placement_errors),
      static_cast<unsigned long>(stats.drains_completed),
      lost);

  bench::AtomicJsonWriter writer("BENCH_gateway.json");
  FILE* f = writer.file();
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"sessions\": %zu,\n", kSessions);
    std::fprintf(f, "  \"tenants\": %zu,\n", kTenants);
    std::fprintf(f, "  \"replicas_initial\": %zu,\n", replicas_before);
    std::fprintf(f, "  \"open_seconds\": %.3f,\n", open_seconds);
    std::fprintf(f, "  \"open_sessions_per_sec\": %.0f,\n",
                 kSessions / open_seconds);
    std::fprintf(f, "  \"phases\": {\n");
    for (size_t i = 0; i < 3; ++i) {
      const PhaseResult& phase = *phases[i];
      std::fprintf(f,
                   "    \"%s\": {\"queries\": %zu, \"seconds\": %.3f, "
                   "\"qps\": %.0f, \"p50_us\": %ld, \"p99_us\": %ld, "
                   "\"retryable_errors\": %lu, \"violations\": %lu}%s\n",
                   phase.name.c_str(), phase.queries, phase.seconds,
                   phase.queries / phase.seconds,
                   static_cast<long>(phase.p50_us),
                   static_cast<long>(phase.p99_us),
                   static_cast<unsigned long>(phase.retryable_errors),
                   static_cast<unsigned long>(phase.violations),
                   i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"migrations\": %lu,\n",
                 static_cast<unsigned long>(stats.migrations));
    std::fprintf(f, "  \"failovers\": %lu,\n",
                 static_cast<unsigned long>(stats.failovers));
    std::fprintf(f, "  \"mid_call_retryables\": %lu,\n",
                 static_cast<unsigned long>(stats.lost_placement_errors));
    std::fprintf(f, "  \"rolling_upgrades\": %lu,\n",
                 static_cast<unsigned long>(stats.rolling_upgrades));
    std::fprintf(f, "  \"lost_sessions\": %zu\n", lost);
    std::fprintf(f, "}\n");
    if (!writer.Commit()) {
      std::fprintf(stderr, "failed to publish BENCH_gateway.json\n");
    }
  }

  if (lost != 0 || baseline.violations != 0 || kill.violations != 0 ||
      upgrade.violations != 0) {
    std::fprintf(stderr, "RESILIENCE CONTRACT VIOLATED\n");
    std::abort();
  }
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main() {
  lakeguard::bench::Run();
  return 0;
}
