// Cancellation & circuit-breaker benchmark.
//
// Part 1 (wall clock): cancel latency of the streaming pipeline. A query
// over 100k rows is started, one batch is pulled, then the stream is
// cancelled — the measured latency is Cancel() plus the one pull that
// returns the typed status, i.e. the real time between "user hits cancel"
// and "the query is gone and its resources are free". Compared against
// draining the same query to completion, across batch sizes: cancellation
// cost is O(one batch), drain cost is O(result).
//
// Part 2 (virtual clock): cold-start cost saved by the per-trust-domain
// circuit breaker. A trust domain whose UDF crashes its sandbox on every
// batch is dispatched to N times. Without a breaker every attempt burns a
// full 2 s modeled cold start; with the breaker (threshold 3) only the
// first three do, and the rest fail fast without a provisioner call.
//
// Results are printed and written to BENCH_cancel.json.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "sandbox/dispatcher.h"

namespace lakeguard {
namespace bench {
namespace {

constexpr int kReps = 5;

struct CancelMeasurement {
  size_t batch_size = 0;
  double cancel_seconds = 0;  // Cancel() + the pull returning the status
  double drain_seconds = 0;   // pulling the same query to completion
  uint64_t rows_total = 0;
};

CancelMeasurement MeasureCancel(BenchEnv* env, size_t batch_size,
                                const std::string& sql) {
  QueryEngineConfig config = env->cluster->engine->config();
  config.exec.batch_size = batch_size;
  env->cluster->engine->set_config(config);

  CancelMeasurement m;
  m.batch_size = batch_size;
  for (int rep = 0; rep < kReps; ++rep) {
    // Cancel after the first batch.
    auto stream = env->cluster->engine->ExecuteSqlStreaming(sql, env->ctx);
    if (!stream.ok()) std::abort();
    if (!(*stream)->Next().ok()) std::abort();
    auto start = std::chrono::steady_clock::now();
    (*stream)->Cancel("bench cancel");
    auto status = (*stream)->Next().status();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (!status.IsCancelled()) std::abort();
    if (rep == 0 || secs < m.cancel_seconds) m.cancel_seconds = secs;

    // Drain to completion for comparison.
    auto full = env->cluster->engine->ExecuteSqlStreaming(sql, env->ctx);
    if (!full.ok()) std::abort();
    start = std::chrono::steady_clock::now();
    uint64_t rows = 0;
    while (true) {
      auto batch = (*full)->Next();
      if (!batch.ok() || !batch->has_value()) break;
      rows += (*batch)->num_rows();
    }
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    if (rep == 0 || secs < m.drain_seconds) m.drain_seconds = secs;
    m.rows_total = rows;
  }
  return m;
}

struct BreakerMeasurement {
  std::string name;
  int attempts = 0;
  uint64_t cold_starts = 0;
  uint64_t fast_fails = 0;
  int64_t clock_micros = 0;  // modeled time burned by the attempts
};

/// Dispatches `attempts` times to a trust domain whose sandbox crashes on
/// every batch, under the given breaker threshold. Returns what it cost.
BreakerMeasurement MeasureBreaker(const std::string& name, int attempts,
                                  int failure_threshold) {
  SimulatedClock clock(0);
  SimulatedHostEnvironment env(&clock);
  LocalSandboxProvisioner provisioner(&env, &clock);  // 2 s cold start
  Dispatcher dispatcher(&provisioner, &clock);
  BreakerConfig breaker;
  breaker.failure_threshold = failure_threshold;
  dispatcher.set_breaker_config(breaker);

  TableBuilder builder(Schema({{"a0", TypeKind::kInt64, true},
                               {"a1", TypeKind::kInt64, true}}));
  (void)builder.AppendRow({Value::Int(1), Value::Int(2)});
  RecordBatch args = *builder.Build().Combine();
  UdfInvocation inv;
  inv.bytecode = canned::SumUdf();
  inv.arg_indices = {0, 1};
  inv.result_name = "sum";
  inv.result_type = TypeKind::kInt64;

  FaultInjector::Instance().Reset();
  FaultInjector::Instance().Reseed(23);
  ScopedFault crash("sandbox.crash",
                    FaultPolicy::FailTimes(static_cast<uint64_t>(attempts)));
  int64_t start_micros = clock.NowMicros();
  for (int i = 0; i < attempts; ++i) {
    (void)dispatcher.Dispatch("bench-sess", "crashy-owner",
                              SandboxPolicy::LockedDown(), args, {inv});
  }
  BreakerMeasurement m;
  m.name = name;
  m.attempts = attempts;
  m.cold_starts = dispatcher.stats().cold_starts;
  m.fast_fails = dispatcher.stats().breaker_fast_fails;
  m.clock_micros = clock.NowMicros() - start_micros;
  FaultInjector::Instance().Reset();
  return m;
}

void Report(const std::vector<CancelMeasurement>& cancels,
            const std::vector<BreakerMeasurement>& breakers) {
  std::printf("%-12s %14s %14s %12s\n", "batch_size", "cancel (s)",
              "drain (s)", "rows");
  for (const CancelMeasurement& m : cancels) {
    std::printf("%-12zu %14.6f %14.6f %12llu\n", m.batch_size,
                m.cancel_seconds, m.drain_seconds,
                static_cast<unsigned long long>(m.rows_total));
  }
  std::printf("\n%-28s %10s %12s %12s %16s\n", "breaker case", "attempts",
              "cold starts", "fast fails", "clock micros");
  for (const BreakerMeasurement& m : breakers) {
    std::printf("%-28s %10d %12llu %12llu %16lld\n", m.name.c_str(),
                m.attempts, static_cast<unsigned long long>(m.cold_starts),
                static_cast<unsigned long long>(m.fast_fails),
                static_cast<long long>(m.clock_micros));
  }

  bench::AtomicJsonWriter writer("BENCH_cancel.json");
  FILE* f = writer.file();
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"cancellation\",\n");
  std::fprintf(f, "  \"cancel_latency\": [\n");
  for (size_t i = 0; i < cancels.size(); ++i) {
    const CancelMeasurement& m = cancels[i];
    std::fprintf(f,
                 "    {\"batch_size\": %zu, \"cancel_seconds\": %.6f, "
                 "\"drain_seconds\": %.6f, \"rows\": %llu}%s\n",
                 m.batch_size, m.cancel_seconds, m.drain_seconds,
                 static_cast<unsigned long long>(m.rows_total),
                 i + 1 < cancels.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"breaker_savings\": [\n");
  for (size_t i = 0; i < breakers.size(); ++i) {
    const BreakerMeasurement& m = breakers[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"attempts\": %d, "
                 "\"cold_starts\": %llu, \"fast_fails\": %llu, "
                 "\"clock_micros\": %lld}%s\n",
                 m.name.c_str(), m.attempts,
                 static_cast<unsigned long long>(m.cold_starts),
                 static_cast<unsigned long long>(m.fast_fails),
                 static_cast<long long>(m.clock_micros),
                 i + 1 < breakers.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  if (!writer.Commit()) std::fprintf(stderr, "failed to publish BENCH_cancel.json\n");
  std::printf("\nwrote BENCH_cancel.json\n");
}

}  // namespace
}  // namespace bench
}  // namespace lakeguard

int main() {
  using namespace lakeguard;
  using namespace lakeguard::bench;

  constexpr size_t kRows = 100000;
  BenchEnv env = MakeBenchEnv({}, kRows);
  const std::string sql =
      "SELECT a + b AS v, s FROM main.b.data WHERE a % 10 <> 0";

  std::vector<CancelMeasurement> cancels;
  for (size_t batch_size : {256u, 1024u, 4096u}) {
    cancels.push_back(MeasureCancel(&env, batch_size, sql));
  }

  std::vector<BreakerMeasurement> breakers;
  breakers.push_back(
      MeasureBreaker("breaker disabled", /*attempts=*/20,
                     /*failure_threshold=*/1 << 30));
  breakers.push_back(
      MeasureBreaker("breaker threshold=3", /*attempts=*/20,
                     /*failure_threshold=*/3));

  Report(cancels, breakers);
  return 0;
}
