#ifndef LAKEGUARD_UDF_VERIFIER_FUSED_CHECK_H_
#define LAKEGUARD_UDF_VERIFIER_FUSED_CHECK_H_

#include "common/status.h"
#include "expr/compiler/program.h"

namespace lakeguard {

/// Structural verification of a compiled (fused) policy program — the
/// FusedKernel leg of the bytecode verifier. Where PV007's three-check
/// equivalence argument establishes the program computes the *right thing*,
/// this pass establishes the program is *safe to run at all*, even if the
/// equivalence machinery (decompiler, tree comparator) were itself wrong:
///   - register discipline: every dst is in range and every operand register
///     was written by an earlier instruction (the compiler's forward-sweep
///     contract), so RunProgram never reads an uninitialized column;
///   - no host escape: kCall may only name resolvable engine builtins — the
///     fused ISA has no host-call opcode, and this pins the one indirect
///     door shut;
///   - input discipline: kLoadColumn indices stay inside the scan schema;
///   - output discipline: the result register is written, and the last write
///     to it carries the program's declared output type.
///
/// Returns typed kInvalidArgument naming the offending instruction; the
/// caller (PV007) wraps it into a diagnostic and falls back to interpreted
/// evaluation.
Status VerifyCompiledProgram(const CompiledExpr& program);

}  // namespace lakeguard

#endif  // LAKEGUARD_UDF_VERIFIER_FUSED_CHECK_H_
