#include "udf/verifier/fused_check.h"

#include <string>
#include <vector>

#include "expr/functions.h"

namespace lakeguard {
namespace {

Status FusedError(size_t index, const std::string& what) {
  return Status::InvalidArgument("fused program verifier: instruction " +
                                 std::to_string(index) + ": " + what);
}

}  // namespace

Status VerifyCompiledProgram(const CompiledExpr& program) {
  if (program.instrs.empty()) {
    return Status::InvalidArgument("fused program verifier: empty program");
  }
  if (program.num_regs == 0 || program.result_reg >= program.num_regs) {
    return Status::InvalidArgument(
        "fused program verifier: result register " +
        std::to_string(program.result_reg) + " outside the register file of " +
        std::to_string(program.num_regs));
  }
  std::vector<char> written(program.num_regs, 0);
  TypeKind result_type = TypeKind::kNull;
  bool result_written = false;

  auto check_operand = [&](uint16_t reg, size_t index,
                           const char* role) -> Status {
    if (reg >= program.num_regs) {
      return FusedError(index, std::string(role) + " register " +
                                   std::to_string(reg) + " out of range");
    }
    if (!written[reg]) {
      return FusedError(index, std::string(role) + " register " +
                                   std::to_string(reg) +
                                   " read before it is written");
    }
    return Status::OK();
  };

  for (size_t i = 0; i < program.instrs.size(); ++i) {
    const FusedInstruction& ins = program.instrs[i];
    if (ins.dst >= program.num_regs) {
      return FusedError(i, "destination register " + std::to_string(ins.dst) +
                               " out of range");
    }
    switch (ins.op) {
      case FusedOpCode::kLoadColumn:
        if (ins.column_index < 0 ||
            static_cast<size_t>(ins.column_index) >=
                program.input_schema.num_fields()) {
          return FusedError(i, "column index " +
                                   std::to_string(ins.column_index) +
                                   " outside the input schema");
        }
        break;
      case FusedOpCode::kLoadConst:
        break;
      case FusedOpCode::kBinary:
        LG_RETURN_IF_ERROR(check_operand(ins.a, i, "left operand"));
        if (ins.b != kNoReg) {
          LG_RETURN_IF_ERROR(check_operand(ins.b, i, "right operand"));
        }
        break;
      case FusedOpCode::kUnary:
      case FusedOpCode::kIsNull:
      case FusedOpCode::kIn:
      case FusedOpCode::kLike:
      case FusedOpCode::kCast:
        LG_RETURN_IF_ERROR(check_operand(ins.a, i, "operand"));
        break;
      case FusedOpCode::kCase: {
        if (ins.args.empty() || ins.args.size() % 2 != 0) {
          return FusedError(i, "CASE needs non-empty condition/value pairs");
        }
        for (uint16_t reg : ins.args) {
          LG_RETURN_IF_ERROR(check_operand(reg, i, "CASE operand"));
        }
        if (ins.b != kNoReg) {
          LG_RETURN_IF_ERROR(check_operand(ins.b, i, "ELSE operand"));
        }
        break;
      }
      case FusedOpCode::kCall: {
        // The fused ISA has no host opcode; the only indirect call door is
        // the builtin table. An unresolvable name is a host-escape attempt
        // (or corruption), not a fallback-to-interpreter situation.
        if (!LookupBuiltin(ins.name).ok()) {
          return FusedError(i, "call to unknown builtin '" + ins.name + "'");
        }
        for (uint16_t reg : ins.args) {
          LG_RETURN_IF_ERROR(check_operand(reg, i, "call argument"));
        }
        break;
      }
    }
    written[ins.dst] = 1;
    if (ins.dst == program.result_reg) {
      result_written = true;
      result_type = ins.out_type;
    }
  }
  if (!result_written) {
    return Status::InvalidArgument(
        "fused program verifier: result register is never written");
  }
  if (result_type != program.out_type) {
    return Status::InvalidArgument(
        std::string("fused program verifier: result register carries ") +
        TypeKindName(result_type) + " but the program declares " +
        TypeKindName(program.out_type));
  }
  return Status::OK();
}

}  // namespace lakeguard
