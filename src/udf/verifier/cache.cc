#include "udf/verifier/cache.h"

#include "common/sha256.h"

namespace lakeguard {

Result<UdfCertificate> VerifiedProgramCache::GetOrVerify(const UdfBytecode& bc,
                                                         bool* cache_hit) {
  const std::string hash = ProgramSha256(bc);
  Shard& shard = shards_[Fnv1a64(hash) % kShards];
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(hash);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) *cache_hit = true;
      if (!it->second.status.ok()) return it->second.status;
      return it->second.cert;
    }
  }
  // Verify outside the shard lock: two racing misses on the same hash both
  // verify and insert the same (deterministic) outcome — harmless.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) *cache_hit = false;
  Result<UdfCertificate> verified = VerifyBytecode(bc);
  Entry entry;
  if (verified.ok()) {
    entry.cert = *verified;
    // GetOrVerify hashes the caller's bytes; a cached certificate must carry
    // the same identity even if VerifyBytecode ever changed its hashing.
    entry.cert.program_sha256 = hash;
  } else {
    entry.status = verified.status();
  }
  {
    MutexLock lock(shard.mu);
    shard.entries[hash] = std::move(entry);
  }
  if (!verified.ok()) return verified.status();
  UdfCertificate cert = *verified;
  cert.program_sha256 = hash;
  return cert;
}

VerifierCacheStats VerifiedProgramCache::stats() const {
  VerifierCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    stats.entries += shard.entries.size();
  }
  return stats;
}

void VerifiedProgramCache::Clear() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.entries.clear();
  }
}

VerifiedProgramCache* VerifiedProgramCache::Global() {
  static VerifiedProgramCache* instance = new VerifiedProgramCache();
  return instance;
}

}  // namespace lakeguard
