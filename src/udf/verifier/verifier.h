#ifndef LAKEGUARD_UDF_VERIFIER_VERIFIER_H_
#define LAKEGUARD_UDF_VERIFIER_VERIFIER_H_

#include <cstdint>
#include <string>

#include "sandbox/policy.h"
#include "udf/bytecode.h"

namespace lakeguard {

/// Sentinel worst-case cost for programs whose instruction count cannot be
/// bounded statically (a reachable back edge / loop).
inline constexpr int64_t kUnboundedCost = -1;

/// The result of statically verifying one LGVM program — the admission
/// ticket the dispatcher and PlanVerifier check against a concrete trust
/// domain. Everything in here is *policy-independent*: it describes what the
/// program could do on some execution, not whether any particular sandbox
/// would allow it. That split is what makes certificates cacheable by
/// program hash alone — one verification serves every (session, policy)
/// pair that ships the same bytecode.
struct UdfCertificate {
  /// Hex SHA-256 of the serialized program (the cache key).
  std::string program_sha256;
  /// Program name (diagnostics only).
  std::string name;
  uint32_t num_args = 0;

  /// Bitmask over `HostFn` ids of host calls on some statically reachable
  /// path. A program that *could* call write_file is flagged here even if
  /// no run ever takes that branch — admission is possibilistic (§2.4).
  uint32_t reachable_hosts = 0;

  /// Conservative upper bound on executed instructions, or kUnboundedCost
  /// when a reachable back edge makes the count input-dependent.
  int64_t worst_case_cost = 0;

  /// True when no reachable path ends in kReturn: every execution either
  /// loops forever or traps. Such a program can never produce a value and
  /// is rejected at admission (it could only ever burn fuel).
  bool guaranteed_divergent = false;

  /// Maximum abstract operand-stack height over all reachable paths. Sound
  /// because verification requires consistent stack heights at joins, so
  /// loops cannot grow the stack.
  uint32_t max_stack_height = 0;

  /// Bit i set when argument i can flow into an exfiltration-capable host
  /// sink (write_file or http_get) without passing through kSha256
  /// declassification. Arguments ≥ 63 share the top bit (conservative).
  uint64_t tainted_sink_args = 0;

  /// True when the given argument position carries taint into a sink.
  bool ArgFlowsToSink(uint32_t arg) const {
    return (tainted_sink_args & ArgTaintBit(arg)) != 0;
  }

  /// Taint-lattice bit for argument `arg` (args ≥ 63 collapse to one bit).
  static uint64_t ArgTaintBit(uint32_t arg) {
    return arg < 63 ? (uint64_t{1} << arg) : (uint64_t{1} << 63);
  }
};

/// Hex SHA-256 of the wire encoding of `bc` — the identity under which
/// certificates are cached and PV008 matches plans to verified programs.
std::string ProgramSha256(const UdfBytecode& bc);

/// Statically verifies one LGVM program by forward abstract interpretation
/// and returns its certificate. Five passes over one fixpoint:
///   1. structure/CFG — opcode operand bounds, jump targets on instruction
///      boundaries, const/arg/local indices in range, no reachable path
///      falls off the end of code, kCallHost arity matches the host ABI;
///   2. stack effect + types — stack heights meet consistently at joins,
///      each opcode's operands can satisfy its dynamic checks (type lattice
///      Bottom < {null,bool,int,double,string,binary} < Any), kReturn pops
///      a value that exists;
///   3. capabilities — the reachable HostFn set (recorded, checked at
///      admission against the trust domain's policy);
///   4. termination/cost — back-edge detection plus a worst-case
///      instruction bound over the acyclic remainder (recorded; checked
///      against the domain's fuel at admission);
///   5. taint — arguments are sources, write_file/http_get call arguments
///      are sinks, kSha256 declassifies (recorded per-arg; bound to
///      protected columns at admission).
///
/// Rejection (typed kInvalidArgument) means the program is *malformed* —
/// some execution would hit a VM integrity trap. Programs that merely need
/// capabilities, loop forever, or move tainted data verify fine here; those
/// are policy questions answered by `AdmitCertificate` at admission time.
Result<UdfCertificate> VerifyBytecode(const UdfBytecode& bc);

/// Admission check of a certificate against one trust domain's sandbox
/// policy: typed rejection *before* any sandbox is provisioned.
///   - guaranteed divergence        -> kInvalidArgument (can never succeed);
///   - reachable host not granted   -> kPermissionDenied;
///   - tainted arg reaches a sink   -> kPermissionDenied (`tainted_args` is
///     the caller's bitmask of which argument positions are bound to
///     masked/filter-protected columns, in UdfCertificate::ArgTaintBit
///     positions);
///   - finite worst-case cost over the domain's fuel, or stack need over
///     its stack limit           -> kResourceExhausted (retryable: a larger
///     budget could admit it, mirroring the oversized-batch contract).
Status AdmitCertificate(const UdfCertificate& cert, const SandboxPolicy& policy,
                        uint64_t tainted_args);

}  // namespace lakeguard

#endif  // LAKEGUARD_UDF_VERIFIER_VERIFIER_H_
