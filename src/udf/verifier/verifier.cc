#include "udf/verifier/verifier.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "common/sha256.h"

namespace lakeguard {
namespace {

// ---------------------------------------------------------------------------
// Abstract domains.
//
// Types form a may-set lattice: a slot's mask holds every concrete type the
// value could have on some path. Bottom (0) never reaches a pushed slot;
// kTAny is the top. Joins are bitwise OR, so the fixpoint is monotone and
// terminates (finite lattice, fixed stack heights).
// ---------------------------------------------------------------------------

enum : uint8_t {
  kTNull = 1,
  kTBool = 2,
  kTInt = 4,
  kTDouble = 8,
  kTString = 16,
  kTBinary = 32,
  kTAny = 63,
};

/// Types Value::AsDouble accepts (plus null, which arith propagates).
constexpr uint8_t kTNumericish = kTNull | kTBool | kTInt | kTDouble;
/// Types AsCondition accepts (null coerces to false).
constexpr uint8_t kTConditionish = kTNull | kTBool | kTInt;

uint8_t TypeMaskOf(const Value& v) {
  if (v.is_null()) return kTNull;
  if (v.is_bool()) return kTBool;
  if (v.is_int()) return kTInt;
  if (v.is_double()) return kTDouble;
  if (v.is_binary()) return kTBinary;
  return kTString;
}

/// One abstract stack/local slot: what the value could be, and which
/// arguments it could carry information from.
struct Slot {
  uint8_t type = kTAny;
  uint64_t taint = 0;
};

struct AbsState {
  std::vector<Slot> stack;
  std::vector<Slot> locals;
};

/// Joins `from` into `into`. Heights must already have been checked equal.
/// Returns true when `into` changed (the join gained types or taints).
bool JoinInto(AbsState* into, const AbsState& from) {
  bool changed = false;
  for (size_t i = 0; i < into->stack.size(); ++i) {
    Slot& s = into->stack[i];
    const Slot& f = from.stack[i];
    if ((f.type & ~s.type) != 0 || (f.taint & ~s.taint) != 0) changed = true;
    s.type |= f.type;
    s.taint |= f.taint;
  }
  for (size_t i = 0; i < into->locals.size(); ++i) {
    Slot& s = into->locals[i];
    const Slot& f = from.locals[i];
    if ((f.type & ~s.type) != 0 || (f.taint & ~s.taint) != 0) changed = true;
    s.type |= f.type;
    s.taint |= f.taint;
  }
  return changed;
}

/// Host ABI the VM's SandboxHost enforces at run time: exact arity and the
/// type of the value a successful call pushes.
struct HostSig {
  uint32_t argc;
  uint8_t result_type;
};

Result<HostSig> HostSignature(HostFn fn) {
  switch (fn) {
    case HostFn::kReadFile:
      return HostSig{1, kTString};
    case HostFn::kWriteFile:
      return HostSig{2, kTBool};
    case HostFn::kHttpGet:
      return HostSig{1, kTString};
    case HostFn::kGetEnv:
      return HostSig{1, kTString};
    case HostFn::kClockNow:
      return HostSig{0, kTInt};
    case HostFn::kLog:
      return HostSig{1, kTNull};
  }
  return Status::InvalidArgument("unknown host function id");
}

/// True when the host function can move data out of the sandbox — the taint
/// sinks of the information-flow pass (§2.4 file escape, Fig. 6 egress).
bool IsExfiltrationSink(HostFn fn) {
  return fn == HostFn::kWriteFile || fn == HostFn::kHttpGet;
}

Status VerifierError(const UdfBytecode& bc, size_t pc, const std::string& what) {
  return Status::InvalidArgument("bytecode verifier: UDF '" + bc.name + "': " +
                                 what + " at pc " + std::to_string(pc));
}

/// Successor pcs of a (already structurally validated) instruction. kReturn
/// has none; jumps go where they point; everything else falls through.
void Successors(const Instruction& ins, size_t pc, size_t out[2], size_t* n) {
  *n = 0;
  switch (ins.op) {
    case OpCode::kReturn:
      break;
    case OpCode::kJump:
      out[(*n)++] = static_cast<size_t>(ins.operand);
      break;
    case OpCode::kJumpIfFalse:
      out[(*n)++] = static_cast<size_t>(ins.operand);
      out[(*n)++] = pc + 1;
      break;
    default:
      out[(*n)++] = pc + 1;
      break;
  }
}

}  // namespace

std::string ProgramSha256(const UdfBytecode& bc) {
  ByteWriter writer;
  SerializeBytecode(bc, &writer);
  return Sha256::HexDigest(std::string_view(
      reinterpret_cast<const char*>(writer.data().data()), writer.size()));
}

Result<UdfCertificate> VerifyBytecode(const UdfBytecode& bc) {
  // Pass 1a: the structural baseline the serde layer already demands
  // (operand/jump/index bounds, at least one return somewhere).
  LG_RETURN_IF_ERROR(ValidateBytecode(bc));
  // Pass 1b: exact host-call arity. ValidateBytecode tolerates any argc in
  // [0,8]; the VM's host would trap at run time, so the verifier pins the
  // ABI statically — VM and verifier must agree on what "invalid" means.
  const size_t n = bc.code.size();
  for (size_t pc = 0; pc < n; ++pc) {
    const Instruction& ins = bc.code[pc];
    if (ins.op != OpCode::kCallHost) continue;
    LG_ASSIGN_OR_RETURN(HostSig sig,
                        HostSignature(static_cast<HostFn>(ins.operand)));
    if (static_cast<uint32_t>(ins.operand2) != sig.argc) {
      return VerifierError(
          bc, pc,
          std::string("host call '") +
              HostFnName(static_cast<HostFn>(ins.operand)) + "' takes " +
              std::to_string(sig.argc) + " args, program pops " +
              std::to_string(ins.operand2));
    }
  }

  UdfCertificate cert;
  cert.program_sha256 = ProgramSha256(bc);
  cert.name = bc.name;
  cert.num_args = bc.num_args;

  // Passes 2–5 share one forward abstract-interpretation fixpoint: per-pc
  // in-states over the type×taint slot lattice, worklist-driven.
  std::vector<std::optional<AbsState>> in(n);
  std::vector<char> reachable(n, 0);
  std::deque<size_t> worklist;
  {
    AbsState entry;
    entry.locals.assign(bc.num_locals, Slot{kTNull, 0});
    in[0] = std::move(entry);
    worklist.push_back(0);
  }
  bool return_reachable = false;
  bool has_back_edge = false;
  uint32_t max_height = 0;

  auto pop = [&](AbsState* st, size_t pc) -> Result<Slot> {
    if (st->stack.empty()) {
      return VerifierError(bc, pc, "stack underflow");
    }
    Slot s = st->stack.back();
    st->stack.pop_back();
    return s;
  };

  while (!worklist.empty()) {
    const size_t pc = worklist.front();
    worklist.pop_front();
    reachable[pc] = 1;
    AbsState st = *in[pc];
    const Instruction& ins = bc.code[pc];

    switch (ins.op) {
      case OpCode::kPushConst:
        st.stack.push_back(
            Slot{TypeMaskOf(bc.const_pool[static_cast<size_t>(ins.operand)]),
                 0});
        break;
      case OpCode::kLoadArg:
        st.stack.push_back(Slot{
            kTAny,
            UdfCertificate::ArgTaintBit(static_cast<uint32_t>(ins.operand))});
        break;
      case OpCode::kLoadLocal:
        st.stack.push_back(st.locals[static_cast<size_t>(ins.operand)]);
        break;
      case OpCode::kStoreLocal: {
        LG_ASSIGN_OR_RETURN(Slot v, pop(&st, pc));
        st.locals[static_cast<size_t>(ins.operand)] = v;
        break;
      }
      case OpCode::kDup: {
        if (st.stack.empty()) return VerifierError(bc, pc, "stack underflow");
        st.stack.push_back(st.stack.back());
        break;
      }
      case OpCode::kPop: {
        LG_ASSIGN_OR_RETURN(Slot v, pop(&st, pc));
        (void)v;
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMod: {
        LG_ASSIGN_OR_RETURN(Slot b, pop(&st, pc));
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        // Null propagates before coercion, so one stringy operand is only a
        // *definite* error when the other can never be null either.
        if ((a.type & kTNumericish) == 0 && (b.type & kTNull) == 0) {
          return VerifierError(bc, pc, "arithmetic on a non-numeric operand");
        }
        if ((b.type & kTNumericish) == 0 && (a.type & kTNull) == 0) {
          return VerifierError(bc, pc, "arithmetic on a non-numeric operand");
        }
        st.stack.push_back(
            Slot{kTNull | kTInt | kTDouble, a.taint | b.taint});
        break;
      }
      case OpCode::kNeg: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        if ((a.type & kTNumericish) == 0) {
          return VerifierError(bc, pc, "negation of a non-numeric operand");
        }
        st.stack.push_back(Slot{kTNull | kTInt | kTDouble, a.taint});
        break;
      }
      case OpCode::kEq:
      case OpCode::kNe:
      case OpCode::kLt:
      case OpCode::kLe:
      case OpCode::kGt:
      case OpCode::kGe: {
        LG_ASSIGN_OR_RETURN(Slot b, pop(&st, pc));
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        st.stack.push_back(Slot{kTNull | kTBool, a.taint | b.taint});
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        LG_ASSIGN_OR_RETURN(Slot b, pop(&st, pc));
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        if ((a.type & kTConditionish) == 0 || (b.type & kTConditionish) == 0) {
          return VerifierError(bc, pc, "logical operand is not boolean-like");
        }
        st.stack.push_back(Slot{kTBool, a.taint | b.taint});
        break;
      }
      case OpCode::kNot: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        if ((a.type & kTConditionish) == 0) {
          return VerifierError(bc, pc, "logical operand is not boolean-like");
        }
        st.stack.push_back(Slot{kTBool, a.taint});
        break;
      }
      case OpCode::kConcat: {
        LG_ASSIGN_OR_RETURN(Slot b, pop(&st, pc));
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        st.stack.push_back(Slot{kTString, a.taint | b.taint});
        break;
      }
      case OpCode::kSha256: {
        // Declassification: a digest is the membrane baseline's sanctioned
        // one-way exit from the taint lattice.
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        (void)a;
        st.stack.push_back(Slot{kTString, 0});
        break;
      }
      case OpCode::kToString: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        st.stack.push_back(Slot{kTString, a.taint});
        break;
      }
      case OpCode::kToInt: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        st.stack.push_back(Slot{kTNull | kTInt, a.taint});
        break;
      }
      case OpCode::kToDouble: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        st.stack.push_back(Slot{kTNull | kTDouble, a.taint});
        break;
      }
      case OpCode::kLength: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        st.stack.push_back(Slot{kTNull | kTInt, a.taint});
        break;
      }
      case OpCode::kJump:
        break;
      case OpCode::kJumpIfFalse: {
        LG_ASSIGN_OR_RETURN(Slot a, pop(&st, pc));
        if ((a.type & kTConditionish) == 0) {
          return VerifierError(bc, pc, "branch condition is not boolean-like");
        }
        break;
      }
      case OpCode::kCallHost: {
        const HostFn fn = static_cast<HostFn>(ins.operand);
        LG_ASSIGN_OR_RETURN(HostSig sig, HostSignature(fn));
        if (st.stack.size() < sig.argc) {
          return VerifierError(bc, pc, "stack underflow in host call");
        }
        uint64_t arg_taint = 0;
        for (uint32_t i = 0; i < sig.argc; ++i) {
          arg_taint |= st.stack.back().taint;
          st.stack.pop_back();
        }
        cert.reachable_hosts |= uint32_t{1} << static_cast<uint32_t>(fn);
        if (IsExfiltrationSink(fn)) cert.tainted_sink_args |= arg_taint;
        st.stack.push_back(Slot{sig.result_type, 0});
        break;
      }
      case OpCode::kReturn: {
        if (st.stack.empty()) {
          return VerifierError(bc, pc, "return with an empty stack");
        }
        return_reachable = true;
        break;
      }
    }

    max_height = std::max(max_height, static_cast<uint32_t>(st.stack.size()));

    size_t succ[2];
    size_t n_succ = 0;
    Successors(ins, pc, succ, &n_succ);
    for (size_t i = 0; i < n_succ; ++i) {
      const size_t to = succ[i];
      if (to >= n) {
        // A reachable path runs past the last instruction — the VM's
        // "fell off the end" trap, caught at admission instead.
        return VerifierError(bc, pc, "execution can fall off the end of code");
      }
      if (to <= pc) has_back_edge = true;
      if (!in[to].has_value()) {
        in[to] = st;
        worklist.push_back(to);
      } else {
        if (in[to]->stack.size() != st.stack.size()) {
          return VerifierError(
              bc, to,
              "inconsistent stack height at join (" +
                  std::to_string(in[to]->stack.size()) + " vs " +
                  std::to_string(st.stack.size()) + ")");
        }
        if (JoinInto(&*in[to], st)) worklist.push_back(to);
      }
    }
  }

  cert.guaranteed_divergent = !return_reachable;
  cert.max_stack_height = max_height;

  if (has_back_edge) {
    cert.worst_case_cost = kUnboundedCost;
  } else {
    // Reachable code is acyclic: the worst-case executed-instruction count
    // is the longest path from the entry, by memoized DFS.
    std::vector<int64_t> memo(n, -1);
    // Iterative post-order to stay stack-safe on long programs.
    std::vector<std::pair<size_t, int>> dfs;
    dfs.emplace_back(0, 0);
    while (!dfs.empty()) {
      auto& [pc, phase] = dfs.back();
      if (memo[pc] >= 0) {
        dfs.pop_back();
        continue;
      }
      if (phase == 0) {
        phase = 1;
        size_t succ[2];
        size_t n_succ = 0;
        Successors(bc.code[pc], pc, succ, &n_succ);
        for (size_t i = 0; i < n_succ; ++i) {
          if (memo[succ[i]] < 0) dfs.emplace_back(succ[i], 0);
        }
      } else {
        size_t succ[2];
        size_t n_succ = 0;
        Successors(bc.code[pc], pc, succ, &n_succ);
        int64_t best = 0;
        for (size_t i = 0; i < n_succ; ++i) {
          best = std::max(best, memo[succ[i]]);
        }
        memo[pc] = best + 1;
        dfs.pop_back();
      }
    }
    cert.worst_case_cost = memo[0];
  }
  return cert;
}

Status AdmitCertificate(const UdfCertificate& cert, const SandboxPolicy& policy,
                        uint64_t tainted_args) {
  if (cert.guaranteed_divergent) {
    return Status::InvalidArgument(
        "bytecode verifier: UDF '" + cert.name +
        "' can never return: every reachable path loops forever; rejected at "
        "admission");
  }
  for (uint32_t id = 0; id <= static_cast<uint32_t>(HostFn::kLog); ++id) {
    if ((cert.reachable_hosts & (uint32_t{1} << id)) == 0) continue;
    const HostFn fn = static_cast<HostFn>(id);
    bool granted = false;
    switch (fn) {
      case HostFn::kReadFile:
        granted = policy.allow_file_read;
        break;
      case HostFn::kWriteFile:
        granted = policy.allow_file_write;
        break;
      case HostFn::kHttpGet:
        granted = !policy.egress_allow.empty();
        break;
      case HostFn::kGetEnv:
        granted = policy.allow_env_read;
        break;
      case HostFn::kClockNow:
        granted = policy.allow_clock;
        break;
      case HostFn::kLog:
        granted = true;
        break;
    }
    if (!granted) {
      return Status::PermissionDenied(
          "bytecode verifier: UDF '" + cert.name + "' can reach host call '" +
          HostFnName(fn) +
          "' which the trust domain's policy does not grant; rejected before "
          "sandbox provisioning");
    }
  }
  const uint64_t leaked = cert.tainted_sink_args & tainted_args;
  if (leaked != 0) {
    uint32_t arg = 0;
    while (arg < 64 && (leaked & (uint64_t{1} << arg)) == 0) ++arg;
    return Status::PermissionDenied(
        "bytecode verifier: UDF '" + cert.name + "' argument " +
        std::to_string(arg) +
        " is bound to a policy-protected column and can flow to an "
        "exfiltration sink (write_file/http_get); rejected before sandbox "
        "provisioning");
  }
  if (cert.worst_case_cost != kUnboundedCost &&
      cert.worst_case_cost > policy.fuel) {
    return Status::ResourceExhausted(
        "bytecode verifier: UDF '" + cert.name + "' worst-case cost " +
        std::to_string(cert.worst_case_cost) +
        " exceeds the trust domain's fuel budget " +
        std::to_string(policy.fuel));
  }
  if (cert.max_stack_height > policy.max_stack) {
    return Status::ResourceExhausted(
        "bytecode verifier: UDF '" + cert.name + "' needs stack depth " +
        std::to_string(cert.max_stack_height) +
        ", over the trust domain's limit of " +
        std::to_string(policy.max_stack));
  }
  return Status::OK();
}

}  // namespace lakeguard
