#ifndef LAKEGUARD_UDF_VERIFIER_CACHE_H_
#define LAKEGUARD_UDF_VERIFIER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "core/thread_annotations.h"
#include "udf/verifier/verifier.h"

namespace lakeguard {

struct VerifierCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t entries = 0;
};

/// Sharded cache of verification outcomes keyed by program hash. Because a
/// `UdfCertificate` is policy-independent, one entry serves every trust
/// domain, session, and call site that ships the same bytecode — the
/// dispatcher's per-dispatch re-verification and PV008's pre-admission check
/// both collapse to a hash + lookup. Negative outcomes (malformed programs)
/// are cached too: a hostile client replaying a bad program pays a lookup,
/// not a re-analysis.
class VerifiedProgramCache {
 public:
  VerifiedProgramCache() = default;
  VerifiedProgramCache(const VerifiedProgramCache&) = delete;
  VerifiedProgramCache& operator=(const VerifiedProgramCache&) = delete;

  /// Returns the cached verification outcome for `bc`, running the verifier
  /// on a miss. `cache_hit` (optional) reports which path was taken.
  Result<UdfCertificate> GetOrVerify(const UdfBytecode& bc,
                                     bool* cache_hit = nullptr);

  VerifierCacheStats stats() const;

  /// Drops every entry (tests; certificates have no other invalidation —
  /// the key is a content hash, so an entry can never go stale).
  void Clear();

  /// Process-wide instance shared by the dispatcher and PlanVerifier.
  static VerifiedProgramCache* Global();

 private:
  struct Entry {
    Status status = Status::OK();
    UdfCertificate cert;
  };
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable Mutex mu;
    std::map<std::string, Entry> entries LG_GUARDED_BY(mu);
  };

  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace lakeguard

#endif  // LAKEGUARD_UDF_VERIFIER_CACHE_H_
