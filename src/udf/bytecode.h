#ifndef LAKEGUARD_UDF_BYTECODE_H_
#define LAKEGUARD_UDF_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/value.h"
#include "common/serde.h"
#include "common/status.h"

namespace lakeguard {

/// LGVM opcodes. LGVM is this library's stand-in for the Python/Scala user
/// code of the paper: a small stack machine whose programs are genuinely
/// *untrusted* — they can loop, branch, and attempt host access (files,
/// network, environment) that only a sandbox policy can grant or deny.
enum class OpCode : uint8_t {
  kPushConst = 0,   // push const_pool[operand]
  kLoadArg = 1,     // push argument #operand
  kLoadLocal = 2,   // push local slot #operand
  kStoreLocal = 3,  // pop into local slot #operand
  kDup = 4,
  kPop = 5,
  kAdd = 6,
  kSub = 7,
  kMul = 8,
  kDiv = 9,
  kMod = 10,
  kNeg = 11,
  kEq = 12,
  kNe = 13,
  kLt = 14,
  kLe = 15,
  kGt = 16,
  kGe = 17,
  kAnd = 18,
  kOr = 19,
  kNot = 20,
  kConcat = 21,     // pop b, a; push a||b (string)
  kSha256 = 22,     // pop s; push hex(sha256(s))
  kToString = 23,   // pop v; push string rendering
  kToInt = 24,
  kToDouble = 25,
  kJump = 26,        // pc = operand
  kJumpIfFalse = 27, // pop cond; if !cond: pc = operand
  kCallHost = 28,    // operand = HostFn id, operand2 = argc; pops argc args
  kReturn = 29,      // pop result, halt
  kLength = 30,      // pop s; push its length in bytes
};

/// Highest valid opcode value (serde validation bound).
constexpr uint8_t kMaxOpCode = static_cast<uint8_t>(OpCode::kLength);

/// Host capabilities user code can request. Every call is mediated by the
/// sandbox's `HostInterface`; nothing here executes unless the active policy
/// grants it (Fig. 6's external HTTP call, §2.4's file-system escape).
enum class HostFn : uint8_t {
  kReadFile = 0,   // (path) -> string
  kWriteFile = 1,  // (path, contents) -> bool
  kHttpGet = 2,    // (url) -> string (response body)
  kGetEnv = 3,     // (name) -> string
  kClockNow = 4,   // () -> int micros
  kLog = 5,        // (message) -> null
};

const char* HostFnName(HostFn fn);

struct Instruction {
  OpCode op = OpCode::kReturn;
  int32_t operand = 0;
  int32_t operand2 = 0;

  bool operator==(const Instruction& other) const {
    return op == other.op && operand == other.operand &&
           operand2 == other.operand2;
  }
};

/// A compiled user function: metadata plus code. Bytecode is what the
/// catalog stores for cataloged Python UDFs (§3.3) and what travels to
/// sandboxes for execution.
struct UdfBytecode {
  std::string name;
  uint32_t num_args = 0;
  uint32_t num_locals = 0;
  TypeKind return_type = TypeKind::kNull;
  std::vector<Value> const_pool;
  std::vector<Instruction> code;

  bool operator==(const UdfBytecode& other) const;
};

/// Wire encoding (catalog storage, sandbox shipping).
void SerializeBytecode(const UdfBytecode& bc, ByteWriter* writer);
Result<UdfBytecode> DeserializeBytecode(ByteReader* reader);

/// Structural validation: jump targets in range, const/arg/local indices in
/// range, code ends with an unconditional return path.
Status ValidateBytecode(const UdfBytecode& bc);

}  // namespace lakeguard

#endif  // LAKEGUARD_UDF_BYTECODE_H_
