#ifndef LAKEGUARD_UDF_BUILDER_H_
#define LAKEGUARD_UDF_BUILDER_H_

#include <string>
#include <vector>

#include "udf/bytecode.h"

namespace lakeguard {

/// Fluent assembler for LGVM programs. Produces validated bytecode; tests,
/// examples and workload generators use it the way the paper's users write
/// Python UDFs.
class UdfBuilder {
 public:
  UdfBuilder(std::string name, uint32_t num_args, TypeKind return_type);

  UdfBuilder& PushConst(Value v);
  UdfBuilder& LoadArg(uint32_t idx);
  UdfBuilder& LoadLocal(uint32_t idx);
  UdfBuilder& StoreLocal(uint32_t idx);
  UdfBuilder& Dup();
  UdfBuilder& Pop();
  UdfBuilder& Add();
  UdfBuilder& Sub();
  UdfBuilder& Mul();
  UdfBuilder& Div();
  UdfBuilder& Mod();
  UdfBuilder& Neg();
  UdfBuilder& CmpEq();
  UdfBuilder& CmpNe();
  UdfBuilder& CmpLt();
  UdfBuilder& CmpLe();
  UdfBuilder& CmpGt();
  UdfBuilder& CmpGe();
  UdfBuilder& LogicalAnd();
  UdfBuilder& LogicalOr();
  UdfBuilder& LogicalNot();
  UdfBuilder& Concat();
  UdfBuilder& LengthOp();
  UdfBuilder& Sha256Op();
  UdfBuilder& ToStringOp();
  UdfBuilder& ToIntOp();
  UdfBuilder& ToDoubleOp();
  UdfBuilder& CallHost(HostFn fn, uint32_t argc);
  UdfBuilder& Ret();

  /// Declares a local slot; returns its index.
  uint32_t AddLocal();

  /// Emits a placeholder jump; call `PatchJump` with the returned position
  /// once the target is known.
  size_t EmitJump();
  size_t EmitJumpIfFalse();
  void PatchJump(size_t at, size_t target);
  /// Current instruction position (next emit target).
  size_t Here() const;
  /// Emits an unconditional jump to `target` (backward edges, loops).
  UdfBuilder& JumpTo(size_t target);

  /// Validates and returns the program.
  Result<UdfBytecode> Build();

 private:
  UdfBuilder& Emit(OpCode op, int32_t operand = 0, int32_t operand2 = 0);
  UdfBytecode bc_;
};

/// Canned user functions used across tests, examples and benchmarks.
namespace canned {

/// `def f(a, b): return a + b` — the paper's Simple UDF (Table 2 column 1).
UdfBytecode SumUdf();

/// `def f(s): h=s; for _ in range(iterations): h=sha256(h); return h` —
/// the paper's Hash UDF with `iterations`=100 (Table 2 column 2).
UdfBytecode HashUdf(int64_t iterations);

/// Feature extraction over binary sensor payloads (healthcare example,
/// Fig. 1): length(payload) * scale + offset as DOUBLE.
UdfBytecode SensorFeatureUdf(double scale, double offset);

/// Fig. 6's PySpark UDF: http_get("http://<host>/zip/{zip}") -> DOUBLE.
UdfBytecode AirQualityUdf(const std::string& host);

/// A malicious UDF attempting to read a host file and return its contents.
UdfBytecode FileExfiltrationUdf(const std::string& path);

/// A malicious UDF attempting to POST its argument to an attacker server.
UdfBytecode NetworkExfiltrationUdf(const std::string& url);

/// A malicious UDF attempting to read an environment secret.
UdfBytecode EnvProbeUdf(const std::string& var);

/// An infinite loop (sandbox fuel-limit test).
UdfBytecode InfiniteLoopUdf();

}  // namespace canned
}  // namespace lakeguard

#endif  // LAKEGUARD_UDF_BUILDER_H_
