#include "udf/builder.h"

#include "udf/verifier/verifier.h"

namespace lakeguard {

UdfBuilder::UdfBuilder(std::string name, uint32_t num_args,
                       TypeKind return_type) {
  bc_.name = std::move(name);
  bc_.num_args = num_args;
  bc_.return_type = return_type;
}

UdfBuilder& UdfBuilder::Emit(OpCode op, int32_t operand, int32_t operand2) {
  bc_.code.push_back(Instruction{op, operand, operand2});
  return *this;
}

UdfBuilder& UdfBuilder::PushConst(Value v) {
  bc_.const_pool.push_back(std::move(v));
  return Emit(OpCode::kPushConst,
              static_cast<int32_t>(bc_.const_pool.size() - 1));
}
UdfBuilder& UdfBuilder::LoadArg(uint32_t idx) {
  return Emit(OpCode::kLoadArg, static_cast<int32_t>(idx));
}
UdfBuilder& UdfBuilder::LoadLocal(uint32_t idx) {
  return Emit(OpCode::kLoadLocal, static_cast<int32_t>(idx));
}
UdfBuilder& UdfBuilder::StoreLocal(uint32_t idx) {
  return Emit(OpCode::kStoreLocal, static_cast<int32_t>(idx));
}
UdfBuilder& UdfBuilder::Dup() { return Emit(OpCode::kDup); }
UdfBuilder& UdfBuilder::Pop() { return Emit(OpCode::kPop); }
UdfBuilder& UdfBuilder::Add() { return Emit(OpCode::kAdd); }
UdfBuilder& UdfBuilder::Sub() { return Emit(OpCode::kSub); }
UdfBuilder& UdfBuilder::Mul() { return Emit(OpCode::kMul); }
UdfBuilder& UdfBuilder::Div() { return Emit(OpCode::kDiv); }
UdfBuilder& UdfBuilder::Mod() { return Emit(OpCode::kMod); }
UdfBuilder& UdfBuilder::Neg() { return Emit(OpCode::kNeg); }
UdfBuilder& UdfBuilder::CmpEq() { return Emit(OpCode::kEq); }
UdfBuilder& UdfBuilder::CmpNe() { return Emit(OpCode::kNe); }
UdfBuilder& UdfBuilder::CmpLt() { return Emit(OpCode::kLt); }
UdfBuilder& UdfBuilder::CmpLe() { return Emit(OpCode::kLe); }
UdfBuilder& UdfBuilder::CmpGt() { return Emit(OpCode::kGt); }
UdfBuilder& UdfBuilder::CmpGe() { return Emit(OpCode::kGe); }
UdfBuilder& UdfBuilder::LogicalAnd() { return Emit(OpCode::kAnd); }
UdfBuilder& UdfBuilder::LogicalOr() { return Emit(OpCode::kOr); }
UdfBuilder& UdfBuilder::LogicalNot() { return Emit(OpCode::kNot); }
UdfBuilder& UdfBuilder::Concat() { return Emit(OpCode::kConcat); }
UdfBuilder& UdfBuilder::LengthOp() { return Emit(OpCode::kLength); }
UdfBuilder& UdfBuilder::Sha256Op() { return Emit(OpCode::kSha256); }
UdfBuilder& UdfBuilder::ToStringOp() { return Emit(OpCode::kToString); }
UdfBuilder& UdfBuilder::ToIntOp() { return Emit(OpCode::kToInt); }
UdfBuilder& UdfBuilder::ToDoubleOp() { return Emit(OpCode::kToDouble); }
UdfBuilder& UdfBuilder::CallHost(HostFn fn, uint32_t argc) {
  return Emit(OpCode::kCallHost, static_cast<int32_t>(fn),
              static_cast<int32_t>(argc));
}
UdfBuilder& UdfBuilder::Ret() { return Emit(OpCode::kReturn); }

uint32_t UdfBuilder::AddLocal() { return bc_.num_locals++; }

size_t UdfBuilder::EmitJump() {
  Emit(OpCode::kJump, 0);
  return bc_.code.size() - 1;
}

size_t UdfBuilder::EmitJumpIfFalse() {
  Emit(OpCode::kJumpIfFalse, 0);
  return bc_.code.size() - 1;
}

void UdfBuilder::PatchJump(size_t at, size_t target) {
  bc_.code[at].operand = static_cast<int32_t>(target);
}

size_t UdfBuilder::Here() const { return bc_.code.size(); }

UdfBuilder& UdfBuilder::JumpTo(size_t target) {
  return Emit(OpCode::kJump, static_cast<int32_t>(target));
}

Result<UdfBytecode> UdfBuilder::Build() {
  // Full static verification, not just the structural baseline: a program
  // that underflows the stack, falls off the end of code, or miscounts a
  // host call's arity is a defect at assembly time. Capability needs,
  // loops, and taint flows are *not* build errors — those are admission
  // questions answered against a concrete trust domain (the certificate is
  // recomputed from cache at dispatch).
  LG_RETURN_IF_ERROR(VerifyBytecode(bc_).status());
  return bc_;
}

namespace canned {

UdfBytecode SumUdf() {
  UdfBuilder b("simple_sum", 2, TypeKind::kInt64);
  b.LoadArg(0).LoadArg(1).Add().Ret();
  return *b.Build();
}

UdfBytecode HashUdf(int64_t iterations) {
  // h = str(arg0); i = 0
  // while i < iterations: h = sha256(h); i = i + 1
  // return h
  UdfBuilder b("hash_100_sha256", 1, TypeKind::kString);
  uint32_t h = b.AddLocal();
  uint32_t i = b.AddLocal();
  b.LoadArg(0).ToStringOp().StoreLocal(h);
  b.PushConst(Value::Int(0)).StoreLocal(i);
  size_t loop_start = b.Here();
  b.LoadLocal(i).PushConst(Value::Int(iterations)).CmpLt();
  size_t exit_jump = b.EmitJumpIfFalse();
  b.LoadLocal(h).Sha256Op().StoreLocal(h);
  b.LoadLocal(i).PushConst(Value::Int(1)).Add().StoreLocal(i);
  b.JumpTo(loop_start);
  b.PatchJump(exit_jump, b.Here());
  b.LoadLocal(h).Ret();
  return *b.Build();
}

UdfBytecode SensorFeatureUdf(double scale, double offset) {
  // feature = length(payload) * scale + offset
  UdfBuilder b("sensor_feature", 1, TypeKind::kFloat64);
  b.LoadArg(0).LengthOp().ToDoubleOp();
  b.PushConst(Value::Double(scale)).Mul();
  b.PushConst(Value::Double(offset)).Add();
  b.Ret();
  return *b.Build();
}

UdfBytecode AirQualityUdf(const std::string& host) {
  UdfBuilder b("resolve_zip_to_air_quality", 1, TypeKind::kFloat64);
  b.PushConst(Value::String("http://" + host + "/zip/"));
  b.LoadArg(0).ToStringOp().Concat();
  b.CallHost(HostFn::kHttpGet, 1);
  b.ToDoubleOp();
  b.Ret();
  return *b.Build();
}

UdfBytecode FileExfiltrationUdf(const std::string& path) {
  UdfBuilder b("steal_file", 0, TypeKind::kString);
  b.PushConst(Value::String(path));
  b.CallHost(HostFn::kReadFile, 1);
  b.Ret();
  return *b.Build();
}

UdfBytecode NetworkExfiltrationUdf(const std::string& url) {
  UdfBuilder b("exfiltrate", 1, TypeKind::kString);
  b.PushConst(Value::String(url + "?payload="));
  b.LoadArg(0).ToStringOp().Concat();
  b.CallHost(HostFn::kHttpGet, 1);
  b.Ret();
  return *b.Build();
}

UdfBytecode EnvProbeUdf(const std::string& var) {
  UdfBuilder b("env_probe", 0, TypeKind::kString);
  b.PushConst(Value::String(var));
  b.CallHost(HostFn::kGetEnv, 1);
  b.Ret();
  return *b.Build();
}

UdfBytecode InfiniteLoopUdf() {
  UdfBuilder b("spin", 0, TypeKind::kInt64);
  size_t start = b.Here();
  b.PushConst(Value::Int(1)).Pop();
  b.JumpTo(start);
  b.PushConst(Value::Int(0)).Ret();
  return *b.Build();
}

}  // namespace canned
}  // namespace lakeguard
