#ifndef LAKEGUARD_UDF_VM_H_
#define LAKEGUARD_UDF_VM_H_

#include <cstdint>
#include <vector>

#include "udf/bytecode.h"

namespace lakeguard {

/// The capability surface user code sees. The *only* way an LGVM program can
/// touch anything outside its stack is through this interface; the sandbox
/// provides the implementation and enforces the active policy (allow-listed
/// egress, no file system, no environment — §3.3).
class HostInterface {
 public:
  virtual ~HostInterface() = default;
  virtual Result<Value> CallHost(HostFn fn, const std::vector<Value>& args) = 0;
};

/// A HostInterface denying everything — the default when no sandbox is
/// wired; also useful as a base class for selective policies.
class DenyAllHost : public HostInterface {
 public:
  Result<Value> CallHost(HostFn fn, const std::vector<Value>& args) override;
};

/// VM execution limits. Fuel bounds runaway loops; stack depth bounds
/// memory. Resource exhaustion is reported as kResourceExhausted — a
/// sandbox kill, not an engine crash.
struct VmLimits {
  int64_t fuel = 50'000'000;
  size_t max_stack = 4096;
};

/// Statistics from one UDF invocation (drives sandbox accounting).
struct VmStats {
  int64_t instructions = 0;
  int64_t host_calls = 0;
};

/// Executes `bc` over `args`. Pure interpreter: no globals, no allocation
/// outside the value stack, deterministic given (bytecode, args, host).
Result<Value> ExecuteUdf(const UdfBytecode& bc, const std::vector<Value>& args,
                         HostInterface* host, const VmLimits& limits = {},
                         VmStats* stats = nullptr);

}  // namespace lakeguard

#endif  // LAKEGUARD_UDF_VM_H_
