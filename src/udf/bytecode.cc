#include "udf/bytecode.h"

#include "expr/expr_serde.h"

namespace lakeguard {

const char* HostFnName(HostFn fn) {
  switch (fn) {
    case HostFn::kReadFile:
      return "read_file";
    case HostFn::kWriteFile:
      return "write_file";
    case HostFn::kHttpGet:
      return "http_get";
    case HostFn::kGetEnv:
      return "get_env";
    case HostFn::kClockNow:
      return "clock_now";
    case HostFn::kLog:
      return "log";
  }
  return "?";
}

bool UdfBytecode::operator==(const UdfBytecode& other) const {
  if (name != other.name || num_args != other.num_args ||
      num_locals != other.num_locals || return_type != other.return_type ||
      code != other.code || const_pool.size() != other.const_pool.size()) {
    return false;
  }
  for (size_t i = 0; i < const_pool.size(); ++i) {
    if (!(const_pool[i] == other.const_pool[i])) return false;
  }
  return true;
}

void SerializeBytecode(const UdfBytecode& bc, ByteWriter* writer) {
  writer->PutString(bc.name);
  writer->PutVarint(bc.num_args);
  writer->PutVarint(bc.num_locals);
  writer->PutByte(static_cast<uint8_t>(bc.return_type));
  writer->PutVarint(bc.const_pool.size());
  for (const Value& v : bc.const_pool) {
    SerializeValue(v, writer);
  }
  writer->PutVarint(bc.code.size());
  for (const Instruction& ins : bc.code) {
    writer->PutByte(static_cast<uint8_t>(ins.op));
    writer->PutZigzag(ins.operand);
    writer->PutZigzag(ins.operand2);
  }
}

Result<UdfBytecode> DeserializeBytecode(ByteReader* reader) {
  UdfBytecode bc;
  LG_ASSIGN_OR_RETURN(bc.name, reader->ReadString());
  LG_ASSIGN_OR_RETURN(uint64_t num_args, reader->ReadVarint());
  LG_ASSIGN_OR_RETURN(uint64_t num_locals, reader->ReadVarint());
  bc.num_args = static_cast<uint32_t>(num_args);
  bc.num_locals = static_cast<uint32_t>(num_locals);
  LG_ASSIGN_OR_RETURN(uint8_t ret, reader->ReadByte());
  if (ret > static_cast<uint8_t>(TypeKind::kBinary)) {
    return Status::DataLoss("invalid UDF return type");
  }
  bc.return_type = static_cast<TypeKind>(ret);
  LG_ASSIGN_OR_RETURN(uint64_t n_const, reader->ReadVarint());
  for (uint64_t i = 0; i < n_const; ++i) {
    LG_ASSIGN_OR_RETURN(Value v, DeserializeValue(reader));
    bc.const_pool.push_back(std::move(v));
  }
  LG_ASSIGN_OR_RETURN(uint64_t n_code, reader->ReadVarint());
  for (uint64_t i = 0; i < n_code; ++i) {
    Instruction ins;
    LG_ASSIGN_OR_RETURN(uint8_t op, reader->ReadByte());
    if (op > kMaxOpCode) {
      return Status::DataLoss("invalid opcode " + std::to_string(op));
    }
    ins.op = static_cast<OpCode>(op);
    LG_ASSIGN_OR_RETURN(int64_t operand, reader->ReadZigzag());
    LG_ASSIGN_OR_RETURN(int64_t operand2, reader->ReadZigzag());
    ins.operand = static_cast<int32_t>(operand);
    ins.operand2 = static_cast<int32_t>(operand2);
    bc.code.push_back(ins);
  }
  LG_RETURN_IF_ERROR(ValidateBytecode(bc));
  return bc;
}

Status ValidateBytecode(const UdfBytecode& bc) {
  if (bc.code.empty()) {
    return Status::InvalidArgument("UDF '" + bc.name + "' has no code");
  }
  const int32_t n = static_cast<int32_t>(bc.code.size());
  bool has_return = false;
  for (int32_t pc = 0; pc < n; ++pc) {
    const Instruction& ins = bc.code[static_cast<size_t>(pc)];
    switch (ins.op) {
      case OpCode::kPushConst:
        if (ins.operand < 0 ||
            ins.operand >= static_cast<int32_t>(bc.const_pool.size())) {
          return Status::InvalidArgument("const index out of range at pc " +
                                         std::to_string(pc));
        }
        break;
      case OpCode::kLoadArg:
        if (ins.operand < 0 ||
            ins.operand >= static_cast<int32_t>(bc.num_args)) {
          return Status::InvalidArgument("arg index out of range at pc " +
                                         std::to_string(pc));
        }
        break;
      case OpCode::kLoadLocal:
      case OpCode::kStoreLocal:
        if (ins.operand < 0 ||
            ins.operand >= static_cast<int32_t>(bc.num_locals)) {
          return Status::InvalidArgument("local index out of range at pc " +
                                         std::to_string(pc));
        }
        break;
      case OpCode::kJump:
      case OpCode::kJumpIfFalse:
        if (ins.operand < 0 || ins.operand >= n) {
          return Status::InvalidArgument("jump target out of range at pc " +
                                         std::to_string(pc));
        }
        break;
      case OpCode::kCallHost:
        if (ins.operand < 0 ||
            ins.operand > static_cast<int32_t>(HostFn::kLog)) {
          return Status::InvalidArgument("unknown host fn at pc " +
                                         std::to_string(pc));
        }
        if (ins.operand2 < 0 || ins.operand2 > 8) {
          return Status::InvalidArgument("bad host fn arity at pc " +
                                         std::to_string(pc));
        }
        break;
      case OpCode::kReturn:
        has_return = true;
        break;
      default:
        break;
    }
  }
  if (!has_return) {
    return Status::InvalidArgument("UDF '" + bc.name + "' has no return");
  }
  return Status::OK();
}

}  // namespace lakeguard
