#include "udf/vm.h"

#include "common/sha256.h"

namespace lakeguard {

Result<Value> DenyAllHost::CallHost(HostFn fn, const std::vector<Value>&) {
  return Status::PermissionDenied(std::string("host call '") +
                                  HostFnName(fn) +
                                  "' denied: no capability granted");
}

namespace {

Result<Value> Arith(OpCode op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  const bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case OpCode::kAdd:
      if (both_int) return Value::Int(a.int_value() + b.int_value());
      break;
    case OpCode::kSub:
      if (both_int) return Value::Int(a.int_value() - b.int_value());
      break;
    case OpCode::kMul:
      if (both_int) return Value::Int(a.int_value() * b.int_value());
      break;
    case OpCode::kMod: {
      LG_ASSIGN_OR_RETURN(int64_t x, a.AsInt());
      LG_ASSIGN_OR_RETURN(int64_t y, b.AsInt());
      if (y == 0) return Status::InvalidArgument("modulo by zero in UDF");
      return Value::Int(x % y);
    }
    default:
      break;
  }
  LG_ASSIGN_OR_RETURN(double x, a.AsDouble());
  LG_ASSIGN_OR_RETURN(double y, b.AsDouble());
  switch (op) {
    case OpCode::kAdd:
      return Value::Double(x + y);
    case OpCode::kSub:
      return Value::Double(x - y);
    case OpCode::kMul:
      return Value::Double(x * y);
    case OpCode::kDiv:
      if (y == 0.0) return Status::InvalidArgument("division by zero in UDF");
      return Value::Double(x / y);
    default:
      return Status::Internal("unreachable arith op");
  }
}

Result<bool> AsCondition(const Value& v) {
  if (v.is_bool()) return v.bool_value();
  if (v.is_int()) return v.int_value() != 0;
  if (v.is_null()) return false;
  return Status::InvalidArgument("UDF condition is not boolean-like");
}

}  // namespace

Result<Value> ExecuteUdf(const UdfBytecode& bc, const std::vector<Value>& args,
                         HostInterface* host, const VmLimits& limits,
                         VmStats* stats) {
  if (args.size() != bc.num_args) {
    return Status::InvalidArgument(
        "UDF '" + bc.name + "' expects " + std::to_string(bc.num_args) +
        " args, got " + std::to_string(args.size()));
  }
  DenyAllHost deny_all;
  if (host == nullptr) host = &deny_all;

  std::vector<Value> stack;
  stack.reserve(64);
  std::vector<Value> locals(bc.num_locals);
  int64_t fuel = limits.fuel;
  int64_t executed = 0;
  int64_t host_calls = 0;

  // "vm integrity:" errors are structural violations a verified program can
  // never hit — the bytecode verifier proves their absence, and the
  // differential fuzz suite holds VM and verifier to that agreement. They
  // are typed kInvalidArgument (a defect of the program, not of the engine).
  auto integrity = [&bc](const std::string& what) {
    return Status::InvalidArgument("vm integrity: UDF '" + bc.name +
                                   "': " + what);
  };
  auto pop = [&stack, &integrity]() -> Result<Value> {
    if (stack.empty()) return integrity("stack underflow");
    Value v = std::move(stack.back());
    stack.pop_back();
    return v;
  };

  size_t pc = 0;
  const size_t n = bc.code.size();
  while (pc < n) {
    if (--fuel <= 0) {
      return Status::ResourceExhausted("UDF '" + bc.name +
                                       "' exceeded its instruction budget");
    }
    ++executed;
    if (stack.size() > limits.max_stack) {
      return Status::ResourceExhausted("UDF '" + bc.name +
                                       "' exceeded its stack limit");
    }
    const Instruction& ins = bc.code[pc];
    switch (ins.op) {
      case OpCode::kPushConst:
        if (ins.operand < 0 ||
            static_cast<size_t>(ins.operand) >= bc.const_pool.size()) {
          return integrity("const index out of range");
        }
        stack.push_back(bc.const_pool[static_cast<size_t>(ins.operand)]);
        break;
      case OpCode::kLoadArg:
        if (ins.operand < 0 || static_cast<size_t>(ins.operand) >= args.size()) {
          return integrity("arg index out of range");
        }
        stack.push_back(args[static_cast<size_t>(ins.operand)]);
        break;
      case OpCode::kLoadLocal:
        if (ins.operand < 0 ||
            static_cast<size_t>(ins.operand) >= locals.size()) {
          return integrity("local index out of range");
        }
        stack.push_back(locals[static_cast<size_t>(ins.operand)]);
        break;
      case OpCode::kStoreLocal: {
        if (ins.operand < 0 ||
            static_cast<size_t>(ins.operand) >= locals.size()) {
          return integrity("local index out of range");
        }
        LG_ASSIGN_OR_RETURN(Value v, pop());
        locals[static_cast<size_t>(ins.operand)] = std::move(v);
        break;
      }
      case OpCode::kDup:
        if (stack.empty()) return integrity("stack underflow");
        stack.push_back(stack.back());
        break;
      case OpCode::kPop: {
        LG_ASSIGN_OR_RETURN(Value v, pop());
        (void)v;
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kMod: {
        LG_ASSIGN_OR_RETURN(Value b, pop());
        LG_ASSIGN_OR_RETURN(Value a, pop());
        LG_ASSIGN_OR_RETURN(Value r, Arith(ins.op, a, b));
        stack.push_back(std::move(r));
        break;
      }
      case OpCode::kNeg: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        if (a.is_null()) {
          stack.push_back(Value::Null());
        } else if (a.is_int()) {
          stack.push_back(Value::Int(-a.int_value()));
        } else {
          LG_ASSIGN_OR_RETURN(double d, a.AsDouble());
          stack.push_back(Value::Double(-d));
        }
        break;
      }
      case OpCode::kEq:
      case OpCode::kNe:
      case OpCode::kLt:
      case OpCode::kLe:
      case OpCode::kGt:
      case OpCode::kGe: {
        LG_ASSIGN_OR_RETURN(Value b, pop());
        LG_ASSIGN_OR_RETURN(Value a, pop());
        if (a.is_null() || b.is_null()) {
          stack.push_back(Value::Null());
          break;
        }
        int c = a.Compare(b);
        bool r = false;
        switch (ins.op) {
          case OpCode::kEq:
            r = (c == 0);
            break;
          case OpCode::kNe:
            r = (c != 0);
            break;
          case OpCode::kLt:
            r = (c < 0);
            break;
          case OpCode::kLe:
            r = (c <= 0);
            break;
          case OpCode::kGt:
            r = (c > 0);
            break;
          default:
            r = (c >= 0);
            break;
        }
        stack.push_back(Value::Bool(r));
        break;
      }
      case OpCode::kAnd:
      case OpCode::kOr: {
        LG_ASSIGN_OR_RETURN(Value b, pop());
        LG_ASSIGN_OR_RETURN(Value a, pop());
        LG_ASSIGN_OR_RETURN(bool ba, AsCondition(a));
        LG_ASSIGN_OR_RETURN(bool bb, AsCondition(b));
        stack.push_back(
            Value::Bool(ins.op == OpCode::kAnd ? (ba && bb) : (ba || bb)));
        break;
      }
      case OpCode::kNot: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        LG_ASSIGN_OR_RETURN(bool b, AsCondition(a));
        stack.push_back(Value::Bool(!b));
        break;
      }
      case OpCode::kConcat: {
        LG_ASSIGN_OR_RETURN(Value b, pop());
        LG_ASSIGN_OR_RETURN(Value a, pop());
        stack.push_back(Value::String(a.ToString() + b.ToString()));
        break;
      }
      case OpCode::kSha256: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        const std::string payload =
            (a.is_string() || a.is_binary()) ? a.string_value() : a.ToString();
        stack.push_back(Value::String(Sha256::HexDigest(payload)));
        break;
      }
      case OpCode::kToString: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        stack.push_back(Value::String(a.ToString()));
        break;
      }
      case OpCode::kToInt: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        LG_ASSIGN_OR_RETURN(Value v, a.CastTo(TypeKind::kInt64));
        stack.push_back(std::move(v));
        break;
      }
      case OpCode::kToDouble: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        LG_ASSIGN_OR_RETURN(Value v, a.CastTo(TypeKind::kFloat64));
        stack.push_back(std::move(v));
        break;
      }
      case OpCode::kJump:
        if (ins.operand < 0 || static_cast<size_t>(ins.operand) >= n) {
          return integrity("jump target out of range");
        }
        pc = static_cast<size_t>(ins.operand);
        continue;
      case OpCode::kJumpIfFalse: {
        if (ins.operand < 0 || static_cast<size_t>(ins.operand) >= n) {
          return integrity("jump target out of range");
        }
        LG_ASSIGN_OR_RETURN(Value a, pop());
        LG_ASSIGN_OR_RETURN(bool cond, AsCondition(a));
        if (!cond) {
          pc = static_cast<size_t>(ins.operand);
          continue;
        }
        break;
      }
      case OpCode::kCallHost: {
        if (ins.operand < 0 ||
            ins.operand > static_cast<int32_t>(HostFn::kLog) ||
            ins.operand2 < 0) {
          return integrity("unknown host function");
        }
        size_t argc = static_cast<size_t>(ins.operand2);
        if (stack.size() < argc) return integrity("stack underflow");
        std::vector<Value> host_args(argc);
        for (size_t i = argc; i > 0; --i) {
          host_args[i - 1] = std::move(stack.back());
          stack.pop_back();
        }
        ++host_calls;
        LG_ASSIGN_OR_RETURN(
            Value r,
            host->CallHost(static_cast<HostFn>(ins.operand), host_args));
        stack.push_back(std::move(r));
        break;
      }
      case OpCode::kReturn: {
        LG_ASSIGN_OR_RETURN(Value v, pop());
        if (stats != nullptr) {
          stats->instructions = executed;
          stats->host_calls = host_calls;
        }
        return v;
      }
      case OpCode::kLength: {
        LG_ASSIGN_OR_RETURN(Value a, pop());
        if (a.is_null()) {
          stack.push_back(Value::Null());
        } else if (a.is_string() || a.is_binary()) {
          stack.push_back(
              Value::Int(static_cast<int64_t>(a.string_value().size())));
        } else {
          stack.push_back(
              Value::Int(static_cast<int64_t>(a.ToString().size())));
        }
        break;
      }
    }
    ++pc;
  }
  return integrity("fell off the end of code");
}

}  // namespace lakeguard
