#ifndef LAKEGUARD_SQL_PARSER_H_
#define LAKEGUARD_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"

namespace lakeguard {

/// Parses one SQL statement. SELECT statements lower directly into
/// unresolved logical plans (the same shape Connect clients send);
/// DDL/DML/grant statements parse into their own AST structs and are
/// executed as *commands* by the Connect service (§3.2.2's
/// relation-vs-command split).
Result<ParsedStatement> ParseSql(const std::string& sql);

/// Parses a standalone scalar expression (row-filter and mask definitions).
Result<ExprPtr> ParseSqlExpr(const std::string& sql);

}  // namespace lakeguard

#endif  // LAKEGUARD_SQL_PARSER_H_
