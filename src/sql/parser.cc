#include "sql/parser.h"

#include "common/strings.h"
#include "expr/functions.h"
#include "sql/lexer.h"

namespace lakeguard {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedStatement> ParseStatement();
  Result<ExprPtr> ParseStandaloneExpr();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool MatchSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(const char* kw) {
    if (!Match(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!MatchSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return Advance().text;
  }

  /// Parses a possibly-dotted qualified name: a | a.b | a.b.c.
  Result<std::string> ParseQualifiedName();

  Result<ParsedStatement> ParseSelect();
  Result<PlanPtr> ParseSelectPlan();
  Result<PlanPtr> ParseRelation();
  Result<ParsedStatement> ParseCreate();
  Result<ParsedStatement> ParseInsert();
  Result<ParsedStatement> ParseGrantRevoke(bool revoke);
  Result<ParsedStatement> ParseAlter();
  Result<ParsedStatement> ParseDrop();
  Result<ParsedStatement> ParseRefresh();

  // Expression precedence chain.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();
  Result<Value> ParseLiteralValue();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  size_t select_start_ = 0;  // token index where the last SELECT began
};

Result<std::string> Parser::ParseQualifiedName() {
  LG_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
  while (Peek().IsSymbol(".") &&
         Peek(1).kind == TokenKind::kIdentifier) {
    ++pos_;  // '.'
    name += "." + Advance().text;
  }
  return name;
}

Result<ParsedStatement> Parser::ParseStatement() {
  if (Peek().IsKeyword("SELECT")) return ParseSelect();
  if (Match("CREATE")) return ParseCreate();
  if (Match("INSERT")) return ParseInsert();
  if (Match("GRANT")) return ParseGrantRevoke(false);
  if (Match("REVOKE")) return ParseGrantRevoke(true);
  if (Match("ALTER")) return ParseAlter();
  if (Match("DROP")) return ParseDrop();
  if (Match("REFRESH")) return ParseRefresh();
  return Status::InvalidArgument("unsupported statement starting with '" +
                                 Peek().text + "'");
}

Result<ExprPtr> Parser::ParseStandaloneExpr() {
  LG_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (Peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("trailing tokens after expression: '" +
                                   Peek().text + "'");
  }
  return e;
}

Result<ParsedStatement> Parser::ParseSelect() {
  LG_ASSIGN_OR_RETURN(PlanPtr plan, ParseSelectPlan());
  if (Peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("trailing tokens after SELECT: '" +
                                   Peek().text + "'");
  }
  SelectStatement stmt;
  stmt.plan = std::move(plan);
  return ParsedStatement(std::move(stmt));
}

Result<PlanPtr> Parser::ParseSelectPlan() {
  LG_RETURN_IF_ERROR(Expect("SELECT"));
  const bool distinct = Match("DISTINCT");

  struct SelectItem {
    ExprPtr expr;  // null for '*'
    std::string alias;
    bool star = false;
  };
  std::vector<SelectItem> items;
  while (true) {
    SelectItem item;
    if (MatchSymbol("*")) {
      item.star = true;
    } else {
      LG_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Match("AS")) {
        LG_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().kind == TokenKind::kIdentifier) {
        item.alias = Advance().text;  // bare alias
      }
    }
    items.push_back(std::move(item));
    if (!MatchSymbol(",")) break;
  }

  LG_RETURN_IF_ERROR(Expect("FROM"));
  LG_ASSIGN_OR_RETURN(PlanPtr plan, ParseRelation());

  // JOIN chain.
  while (true) {
    JoinType type;
    if (Peek().IsKeyword("JOIN")) {
      ++pos_;
      type = JoinType::kInner;
    } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
      pos_ += 2;
      type = JoinType::kInner;
    } else if (Peek().IsKeyword("LEFT") && Peek(1).IsKeyword("JOIN")) {
      pos_ += 2;
      type = JoinType::kLeft;
    } else if (Peek().IsKeyword("CROSS") && Peek(1).IsKeyword("JOIN")) {
      pos_ += 2;
      type = JoinType::kCross;
    } else {
      break;
    }
    LG_ASSIGN_OR_RETURN(PlanPtr right, ParseRelation());
    ExprPtr cond;
    if (type != JoinType::kCross) {
      LG_RETURN_IF_ERROR(Expect("ON"));
      LG_ASSIGN_OR_RETURN(cond, ParseExpr());
    }
    plan = MakeJoin(std::move(plan), std::move(right), type, std::move(cond));
  }

  if (Match("WHERE")) {
    LG_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
    plan = MakeFilter(std::move(plan), std::move(cond));
  }

  // Aggregation?
  std::vector<ExprPtr> group_exprs;
  std::vector<std::string> group_names;
  bool has_group_by = false;
  if (Match("GROUP")) {
    LG_RETURN_IF_ERROR(Expect("BY"));
    has_group_by = true;
    while (true) {
      LG_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      group_exprs.push_back(std::move(e));
      if (!MatchSymbol(",")) break;
    }
  }

  auto is_agg_call = [](const ExprPtr& e) {
    return e && e->kind() == ExprKind::kFunctionCall &&
           IsAggregateFunctionName(
               static_cast<const FunctionCallExpr&>(*e).name());
  };
  bool any_agg = false;
  for (const SelectItem& item : items) {
    if (is_agg_call(item.expr)) any_agg = true;
  }

  // SELECT DISTINCT is grouping by every select item (without aggregates).
  if (distinct) {
    if (any_agg || has_group_by) {
      return Status::InvalidArgument(
          "DISTINCT cannot be combined with aggregates or GROUP BY");
    }
    has_group_by = true;
    for (const SelectItem& item : items) {
      if (item.star) {
        return Status::InvalidArgument("SELECT DISTINCT * is not supported");
      }
      group_exprs.push_back(item.expr);
    }
  }

  auto default_name = [](const ExprPtr& e, size_t i) -> std::string {
    if (e->kind() == ExprKind::kColumnRef) {
      // "o.seller" projects as "seller", Spark-style.
      const std::string& full = static_cast<const ColumnRefExpr&>(*e).name();
      size_t dot = full.rfind('.');
      return dot == std::string::npos ? full : full.substr(dot + 1);
    }
    return "col" + std::to_string(i + 1);
  };

  // Non-aggregate projections are deferred past ORDER BY so sort keys may
  // reference input columns that the select list drops.
  std::vector<ExprPtr> deferred_proj;
  std::vector<std::string> deferred_names;
  bool has_deferred_project = false;

  if (has_group_by || any_agg) {
    // Build Aggregate: group exprs get names from matching select items (or
    // synthesized); agg items come from select list and HAVING.
    if (!has_group_by) {
      // Global aggregate (no grouping columns).
    }
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      std::string name;
      for (const SelectItem& item : items) {
        if (item.expr && item.expr->Equals(*group_exprs[i])) {
          name = item.alias.empty() ? default_name(item.expr, i) : item.alias;
          break;
        }
      }
      if (name.empty()) name = default_name(group_exprs[i], i);
      group_names.push_back(name);
    }
    std::vector<ExprPtr> agg_exprs;
    std::vector<std::string> agg_names;
    std::vector<std::string> out_names;  // select order
    for (size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      if (item.star) {
        return Status::InvalidArgument("SELECT * with GROUP BY is not supported");
      }
      std::string name =
          item.alias.empty() ? default_name(item.expr, i) : item.alias;
      if (is_agg_call(item.expr)) {
        agg_exprs.push_back(item.expr);
        agg_names.push_back(name);
      } else {
        // Must correspond to a grouping expression.
        bool found = false;
        for (size_t g = 0; g < group_exprs.size(); ++g) {
          if (item.expr->Equals(*group_exprs[g])) {
            group_names[g] = name;
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "select item '" + item.expr->ToString() +
              "' is neither an aggregate nor a GROUP BY expression");
        }
      }
      out_names.push_back(name);
    }
    ExprPtr having;
    if (Match("HAVING")) {
      LG_ASSIGN_OR_RETURN(having, ParseExpr());
      // Rewrite aggregate calls in HAVING into references to aggregate
      // output columns, adding hidden aggregates when not in the select
      // list (the final projection drops them again).
      having = RewriteExpr(having, [&](const ExprPtr& e) -> ExprPtr {
        if (!is_agg_call(e)) return nullptr;
        for (size_t i = 0; i < agg_exprs.size(); ++i) {
          if (agg_exprs[i]->Equals(*e)) return Col(agg_names[i]);
        }
        std::string hidden = "__having" + std::to_string(agg_exprs.size());
        agg_exprs.push_back(e);
        agg_names.push_back(hidden);
        return Col(hidden);
      });
      // Grouping expressions referenced in HAVING resolve by output name.
      having = RewriteExpr(having, [&](const ExprPtr& e) -> ExprPtr {
        for (size_t g = 0; g < group_exprs.size(); ++g) {
          if (e->kind() != ExprKind::kColumnRef && group_exprs[g]->Equals(*e)) {
            return Col(group_names[g]);
          }
        }
        return nullptr;
      });
    }
    plan = MakeAggregate(std::move(plan), group_exprs, group_names, agg_exprs,
                         agg_names);
    if (having) {
      plan = MakeFilter(std::move(plan), std::move(having));
    }
    // Reorder to select order.
    std::vector<ExprPtr> proj;
    std::vector<std::string> proj_names;
    for (const std::string& name : out_names) {
      proj.push_back(Col(name));
      proj_names.push_back(name);
    }
    plan = MakeProject(std::move(plan), std::move(proj),
                       std::move(proj_names));
  } else {
    if (Match("HAVING")) {
      return Status::InvalidArgument("HAVING requires GROUP BY or aggregates");
    }
    bool all_star = items.size() == 1 && items[0].star;
    if (!all_star) {
      std::vector<ExprPtr> proj;
      std::vector<std::string> names;
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].star) {
          return Status::InvalidArgument(
              "mixing '*' with other select items is not supported");
        }
        proj.push_back(items[i].expr);
        names.push_back(items[i].alias.empty()
                            ? default_name(items[i].expr, i)
                            : items[i].alias);
      }
      deferred_proj = std::move(proj);
      deferred_names = std::move(names);
      has_deferred_project = true;
    }
  }

  if (Match("ORDER")) {
    LG_RETURN_IF_ERROR(Expect("BY"));
    std::vector<SortKey> keys;
    while (true) {
      SortKey key;
      LG_ASSIGN_OR_RETURN(key.expr, ParseExpr());
      if (Match("DESC")) {
        key.ascending = false;
      } else {
        Match("ASC");
      }
      keys.push_back(std::move(key));
      if (!MatchSymbol(",")) break;
    }
    if (!has_deferred_project) {
      plan = MakeSort(std::move(plan), std::move(keys));
    } else {
      // Standard SQL: ORDER BY may reference output aliases *or* input
      // columns not in the select list. If every key is an output-name
      // reference, sort above the projection; otherwise sort below it,
      // rewriting alias references to their defining expressions.
      auto output_index = [&](const ExprPtr& e) -> int {
        if (e->kind() != ExprKind::kColumnRef) return -1;
        const std::string& full =
            static_cast<const ColumnRefExpr&>(*e).name();
        size_t dot = full.rfind('.');
        std::string bare =
            dot == std::string::npos ? full : full.substr(dot + 1);
        for (size_t i = 0; i < deferred_names.size(); ++i) {
          if (EqualsIgnoreCase(deferred_names[i], bare)) {
            return static_cast<int>(i);
          }
        }
        return -1;
      };
      bool all_outputs = true;
      for (const SortKey& key : keys) {
        if (output_index(key.expr) < 0) all_outputs = false;
      }
      if (all_outputs) {
        plan = MakeProject(std::move(plan), deferred_proj, deferred_names);
        has_deferred_project = false;
        plan = MakeSort(std::move(plan), std::move(keys));
      } else {
        // Sort below the projection: rewrite alias refs to source exprs.
        for (SortKey& key : keys) {
          key.expr = RewriteExpr(key.expr, [&](const ExprPtr& e) -> ExprPtr {
            int idx = output_index(e);
            if (idx < 0) return nullptr;
            return deferred_proj[static_cast<size_t>(idx)];
          });
        }
        plan = MakeSort(std::move(plan), std::move(keys));
      }
    }
  }
  if (has_deferred_project) {
    plan = MakeProject(std::move(plan), std::move(deferred_proj),
                       std::move(deferred_names));
  }

  if (Match("LIMIT")) {
    if (Peek().kind != TokenKind::kInteger) {
      return Status::InvalidArgument("LIMIT expects an integer");
    }
    int64_t limit = std::stoll(Advance().text);
    plan = MakeLimit(std::move(plan), limit);
  }

  return plan;
}

Result<PlanPtr> Parser::ParseRelation() {
  if (MatchSymbol("(")) {
    LG_ASSIGN_OR_RETURN(PlanPtr sub, ParseSelectPlan());
    LG_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (Match("AS")) {
      LG_ASSIGN_OR_RETURN(std::string alias, ExpectIdentifier());
      (void)alias;  // aliases are cosmetic in this engine
    } else if (Peek().kind == TokenKind::kIdentifier) {
      ++pos_;
    }
    return sub;
  }
  LG_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
  std::string alias;
  if (Match("AS")) {
    LG_ASSIGN_OR_RETURN(alias, ExpectIdentifier());
  } else if (Peek().kind == TokenKind::kIdentifier) {
    alias = Advance().text;
  }
  return MakeTableRef(std::move(name), std::move(alias));
}

Result<ParsedStatement> Parser::ParseCreate() {
  if (Match("TABLE")) {
    CreateTableStatement stmt;
    LG_ASSIGN_OR_RETURN(stmt.name, ParseQualifiedName());
    LG_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<FieldDef> fields;
    while (true) {
      FieldDef field;
      LG_ASSIGN_OR_RETURN(field.name, ExpectIdentifier());
      if (Peek().kind != TokenKind::kIdentifier &&
          Peek().kind != TokenKind::kKeyword) {
        return Status::InvalidArgument("expected type after column name");
      }
      LG_ASSIGN_OR_RETURN(field.type, TypeKindFromName(Advance().text));
      if (Match("NOT")) {
        LG_RETURN_IF_ERROR(Expect("NULL"));
        field.nullable = false;
      }
      fields.push_back(std::move(field));
      if (!MatchSymbol(",")) break;
    }
    LG_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.schema = Schema(std::move(fields));
    return ParsedStatement(std::move(stmt));
  }
  bool materialized = Match("MATERIALIZED");
  bool temporary = Match("TEMP") || Match("TEMPORARY");
  if (Match("VIEW")) {
    if (materialized && temporary) {
      return Status::InvalidArgument("a view cannot be both MATERIALIZED "
                                     "and TEMPORARY");
    }
    CreateViewStatement stmt;
    stmt.materialized = materialized;
    stmt.temporary = temporary;
    LG_ASSIGN_OR_RETURN(stmt.name, ParseQualifiedName());
    LG_RETURN_IF_ERROR(Expect("AS"));
    // Keep the remaining raw text as the view definition.
    size_t start_pos = Peek().position;
    LG_ASSIGN_OR_RETURN(stmt.plan, ParseSelectPlan());
    (void)start_pos;
    // Reconstructing the original text needs the raw SQL, which the lexer
    // dropped; callers of ParseSql capture it (see ParseSql below).
    return ParsedStatement(std::move(stmt));
  }
  return Status::InvalidArgument("unsupported CREATE statement");
}

Result<ParsedStatement> Parser::ParseInsert() {
  LG_RETURN_IF_ERROR(Expect("INTO"));
  InsertStatement stmt;
  LG_ASSIGN_OR_RETURN(stmt.table, ParseQualifiedName());
  if (Peek().IsKeyword("SELECT")) {
    LG_ASSIGN_OR_RETURN(stmt.query, ParseSelectPlan());
    return ParsedStatement(std::move(stmt));
  }
  LG_RETURN_IF_ERROR(Expect("VALUES"));
  while (true) {
    LG_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Value> row;
    while (true) {
      LG_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      row.push_back(std::move(v));
      if (!MatchSymbol(",")) break;
    }
    LG_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
    if (!MatchSymbol(",")) break;
  }
  return ParsedStatement(std::move(stmt));
}

Result<ParsedStatement> Parser::ParseGrantRevoke(bool revoke) {
  GrantStatement stmt;
  stmt.revoke = revoke;
  // Privilege is one or two keywords/identifiers (USE CATALOG, SELECT, ...).
  std::string priv = Advance().text;
  if ((priv == "USE" &&
       (Peek().IsKeyword("CATALOG") || Peek().IsKeyword("SCHEMA"))) ||
      ((priv == "READ" || priv == "WRITE") &&
       Peek().kind == TokenKind::kIdentifier)) {
    priv += " " + Advance().text;
  }
  stmt.privilege = ToUpperAscii(priv);
  LG_RETURN_IF_ERROR(Expect("ON"));
  // Optional securable type keyword.
  if (Peek().IsKeyword("TABLE") || Peek().IsKeyword("VIEW") ||
      Peek().IsKeyword("CATALOG") || Peek().IsKeyword("SCHEMA") ||
      Peek().IsKeyword("FUNCTION")) {
    ++pos_;
  }
  LG_ASSIGN_OR_RETURN(stmt.securable, ParseQualifiedName());
  if (revoke) {
    LG_RETURN_IF_ERROR(Expect("FROM"));
  } else {
    LG_RETURN_IF_ERROR(Expect("TO"));
  }
  LG_ASSIGN_OR_RETURN(stmt.principal, ParseQualifiedName());
  return ParsedStatement(std::move(stmt));
}

Result<ParsedStatement> Parser::ParseAlter() {
  LG_RETURN_IF_ERROR(Expect("TABLE"));
  AlterPolicyStatement stmt;
  LG_ASSIGN_OR_RETURN(stmt.table, ParseQualifiedName());
  if (Match("SET")) {
    LG_RETURN_IF_ERROR(Expect("ROW"));
    LG_RETURN_IF_ERROR(Expect("FILTER"));
    LG_RETURN_IF_ERROR(ExpectSymbol("("));
    LG_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
    LG_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt.action = AlterPolicyStatement::Action::kSetRowFilter;
    return ParsedStatement(std::move(stmt));
  }
  if (Match("DROP")) {
    LG_RETURN_IF_ERROR(Expect("ROW"));
    LG_RETURN_IF_ERROR(Expect("FILTER"));
    stmt.action = AlterPolicyStatement::Action::kDropRowFilter;
    return ParsedStatement(std::move(stmt));
  }
  if (Match("ALTER")) {
    LG_RETURN_IF_ERROR(Expect("COLUMN"));
    LG_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier());
    if (Match("SET")) {
      LG_RETURN_IF_ERROR(Expect("MASK"));
      LG_RETURN_IF_ERROR(ExpectSymbol("("));
      LG_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
      LG_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.action = AlterPolicyStatement::Action::kSetColumnMask;
      return ParsedStatement(std::move(stmt));
    }
    LG_RETURN_IF_ERROR(Expect("DROP"));
    LG_RETURN_IF_ERROR(Expect("MASK"));
    stmt.action = AlterPolicyStatement::Action::kDropColumnMask;
    return ParsedStatement(std::move(stmt));
  }
  return Status::InvalidArgument("unsupported ALTER TABLE action");
}

Result<ParsedStatement> Parser::ParseDrop() {
  DropTableStatement stmt;
  if (Match("VIEW")) {
    stmt.is_view = true;
  } else {
    LG_RETURN_IF_ERROR(Expect("TABLE"));
  }
  LG_ASSIGN_OR_RETURN(stmt.name, ParseQualifiedName());
  return ParsedStatement(std::move(stmt));
}

Result<ParsedStatement> Parser::ParseRefresh() {
  LG_RETURN_IF_ERROR(Expect("MATERIALIZED"));
  LG_RETURN_IF_ERROR(Expect("VIEW"));
  RefreshStatement stmt;
  LG_ASSIGN_OR_RETURN(stmt.view, ParseQualifiedName());
  return ParsedStatement(std::move(stmt));
}

// ---- Expressions -------------------------------------------------------------

Result<ExprPtr> Parser::ParseOr() {
  LG_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (Match("OR")) {
    LG_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = Or(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  LG_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (Match("AND")) {
    LG_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = And(std::move(left), std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (Match("NOT")) {
    LG_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return Not(std::move(child));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  LG_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL
  if (Match("IS")) {
    bool negated = Match("NOT");
    LG_RETURN_IF_ERROR(Expect("NULL"));
    return ExprPtr(std::make_shared<IsNullExpr>(std::move(left), negated));
  }
  bool negated = false;
  if (Peek().IsKeyword("NOT") &&
      (Peek(1).IsKeyword("IN") || Peek(1).IsKeyword("LIKE") ||
       Peek(1).IsKeyword("BETWEEN"))) {
    ++pos_;
    negated = true;
  }
  if (Match("IN")) {
    LG_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<Value> list;
    while (true) {
      LG_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      list.push_back(std::move(v));
      if (!MatchSymbol(",")) break;
    }
    LG_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ExprPtr(
        std::make_shared<InExpr>(std::move(left), std::move(list), negated));
  }
  if (Match("LIKE")) {
    if (Peek().kind != TokenKind::kString) {
      return Status::InvalidArgument("LIKE expects a string pattern");
    }
    std::string pattern = Advance().text;
    return ExprPtr(std::make_shared<LikeExpr>(std::move(left),
                                              std::move(pattern), negated));
  }
  if (Match("BETWEEN")) {
    LG_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
    LG_RETURN_IF_ERROR(Expect("AND"));
    LG_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
    ExprPtr range = And(BinOp(BinaryOpKind::kGe, left, std::move(low)),
                        BinOp(BinaryOpKind::kLe, left, std::move(high)));
    return negated ? Not(std::move(range)) : range;
  }
  struct CmpOp {
    const char* sym;
    BinaryOpKind op;
  };
  static const CmpOp kOps[] = {
      {"=", BinaryOpKind::kEq},  {"<>", BinaryOpKind::kNe},
      {"<=", BinaryOpKind::kLe}, {">=", BinaryOpKind::kGe},
      {"<", BinaryOpKind::kLt},  {">", BinaryOpKind::kGt},
  };
  for (const CmpOp& cmp : kOps) {
    if (MatchSymbol(cmp.sym)) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return BinOp(cmp.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  LG_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    if (MatchSymbol("+")) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = BinOp(BinaryOpKind::kAdd, std::move(left), std::move(right));
    } else if (MatchSymbol("-")) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = BinOp(BinaryOpKind::kSub, std::move(left), std::move(right));
    } else if (MatchSymbol("||")) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = Func("CONCAT", {std::move(left), std::move(right)});
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  LG_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
  while (true) {
    if (MatchSymbol("*")) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = BinOp(BinaryOpKind::kMul, std::move(left), std::move(right));
    } else if (MatchSymbol("/")) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = BinOp(BinaryOpKind::kDiv, std::move(left), std::move(right));
    } else if (MatchSymbol("%")) {
      LG_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = BinOp(BinaryOpKind::kMod, std::move(left), std::move(right));
    } else {
      return left;
    }
  }
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchSymbol("-")) {
    LG_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
    if (child->kind() == ExprKind::kLiteral) {
      const Value& v = static_cast<const LiteralExpr&>(*child).value();
      if (v.is_int()) return LitInt(-v.int_value());
      if (v.is_double()) return LitDouble(-v.double_value());
    }
    return ExprPtr(
        std::make_shared<UnaryOpExpr>(UnaryOpKind::kNegate, std::move(child)));
  }
  return ParsePrimary();
}

Result<Value> Parser::ParseLiteralValue() {
  bool negative = MatchSymbol("-");
  const Token& token = Peek();
  switch (token.kind) {
    case TokenKind::kInteger: {
      int64_t v = std::stoll(Advance().text);
      return Value::Int(negative ? -v : v);
    }
    case TokenKind::kFloat: {
      double v = std::stod(Advance().text);
      return Value::Double(negative ? -v : v);
    }
    case TokenKind::kString:
      if (negative) {
        return Status::InvalidArgument("cannot negate a string literal");
      }
      return Value::String(Advance().text);
    case TokenKind::kKeyword:
      if (negative) {
        return Status::InvalidArgument("cannot negate a keyword literal");
      }
      if (Match("NULL")) return Value::Null();
      if (Match("TRUE")) return Value::Bool(true);
      if (Match("FALSE")) return Value::Bool(false);
      break;
    default:
      break;
  }
  return Status::InvalidArgument("expected literal near '" + Peek().text +
                                 "'");
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& token = Peek();
  switch (token.kind) {
    case TokenKind::kInteger:
    case TokenKind::kFloat:
    case TokenKind::kString: {
      LG_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      return Lit(std::move(v));
    }
    case TokenKind::kKeyword: {
      if (Peek().IsKeyword("NULL") || Peek().IsKeyword("TRUE") ||
          Peek().IsKeyword("FALSE")) {
        LG_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
        return Lit(std::move(v));
      }
      if (Match("CAST")) {
        LG_RETURN_IF_ERROR(ExpectSymbol("("));
        LG_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
        LG_RETURN_IF_ERROR(Expect("AS"));
        if (Peek().kind != TokenKind::kIdentifier &&
            Peek().kind != TokenKind::kKeyword) {
          return Status::InvalidArgument("expected type in CAST");
        }
        LG_ASSIGN_OR_RETURN(TypeKind target, TypeKindFromName(Advance().text));
        LG_RETURN_IF_ERROR(ExpectSymbol(")"));
        return CastTo(std::move(child), target);
      }
      if (Match("CASE")) {
        std::vector<CaseExpr::Branch> branches;
        while (Match("WHEN")) {
          CaseExpr::Branch branch;
          LG_ASSIGN_OR_RETURN(branch.condition, ParseExpr());
          LG_RETURN_IF_ERROR(Expect("THEN"));
          LG_ASSIGN_OR_RETURN(branch.value, ParseExpr());
          branches.push_back(std::move(branch));
        }
        if (branches.empty()) {
          return Status::InvalidArgument("CASE requires at least one WHEN");
        }
        ExprPtr else_value;
        if (Match("ELSE")) {
          LG_ASSIGN_OR_RETURN(else_value, ParseExpr());
        }
        LG_RETURN_IF_ERROR(Expect("END"));
        return ExprPtr(std::make_shared<CaseExpr>(std::move(branches),
                                                  std::move(else_value)));
      }
      // Function-like keywords (MASK, FILTER, ...) used as calls.
      if (Peek(1).IsSymbol("(")) {
        std::string name = Advance().text;
        ++pos_;  // '('
        std::vector<ExprPtr> args;
        if (!Peek().IsSymbol(")")) {
          while (true) {
            LG_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!MatchSymbol(",")) break;
          }
        }
        LG_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Func(std::move(name), std::move(args));
      }
      return Status::InvalidArgument("unexpected keyword '" + token.text +
                                     "' in expression");
    }
    case TokenKind::kSymbol:
      if (MatchSymbol("(")) {
        LG_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        LG_RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      return Status::InvalidArgument("unexpected symbol '" + token.text +
                                     "' in expression");
    case TokenKind::kIdentifier: {
      LG_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
      if (MatchSymbol("(")) {
        // Function call. COUNT(*) is special-cased to COUNT(1).
        std::vector<ExprPtr> args;
        if (MatchSymbol("*")) {
          args.push_back(LitInt(1));
        } else if (!Peek().IsSymbol(")")) {
          while (true) {
            LG_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            args.push_back(std::move(arg));
            if (!MatchSymbol(",")) break;
          }
        }
        LG_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Func(std::move(name), std::move(args));
      }
      return Col(std::move(name));
    }
    case TokenKind::kEnd:
      break;
  }
  return Status::InvalidArgument("unexpected end of input in expression");
}

}  // namespace

Result<ParsedStatement> ParseSql(const std::string& sql) {
  LG_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  LG_ASSIGN_OR_RETURN(ParsedStatement stmt, parser.ParseStatement());
  // CREATE VIEW keeps the raw definition text for catalog storage: recover
  // it as the substring after " AS ".
  if (auto* view = std::get_if<CreateViewStatement>(&stmt)) {
    std::string upper = ToUpperAscii(sql);
    size_t as_pos = upper.find(" AS ");
    if (as_pos == std::string::npos) {
      return Status::Internal("CREATE VIEW without AS survived parsing");
    }
    view->sql_text = sql.substr(as_pos + 4);
  }
  return stmt;
}

Result<ExprPtr> ParseSqlExpr(const std::string& sql) {
  LG_ASSIGN_OR_RETURN(std::vector<Token> tokens, LexSql(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpr();
}

}  // namespace lakeguard
