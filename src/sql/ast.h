#ifndef LAKEGUARD_SQL_AST_H_
#define LAKEGUARD_SQL_AST_H_

#include <string>
#include <variant>
#include <vector>

#include "columnar/types.h"
#include "columnar/value.h"
#include "plan/plan.h"

namespace lakeguard {

/// SELECT ...: already lowered to an unresolved logical plan.
struct SelectStatement {
  PlanPtr plan;
};

/// CREATE TABLE name (col type [NOT NULL], ...).
struct CreateTableStatement {
  std::string name;
  Schema schema;
};

/// CREATE [MATERIALIZED] VIEW name AS <select-sql>. The definition is kept
/// as SQL text (re-parsed at expansion time under the definer's context),
/// plus the pre-parsed plan for validation.
struct CreateViewStatement {
  std::string name;
  bool materialized = false;
  /// Session-scoped (CREATE TEMP VIEW): lives in the Spark session, never
  /// in the catalog (§3.2.3's session state).
  bool temporary = false;
  std::string sql_text;
  PlanPtr plan;
};

/// INSERT INTO name VALUES (...), ... — or INSERT INTO name SELECT ...
struct InsertStatement {
  std::string table;
  std::vector<std::vector<Value>> rows;  // VALUES form
  PlanPtr query;                         // SELECT form (null for VALUES)
};

/// GRANT/REVOKE <privilege> ON <securable> TO/FROM <principal>.
struct GrantStatement {
  bool revoke = false;
  std::string privilege;
  std::string securable;
  std::string principal;
};

/// ALTER TABLE t SET ROW FILTER (expr) | DROP ROW FILTER
/// ALTER TABLE t ALTER COLUMN c SET MASK (expr) | DROP MASK.
struct AlterPolicyStatement {
  enum class Action : uint8_t {
    kSetRowFilter = 0,
    kDropRowFilter = 1,
    kSetColumnMask = 2,
    kDropColumnMask = 3,
  };
  std::string table;
  Action action = Action::kSetRowFilter;
  std::string column;  // masks only
  ExprPtr expr;        // set actions only
};

/// DROP TABLE name / DROP VIEW name (temporary views only).
struct DropTableStatement {
  std::string name;
  bool is_view = false;
};

/// REFRESH MATERIALIZED VIEW name.
struct RefreshStatement {
  std::string view;
};

/// Any parsed SQL statement.
using ParsedStatement =
    std::variant<SelectStatement, CreateTableStatement, CreateViewStatement,
                 InsertStatement, GrantStatement, AlterPolicyStatement,
                 DropTableStatement, RefreshStatement>;

}  // namespace lakeguard

#endif  // LAKEGUARD_SQL_AST_H_
