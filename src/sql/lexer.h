#ifndef LAKEGUARD_SQL_LEXER_H_
#define LAKEGUARD_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

enum class TokenKind : uint8_t {
  kIdentifier = 0,  // foo, `quoted id`
  kKeyword = 1,     // SELECT, FROM, ... (normalized uppercase in text)
  kInteger = 2,
  kFloat = 3,
  kString = 4,      // 'single quoted'
  kSymbol = 5,      // ( ) , . * + - / % = < > <= >= <> !=
  kEnd = 6,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keyword text is uppercased; identifiers keep case
  size_t position = 0;

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively from a
/// fixed list; everything else alphanumeric is an identifier.
Result<std::vector<Token>> LexSql(const std::string& sql);

}  // namespace lakeguard

#endif  // LAKEGUARD_SQL_LEXER_H_
