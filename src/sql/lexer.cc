#include "sql/lexer.h"

#include <cctype>
#include <set>

#include "common/strings.h"

namespace lakeguard {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* const kKeywords =
      new std::set<std::string>{
          "SELECT", "FROM",    "WHERE",  "GROUP",    "BY",       "HAVING",
          "ORDER",  "LIMIT",   "AS",     "AND",      "OR",       "NOT",
          "NULL",   "TRUE",    "FALSE",  "IN",       "IS",       "LIKE",
          "CASE",   "WHEN",    "THEN",   "ELSE",     "END",      "CAST",
          "JOIN",   "INNER",   "LEFT",   "CROSS",    "ON",       "ASC",
          "DESC",   "CREATE",  "TABLE",  "VIEW",     "MATERIALIZED",
          "INSERT", "INTO",    "VALUES", "GRANT",    "REVOKE",   "TO",
          "ALTER",  "SET",     "ROW",    "FILTER",   "DROP",     "COLUMN",
          "MASK",   "USE",     "CATALOG","SCHEMA",   "FUNCTION", "REFRESH",
          "BETWEEN","DISTINCT", "TEMP", "TEMPORARY",
      };
  return *kKeywords;
}

}  // namespace

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return kind == TokenKind::kSymbol && text == sym;
}

Result<std::vector<Token>> LexSql(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comments: "-- ... \n"
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    // -- string literal
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(token.position));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // -- quoted identifier
    if (c == '`') {
      std::string text;
      ++i;
      while (i < n && sql[i] != '`') text.push_back(sql[i++]);
      if (i >= n) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      ++i;
      token.kind = TokenKind::kIdentifier;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // -- number
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        if (sql[i] == '.') {
          // Stop if the next char is not a digit ("1." is invalid anyway,
          // and "t.1" never happens).
          if (is_float) break;
          if (i + 1 >= n || !std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
            break;
          }
          is_float = true;
        }
        text.push_back(sql[i++]);
      }
      token.kind = is_float ? TokenKind::kFloat : TokenKind::kInteger;
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // -- identifier / keyword
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        text.push_back(sql[i++]);
      }
      std::string upper = ToUpperAscii(text);
      if (Keywords().count(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = std::move(upper);
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = std::move(text);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // -- multi-char symbols
    token.kind = TokenKind::kSymbol;
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == "||") {
        token.text = two == "!=" ? "<>" : two;
        tokens.push_back(std::move(token));
        i += 2;
        continue;
      }
    }
    if (std::string("(),.*+-/%=<>").find(c) != std::string::npos) {
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at position " +
                                   std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace lakeguard
