#include "cluster/cluster.h"

#include "common/fault.h"
#include "common/id.h"

namespace lakeguard {

const char* ClusterTypeName(ClusterType type) {
  switch (type) {
    case ClusterType::kStandard:
      return "STANDARD";
    case ClusterType::kDedicated:
      return "DEDICATED";
  }
  return "?";
}

ClusterHost::ClusterHost(std::string host_id, Clock* clock,
                         int64_t cold_start_micros)
    : host_id_(std::move(host_id)),
      env_(clock),
      provisioner_(&env_, clock, cold_start_micros),
      dispatcher_(&provisioner_, clock) {}

Cluster::Cluster(ClusterConfig config, Clock* clock,
                 const UserDirectory* directory)
    : config_(std::move(config)), directory_(directory) {
  if (config_.cluster_id.empty()) {
    config_.cluster_id = IdGenerator::Next("cluster");
  }
  for (size_t i = 0; i < config_.num_hosts; ++i) {
    hosts_.push_back(std::make_unique<ClusterHost>(
        config_.cluster_id + "-host-" + std::to_string(i), clock,
        config_.sandbox_cold_start_micros));
  }
}

Result<ComputeContext> Cluster::AttachUser(const std::string& user) const {
  // Admission runs against the cluster manager's control plane; a transient
  // failure here must not be mistaken for a permission denial.
  LG_RETURN_IF_ERROR(fault::Inject("cluster.attach"));
  ComputeContext ctx;
  ctx.compute_id = config_.cluster_id;
  if (config_.type == ClusterType::kStandard) {
    ctx.can_isolate_user_code = true;
    ctx.privileged_access = false;
    return ctx;
  }
  // Dedicated.
  ctx.can_isolate_user_code = false;
  ctx.privileged_access = true;
  if (config_.assigned_principal.empty()) {
    return Status::FailedPrecondition(
        "dedicated cluster has no assigned principal");
  }
  if (config_.assigned_is_group) {
    if (!directory_->IsMember(user, config_.assigned_principal)) {
      return Status::PermissionDenied(
          "user '" + user + "' is not a member of group '" +
          config_.assigned_principal + "' assigned to dedicated cluster " +
          config_.cluster_id);
    }
    // §4.2: permissions down-scope to exactly the group's.
    ctx.downscope_group = config_.assigned_principal;
    return ctx;
  }
  if (user != config_.assigned_principal) {
    return Status::PermissionDenied("dedicated cluster " + config_.cluster_id +
                                    " is assigned to '" +
                                    config_.assigned_principal + "'");
  }
  return ctx;
}

Cluster* ClusterManager::CreateCluster(ClusterConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  clusters_.push_back(
      std::make_unique<Cluster>(std::move(config), clock_, directory_));
  return clusters_.back().get();
}

Result<Cluster*> ClusterManager::GetCluster(
    const std::string& cluster_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& cluster : clusters_) {
    if (cluster->id() == cluster_id) return cluster.get();
  }
  return Status::NotFound("no cluster " + cluster_id);
}

Status ClusterManager::TerminateCluster(const std::string& cluster_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = clusters_.begin(); it != clusters_.end(); ++it) {
    if ((*it)->id() == cluster_id) {
      clusters_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no cluster " + cluster_id);
}

std::vector<Cluster*> ClusterManager::ActiveClusters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Cluster*> out;
  for (const auto& cluster : clusters_) out.push_back(cluster.get());
  return out;
}

}  // namespace lakeguard
