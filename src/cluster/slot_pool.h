#ifndef LAKEGUARD_CLUSTER_SLOT_POOL_H_
#define LAKEGUARD_CLUSTER_SLOT_POOL_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// A job for the discrete-event utilization simulation (used by the
/// multi-user-vs-Membrane-vs-per-user-clusters comparison, §2.5/§7).
struct SimJob {
  std::string user;
  int64_t arrival_micros = 0;
  int64_t duration_micros = 0;
  /// True when the job contains user code (UDFs / driver code). Relevant
  /// for the Membrane baseline, which segregates such work.
  bool has_user_code = true;
};

/// Outcome of one placement simulation.
struct SimResult {
  int64_t makespan_micros = 0;
  double mean_wait_micros = 0;
  double utilization = 0;  // busy-slot-time / (slots * makespan)
  uint64_t jobs = 0;
};

/// A fixed-capacity slot pool driven in virtual time: jobs are admitted
/// FIFO as slots free up. This is deliberately simple — enough to expose
/// the *structural* utilization difference between one shared pool and
/// statically split / per-user pools.
class SlotPool {
 public:
  explicit SlotPool(size_t slots) : slots_(slots) {}

  size_t slots() const { return slots_; }

  /// Schedules `jobs` (must be sorted by arrival) and returns the metrics.
  SimResult Run(const std::vector<SimJob>& jobs) const;

 private:
  size_t slots_;
};

/// Runs `jobs` against N independent pools keyed by `key(job)` (per-user
/// clusters: key = user; Membrane: key = domain). Returns the combined
/// metrics over all pools with total slot capacity `slots_per_pool * pools`.
SimResult RunPartitionedPools(
    const std::vector<SimJob>& jobs, size_t slots_per_pool,
    const std::function<std::string(const SimJob&)>& key);

}  // namespace lakeguard

#endif  // LAKEGUARD_CLUSTER_SLOT_POOL_H_
