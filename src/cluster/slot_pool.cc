#include "cluster/slot_pool.h"

#include <algorithm>
#include <functional>
#include <map>

namespace lakeguard {

SimResult SlotPool::Run(const std::vector<SimJob>& jobs) const {
  SimResult result;
  result.jobs = jobs.size();
  if (jobs.empty() || slots_ == 0) return result;

  // Min-heap of slot-free times.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<int64_t>>
      free_at;
  for (size_t i = 0; i < slots_; ++i) free_at.push(0);

  double total_wait = 0;
  int64_t busy_time = 0;
  int64_t makespan = 0;
  for (const SimJob& job : jobs) {
    int64_t slot_free = free_at.top();
    free_at.pop();
    int64_t start = std::max(job.arrival_micros, slot_free);
    int64_t end = start + job.duration_micros;
    free_at.push(end);
    total_wait += static_cast<double>(start - job.arrival_micros);
    busy_time += job.duration_micros;
    makespan = std::max(makespan, end);
  }
  result.makespan_micros = makespan;
  result.mean_wait_micros = total_wait / static_cast<double>(jobs.size());
  result.utilization =
      makespan > 0 ? static_cast<double>(busy_time) /
                         (static_cast<double>(slots_) *
                          static_cast<double>(makespan))
                   : 0;
  return result;
}

SimResult RunPartitionedPools(
    const std::vector<SimJob>& jobs, size_t slots_per_pool,
    const std::function<std::string(const SimJob&)>& key) {
  std::map<std::string, std::vector<SimJob>> partitions;
  for (const SimJob& job : jobs) {
    partitions[key(job)].push_back(job);
  }
  SimResult combined;
  combined.jobs = jobs.size();
  double total_wait = 0;
  int64_t busy = 0;
  for (const auto& [name, part] : partitions) {
    SlotPool pool(slots_per_pool);
    SimResult r = pool.Run(part);
    combined.makespan_micros =
        std::max(combined.makespan_micros, r.makespan_micros);
    total_wait += r.mean_wait_micros * static_cast<double>(part.size());
    // Recover busy time from utilization to aggregate across pools.
    busy += static_cast<int64_t>(r.utilization *
                                 static_cast<double>(slots_per_pool) *
                                 static_cast<double>(r.makespan_micros));
  }
  size_t total_slots = slots_per_pool * partitions.size();
  combined.mean_wait_micros =
      jobs.empty() ? 0 : total_wait / static_cast<double>(jobs.size());
  combined.utilization =
      combined.makespan_micros > 0 && total_slots > 0
          ? static_cast<double>(busy) /
                (static_cast<double>(total_slots) *
                 static_cast<double>(combined.makespan_micros))
          : 0;
  return combined;
}

}  // namespace lakeguard
