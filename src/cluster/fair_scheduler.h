#ifndef LAKEGUARD_CLUSTER_FAIR_SCHEDULER_H_
#define LAKEGUARD_CLUSTER_FAIR_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace lakeguard {

/// Admission policy for the weighted-fair scheduler. `max_concurrent == 0`
/// disables admission entirely (every Admit returns immediately).
struct FairSchedulerConfig {
  size_t max_concurrent = 0;
  /// Waiters one tenant may park before further arrivals are shed.
  size_t max_queue_per_tenant = 8;
  /// Queue-wait bound; a waiter past it is shed with a typed retryable
  /// status the caller's backoff loop absorbs.
  int64_t max_wait_micros = 2'000'000;
};

struct FairSchedulerStats {
  uint64_t admitted = 0;
  uint64_t queued = 0;            ///< admissions that had to wait
  uint64_t shed_queue_full = 0;   ///< rejected: per-tenant queue bound
  uint64_t shed_timeout = 0;      ///< rejected: queue-wait bound
  uint64_t wait_micros = 0;       ///< total clock time spent waiting
  uint64_t peak_waiters = 0;      ///< deepest the wait set ever got
};

/// Weighted-fair admission over named tenants (stride scheduling on virtual
/// finish times). Each admission of tenant T advances T's virtual time by
/// `scale / weight(T)`, and the waiter with the *smallest* virtual finish
/// time is admitted when a slot frees — so a tenant with weight 2 gets twice
/// the admissions of a weight-1 tenant under contention, and a bursty tenant
/// cannot starve the others: its burst queues behind its own virtual time
/// while light tenants slot in at the floor. Waiting is deadline-bounded and
/// sheds typed `kUnavailable` (per-tenant queue bound, or wait timeout).
///
/// Time is charged to the injected Clock; under SimulatedClock a parked
/// waiter advances the virtual timeline itself, so single-threaded tests
/// observe deterministic shed behaviour in zero wall time.
class WeightedFairScheduler {
 public:
  WeightedFairScheduler(Clock* clock, FairSchedulerConfig config)
      : clock_(clock), config_(config) {}

  WeightedFairScheduler(const WeightedFairScheduler&) = delete;
  WeightedFairScheduler& operator=(const WeightedFairScheduler&) = delete;

  /// Unknown tenants default to weight 1; weight 0 is clamped to 1.
  void SetWeight(const std::string& tenant, uint32_t weight);

  /// Blocks until `tenant` is admitted or sheds with `kUnavailable`.
  /// Every successful Admit must be paired with one Release.
  Status Admit(const std::string& tenant);
  void Release();

  FairSchedulerStats stats() const;
  size_t running() const;

 private:
  struct Tenant {
    uint32_t weight = 1;
    uint64_t virtual_finish = 0;  ///< last assigned virtual finish time
    size_t waiting = 0;
  };
  /// One parked admission, ordered by (virtual finish, arrival ticket).
  struct Waiter {
    uint64_t virtual_finish;
    uint64_t ticket;
    bool operator<(const Waiter& other) const {
      return virtual_finish != other.virtual_finish
                 ? virtual_finish < other.virtual_finish
                 : ticket < other.ticket;
    }
  };

  /// Assigns the next virtual finish time for `tenant`; requires mu_ held.
  uint64_t ChargeLocked(Tenant& tenant);

  Clock* clock_;
  FairSchedulerConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, Tenant> tenants_;
  std::set<Waiter> waiters_;
  uint64_t virtual_time_ = 0;  ///< floor: max virtual finish admitted so far
  uint64_t next_ticket_ = 0;
  size_t running_ = 0;
  FairSchedulerStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CLUSTER_FAIR_SCHEDULER_H_
