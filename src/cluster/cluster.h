#ifndef LAKEGUARD_CLUSTER_CLUSTER_H_
#define LAKEGUARD_CLUSTER_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/principal.h"
#include "catalog/unity_catalog.h"
#include "common/clock.h"
#include "sandbox/dispatcher.h"
#include "sandbox/host_env.h"

namespace lakeguard {

/// Databricks' two governed compute types (§4, Fig. 9).
enum class ClusterType : uint8_t {
  /// Multi-user, fully isolated: client code and UDFs run in sandboxes, the
  /// engine is trusted, FGAC enforced locally.
  kStandard = 0,
  /// Privileged machine access (GPUs, drivers, RDDs): single identity (or a
  /// group with permission down-scoping), FGAC enforced externally.
  kDedicated = 1,
};

const char* ClusterTypeName(ClusterType type);

struct ClusterConfig {
  std::string cluster_id;  // generated when empty
  ClusterType type = ClusterType::kStandard;
  size_t num_hosts = 2;
  size_t slots_per_host = 4;
  /// Dedicated clusters: the single user OR group allowed to attach.
  std::string assigned_principal;
  bool assigned_is_group = false;
  /// Sandbox provisioning cold-start (modeled clock time).
  int64_t sandbox_cold_start_micros = 2'000'000;
};

/// One machine of a cluster (Fig. 7): a runtime environment plus the
/// decoupled cluster-management side (dispatcher + provisioner) that creates
/// sandboxes on it.
class ClusterHost {
 public:
  ClusterHost(std::string host_id, Clock* clock, int64_t cold_start_micros);

  const std::string& id() const { return host_id_; }
  SimulatedHostEnvironment& env() { return env_; }
  Dispatcher& dispatcher() { return dispatcher_; }

 private:
  std::string host_id_;
  SimulatedHostEnvironment env_;
  LocalSandboxProvisioner provisioner_;
  Dispatcher dispatcher_;
};

/// A governed cluster: hosts, admission control and the ComputeContext its
/// requests carry to Unity Catalog.
class Cluster {
 public:
  Cluster(ClusterConfig config, Clock* clock, const UserDirectory* directory);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const std::string& id() const { return config_.cluster_id; }
  ClusterType type() const { return config_.type; }
  const ClusterConfig& config() const { return config_; }
  size_t total_slots() const {
    return config_.num_hosts * config_.slots_per_host;
  }

  /// Admission control (§4.1/§4.2): Standard admits everyone; Dedicated
  /// admits only the assigned user, or members of the assigned group.
  Result<ComputeContext> AttachUser(const std::string& user) const;

  std::vector<std::unique_ptr<ClusterHost>>& hosts() { return hosts_; }
  /// The host whose dispatcher serves driver-adjacent sandbox requests.
  ClusterHost& driver_host() { return *hosts_.front(); }

 private:
  ClusterConfig config_;
  const UserDirectory* directory_;
  std::vector<std::unique_ptr<ClusterHost>> hosts_;
};

/// Creates and tracks clusters for a workspace.
class ClusterManager {
 public:
  ClusterManager(Clock* clock, const UserDirectory* directory)
      : clock_(clock), directory_(directory) {}

  ClusterManager(const ClusterManager&) = delete;
  ClusterManager& operator=(const ClusterManager&) = delete;

  Cluster* CreateCluster(ClusterConfig config);
  Result<Cluster*> GetCluster(const std::string& cluster_id) const;
  Status TerminateCluster(const std::string& cluster_id);
  std::vector<Cluster*> ActiveClusters() const;

  Clock* clock() const { return clock_; }

 private:
  Clock* clock_;
  const UserDirectory* directory_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Cluster>> clusters_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CLUSTER_CLUSTER_H_
