#include "cluster/fair_scheduler.h"

#include <algorithm>
#include <chrono>

namespace lakeguard {

namespace {
/// Stride scale: virtual time one weight-1 admission advances. Large enough
/// that integer division by any sane weight keeps resolution.
constexpr uint64_t kStrideScale = 1 << 20;
}  // namespace

void WeightedFairScheduler::SetWeight(const std::string& tenant,
                                      uint32_t weight) {
  std::lock_guard<std::mutex> lock(mu_);
  tenants_[tenant].weight = std::max<uint32_t>(1, weight);
}

uint64_t WeightedFairScheduler::ChargeLocked(Tenant& tenant) {
  // A tenant rejoining after idling starts at the current floor, not at its
  // stale virtual time — idling earns no credit and costs no debt.
  tenant.virtual_finish = std::max(tenant.virtual_finish, virtual_time_) +
                          kStrideScale / tenant.weight;
  return tenant.virtual_finish;
}

Status WeightedFairScheduler::Admit(const std::string& tenant_name) {
  std::unique_lock<std::mutex> lock(mu_);
  if (config_.max_concurrent == 0) {
    ++stats_.admitted;
    ++running_;
    return Status::OK();
  }
  Tenant& tenant = tenants_[tenant_name];
  if (running_ < config_.max_concurrent && waiters_.empty()) {
    virtual_time_ = std::max(virtual_time_, ChargeLocked(tenant));
    ++running_;
    ++stats_.admitted;
    return Status::OK();
  }
  if (tenant.waiting >= config_.max_queue_per_tenant) {
    // The burst bound is per tenant: one tenant flooding the queue sheds its
    // own arrivals while other tenants still enqueue.
    ++stats_.shed_queue_full;
    return Status::Unavailable(
        "tenant " + tenant_name + " has " + std::to_string(tenant.waiting) +
        " admissions queued (bound " +
        std::to_string(config_.max_queue_per_tenant) +
        "); retry with backoff");
  }
  Waiter me{ChargeLocked(tenant), next_ticket_++};
  waiters_.insert(me);
  ++tenant.waiting;
  ++stats_.queued;
  stats_.peak_waiters =
      std::max<uint64_t>(stats_.peak_waiters, waiters_.size());
  const int64_t enqueued_at = clock_->NowMicros();

  auto my_turn = [&] {
    return running_ < config_.max_concurrent && !waiters_.empty() &&
           !(*waiters_.begin() < me) && waiters_.begin()->ticket == me.ticket;
  };
  Status verdict = Status::OK();
  while (!my_turn()) {
    int64_t waited = clock_->NowMicros() - enqueued_at;
    if (waited >= config_.max_wait_micros) {
      ++stats_.shed_timeout;
      verdict = Status::Unavailable(
          "shed after waiting " + std::to_string(waited) +
          "us for a fair-queue slot; retry with backoff");
      break;
    }
    const int64_t before = clock_->NowMicros();
    cv_.wait_for(lock, std::chrono::milliseconds(2));
    if (clock_->NowMicros() == before) {
      // Simulated clock and nobody advanced it: charge the wait ourselves
      // so shed timeouts fire on the virtual timeline.
      lock.unlock();
      clock_->AdvanceMicros(10'000);
      lock.lock();
    }
  }
  stats_.wait_micros +=
      static_cast<uint64_t>(clock_->NowMicros() - enqueued_at);
  waiters_.erase(me);
  --tenant.waiting;
  if (!verdict.ok()) {
    cv_.notify_all();
    return verdict;
  }
  virtual_time_ = std::max(virtual_time_, me.virtual_finish);
  ++running_;
  ++stats_.admitted;
  cv_.notify_all();
  return Status::OK();
}

void WeightedFairScheduler::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ > 0) --running_;
  cv_.notify_all();
}

FairSchedulerStats WeightedFairScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t WeightedFairScheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

}  // namespace lakeguard
