#include "plan/plan_serde.h"

#include "columnar/ipc.h"
#include "expr/expr_serde.h"

namespace lakeguard {

void SerializePlan(const PlanPtr& plan, ByteWriter* writer) {
  writer->PutByte(static_cast<uint8_t>(plan->kind()));
  switch (plan->kind()) {
    case PlanKind::kTableRef: {
      const auto& node = static_cast<const TableRefNode&>(*plan);
      writer->PutString(node.name());
      writer->PutString(node.alias());
      break;
    }
    case PlanKind::kLocalRelation: {
      const auto& node = static_cast<const LocalRelationNode&>(*plan);
      std::vector<uint8_t> frame = ipc::SerializeBatch(node.data());
      writer->PutVarint(frame.size());
      writer->PutRaw(frame.data(), frame.size());
      break;
    }
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      writer->PutVarint(node.exprs().size());
      for (size_t i = 0; i < node.exprs().size(); ++i) {
        SerializeExpr(node.exprs()[i], writer);
        writer->PutString(node.names()[i]);
      }
      SerializePlan(node.child(), writer);
      break;
    }
    case PlanKind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(*plan);
      SerializeExpr(node.condition(), writer);
      SerializePlan(node.child(), writer);
      break;
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      writer->PutVarint(node.group_exprs().size());
      for (size_t i = 0; i < node.group_exprs().size(); ++i) {
        SerializeExpr(node.group_exprs()[i], writer);
        writer->PutString(node.group_names()[i]);
      }
      writer->PutVarint(node.agg_exprs().size());
      for (size_t i = 0; i < node.agg_exprs().size(); ++i) {
        SerializeExpr(node.agg_exprs()[i], writer);
        writer->PutString(node.agg_names()[i]);
      }
      SerializePlan(node.child(), writer);
      break;
    }
    case PlanKind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      writer->PutByte(static_cast<uint8_t>(node.join_type()));
      writer->PutBool(node.condition() != nullptr);
      if (node.condition()) SerializeExpr(node.condition(), writer);
      SerializePlan(node.left(), writer);
      SerializePlan(node.right(), writer);
      break;
    }
    case PlanKind::kSort: {
      const auto& node = static_cast<const SortNode&>(*plan);
      writer->PutVarint(node.keys().size());
      for (const SortKey& key : node.keys()) {
        SerializeExpr(key.expr, writer);
        writer->PutBool(key.ascending);
      }
      SerializePlan(node.child(), writer);
      break;
    }
    case PlanKind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(*plan);
      writer->PutZigzag(node.limit());
      SerializePlan(node.child(), writer);
      break;
    }
    case PlanKind::kSecureView: {
      const auto& node = static_cast<const SecureViewNode&>(*plan);
      writer->PutString(node.securable_name());
      SerializePlan(node.child(), writer);
      break;
    }
    case PlanKind::kResolvedScan: {
      const auto& node = static_cast<const ResolvedScanNode&>(*plan);
      writer->PutString(node.table_name());
      writer->PutString(node.storage_root());
      ipc::SerializeSchema(node.schema(), writer);
      break;
    }
    case PlanKind::kRemoteScan: {
      const auto& node = static_cast<const RemoteScanNode&>(*plan);
      writer->PutString(node.endpoint());
      ipc::SerializeSchema(node.schema(), writer);
      writer->PutBool(node.remote_plan() != nullptr);
      if (node.remote_plan()) SerializePlan(node.remote_plan(), writer);
      break;
    }
    case PlanKind::kExtension: {
      const auto& node = static_cast<const ExtensionNode&>(*plan);
      writer->PutString(node.extension_name());
      writer->PutVarint(node.payload().size());
      writer->PutRaw(node.payload().data(), node.payload().size());
      break;
    }
  }
}

Result<PlanPtr> DeserializePlan(ByteReader* reader) {
  LG_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->ReadByte());
  if (kind_byte > static_cast<uint8_t>(PlanKind::kExtension)) {
    return Status::DataLoss("invalid plan kind " + std::to_string(kind_byte));
  }
  switch (static_cast<PlanKind>(kind_byte)) {
    case PlanKind::kTableRef: {
      LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      LG_ASSIGN_OR_RETURN(std::string alias, reader->ReadString());
      return MakeTableRef(std::move(name), std::move(alias));
    }
    case PlanKind::kLocalRelation: {
      LG_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, reader->ReadBytes());
      LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(frame));
      return MakeLocalRelation(std::move(batch));
    }
    case PlanKind::kProject: {
      LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (uint64_t i = 0; i < n; ++i) {
        LG_ASSIGN_OR_RETURN(ExprPtr e, DeserializeExpr(reader));
        LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
        exprs.push_back(std::move(e));
        names.push_back(std::move(name));
      }
      LG_ASSIGN_OR_RETURN(PlanPtr child, DeserializePlan(reader));
      return MakeProject(std::move(child), std::move(exprs), std::move(names));
    }
    case PlanKind::kFilter: {
      LG_ASSIGN_OR_RETURN(ExprPtr cond, DeserializeExpr(reader));
      LG_ASSIGN_OR_RETURN(PlanPtr child, DeserializePlan(reader));
      return MakeFilter(std::move(child), std::move(cond));
    }
    case PlanKind::kAggregate: {
      LG_ASSIGN_OR_RETURN(uint64_t ng, reader->ReadVarint());
      std::vector<ExprPtr> group_exprs;
      std::vector<std::string> group_names;
      for (uint64_t i = 0; i < ng; ++i) {
        LG_ASSIGN_OR_RETURN(ExprPtr e, DeserializeExpr(reader));
        LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
        group_exprs.push_back(std::move(e));
        group_names.push_back(std::move(name));
      }
      LG_ASSIGN_OR_RETURN(uint64_t na, reader->ReadVarint());
      std::vector<ExprPtr> agg_exprs;
      std::vector<std::string> agg_names;
      for (uint64_t i = 0; i < na; ++i) {
        LG_ASSIGN_OR_RETURN(ExprPtr e, DeserializeExpr(reader));
        LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
        agg_exprs.push_back(std::move(e));
        agg_names.push_back(std::move(name));
      }
      LG_ASSIGN_OR_RETURN(PlanPtr child, DeserializePlan(reader));
      return MakeAggregate(std::move(child), std::move(group_exprs),
                           std::move(group_names), std::move(agg_exprs),
                           std::move(agg_names));
    }
    case PlanKind::kJoin: {
      LG_ASSIGN_OR_RETURN(uint8_t type, reader->ReadByte());
      if (type > static_cast<uint8_t>(JoinType::kCross)) {
        return Status::DataLoss("invalid join type");
      }
      LG_ASSIGN_OR_RETURN(bool has_cond, reader->ReadBool());
      ExprPtr cond;
      if (has_cond) {
        LG_ASSIGN_OR_RETURN(cond, DeserializeExpr(reader));
      }
      LG_ASSIGN_OR_RETURN(PlanPtr left, DeserializePlan(reader));
      LG_ASSIGN_OR_RETURN(PlanPtr right, DeserializePlan(reader));
      return MakeJoin(std::move(left), std::move(right),
                      static_cast<JoinType>(type), std::move(cond));
    }
    case PlanKind::kSort: {
      LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
      std::vector<SortKey> keys;
      for (uint64_t i = 0; i < n; ++i) {
        SortKey key;
        LG_ASSIGN_OR_RETURN(key.expr, DeserializeExpr(reader));
        LG_ASSIGN_OR_RETURN(key.ascending, reader->ReadBool());
        keys.push_back(std::move(key));
      }
      LG_ASSIGN_OR_RETURN(PlanPtr child, DeserializePlan(reader));
      return MakeSort(std::move(child), std::move(keys));
    }
    case PlanKind::kLimit: {
      LG_ASSIGN_OR_RETURN(int64_t limit, reader->ReadZigzag());
      LG_ASSIGN_OR_RETURN(PlanPtr child, DeserializePlan(reader));
      return MakeLimit(std::move(child), limit);
    }
    case PlanKind::kSecureView: {
      LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      LG_ASSIGN_OR_RETURN(PlanPtr child, DeserializePlan(reader));
      return MakeSecureView(std::move(child), std::move(name));
    }
    case PlanKind::kResolvedScan: {
      LG_ASSIGN_OR_RETURN(std::string table, reader->ReadString());
      LG_ASSIGN_OR_RETURN(std::string root, reader->ReadString());
      LG_ASSIGN_OR_RETURN(Schema schema, ipc::DeserializeSchema(reader));
      return MakeResolvedScan(std::move(table), std::move(root),
                              std::move(schema));
    }
    case PlanKind::kRemoteScan: {
      LG_ASSIGN_OR_RETURN(std::string endpoint, reader->ReadString());
      LG_ASSIGN_OR_RETURN(Schema schema, ipc::DeserializeSchema(reader));
      LG_ASSIGN_OR_RETURN(bool has_plan, reader->ReadBool());
      PlanPtr remote;
      if (has_plan) {
        LG_ASSIGN_OR_RETURN(remote, DeserializePlan(reader));
      }
      return MakeRemoteScan(std::move(remote), std::move(endpoint),
                            std::move(schema));
    }
    case PlanKind::kExtension: {
      LG_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
      LG_ASSIGN_OR_RETURN(std::vector<uint8_t> payload, reader->ReadBytes());
      return MakeExtension(std::move(name), std::move(payload));
    }
  }
  return Status::Internal("unreachable plan kind");
}

std::vector<uint8_t> PlanToBytes(const PlanPtr& plan) {
  ByteWriter writer;
  SerializePlan(plan, &writer);
  return writer.Release();
}

Result<PlanPtr> PlanFromBytes(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  return DeserializePlan(&reader);
}

}  // namespace lakeguard
