#include "plan/plan.h"

#include <sstream>

namespace lakeguard {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kTableRef:
      return "TableRef";
    case PlanKind::kLocalRelation:
      return "LocalRelation";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kSecureView:
      return "SecureView";
    case PlanKind::kResolvedScan:
      return "ResolvedScan";
    case PlanKind::kRemoteScan:
      return "RemoteScan";
    case PlanKind::kExtension:
      return "Extension";
  }
  return "?";
}

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeft:
      return "LEFT";
    case JoinType::kCross:
      return "CROSS";
  }
  return "?";
}

namespace {
void RenderTree(const PlanNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  if (depth > 0) *os << "+- ";
  *os << node.Describe() << "\n";
  for (const PlanPtr& child : node.children()) {
    RenderTree(*child, depth + 1, os);
  }
  // RemoteScan renders its remote sub-plan as a nested, clearly-marked block.
  if (node.kind() == PlanKind::kRemoteScan) {
    const auto& remote = static_cast<const RemoteScanNode&>(node);
    if (remote.remote_plan()) {
      for (int i = 0; i <= depth; ++i) *os << "  ";
      *os << "[remote sub-plan]\n";
      RenderTree(*remote.remote_plan(), depth + 2, os);
    }
  }
}
}  // namespace

std::string PlanNode::ToTreeString() const {
  std::ostringstream os;
  RenderTree(*this, 0, &os);
  return os.str();
}

bool TableRefNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kTableRef) return false;
  const auto& o = static_cast<const TableRefNode&>(other);
  return name_ == o.name_ && alias_ == o.alias_;
}
std::string TableRefNode::Describe() const {
  std::string out = "UnresolvedRelation [" + name_ + "]";
  if (!alias_.empty()) out += " AS " + alias_;
  return out;
}

bool LocalRelationNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kLocalRelation) return false;
  return data_.Equals(static_cast<const LocalRelationNode&>(other).data_);
}
std::string LocalRelationNode::Describe() const {
  return "LocalRelation " + data_.schema().ToString() + ", rows=" +
         std::to_string(data_.num_rows());
}

bool ProjectNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kProject) return false;
  const auto& o = static_cast<const ProjectNode&>(other);
  if (names_ != o.names_ || exprs_.size() != o.exprs_.size()) return false;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (!exprs_[i]->Equals(*o.exprs_[i])) return false;
  }
  return child_->Equals(*o.child_);
}
std::string ProjectNode::Describe() const {
  std::string out = "Project [";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
    if (!names_[i].empty()) out += " AS " + names_[i];
  }
  return out + "]";
}

bool FilterNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kFilter) return false;
  const auto& o = static_cast<const FilterNode&>(other);
  return condition_->Equals(*o.condition_) && child_->Equals(*o.child_);
}
std::string FilterNode::Describe() const {
  return "Filter [" + condition_->ToString() + "]";
}

bool AggregateNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kAggregate) return false;
  const auto& o = static_cast<const AggregateNode&>(other);
  if (group_names_ != o.group_names_ || agg_names_ != o.agg_names_ ||
      group_exprs_.size() != o.group_exprs_.size() ||
      agg_exprs_.size() != o.agg_exprs_.size()) {
    return false;
  }
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (!group_exprs_[i]->Equals(*o.group_exprs_[i])) return false;
  }
  for (size_t i = 0; i < agg_exprs_.size(); ++i) {
    if (!agg_exprs_[i]->Equals(*o.agg_exprs_[i])) return false;
  }
  return child_->Equals(*o.child_);
}
std::string AggregateNode::Describe() const {
  std::string out = "Aggregate [";
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += group_exprs_[i]->ToString();
  }
  out += "], [";
  for (size_t i = 0; i < agg_exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += agg_exprs_[i]->ToString();
    if (!agg_names_[i].empty()) out += " AS " + agg_names_[i];
  }
  return out + "]";
}

bool JoinNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kJoin) return false;
  const auto& o = static_cast<const JoinNode&>(other);
  if (join_type_ != o.join_type_) return false;
  if ((condition_ == nullptr) != (o.condition_ == nullptr)) return false;
  if (condition_ && !condition_->Equals(*o.condition_)) return false;
  return left_->Equals(*o.left_) && right_->Equals(*o.right_);
}
std::string JoinNode::Describe() const {
  std::string out = std::string("Join ") + JoinTypeName(join_type_);
  if (condition_) out += " [" + condition_->ToString() + "]";
  return out;
}

bool SortNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kSort) return false;
  const auto& o = static_cast<const SortNode&>(other);
  if (keys_.size() != o.keys_.size()) return false;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i].ascending != o.keys_[i].ascending) return false;
    if (!keys_[i].expr->Equals(*o.keys_[i].expr)) return false;
  }
  return child_->Equals(*o.child_);
}
std::string SortNode::Describe() const {
  std::string out = "Sort [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys_[i].expr->ToString();
    out += keys_[i].ascending ? " ASC" : " DESC";
  }
  return out + "]";
}

bool LimitNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kLimit) return false;
  const auto& o = static_cast<const LimitNode&>(other);
  return limit_ == o.limit_ && child_->Equals(*o.child_);
}
std::string LimitNode::Describe() const {
  return "Limit " + std::to_string(limit_);
}

bool SecureViewNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kSecureView) return false;
  const auto& o = static_cast<const SecureViewNode&>(other);
  return securable_name_ == o.securable_name_ && child_->Equals(*o.child_);
}
std::string SecureViewNode::Describe() const {
  return "SecureView [" + securable_name_ + "]";
}

bool ResolvedScanNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kResolvedScan) return false;
  const auto& o = static_cast<const ResolvedScanNode&>(other);
  return table_name_ == o.table_name_ && storage_root_ == o.storage_root_ &&
         schema_.Equals(o.schema_);
}
std::string ResolvedScanNode::Describe() const {
  return "Relation " + table_name_ + " " + schema_.ToString();
}

bool RemoteScanNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kRemoteScan) return false;
  const auto& o = static_cast<const RemoteScanNode&>(other);
  if (endpoint_ != o.endpoint_ || !schema_.Equals(o.schema_)) return false;
  if ((remote_plan_ == nullptr) != (o.remote_plan_ == nullptr)) return false;
  return remote_plan_ == nullptr || remote_plan_->Equals(*o.remote_plan_);
}
std::string RemoteScanNode::Describe() const {
  return "RemoteFilteredScan endpoint=" + endpoint_ + " " +
         schema_.ToString();
}

bool ExtensionNode::Equals(const PlanNode& other) const {
  if (other.kind() != PlanKind::kExtension) return false;
  const auto& o = static_cast<const ExtensionNode&>(other);
  return extension_name_ == o.extension_name_ && payload_ == o.payload_;
}
std::string ExtensionNode::Describe() const {
  return "Extension [" + extension_name_ + ", " +
         std::to_string(payload_.size()) + " payload bytes]";
}

PlanPtr MakeTableRef(std::string name, std::string alias) {
  return std::make_shared<TableRefNode>(std::move(name), std::move(alias));
}
PlanPtr MakeLocalRelation(RecordBatch data) {
  return std::make_shared<LocalRelationNode>(std::move(data));
}
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names) {
  return std::make_shared<ProjectNode>(std::move(child), std::move(exprs),
                                       std::move(names));
}
PlanPtr MakeFilter(PlanPtr child, ExprPtr condition) {
  return std::make_shared<FilterNode>(std::move(child), std::move(condition));
}
PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_exprs,
                      std::vector<std::string> group_names,
                      std::vector<ExprPtr> agg_exprs,
                      std::vector<std::string> agg_names) {
  return std::make_shared<AggregateNode>(
      std::move(child), std::move(group_exprs), std::move(group_names),
      std::move(agg_exprs), std::move(agg_names));
}
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, JoinType type, ExprPtr cond) {
  return std::make_shared<JoinNode>(std::move(left), std::move(right), type,
                                    std::move(cond));
}
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  return std::make_shared<SortNode>(std::move(child), std::move(keys));
}
PlanPtr MakeLimit(PlanPtr child, int64_t limit) {
  return std::make_shared<LimitNode>(std::move(child), limit);
}
PlanPtr MakeSecureView(PlanPtr child, std::string securable_name) {
  return std::make_shared<SecureViewNode>(std::move(child),
                                          std::move(securable_name));
}
PlanPtr MakeResolvedScan(std::string table, std::string root, Schema schema) {
  return std::make_shared<ResolvedScanNode>(std::move(table), std::move(root),
                                            std::move(schema));
}
PlanPtr MakeRemoteScan(PlanPtr remote_plan, std::string endpoint,
                       Schema schema) {
  return std::make_shared<RemoteScanNode>(std::move(remote_plan),
                                          std::move(endpoint),
                                          std::move(schema));
}
PlanPtr MakeExtension(std::string extension_name,
                      std::vector<uint8_t> payload) {
  return std::make_shared<ExtensionNode>(std::move(extension_name),
                                         std::move(payload));
}

bool PlanContains(const PlanPtr& plan,
                  const std::function<bool(const PlanNode&)>& pred) {
  if (pred(*plan)) return true;
  for (const PlanPtr& child : plan->children()) {
    if (PlanContains(child, pred)) return true;
  }
  if (plan->kind() == PlanKind::kRemoteScan) {
    const auto& remote = static_cast<const RemoteScanNode&>(*plan);
    if (remote.remote_plan() && PlanContains(remote.remote_plan(), pred)) {
      return true;
    }
  }
  return false;
}

size_t CountPlanNodes(const PlanPtr& plan, PlanKind kind) {
  size_t n = plan->kind() == kind ? 1 : 0;
  for (const PlanPtr& child : plan->children()) {
    n += CountPlanNodes(child, kind);
  }
  return n;
}

}  // namespace lakeguard
