#ifndef LAKEGUARD_PLAN_PLAN_SERDE_H_
#define LAKEGUARD_PLAN_PLAN_SERDE_H_

#include "common/serde.h"
#include "plan/plan.h"

namespace lakeguard {

/// Wire encoding of logical plan trees — the payload of ExecutePlan /
/// AnalyzePlan in the Connect protocol. Plans serialize recursively with a
/// kind byte per node; all plan kinds round-trip, including RemoteScan's
/// nested remote plan (eFGAC submits exactly this encoding to the serverless
/// endpoint).
void SerializePlan(const PlanPtr& plan, ByteWriter* writer);
Result<PlanPtr> DeserializePlan(ByteReader* reader);

/// Whole-message helpers.
std::vector<uint8_t> PlanToBytes(const PlanPtr& plan);
Result<PlanPtr> PlanFromBytes(const std::vector<uint8_t>& bytes);

}  // namespace lakeguard

#endif  // LAKEGUARD_PLAN_PLAN_SERDE_H_
