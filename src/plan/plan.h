#ifndef LAKEGUARD_PLAN_PLAN_H_
#define LAKEGUARD_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "expr/expr.h"

namespace lakeguard {

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Logical relation kinds — the Relation message family of the Connect
/// protocol (§3.2.2). Clients and the SQL frontend build *unresolved* trees
/// (kTableRef leaves); the analyzer resolves them into trees whose leaves
/// are kResolvedScan / kLocalRelation / kRemoteScan, with governance nodes
/// (kSecureView) injected along the way.
enum class PlanKind : uint8_t {
  kTableRef = 0,
  kLocalRelation = 1,
  kProject = 2,
  kFilter = 3,
  kAggregate = 4,
  kJoin = 5,
  kSort = 6,
  kLimit = 7,
  kSecureView = 8,
  kResolvedScan = 9,
  kRemoteScan = 10,
  kExtension = 11,
};

enum class JoinType : uint8_t {
  kInner = 0,
  kLeft = 1,
  kCross = 2,
};

const char* PlanKindName(PlanKind kind);
const char* JoinTypeName(JoinType type);

/// Base of the logical plan tree. Immutable; rewrites share subtrees.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  PlanKind kind() const { return kind_; }

  virtual std::vector<PlanPtr> children() const = 0;
  virtual bool Equals(const PlanNode& other) const = 0;

  /// One-line description of this node (no children).
  virtual std::string Describe() const = 0;

  /// Indented multi-line tree rendering (the Fig. 8 reproductions print
  /// source / resolved / rewritten trees with this).
  std::string ToTreeString() const;

 protected:
  explicit PlanNode(PlanKind kind) : kind_(kind) {}

 private:
  PlanKind kind_;
};

/// Unresolved named relation: "main.clinical.sensor_view". The optional
/// alias ("o" in `FROM orders o`) qualifies column references in joins.
class TableRefNode : public PlanNode {
 public:
  explicit TableRefNode(std::string name, std::string alias = "")
      : PlanNode(PlanKind::kTableRef),
        name_(std::move(name)),
        alias_(std::move(alias)) {}
  const std::string& name() const { return name_; }
  const std::string& alias() const { return alias_; }

  std::vector<PlanPtr> children() const override { return {}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  std::string name_;
  std::string alias_;
};

/// Inline client-provided data (`spark.createDataFrame` analogue).
class LocalRelationNode : public PlanNode {
 public:
  explicit LocalRelationNode(RecordBatch data)
      : PlanNode(PlanKind::kLocalRelation), data_(std::move(data)) {}
  const RecordBatch& data() const { return data_; }

  std::vector<PlanPtr> children() const override { return {}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  RecordBatch data_;
};

/// Projection with output names.
class ProjectNode : public PlanNode {
 public:
  ProjectNode(PlanPtr child, std::vector<ExprPtr> exprs,
              std::vector<std::string> names)
      : PlanNode(PlanKind::kProject),
        child_(std::move(child)),
        exprs_(std::move(exprs)),
        names_(std::move(names)) {}
  const PlanPtr& child() const { return child_; }
  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  const std::vector<std::string>& names() const { return names_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr child_;
  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
};

class FilterNode : public PlanNode {
 public:
  FilterNode(PlanPtr child, ExprPtr condition)
      : PlanNode(PlanKind::kFilter),
        child_(std::move(child)),
        condition_(std::move(condition)) {}
  const PlanPtr& child() const { return child_; }
  const ExprPtr& condition() const { return condition_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr child_;
  ExprPtr condition_;
};

/// Hash aggregation: GROUP BY `group_exprs`, computing `agg_exprs`
/// (FunctionCall nodes named SUM/COUNT/AVG/MIN/MAX).
class AggregateNode : public PlanNode {
 public:
  AggregateNode(PlanPtr child, std::vector<ExprPtr> group_exprs,
                std::vector<std::string> group_names,
                std::vector<ExprPtr> agg_exprs,
                std::vector<std::string> agg_names)
      : PlanNode(PlanKind::kAggregate),
        child_(std::move(child)),
        group_exprs_(std::move(group_exprs)),
        group_names_(std::move(group_names)),
        agg_exprs_(std::move(agg_exprs)),
        agg_names_(std::move(agg_names)) {}
  const PlanPtr& child() const { return child_; }
  const std::vector<ExprPtr>& group_exprs() const { return group_exprs_; }
  const std::vector<std::string>& group_names() const { return group_names_; }
  const std::vector<ExprPtr>& agg_exprs() const { return agg_exprs_; }
  const std::vector<std::string>& agg_names() const { return agg_names_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<std::string> group_names_;
  std::vector<ExprPtr> agg_exprs_;
  std::vector<std::string> agg_names_;
};

class JoinNode : public PlanNode {
 public:
  JoinNode(PlanPtr left, PlanPtr right, JoinType join_type, ExprPtr condition)
      : PlanNode(PlanKind::kJoin),
        left_(std::move(left)),
        right_(std::move(right)),
        join_type_(join_type),
        condition_(std::move(condition)) {}
  const PlanPtr& left() const { return left_; }
  const PlanPtr& right() const { return right_; }
  JoinType join_type() const { return join_type_; }
  const ExprPtr& condition() const { return condition_; }  // null for CROSS

  std::vector<PlanPtr> children() const override { return {left_, right_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr left_;
  PlanPtr right_;
  JoinType join_type_;
  ExprPtr condition_;
};

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

class SortNode : public PlanNode {
 public:
  SortNode(PlanPtr child, std::vector<SortKey> keys)
      : PlanNode(PlanKind::kSort),
        child_(std::move(child)),
        keys_(std::move(keys)) {}
  const PlanPtr& child() const { return child_; }
  const std::vector<SortKey>& keys() const { return keys_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr child_;
  std::vector<SortKey> keys_;
};

class LimitNode : public PlanNode {
 public:
  LimitNode(PlanPtr child, int64_t limit)
      : PlanNode(PlanKind::kLimit), child_(std::move(child)), limit_(limit) {}
  const PlanPtr& child() const { return child_; }
  int64_t limit() const { return limit_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr child_;
  int64_t limit_;
};

/// Governance barrier injected by the analyzer when expanding views, row
/// filters and column masks (Fig. 8's "SecureView"). Optimizer rules must
/// not push user expressions below this node, and UDF fusion must not cross
/// it — it marks the boundary between policy expressions (trusted) and user
/// expressions (untrusted).
class SecureViewNode : public PlanNode {
 public:
  SecureViewNode(PlanPtr child, std::string securable_name)
      : PlanNode(PlanKind::kSecureView),
        child_(std::move(child)),
        securable_name_(std::move(securable_name)) {}
  const PlanPtr& child() const { return child_; }
  const std::string& securable_name() const { return securable_name_; }

  std::vector<PlanPtr> children() const override { return {child_}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr child_;
  std::string securable_name_;
};

/// Analyzer output leaf: a governed table bound to its storage location.
class ResolvedScanNode : public PlanNode {
 public:
  ResolvedScanNode(std::string table_name, std::string storage_root,
                   Schema schema)
      : PlanNode(PlanKind::kResolvedScan),
        table_name_(std::move(table_name)),
        storage_root_(std::move(storage_root)),
        schema_(std::move(schema)) {}
  const std::string& table_name() const { return table_name_; }
  const std::string& storage_root() const { return storage_root_; }
  const Schema& schema() const { return schema_; }

  std::vector<PlanPtr> children() const override { return {}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  std::string table_name_;
  std::string storage_root_;
  Schema schema_;
};

/// eFGAC leaf (§3.4): the relation is processed *externally* on a Serverless
/// endpoint. Carries the unresolved sub-plan to submit remotely (into which
/// the optimizer pushes projections, filters and partial aggregations) and
/// the schema the remote endpoint reported at analyze time. Note what is
/// deliberately absent: any policy expression — the privileged cluster never
/// sees row-filter predicates or mask expressions.
class RemoteScanNode : public PlanNode {
 public:
  RemoteScanNode(PlanPtr remote_plan, std::string endpoint, Schema schema)
      : PlanNode(PlanKind::kRemoteScan),
        remote_plan_(std::move(remote_plan)),
        endpoint_(std::move(endpoint)),
        schema_(std::move(schema)) {}
  const PlanPtr& remote_plan() const { return remote_plan_; }
  const std::string& endpoint() const { return endpoint_; }
  const Schema& schema() const { return schema_; }

  std::vector<PlanPtr> children() const override { return {}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  PlanPtr remote_plan_;
  std::string endpoint_;
  Schema schema_;
};

/// A client-plugin relation embedded in the protocol (§3.2.2's extension
/// points, e.g. the Delta extension): an opaque payload the server-side
/// extension registered under `extension_name` expands into a plan during
/// analysis. Unknown extensions fail analysis with NotFound.
class ExtensionNode : public PlanNode {
 public:
  ExtensionNode(std::string extension_name, std::vector<uint8_t> payload)
      : PlanNode(PlanKind::kExtension),
        extension_name_(std::move(extension_name)),
        payload_(std::move(payload)) {}
  const std::string& extension_name() const { return extension_name_; }
  const std::vector<uint8_t>& payload() const { return payload_; }

  std::vector<PlanPtr> children() const override { return {}; }
  bool Equals(const PlanNode& other) const override;
  std::string Describe() const override;

 private:
  std::string extension_name_;
  std::vector<uint8_t> payload_;
};

// ---- Factory helpers -------------------------------------------------------

PlanPtr MakeTableRef(std::string name, std::string alias = "");
PlanPtr MakeLocalRelation(RecordBatch data);
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names);
PlanPtr MakeFilter(PlanPtr child, ExprPtr condition);
PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_exprs,
                      std::vector<std::string> group_names,
                      std::vector<ExprPtr> agg_exprs,
                      std::vector<std::string> agg_names);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right, JoinType type, ExprPtr cond);
PlanPtr MakeSort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr MakeLimit(PlanPtr child, int64_t limit);
PlanPtr MakeSecureView(PlanPtr child, std::string securable_name);
PlanPtr MakeResolvedScan(std::string table, std::string root, Schema schema);
PlanPtr MakeRemoteScan(PlanPtr remote_plan, std::string endpoint,
                       Schema schema);
PlanPtr MakeExtension(std::string extension_name,
                      std::vector<uint8_t> payload);

/// True if any node in the tree satisfies `pred`.
bool PlanContains(const PlanPtr& plan,
                  const std::function<bool(const PlanNode&)>& pred);

/// Counts nodes of `kind` in the tree.
size_t CountPlanNodes(const PlanPtr& plan, PlanKind kind);

}  // namespace lakeguard

#endif  // LAKEGUARD_PLAN_PLAN_H_
