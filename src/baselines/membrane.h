#ifndef LAKEGUARD_BASELINES_MEMBRANE_H_
#define LAKEGUARD_BASELINES_MEMBRANE_H_

#include "cluster/slot_pool.h"

namespace lakeguard {

/// Model of AWS EMR Membrane's architecture (§7): one cluster statically
/// split into a *trusted engine* domain and an *untrusted user-code*
/// domain, exchanging data via shuffles. Domains never overlap ("residual
/// data and state"), so capacity is provisioned per domain up front.
struct MembraneConfig {
  size_t total_slots = 16;
  /// Fraction of slots assigned to the untrusted (user-code) domain.
  double untrusted_fraction = 0.5;
};

/// Simulates FIFO placement of `jobs` on the split cluster: a job with user
/// code holds one trusted AND one untrusted slot for its duration (engine
/// work + user code proceed coupled through the shuffle boundary); a pure
/// SQL job holds only a trusted slot. Utilization is measured over ALL
/// slots — idle capacity stranded in the wrong domain is the cost the paper
/// calls out.
SimResult RunMembraneSimulation(const std::vector<SimJob>& jobs,
                                const MembraneConfig& config);

/// Lakeguard's counterpart on the same hardware: one shared pool (sandboxes
/// ride along on the same hosts), every job takes one slot.
SimResult RunSharedPoolSimulation(const std::vector<SimJob>& jobs,
                                  size_t total_slots);

/// Legacy per-user clusters: each user gets `slots_per_user` of their own.
SimResult RunPerUserClustersSimulation(const std::vector<SimJob>& jobs,
                                       size_t slots_per_user);

}  // namespace lakeguard

#endif  // LAKEGUARD_BASELINES_MEMBRANE_H_
