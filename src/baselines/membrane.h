#ifndef LAKEGUARD_BASELINES_MEMBRANE_H_
#define LAKEGUARD_BASELINES_MEMBRANE_H_

#include <optional>
#include <string>
#include <vector>

#include "catalog/securable.h"
#include "cluster/slot_pool.h"
#include "columnar/table.h"
#include "expr/evaluator.h"

namespace lakeguard {

/// Model of AWS EMR Membrane's architecture (§7): one cluster statically
/// split into a *trusted engine* domain and an *untrusted user-code*
/// domain, exchanging data via shuffles. Domains never overlap ("residual
/// data and state"), so capacity is provisioned per domain up front.
struct MembraneConfig {
  size_t total_slots = 16;
  /// Fraction of slots assigned to the untrusted (user-code) domain.
  double untrusted_fraction = 0.5;
};

/// Simulates FIFO placement of `jobs` on the split cluster: a job with user
/// code holds one trusted AND one untrusted slot for its duration (engine
/// work + user code proceed coupled through the shuffle boundary); a pure
/// SQL job holds only a trusted slot. Utilization is measured over ALL
/// slots — idle capacity stranded in the wrong domain is the cost the paper
/// calls out.
SimResult RunMembraneSimulation(const std::vector<SimJob>& jobs,
                                const MembraneConfig& config);

/// Lakeguard's counterpart on the same hardware: one shared pool (sandboxes
/// ride along on the same hosts), every job takes one slot.
SimResult RunSharedPoolSimulation(const std::vector<SimJob>& jobs,
                                  size_t total_slots);

/// Legacy per-user clusters: each user gets `slots_per_user` of their own.
SimResult RunPerUserClustersSimulation(const std::vector<SimJob>& jobs,
                                       size_t slots_per_user);

/// Cost accounting of one cryptographically enforced scan.
struct MembraneEnforceStats {
  size_t rows_in = 0;
  size_t rows_out = 0;
  /// Per-row integrity seals computed (rows_in) and re-verified at the
  /// domain boundary (again rows_in) — the crypto tax of the architecture.
  size_t seals_computed = 0;
  size_t seals_verified = 0;
  size_t sealed_bytes = 0;
  size_t verify_failures = 0;
};

/// Membrane-style cryptographic FGAC enforcement of a table scan: every row
/// crossing the trusted/untrusted domain boundary is sealed with a keyed
/// SHA-256 digest, re-verified on the trusted side, then the row filter and
/// column masks are applied by expression evaluation. Functionally
/// equivalent to Lakeguard's in-plan enforcement (same visible rows for the
/// same effective policy set) but pays a per-row crypto cost the in-plan
/// path avoids — the overhead EXPERIMENTS.md quantifies.
///
/// `row_filter`/`column_masks` are the *effective* policies for the querying
/// user (exempt masks already dropped), exactly what
/// `UnityCatalog::ResolveRelation` releases under local enforcement. Policy
/// expressions must use builtin functions only (cataloged UDFs would need a
/// sandbox, which this baseline deliberately lacks).
Result<Table> MembraneEnforceScan(
    const Table& raw, const std::optional<RowFilterPolicy>& row_filter,
    const std::vector<ColumnMaskPolicy>& column_masks, const EvalContext& ctx,
    const std::string& seal_key, MembraneEnforceStats* stats);

}  // namespace lakeguard

#endif  // LAKEGUARD_BASELINES_MEMBRANE_H_
