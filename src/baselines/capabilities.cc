#include "baselines/capabilities.h"

#include <functional>
#include <sstream>

namespace lakeguard {

std::vector<PlatformCapabilities> ReferencePlatforms() {
  std::vector<PlatformCapabilities> out;

  PlatformCapabilities membrane;
  membrane.name = "AWS EMR Membrane";
  membrane.unified_policies = "no";
  membrane.catalog_udfs = "no";
  membrane.single_user_langs = "SQL, Python, Scala, R";
  membrane.multi_user_langs = "none";
  membrane.row_filter = true;
  membrane.column_masks = true;
  membrane.views = true;
  membrane.materialized_views = false;
  membrane.external_filtering = "no";
  out.push_back(membrane);

  PlatformCapabilities lakeformation;
  lakeformation.name = "AWS Lake Formation";
  lakeformation.unified_policies = "no";
  lakeformation.catalog_udfs = "no";
  lakeformation.single_user_langs = "n/a";
  lakeformation.multi_user_langs = "n/a";
  lakeformation.row_filter = true;
  lakeformation.column_masks = true;
  lakeformation.views = false;
  lakeformation.materialized_views = false;
  lakeformation.external_filtering = "yes";
  out.push_back(lakeformation);

  PlatformCapabilities fabric;
  fabric.name = "Microsoft Fabric OneLake (Spark)";
  fabric.unified_policies = "DWH only";
  fabric.catalog_udfs = "no";
  fabric.single_user_langs = "SQL, Python, Scala, R";
  fabric.multi_user_langs = "SQL (DWH only)";
  fabric.row_filter = false;
  fabric.column_masks = false;
  fabric.views = true;
  fabric.materialized_views = false;
  fabric.external_filtering = "no";
  out.push_back(fabric);

  PlatformCapabilities biglake;
  biglake.name = "Google Dataproc with BigLake";
  biglake.unified_policies = "yes";
  biglake.catalog_udfs = "BigQuery Spark stored procedures";
  biglake.single_user_langs = "SQL, Python, Scala, R";
  biglake.multi_user_langs = "none";
  biglake.row_filter = true;
  biglake.column_masks = true;
  biglake.views = false;
  biglake.materialized_views = false;
  biglake.external_filtering = "BQ Storage API";
  out.push_back(biglake);

  return out;
}

std::string RenderCapabilityTable(
    const std::vector<PlatformCapabilities>& platforms) {
  std::ostringstream os;
  auto row = [&](const std::string& label,
                 const std::function<std::string(
                     const PlatformCapabilities&)>& get) {
    os << "  " << label << ":\n";
    for (const PlatformCapabilities& p : platforms) {
      os << "    " << p.name << ": " << get(p) << "\n";
    }
  };
  auto yn = [](bool b) { return b ? std::string("yes") : std::string("no"); };
  row("Unified policies for DW and DS/DE",
      [](const auto& p) { return p.unified_policies; });
  row("Catalog UDFs", [](const auto& p) { return p.catalog_udfs; });
  row("Single-user user code",
      [](const auto& p) { return p.single_user_langs; });
  row("Multi-user user code",
      [](const auto& p) { return p.multi_user_langs; });
  row("Row filters", [&](const auto& p) { return yn(p.row_filter); });
  row("Column masks", [&](const auto& p) { return yn(p.column_masks); });
  row("Views", [&](const auto& p) { return yn(p.views); });
  row("Materialized views",
      [&](const auto& p) { return yn(p.materialized_views); });
  row("External filtering",
      [](const auto& p) { return p.external_filtering; });
  return os.str();
}

}  // namespace lakeguard
