#include "baselines/membrane.h"

#include <algorithm>
#include <queue>

namespace lakeguard {

SimResult RunMembraneSimulation(const std::vector<SimJob>& jobs,
                                const MembraneConfig& config) {
  SimResult result;
  result.jobs = jobs.size();
  if (jobs.empty()) return result;

  size_t untrusted_slots = static_cast<size_t>(
      static_cast<double>(config.total_slots) * config.untrusted_fraction);
  untrusted_slots = std::max<size_t>(1, untrusted_slots);
  size_t trusted_slots =
      std::max<size_t>(1, config.total_slots - untrusted_slots);

  using MinHeap = std::priority_queue<int64_t, std::vector<int64_t>,
                                      std::greater<int64_t>>;
  MinHeap trusted, untrusted;
  for (size_t i = 0; i < trusted_slots; ++i) trusted.push(0);
  for (size_t i = 0; i < untrusted_slots; ++i) untrusted.push(0);

  double total_wait = 0;
  int64_t busy = 0;
  int64_t makespan = 0;
  for (const SimJob& job : jobs) {
    int64_t trusted_free = trusted.top();
    trusted.pop();
    int64_t start = std::max(job.arrival_micros, trusted_free);
    if (job.has_user_code) {
      int64_t untrusted_free = untrusted.top();
      untrusted.pop();
      start = std::max(start, untrusted_free);
      untrusted.push(start + job.duration_micros);
    }
    trusted.push(start + job.duration_micros);
    // Useful work is counted once per job: the second slot a user-code job
    // pins in the other domain is pure overhead of the split architecture.
    busy += job.duration_micros;
    total_wait += static_cast<double>(start - job.arrival_micros);
    makespan = std::max(makespan, start + job.duration_micros);
  }
  result.makespan_micros = makespan;
  result.mean_wait_micros = total_wait / static_cast<double>(jobs.size());
  result.utilization =
      makespan > 0
          ? static_cast<double>(busy) /
                (static_cast<double>(trusted_slots + untrusted_slots) *
                 static_cast<double>(makespan))
          : 0;
  return result;
}

SimResult RunSharedPoolSimulation(const std::vector<SimJob>& jobs,
                                  size_t total_slots) {
  SlotPool pool(total_slots);
  return pool.Run(jobs);
}

SimResult RunPerUserClustersSimulation(const std::vector<SimJob>& jobs,
                                       size_t slots_per_user) {
  return RunPartitionedPools(jobs, slots_per_user,
                             [](const SimJob& job) { return job.user; });
}

}  // namespace lakeguard
