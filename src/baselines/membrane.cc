#include "baselines/membrane.h"

#include <algorithm>
#include <queue>

#include "common/sha256.h"
#include "expr/functions.h"

namespace lakeguard {

SimResult RunMembraneSimulation(const std::vector<SimJob>& jobs,
                                const MembraneConfig& config) {
  SimResult result;
  result.jobs = jobs.size();
  if (jobs.empty()) return result;

  size_t untrusted_slots = static_cast<size_t>(
      static_cast<double>(config.total_slots) * config.untrusted_fraction);
  untrusted_slots = std::max<size_t>(1, untrusted_slots);
  size_t trusted_slots =
      std::max<size_t>(1, config.total_slots - untrusted_slots);

  using MinHeap = std::priority_queue<int64_t, std::vector<int64_t>,
                                      std::greater<int64_t>>;
  MinHeap trusted, untrusted;
  for (size_t i = 0; i < trusted_slots; ++i) trusted.push(0);
  for (size_t i = 0; i < untrusted_slots; ++i) untrusted.push(0);

  double total_wait = 0;
  int64_t busy = 0;
  int64_t makespan = 0;
  for (const SimJob& job : jobs) {
    int64_t trusted_free = trusted.top();
    trusted.pop();
    int64_t start = std::max(job.arrival_micros, trusted_free);
    if (job.has_user_code) {
      int64_t untrusted_free = untrusted.top();
      untrusted.pop();
      start = std::max(start, untrusted_free);
      untrusted.push(start + job.duration_micros);
    }
    trusted.push(start + job.duration_micros);
    // Useful work is counted once per job: the second slot a user-code job
    // pins in the other domain is pure overhead of the split architecture.
    busy += job.duration_micros;
    total_wait += static_cast<double>(start - job.arrival_micros);
    makespan = std::max(makespan, start + job.duration_micros);
  }
  result.makespan_micros = makespan;
  result.mean_wait_micros = total_wait / static_cast<double>(jobs.size());
  result.utilization =
      makespan > 0
          ? static_cast<double>(busy) /
                (static_cast<double>(trusted_slots + untrusted_slots) *
                 static_cast<double>(makespan))
          : 0;
  return result;
}

SimResult RunSharedPoolSimulation(const std::vector<SimJob>& jobs,
                                  size_t total_slots) {
  SlotPool pool(total_slots);
  return pool.Run(jobs);
}

SimResult RunPerUserClustersSimulation(const std::vector<SimJob>& jobs,
                                       size_t slots_per_user) {
  return RunPartitionedPools(jobs, slots_per_user,
                             [](const SimJob& job) { return job.user; });
}

namespace {

/// Resolves a raw policy expression against the table schema only: column
/// names become ColIdx references, builtin calls pass through, anything
/// needing the catalog or a sandbox (cataloged UDFs) is rejected.
Result<ExprPtr> ResolveAgainstSchema(const ExprPtr& raw,
                                     const Schema& schema) {
  Status failure = Status::OK();
  ExprPtr resolved = RewriteExpr(raw, [&](const ExprPtr& e) -> ExprPtr {
    if (!failure.ok()) return nullptr;
    if (e->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*e);
      if (ref.resolved()) return nullptr;
      int idx = schema.FindField(ref.name());
      if (idx < 0) {
        failure = Status::NotFound("policy references unknown column '" +
                                   ref.name() + "'");
        return nullptr;
      }
      return ColIdx(schema.field(static_cast<size_t>(idx)).name, idx);
    }
    if (e->kind() == ExprKind::kFunctionCall) {
      const auto& call = static_cast<const FunctionCallExpr&>(*e);
      if (!IsAggregateFunctionName(call.name()) &&
          !LookupBuiltin(call.name()).ok()) {
        failure = Status::Unimplemented(
            "membrane baseline enforces builtin policy functions only; '" +
            call.name() + "' would need a sandboxed UDF");
      }
    }
    return nullptr;
  });
  if (!failure.ok()) return failure;
  return resolved;
}

/// Keyed per-row integrity seal: SHA-256 over the seal key and every cell of
/// the row. (A model of Membrane's authenticated shuffle channel — the point
/// is the per-row crypto cost, not cryptographic novelty.)
std::string SealRow(const RecordBatch& batch, size_t row,
                    const std::string& key, size_t* bytes) {
  std::string payload = key;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    payload += '\x1f';
    payload += batch.CellAt(row, c).ToString();
  }
  if (bytes != nullptr) *bytes += payload.size();
  return Sha256::HexDigest(payload);
}

}  // namespace

Result<Table> MembraneEnforceScan(
    const Table& raw, const std::optional<RowFilterPolicy>& row_filter,
    const std::vector<ColumnMaskPolicy>& column_masks, const EvalContext& ctx,
    const std::string& seal_key, MembraneEnforceStats* stats) {
  MembraneEnforceStats local;
  MembraneEnforceStats& s = stats != nullptr ? *stats : local;

  // Resolve policies once against the schema.
  ExprPtr filter_expr;
  if (row_filter.has_value()) {
    if (!row_filter->predicate) {
      return Status::InvalidArgument("row filter has no predicate");
    }
    LG_ASSIGN_OR_RETURN(filter_expr,
                        ResolveAgainstSchema(row_filter->predicate,
                                             raw.schema()));
  }
  struct ResolvedMask {
    int column = -1;
    ExprPtr expr;
  };
  std::vector<ResolvedMask> masks;
  for (const ColumnMaskPolicy& mask : column_masks) {
    ResolvedMask rm;
    rm.column = raw.schema().FindField(mask.column);
    if (rm.column < 0) {
      return Status::InvalidArgument("mask references unknown column '" +
                                     mask.column + "'");
    }
    if (!mask.mask_expr) {
      return Status::InvalidArgument("mask has no expression");
    }
    LG_ASSIGN_OR_RETURN(rm.expr,
                        ResolveAgainstSchema(mask.mask_expr, raw.schema()));
    masks.push_back(std::move(rm));
  }

  Table out(raw.schema());
  for (const RecordBatch& batch : raw.batches()) {
    const size_t rows = batch.num_rows();
    s.rows_in += rows;

    // Untrusted side seals every row before it crosses the shuffle
    // boundary...
    std::vector<std::string> seals;
    seals.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      seals.push_back(SealRow(batch, r, seal_key, &s.sealed_bytes));
    }
    s.seals_computed += rows;
    // ...and the trusted side re-verifies each seal before enforcing
    // policy on the row.
    for (size_t r = 0; r < rows; ++r) {
      if (SealRow(batch, r, seal_key, nullptr) != seals[r]) {
        ++s.verify_failures;
      }
    }
    s.seals_verified += rows;
    if (s.verify_failures > 0) {
      return Status::DataLoss(
          "membrane integrity verification failed: a row was altered in "
          "transit across the domain boundary");
    }

    RecordBatch visible = batch;
    if (filter_expr) {
      LG_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                          EvaluatePredicateMask(filter_expr, visible, ctx));
      visible = ApplyMask(visible, mask);
    }
    if (!masks.empty() && visible.num_rows() > 0) {
      std::vector<Column> columns = visible.columns();
      for (const ResolvedMask& rm : masks) {
        LG_ASSIGN_OR_RETURN(Column masked,
                            EvaluateExpr(rm.expr, visible, ctx));
        columns[static_cast<size_t>(rm.column)] = std::move(masked);
      }
      visible = RecordBatch(visible.schema(), std::move(columns));
    }
    s.rows_out += visible.num_rows();
    if (visible.num_rows() > 0) {
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(visible)));
    }
  }
  return out;
}

}  // namespace lakeguard
