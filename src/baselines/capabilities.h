#ifndef LAKEGUARD_BASELINES_CAPABILITIES_H_
#define LAKEGUARD_BASELINES_CAPABILITIES_H_

#include <string>
#include <vector>

namespace lakeguard {

/// One row of the paper's Table 1: what a governance platform supports.
/// Lakeguard's row is *measured* by running probes against this library
/// (see bench/bench_table1_capabilities.cc); the competitor rows are the
/// published product properties quoted in the paper.
struct PlatformCapabilities {
  std::string name;
  std::string unified_policies;     // "yes" / "no" / qualifier
  std::string catalog_udfs;         // language or "no"
  std::string single_user_langs;    // e.g. "SQL, Python, Scala, R"
  std::string multi_user_langs;
  bool row_filter = false;
  bool column_masks = false;
  bool views = false;
  bool materialized_views = false;
  std::string external_filtering;   // "yes" / "no" / mechanism
};

/// The four comparison platforms exactly as Table 1 reports them.
std::vector<PlatformCapabilities> ReferencePlatforms();

/// Renders the capability matrix in the paper's row order.
std::string RenderCapabilityTable(
    const std::vector<PlatformCapabilities>& platforms);

/// Storage/maintenance cost of the legacy replica-per-audience approach to
/// FGAC (§2.2) versus policy-based enforcement. Pure arithmetic model.
struct ReplicaCostModel {
  uint64_t base_table_bytes = 0;
  size_t policy_audiences = 0;  // distinct filtered copies needed
  double refreshes_per_day = 1.0;

  /// Bytes stored under the replica approach (original + copies).
  uint64_t ReplicaStorageBytes() const {
    return base_table_bytes * (1 + policy_audiences);
  }
  /// Bytes stored under catalog-policy enforcement (original only).
  uint64_t PolicyStorageBytes() const { return base_table_bytes; }
  /// Bytes rewritten per day keeping replicas fresh.
  double ReplicaDailyChurnBytes() const {
    return static_cast<double>(base_table_bytes) *
           static_cast<double>(policy_audiences) * refreshes_per_day;
  }
};

}  // namespace lakeguard

#endif  // LAKEGUARD_BASELINES_CAPABILITIES_H_
