#ifndef LAKEGUARD_CORE_PLATFORM_H_
#define LAKEGUARD_CORE_PLATFORM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog_store.h"
#include "cluster/cluster.h"
#include "connect/client.h"
#include "connect/service.h"
#include "efgac/rewriter.h"
#include "efgac/serverless_backend.h"
#include "engine/engine.h"
#include "engine/extensions.h"
#include "serverless/gateway.h"
#include "serverless/workload_env.h"

namespace lakeguard {

/// One governed cluster with its engine and Connect service — what a
/// workspace user attaches to (Fig. 9).
struct ClusterHandle {
  Cluster* cluster = nullptr;
  std::unique_ptr<QueryEngine> engine;
  std::unique_ptr<ConnectService> service;
};

/// The whole platform in one object: clock, storage, Unity Catalog, cluster
/// manager, the Serverless eFGAC backend, and the Spark Connect gateway.
/// This is the top-level public API — examples, tests and benchmarks build
/// a `LakeguardPlatform` and drive everything through it.
class LakeguardPlatform {
 public:
  struct Options {
    /// Virtual time by default: cold starts and expirations are modeled
    /// deterministically. Switch off only for wall-clock benchmarks.
    bool use_simulated_clock = true;
    int64_t sandbox_cold_start_micros = 2'000'000;
    QueryEngineConfig engine_config;
    GatewayConfig gateway_config;
    size_t efgac_spill_threshold_bytes = 256 * 1024;
    /// Memory governance: hierarchical service/session/operation budgets.
    /// All-zero (the default) keeps every node unlimited — pure accounting,
    /// zero behaviour change.
    MemoryGovernorConfig memory_config;
    /// Admission control for every ConnectService of the platform. The
    /// default (max_concurrent_operations = 0) disables it.
    ConnectAdmissionConfig admission_config;
    /// Byte cap on each ConnectService's cached result frames (0 = off).
    size_t chunk_cache_limit_bytes = 0;
    /// Root directory for crash-consistent state (catalog WAL+checkpoints,
    /// audit WAL, session snapshots). Empty (the default) keeps the
    /// platform purely in-memory — zero behaviour change. Pointing two
    /// consecutive platforms at the same root models a process restart:
    /// the second recovers the first's published catalog epoch, audit
    /// trail and persisted sessions.
    std::string durable_root;
    /// Catalog WAL appends between checkpoint snapshots (durable mode).
    uint64_t catalog_checkpoint_every = 64;
  };

  LakeguardPlatform();
  explicit LakeguardPlatform(Options options);
  ~LakeguardPlatform();

  LakeguardPlatform(const LakeguardPlatform&) = delete;
  LakeguardPlatform& operator=(const LakeguardPlatform&) = delete;

  // -- Principals & auth -------------------------------------------------------
  Status AddUser(const std::string& user);
  Status AddGroup(const std::string& group);
  Status AddUserToGroup(const std::string& user, const std::string& group);
  void AddMetastoreAdmin(const std::string& user);
  /// Registers a bearer token for `user` on every current and future
  /// Connect service of this platform.
  void RegisterToken(const std::string& token, const std::string& user);

  // -- Compute ----------------------------------------------------------------
  /// Creates a multi-user Standard cluster (full Lakeguard isolation).
  ClusterHandle* CreateStandardCluster(size_t num_hosts = 2);
  /// Creates a Dedicated cluster assigned to a user or group; its engine is
  /// wired with the eFGAC rewriter and the serverless remote executor.
  ClusterHandle* CreateDedicatedCluster(const std::string& principal,
                                        bool is_group, size_t num_hosts = 2);

  /// Opens a Connect client session on `handle` as the owner of `token`.
  Result<ConnectClient> Connect(ClusterHandle* handle,
                                const std::string& token);

  /// Direct engine access for a user on a cluster (bypasses the Connect
  /// wire; used by tests/benchmarks that isolate engine behaviour).
  Result<ExecutionContext> DirectContext(ClusterHandle* handle,
                                         const std::string& user);

  // -- Serverless --------------------------------------------------------------
  SparkConnectGateway& gateway() { return *gateway_; }
  ServerlessBackend& serverless_backend() { return *serverless_backend_; }
  EfgacRewriter& efgac_rewriter() { return *efgac_rewriter_; }
  WorkloadEnvironmentRegistry& workload_environments() {
    return workload_envs_;
  }
  /// Connect protocol extensions installed on every engine of this
  /// platform (§3.2.2). Register before running queries that use them.
  ExtensionRegistry& extensions() { return extensions_; }

  // -- Infrastructure accessors -------------------------------------------------
  /// The platform-wide memory governor (service → session → operation
  /// budget hierarchy). Always present; unlimited unless Options configured
  /// limits.
  MemoryGovernor& memory_governor() { return *memory_governor_; }
  Clock* clock() { return clock_; }
  SimulatedClock* simulated_clock() { return simulated_clock_.get(); }
  CredentialAuthority& authority() { return *authority_; }
  ObjectStore& store() { return *store_; }
  UnityCatalog& catalog() { return *catalog_; }
  /// Platform-wide fused-policy program cache (shared by every engine).
  PolicyEvalCache& policy_cache() { return *policy_cache_; }
  ClusterManager& clusters() { return *cluster_manager_; }
  ClusterHandle* serverless_handle() { return serverless_handle_.get(); }

  // -- Durability ---------------------------------------------------------------
  /// OK when durability is off or recovery succeeded; otherwise the typed
  /// recovery error (the catalog is then poisoned — fail closed, nothing
  /// authorizes until the operator intervenes).
  Status durability_status() const { return durability_status_; }
  /// The catalog's durable store (null when durability is off).
  DurableCatalogStore* catalog_store() { return catalog_store_.get(); }
  /// The audit trail's write-ahead log (null when durability is off).
  DurableLog* audit_wal() { return audit_wal_.get(); }

 private:
  /// Opens the catalog store + audit WAL under durable_root, replays both
  /// into the (freshly constructed) catalog. Any failure is returned and
  /// the caller poisons the catalog.
  Status OpenDurability();
  ClusterHandle* FinishClusterHandle(Cluster* cluster, bool dedicated);
  std::unique_ptr<ClusterHandle> MakeHandle(Cluster* cluster, bool dedicated);

  Options options_;
  std::unique_ptr<SimulatedClock> simulated_clock_;
  Clock* clock_;
  std::unique_ptr<MemoryGovernor> memory_governor_;
  std::unique_ptr<CredentialAuthority> authority_;
  std::unique_ptr<ObjectStore> store_;
  // Durable stores are declared BEFORE the catalog: the catalog's AuditLog
  // drains into the audit WAL from its destructor, so the WAL must be
  // destroyed after it.
  std::unique_ptr<DurableCatalogStore> catalog_store_;
  std::unique_ptr<DurableLog> audit_wal_;
  Status durability_status_;
  std::unique_ptr<UnityCatalog> catalog_;
  std::unique_ptr<PolicyEvalCache> policy_cache_;
  std::unique_ptr<ClusterManager> cluster_manager_;

  // Serverless backbone (eFGAC + gateway backends).
  std::unique_ptr<ClusterHandle> serverless_handle_;
  std::unique_ptr<ServerlessBackend> serverless_backend_;
  std::unique_ptr<EfgacRemoteExecutor> efgac_remote_;
  std::unique_ptr<EfgacRewriter> efgac_rewriter_;
  std::unique_ptr<SparkConnectGateway> gateway_;
  WorkloadEnvironmentRegistry workload_envs_;
  ExtensionRegistry extensions_;

  // Declared before handles_ so every ConnectService dies before the
  // snapshot store it writes to.
  std::vector<std::unique_ptr<SnapshotStore>> session_stores_;

  std::vector<std::unique_ptr<ClusterHandle>> handles_;
  std::map<std::string, std::string> tokens_;  // token -> user
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CORE_PLATFORM_H_
