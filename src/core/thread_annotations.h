#ifndef LAKEGUARD_CORE_THREAD_ANNOTATIONS_H_
#define LAKEGUARD_CORE_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <shared_mutex>

/// Clang thread-safety-analysis capability attributes (-Wthread-safety),
/// compiled away on every other compiler. libstdc++'s std::mutex carries no
/// capability attributes, so annotated code locks through the `Mutex` /
/// `MutexLock` wrappers below — drop-in equivalents whose lock/unlock the
/// analysis understands.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LG_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef LG_THREAD_ANNOTATION__
#define LG_THREAD_ANNOTATION__(x)
#endif

#define LG_CAPABILITY(x) LG_THREAD_ANNOTATION__(capability(x))
#define LG_SCOPED_CAPABILITY LG_THREAD_ANNOTATION__(scoped_lockable)
#define LG_GUARDED_BY(x) LG_THREAD_ANNOTATION__(guarded_by(x))
#define LG_PT_GUARDED_BY(x) LG_THREAD_ANNOTATION__(pt_guarded_by(x))
#define LG_REQUIRES(...) \
  LG_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define LG_REQUIRES_SHARED(...) \
  LG_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define LG_ACQUIRE(...) \
  LG_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define LG_ACQUIRE_SHARED(...) \
  LG_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define LG_RELEASE(...) \
  LG_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define LG_RELEASE_SHARED(...) \
  LG_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define LG_RELEASE_GENERIC(...) \
  LG_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define LG_TRY_ACQUIRE(...) \
  LG_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define LG_EXCLUDES(...) LG_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define LG_RETURN_CAPABILITY(x) LG_THREAD_ANNOTATION__(lock_returned(x))
#define LG_NO_THREAD_SAFETY_ANALYSIS \
  LG_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace lakeguard {

/// std::mutex with the capability attribute the analysis needs. Satisfies
/// BasicLockable, so it also works with std::lock_guard/std::unique_lock in
/// code that is not under analysis.
class LG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LG_ACQUIRE() { mu_.lock(); }
  void unlock() LG_RELEASE() { mu_.unlock(); }
  bool try_lock() LG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over `Mutex`, annotated as a scoped capability so the analysis
/// tracks the critical section (std::lock_guard over an annotated mutex is
/// opaque to it).
class LG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LG_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LG_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::shared_mutex with the capability attribute: exclusive lock for
/// writers, shared lock for readers. Satisfies SharedLockable, so it also
/// works with std::shared_lock/std::unique_lock outside analysis.
class LG_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LG_ACQUIRE() { mu_.lock(); }
  void unlock() LG_RELEASE() { mu_.unlock(); }
  bool try_lock() LG_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() LG_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() LG_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII shared (reader) lock over `SharedMutex`.
class LG_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) LG_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderLock() LG_RELEASE_GENERIC() { mu_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over `SharedMutex`.
class LG_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) LG_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() LG_RELEASE() { mu_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CORE_THREAD_ANNOTATIONS_H_
