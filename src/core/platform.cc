#include "core/platform.h"

#include "common/id.h"
#include "common/sha256.h"

namespace lakeguard {

namespace {

/// Gateway backend wrapper over a ClusterHandle owned by the platform.
class PlatformGatewayBackend : public GatewayBackend {
 public:
  explicit PlatformGatewayBackend(ClusterHandle* handle) : handle_(handle) {}
  const std::string& id() const override { return handle_->cluster->id(); }
  ConnectService* service() override { return handle_->service.get(); }

 private:
  ClusterHandle* handle_;
};

}  // namespace

LakeguardPlatform::LakeguardPlatform() : LakeguardPlatform(Options()) {}

LakeguardPlatform::LakeguardPlatform(Options options)
    : options_(options) {
  if (options_.use_simulated_clock) {
    simulated_clock_ = std::make_unique<SimulatedClock>();
    clock_ = simulated_clock_.get();
  } else {
    clock_ = RealClock::Instance();
  }
  memory_governor_ = std::make_unique<MemoryGovernor>(options_.memory_config);
  authority_ = std::make_unique<CredentialAuthority>(clock_);
  store_ = std::make_unique<ObjectStore>(authority_.get());
  catalog_ = std::make_unique<UnityCatalog>(clock_, authority_.get());
  if (!options_.durable_root.empty()) {
    durability_status_ = OpenDurability();
    if (!durability_status_.ok()) {
      // Fail closed: a catalog that cannot prove what its last published
      // state was must not authorize anything.
      catalog_->Poison(durability_status_);
    }
  }
  // One fused-policy program cache for the whole platform: compiled scan
  // evaluators are shared across sessions and clusters (the cache key is
  // per (table, principal, policy-version), never per session).
  policy_cache_ = std::make_unique<PolicyEvalCache>();
  cluster_manager_ =
      std::make_unique<ClusterManager>(clock_, &catalog_->users());

  // The serverless backbone: one Standard-architecture cluster that serves
  // eFGAC sub-queries (§3.4) and is also usable as a gateway backend.
  ClusterConfig serverless_config;
  serverless_config.type = ClusterType::kStandard;
  serverless_config.num_hosts = 2;
  serverless_config.sandbox_cold_start_micros =
      options_.sandbox_cold_start_micros;
  Cluster* serverless_cluster =
      cluster_manager_->CreateCluster(serverless_config);
  serverless_handle_ = MakeHandle(serverless_cluster, /*dedicated=*/false);
  serverless_backend_ = std::make_unique<ServerlessBackend>(
      serverless_handle_->engine.get(), store_.get(), catalog_.get(),
      options_.efgac_spill_threshold_bytes, clock_);
  // The backend's inline result buffer charges a session-scoped budget node
  // of its own; unlimited configs make this pure accounting.
  serverless_backend_->set_memory_budget(
      memory_governor_->SessionBudget("efgac-backend"));
  efgac_remote_ =
      std::make_unique<EfgacRemoteExecutor>(serverless_backend_.get());
  efgac_rewriter_ = std::make_unique<EfgacRewriter>(
      catalog_.get(), serverless_backend_.get(), &extensions_);
  // The serverless engine may itself contain RemoteScan-free plans only;
  // still wire the remote executor for completeness.
  serverless_handle_->engine->services().remote = efgac_remote_.get();

  gateway_ = std::make_unique<SparkConnectGateway>(
      clock_,
      [this]() -> std::unique_ptr<GatewayBackend> {
        ClusterHandle* handle = CreateStandardCluster(2);
        return std::make_unique<PlatformGatewayBackend>(handle);
      },
      options_.gateway_config);
  // The gateway retains only token digests, never plaintext; migration and
  // failover re-authenticate by exchanging a digest for the live token
  // through this hook, so the platform's token registry stays the single
  // owner of the secrets.
  gateway_->set_token_revend_hook(
      [this](const std::string& digest) -> Result<std::string> {
        for (const auto& [token, user] : tokens_) {
          if (Sha256::HexDigest(token) == digest) return token;
        }
        return Status::NotFound("no registered token matches the digest");
      });
}

LakeguardPlatform::~LakeguardPlatform() = default;

Status LakeguardPlatform::AddUser(const std::string& user) {
  return catalog_->users().AddUser(user);
}

Status LakeguardPlatform::AddGroup(const std::string& group) {
  return catalog_->users().AddGroup(group);
}

Status LakeguardPlatform::AddUserToGroup(const std::string& user,
                                         const std::string& group) {
  return catalog_->users().AddUserToGroup(user, group);
}

Status LakeguardPlatform::OpenDurability() {
  DurableCatalogStoreOptions catalog_options;
  catalog_options.dir = options_.durable_root + "/catalog";
  catalog_options.checkpoint_every = options_.catalog_checkpoint_every;
  LG_ASSIGN_OR_RETURN(catalog_store_,
                      DurableCatalogStore::Open(catalog_options));
  DurableLogOptions audit_options;
  audit_options.dir = options_.durable_root + "/audit";
  DurableLogRecovery audit_recovery;
  LG_ASSIGN_OR_RETURN(audit_wal_,
                      DurableLog::Open(audit_options, &audit_recovery));
  LG_RETURN_IF_ERROR(catalog_->audit().AttachDurability(
      audit_wal_.get(), audit_recovery.records));
  return catalog_->AttachDurability(catalog_store_.get());
}

void LakeguardPlatform::AddMetastoreAdmin(const std::string& user) {
  // Durable mode can fail the publish (WAL error, simulated death); a
  // platform that cannot record who its admins are fails closed.
  Status status = catalog_->AddMetastoreAdmin(user);
  if (!status.ok()) catalog_->Poison(status);
}

void LakeguardPlatform::RegisterToken(const std::string& token,
                                      const std::string& user) {
  tokens_[token] = user;
  serverless_handle_->service->RegisterUserToken(token, user);
  for (const auto& handle : handles_) {
    handle->service->RegisterUserToken(token, user);
  }
}

std::unique_ptr<ClusterHandle> LakeguardPlatform::MakeHandle(Cluster* cluster,
                                                             bool dedicated) {
  auto handle = std::make_unique<ClusterHandle>();
  handle->cluster = cluster;

  EngineServices services;
  services.catalog = catalog_.get();
  services.store = store_.get();
  services.dispatcher = &cluster->driver_host().dispatcher();
  services.host_env = &cluster->driver_host().env();
  services.remote = efgac_remote_.get();  // null for the serverless handle
  services.extensions = &extensions_;
  services.policy_cache = policy_cache_.get();
  handle->engine =
      std::make_unique<QueryEngine>(services, options_.engine_config);
  if (dedicated) {
    handle->engine->set_pre_rewriter(efgac_rewriter_.get());
  }
  handle->service = std::make_unique<ConnectService>(
      handle->engine.get(), cluster, catalog_.get(), clock_);
  handle->service->set_memory_governor(memory_governor_.get());
  handle->service->set_admission_config(options_.admission_config);
  handle->service->set_chunk_cache_limit_bytes(
      options_.chunk_cache_limit_bytes);
  if (!options_.durable_root.empty() && durability_status_.ok()) {
    // One snapshot store per cluster, keyed by creation ORDINAL (cluster
    // ids come from a process-global generator and differ across
    // restarts): a restarted platform that re-creates its clusters in the
    // same order finds each service's sessions under the same directory
    // and can RecoverSessions() once tokens are re-registered.
    Result<std::unique_ptr<SnapshotStore>> session_store = SnapshotStore::Open(
        options_.durable_root + "/sessions/backend-" +
        std::to_string(session_stores_.size()));
    if (session_store.ok()) {
      session_stores_.push_back(std::move(session_store).value());
      handle->service->AttachSessionStore(session_stores_.back().get());
    } else {
      durability_status_ =
          session_store.status().WithContext("opening session store");
      catalog_->Poison(durability_status_);
    }
  }
  for (const auto& [token, user] : tokens_) {
    handle->service->RegisterUserToken(token, user);
  }
  return handle;
}

ClusterHandle* LakeguardPlatform::CreateStandardCluster(size_t num_hosts) {
  ClusterConfig config;
  config.type = ClusterType::kStandard;
  config.num_hosts = num_hosts;
  config.sandbox_cold_start_micros = options_.sandbox_cold_start_micros;
  Cluster* cluster = cluster_manager_->CreateCluster(config);
  handles_.push_back(MakeHandle(cluster, /*dedicated=*/false));
  return handles_.back().get();
}

ClusterHandle* LakeguardPlatform::CreateDedicatedCluster(
    const std::string& principal, bool is_group, size_t num_hosts) {
  ClusterConfig config;
  config.type = ClusterType::kDedicated;
  config.num_hosts = num_hosts;
  config.assigned_principal = principal;
  config.assigned_is_group = is_group;
  config.sandbox_cold_start_micros = options_.sandbox_cold_start_micros;
  Cluster* cluster = cluster_manager_->CreateCluster(config);
  handles_.push_back(MakeHandle(cluster, /*dedicated=*/true));
  return handles_.back().get();
}

Result<ConnectClient> LakeguardPlatform::Connect(ClusterHandle* handle,
                                                 const std::string& token) {
  return ConnectClient::Open(handle->service.get(), token);
}

Result<ExecutionContext> LakeguardPlatform::DirectContext(
    ClusterHandle* handle, const std::string& user) {
  LG_ASSIGN_OR_RETURN(ComputeContext compute,
                      handle->cluster->AttachUser(user));
  ExecutionContext context;
  context.user = user;
  context.session_id = IdGenerator::Next("direct");
  context.compute = compute;
  context.temp_views =
      std::make_shared<std::map<std::string, std::string>>();
  return context;
}

}  // namespace lakeguard
