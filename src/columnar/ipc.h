#ifndef LAKEGUARD_COLUMNAR_IPC_H_
#define LAKEGUARD_COLUMNAR_IPC_H_

#include <cstdint>
#include <vector>

#include "columnar/record_batch.h"
#include "common/serde.h"

namespace lakeguard {

/// Framed columnar batch serialization — this library's stand-in for Arrow
/// IPC. Batches cross three boundaries in this system, always in this
/// format: engine -> Connect client (result streaming), engine <-> sandbox
/// (UDF input/output), and eFGAC spill to cloud storage. Every frame is
/// integrity-checked with an FNV-64 trailer.
namespace ipc {

/// Serializes `schema` into `writer`.
void SerializeSchema(const Schema& schema, ByteWriter* writer);

/// Reads a schema previously written by SerializeSchema.
Result<Schema> DeserializeSchema(ByteReader* reader);

/// Serializes one column (type, validity, payload) into `writer`.
void SerializeColumn(const Column& column, ByteWriter* writer);

/// Reads a column previously written by SerializeColumn.
Result<Column> DeserializeColumn(ByteReader* reader);

/// Serializes a full framed batch: magic, schema, columns, checksum.
std::vector<uint8_t> SerializeBatch(const RecordBatch& batch);

/// Parses and integrity-checks a framed batch.
Result<RecordBatch> DeserializeBatch(const std::vector<uint8_t>& frame);

}  // namespace ipc
}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_IPC_H_
