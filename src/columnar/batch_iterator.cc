#include "columnar/batch_iterator.h"

namespace lakeguard {

namespace {

class TableBatchIterator : public BatchIterator {
 public:
  TableBatchIterator(Table table, size_t max_rows)
      : table_(std::move(table)), max_rows_(max_rows) {}

  const Schema& schema() const override { return table_.schema(); }

  Result<std::optional<RecordBatch>> Next() override {
    while (batch_index_ < table_.batches().size()) {
      const RecordBatch& batch = table_.batches()[batch_index_];
      if (offset_ >= batch.num_rows()) {
        ++batch_index_;
        offset_ = 0;
        continue;
      }
      if (max_rows_ == 0 ||
          (offset_ == 0 && batch.num_rows() <= max_rows_)) {
        ++batch_index_;
        offset_ = 0;
        return std::optional<RecordBatch>(batch);
      }
      size_t take = std::min(max_rows_, batch.num_rows() - offset_);
      RecordBatch slice = batch.Slice(offset_, take);
      offset_ += take;
      return std::optional<RecordBatch>(std::move(slice));
    }
    return std::optional<RecordBatch>();
  }

 private:
  Table table_;
  size_t max_rows_;
  size_t batch_index_ = 0;
  size_t offset_ = 0;
};

}  // namespace

BatchIteratorPtr MakeTableIterator(Table table, size_t max_rows) {
  return std::make_unique<TableBatchIterator>(std::move(table), max_rows);
}

BatchIteratorPtr MakeBatchIterator(Schema schema, RecordBatch batch,
                                   size_t max_rows) {
  Table table(std::move(schema));
  if (batch.num_rows() > 0 || batch.num_columns() > 0) {
    Status s = table.AppendBatch(std::move(batch));
    (void)s;  // schema mismatch is a programming error; surfaces on drain
  }
  return std::make_unique<TableBatchIterator>(std::move(table), max_rows);
}

Result<Table> DrainIterator(BatchIterator* iterator) {
  Table out(iterator->schema());
  while (true) {
    LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, iterator->Next());
    if (!batch.has_value()) break;
    if (batch->num_rows() == 0) continue;
    LG_RETURN_IF_ERROR(out.AppendBatch(std::move(*batch)));
  }
  return out;
}

}  // namespace lakeguard
