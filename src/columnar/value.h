#ifndef LAKEGUARD_COLUMNAR_VALUE_H_
#define LAKEGUARD_COLUMNAR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "columnar/types.h"
#include "common/status.h"

namespace lakeguard {

/// A single dynamically-typed scalar. Used at row granularity: literals in
/// expressions, UDF arguments crossing the sandbox boundary, and result
/// extraction on the Connect client. Binary values share the std::string
/// payload with kString and are distinguished by `is_binary_`.
class Value {
 public:
  /// NULL value.
  Value() : payload_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value out;
    out.payload_ = v;
    return out;
  }
  static Value Int(int64_t v) {
    Value out;
    out.payload_ = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.payload_ = v;
    return out;
  }
  static Value String(std::string v) {
    Value out;
    out.payload_ = std::move(v);
    return out;
  }
  static Value Binary(std::string v) {
    Value out;
    out.payload_ = std::move(v);
    out.is_binary_ = true;
    return out;
  }

  bool is_null() const {
    return std::holds_alternative<std::monostate>(payload_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(payload_); }
  bool is_int() const { return std::holds_alternative<int64_t>(payload_); }
  bool is_double() const { return std::holds_alternative<double>(payload_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(payload_) && !is_binary_;
  }
  bool is_binary() const {
    return std::holds_alternative<std::string>(payload_) && is_binary_;
  }
  bool is_numeric() const { return is_int() || is_double(); }

  TypeKind type() const;

  bool bool_value() const { return std::get<bool>(payload_); }
  int64_t int_value() const { return std::get<int64_t>(payload_); }
  double double_value() const { return std::get<double>(payload_); }
  const std::string& string_value() const {
    return std::get<std::string>(payload_);
  }

  /// Numeric widening: int -> double; error for non-numerics.
  Result<double> AsDouble() const;
  /// Narrowing to int64 (doubles truncate); error for non-numerics.
  Result<int64_t> AsInt() const;
  /// SQL CAST semantics to `target`; NULL casts to NULL of any type.
  Result<Value> CastTo(TypeKind target) const;

  /// SQL equality. NULLs are never equal to anything (returns false);
  /// use is_null() checks for three-valued logic at the caller.
  bool SqlEquals(const Value& other) const;

  /// Total ordering for sorting: NULL first, then by numeric/string value.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// Structural equality (NULL == NULL) for tests and maps.
  bool operator==(const Value& other) const;

  /// Stable hash consistent with operator== (used by hash agg/join).
  uint64_t Hash() const;

  /// Display rendering ("NULL", "42", "3.5", "abc", "0x1a2b" for binary).
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> payload_;
  bool is_binary_ = false;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_VALUE_H_
