#include "columnar/record_batch.h"

#include <algorithm>
#include <sstream>

namespace lakeguard {

Result<RecordBatch> RecordBatch::Make(Schema schema,
                                      std::vector<Column> columns) {
  if (schema.num_fields() != columns.size()) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(schema.num_fields()) +
        " fields but got " + std::to_string(columns.size()) + " columns");
  }
  size_t rows = columns.empty() ? 0 : columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].length() != rows) {
      return Status::InvalidArgument("column " + std::to_string(i) +
                                     " length mismatch");
    }
    if (columns[i].kind() != schema.field(i).type &&
        columns[i].kind() != TypeKind::kNull) {
      return Status::InvalidArgument(
          "column '" + schema.field(i).name + "' type mismatch: schema " +
          TypeKindName(schema.field(i).type) + " vs column " +
          TypeKindName(columns[i].kind()));
    }
  }
  return RecordBatch(std::move(schema), std::move(columns));
}

RecordBatch RecordBatch::Empty(Schema schema) {
  std::vector<Column> cols;
  cols.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    ColumnBuilder b(schema.field(i).type);
    cols.push_back(b.Finish());
  }
  return RecordBatch(std::move(schema), std::move(cols));
}

std::vector<Value> RecordBatch::Row(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& col : columns_) {
    out.push_back(col.GetValue(row));
  }
  return out;
}

RecordBatch RecordBatch::Filter(const std::vector<uint8_t>& mask) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& col : columns_) {
    cols.push_back(col.Filter(mask));
  }
  return RecordBatch(schema_, std::move(cols));
}

RecordBatch RecordBatch::Take(const std::vector<int64_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& col : columns_) {
    cols.push_back(col.Take(indices));
  }
  return RecordBatch(schema_, std::move(cols));
}

RecordBatch RecordBatch::SelectColumns(const std::vector<int>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (int i : indices) {
    cols.push_back(columns_[static_cast<size_t>(i)]);
  }
  return RecordBatch(schema_.Project(indices), std::move(cols));
}

RecordBatch RecordBatch::Slice(size_t offset, size_t count) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const Column& col : columns_) {
    cols.push_back(col.Slice(offset, count));
  }
  return RecordBatch(schema_, std::move(cols));
}

size_t RecordBatch::ByteSize() const {
  size_t bytes = 0;
  for (const Column& col : columns_) {
    bytes += col.ByteSize();
  }
  return bytes;
}

bool RecordBatch::Equals(const RecordBatch& other) const {
  if (!schema_.Equals(other.schema_)) return false;
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!columns_[i].Equals(other.columns_[i])) return false;
  }
  return true;
}

std::string RecordBatch::ToString(size_t max_rows) const {
  std::ostringstream os;
  std::vector<size_t> widths(schema_.num_fields());
  size_t rows = std::min(num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells(rows);
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    widths[c] = schema_.field(c).name.size();
  }
  for (size_t r = 0; r < rows; ++r) {
    cells[r].resize(schema_.num_fields());
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      cells[r][c] = columns_[c].GetValue(r).ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto rule = [&]() {
    os << "+";
    for (size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  rule();
  os << "|";
  for (size_t c = 0; c < schema_.num_fields(); ++c) {
    const std::string& name = schema_.field(c).name;
    os << " " << name << std::string(widths[c] - name.size() + 1, ' ') << "|";
  }
  os << "\n";
  rule();
  for (size_t r = 0; r < rows; ++r) {
    os << "|";
    for (size_t c = 0; c < schema_.num_fields(); ++c) {
      os << " " << cells[r][c]
         << std::string(widths[c] - cells[r][c].size() + 1, ' ') << "|";
    }
    os << "\n";
  }
  rule();
  if (num_rows() > rows) {
    os << "(" << num_rows() - rows << " more rows)\n";
  }
  return os.str();
}

Result<RecordBatch> ConcatBatches(const Schema& schema,
                                  const std::vector<RecordBatch>& batches) {
  std::vector<ColumnBuilder> builders;
  builders.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    builders.emplace_back(schema.field(i).type);
  }
  for (const RecordBatch& batch : batches) {
    if (batch.num_columns() != schema.num_fields()) {
      return Status::InvalidArgument("batch schema mismatch in concat");
    }
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      const Column& col = batch.column(c);
      for (size_t r = 0; r < col.length(); ++r) {
        LG_RETURN_IF_ERROR(builders[c].AppendValue(col.GetValue(r)));
      }
    }
  }
  std::vector<Column> cols;
  cols.reserve(builders.size());
  for (ColumnBuilder& b : builders) {
    cols.push_back(b.Finish());
  }
  return RecordBatch(schema, std::move(cols));
}

}  // namespace lakeguard
