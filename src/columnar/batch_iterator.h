#ifndef LAKEGUARD_COLUMNAR_BATCH_ITERATOR_H_
#define LAKEGUARD_COLUMNAR_BATCH_ITERATOR_H_

#include <memory>
#include <optional>

#include "columnar/table.h"

namespace lakeguard {

/// Pull-based stream of record batches — the unit of the streaming
/// execution pipeline. `Next()` yields the next batch, `std::nullopt` at
/// end-of-stream, or an error; after end-of-stream (or an error) further
/// calls keep returning end-of-stream. `schema()` is valid before the
/// first pull, so consumers (the Connect result header, remote-scan
/// plumbing) can describe the stream without materializing anything.
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;

  virtual const Schema& schema() const = 0;

  /// Pulls the next batch. Implementations must be cheap to destroy
  /// mid-stream: a consumer that stops early (LIMIT, a closed Connect
  /// operation) simply drops the iterator.
  virtual Result<std::optional<RecordBatch>> Next() = 0;
};

using BatchIteratorPtr = std::unique_ptr<BatchIterator>;

/// Iterator over an already-materialized table. When `max_rows` is
/// non-zero, stored batches are re-sliced so no emitted batch exceeds it
/// (the pipeline's bounded-batch invariant).
BatchIteratorPtr MakeTableIterator(Table table, size_t max_rows = 0);

/// Iterator over a single batch (optionally re-sliced, as above).
BatchIteratorPtr MakeBatchIterator(Schema schema, RecordBatch batch,
                                   size_t max_rows = 0);

/// Drains `iterator` into a table (the collect-all compatibility path).
Result<Table> DrainIterator(BatchIterator* iterator);

}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_BATCH_ITERATOR_H_
