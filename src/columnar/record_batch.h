#ifndef LAKEGUARD_COLUMNAR_RECORD_BATCH_H_
#define LAKEGUARD_COLUMNAR_RECORD_BATCH_H_

#include <string>
#include <vector>

#include "columnar/column.h"
#include "columnar/types.h"
#include "common/status.h"

namespace lakeguard {

/// A horizontal slice of a table: a schema plus one column per field, all of
/// equal length. RecordBatch is the unit that flows between operators,
/// across the sandbox channel, and over the Connect wire.
class RecordBatch {
 public:
  RecordBatch() = default;
  RecordBatch(Schema schema, std::vector<Column> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {}

  /// Verifies column count/length/type agreement with the schema.
  static Result<RecordBatch> Make(Schema schema, std::vector<Column> columns);

  /// An empty batch carrying only the schema.
  static RecordBatch Empty(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].length();
  }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Boxed cell accessor (row-oriented slow path).
  Value CellAt(size_t row, size_t col) const {
    return columns_[col].GetValue(row);
  }

  /// One row as boxed values.
  std::vector<Value> Row(size_t row) const;

  /// Keeps rows where mask[i] != 0.
  RecordBatch Filter(const std::vector<uint8_t>& mask) const;

  /// Gathers rows at `indices`.
  RecordBatch Take(const std::vector<int64_t>& indices) const;

  /// Keeps columns at `indices`, in order.
  RecordBatch SelectColumns(const std::vector<int>& indices) const;

  /// Rows [offset, offset+count).
  RecordBatch Slice(size_t offset, size_t count) const;

  /// Approximate memory footprint.
  size_t ByteSize() const;

  bool Equals(const RecordBatch& other) const;

  /// ASCII-table rendering (bounded to `max_rows`).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

/// Concatenates batches with identical schemas into one.
Result<RecordBatch> ConcatBatches(const Schema& schema,
                                  const std::vector<RecordBatch>& batches);

}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_RECORD_BATCH_H_
