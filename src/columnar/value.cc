#include "columnar/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/sha256.h"

namespace lakeguard {

TypeKind Value::type() const {
  if (is_null()) return TypeKind::kNull;
  if (is_bool()) return TypeKind::kBool;
  if (is_int()) return TypeKind::kInt64;
  if (is_double()) return TypeKind::kFloat64;
  if (is_binary()) return TypeKind::kBinary;
  return TypeKind::kString;
}

Result<double> Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_double()) return double_value();
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

Result<int64_t> Value::AsInt() const {
  if (is_int()) return int_value();
  if (is_double()) return static_cast<int64_t>(double_value());
  if (is_bool()) return static_cast<int64_t>(bool_value() ? 1 : 0);
  return Status::InvalidArgument("value is not numeric: " + ToString());
}

Result<Value> Value::CastTo(TypeKind target) const {
  if (is_null()) return Null();
  switch (target) {
    case TypeKind::kNull:
      return Null();
    case TypeKind::kBool:
      if (is_bool()) return *this;
      if (is_int()) return Bool(int_value() != 0);
      if (is_double()) return Bool(double_value() != 0.0);
      if (is_string()) {
        const std::string& s = string_value();
        if (s == "true" || s == "TRUE" || s == "1") return Bool(true);
        if (s == "false" || s == "FALSE" || s == "0") return Bool(false);
        return Status::InvalidArgument("cannot cast '" + s + "' to BOOLEAN");
      }
      break;
    case TypeKind::kInt64:
      if (is_int()) return *this;
      if (is_bool()) return Int(bool_value() ? 1 : 0);
      if (is_double()) return Int(static_cast<int64_t>(double_value()));
      if (is_string()) {
        errno = 0;
        char* end = nullptr;
        long long v = std::strtoll(string_value().c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || errno != 0) {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to BIGINT");
        }
        return Int(static_cast<int64_t>(v));
      }
      break;
    case TypeKind::kFloat64:
      if (is_double()) return *this;
      if (is_int()) return Double(static_cast<double>(int_value()));
      if (is_bool()) return Double(bool_value() ? 1.0 : 0.0);
      if (is_string()) {
        errno = 0;
        char* end = nullptr;
        double v = std::strtod(string_value().c_str(), &end);
        if (end == nullptr || *end != '\0' || errno != 0) {
          return Status::InvalidArgument("cannot cast '" + string_value() +
                                         "' to DOUBLE");
        }
        return Double(v);
      }
      break;
    case TypeKind::kString:
      if (is_string()) return *this;
      return String(ToString());
    case TypeKind::kBinary:
      if (is_binary()) return *this;
      if (is_string()) return Binary(string_value());
      break;
  }
  return Status::InvalidArgument(std::string("cannot cast ") +
                                 TypeKindName(type()) + " to " +
                                 TypeKindName(target));
}

bool Value::SqlEquals(const Value& other) const {
  if (is_null() || other.is_null()) return false;
  return Compare(other) == 0;
}

int Value::Compare(const Value& other) const {
  // NULLs sort first.
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  if (is_numeric() && other.is_numeric()) {
    double a = *AsDouble();
    double b = *other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (is_bool() && other.is_bool()) {
    return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
  }
  if (std::holds_alternative<std::string>(payload_) &&
      std::holds_alternative<std::string>(other.payload_)) {
    return string_value().compare(other.string_value());
  }
  // Heterogeneous comparison falls back to type ordering (stable, arbitrary).
  return static_cast<int>(type()) - static_cast<int>(other.type());
}

bool Value::operator==(const Value& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() != other.is_null()) return false;
  if (is_binary() != other.is_binary()) return false;
  if (type() != other.type()) {
    // int 1 and double 1.0 are distinct structurally.
    return false;
  }
  return Compare(other) == 0;
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_bool()) return bool_value() ? 0xabcd1234 : 0x4321dcba;
  if (is_int()) {
    int64_t v = int_value();
    return Fnv1a64(&v, sizeof(v)) ^ 0x1;
  }
  if (is_double()) {
    double v = double_value();
    if (v == 0.0) v = 0.0;  // normalize -0.0
    return Fnv1a64(&v, sizeof(v)) ^ 0x2;
  }
  return Fnv1a64(string_value()) ^ (is_binary_ ? 0x4 : 0x3);
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (is_int()) return std::to_string(int_value());
  if (is_double()) {
    double v = double_value();
    if (std::floor(v) == v && std::abs(v) < 1e15) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f", v);
      return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }
  if (is_binary()) {
    static const char kHex[] = "0123456789abcdef";
    std::string out = "0x";
    for (unsigned char c : string_value()) {
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xF]);
    }
    return out;
  }
  return string_value();
}

}  // namespace lakeguard
