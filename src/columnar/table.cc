#include "columnar/table.h"

namespace lakeguard {

size_t Table::num_rows() const {
  size_t n = 0;
  for (const RecordBatch& b : batches_) {
    n += b.num_rows();
  }
  return n;
}

size_t Table::ByteSize() const {
  size_t n = 0;
  for (const RecordBatch& b : batches_) {
    n += b.ByteSize();
  }
  return n;
}

Status Table::AppendBatch(RecordBatch batch) {
  if (!batch.schema().Equals(schema_)) {
    return Status::InvalidArgument("batch schema " +
                                   batch.schema().ToString() +
                                   " does not match table schema " +
                                   schema_.ToString());
  }
  batches_.push_back(std::move(batch));
  return Status::OK();
}

Result<RecordBatch> Table::Combine() const {
  return ConcatBatches(schema_, batches_);
}

bool Table::Equals(const Table& other) const {
  // Compares logical content (batch boundaries are not significant).
  auto a = Combine();
  auto b = other.Combine();
  if (!a.ok() || !b.ok()) return false;
  return a->Equals(*b);
}

std::string Table::ToString(size_t max_rows) const {
  auto combined = Combine();
  if (!combined.ok()) return "<invalid table: " + combined.status().ToString() + ">";
  return combined->ToString(max_rows);
}

TableBuilder::TableBuilder(Schema schema) : schema_(std::move(schema)) {
  builders_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    builders_.emplace_back(schema_.field(i).type);
  }
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (row.size() != builders_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema expects " +
        std::to_string(builders_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    LG_RETURN_IF_ERROR(builders_[i].AppendValue(row[i]).WithContext(
        "column '" + schema_.field(i).name + "'"));
  }
  ++rows_in_batch_;
  return Status::OK();
}

void TableBuilder::FinishBatch() {
  if (rows_in_batch_ == 0) return;
  std::vector<Column> cols;
  cols.reserve(builders_.size());
  for (ColumnBuilder& b : builders_) {
    cols.push_back(b.Finish());
  }
  batches_.emplace_back(schema_, std::move(cols));
  rows_in_batch_ = 0;
}

Table TableBuilder::Build() {
  FinishBatch();
  return Table(schema_, std::move(batches_));
}

}  // namespace lakeguard
