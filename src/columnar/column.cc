#include "columnar/column.h"

namespace lakeguard {

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (kind_) {
    case TypeKind::kNull:
      return Value::Null();
    case TypeKind::kBool:
      return Value::Bool(BoolAt(i));
    case TypeKind::kInt64:
      return Value::Int(IntAt(i));
    case TypeKind::kFloat64:
      return Value::Double(DoubleAt(i));
    case TypeKind::kString:
      return Value::String(StringAt(i));
    case TypeKind::kBinary:
      return Value::Binary(StringAt(i));
  }
  return Value::Null();
}

Column Column::FromInts(std::vector<int64_t> values,
                        std::vector<uint8_t> valid) {
  Column out;
  out.kind_ = TypeKind::kInt64;
  out.length_ = values.size();
  out.ints_ = std::move(values);
  out.valid_ = std::move(valid);
  return out;
}

Column Column::FromDoubles(std::vector<double> values,
                           std::vector<uint8_t> valid) {
  Column out;
  out.kind_ = TypeKind::kFloat64;
  out.length_ = values.size();
  out.doubles_ = std::move(values);
  out.valid_ = std::move(valid);
  return out;
}

Column Column::FromBools(std::vector<uint8_t> values,
                         std::vector<uint8_t> valid) {
  Column out;
  out.kind_ = TypeKind::kBool;
  out.length_ = values.size();
  out.bools_ = std::move(values);
  out.valid_ = std::move(valid);
  return out;
}

size_t Column::NullCount() const {
  size_t n = 0;
  for (uint8_t v : valid_) {
    if (v == 0) ++n;
  }
  return n;
}

Column Column::Filter(const std::vector<uint8_t>& mask) const {
  Column out;
  out.kind_ = kind_;
  size_t selected = 0;
  for (uint8_t m : mask) {
    if (m) ++selected;
  }
  out.ReserveStorage(selected);
  for (size_t i = 0; i < length_; ++i) {
    if (!mask[i]) continue;
    out.valid_.push_back(valid_[i]);
    switch (kind_) {
      case TypeKind::kInt64:
        out.ints_.push_back(ints_[i]);
        break;
      case TypeKind::kFloat64:
        out.doubles_.push_back(doubles_[i]);
        break;
      case TypeKind::kBool:
        out.bools_.push_back(bools_[i]);
        break;
      case TypeKind::kString:
      case TypeKind::kBinary:
        out.strings_.push_back(strings_[i]);
        break;
      case TypeKind::kNull:
        break;
    }
    ++out.length_;
  }
  return out;
}

Column Column::Take(const std::vector<int64_t>& indices) const {
  Column out;
  out.kind_ = kind_;
  out.length_ = indices.size();
  out.ReserveStorage(indices.size());
  for (int64_t idx : indices) {
    size_t i = static_cast<size_t>(idx);
    out.valid_.push_back(valid_[i]);
    switch (kind_) {
      case TypeKind::kInt64:
        out.ints_.push_back(ints_[i]);
        break;
      case TypeKind::kFloat64:
        out.doubles_.push_back(doubles_[i]);
        break;
      case TypeKind::kBool:
        out.bools_.push_back(bools_[i]);
        break;
      case TypeKind::kString:
      case TypeKind::kBinary:
        out.strings_.push_back(strings_[i]);
        break;
      case TypeKind::kNull:
        break;
    }
  }
  return out;
}

Column Column::Slice(size_t offset, size_t count) const {
  std::vector<int64_t> indices;
  indices.reserve(count);
  for (size_t i = offset; i < offset + count && i < length_; ++i) {
    indices.push_back(static_cast<int64_t>(i));
  }
  return Take(indices);
}

size_t Column::ByteSize() const {
  size_t bytes = valid_.size();
  bytes += ints_.size() * sizeof(int64_t);
  bytes += doubles_.size() * sizeof(double);
  bytes += bools_.size();
  for (const std::string& s : strings_) {
    // Each element costs its object header plus the allocated character
    // storage (capacity, not size — short strings live in the SSO buffer
    // already counted by sizeof, longer ones own a heap block). Counting
    // only s.size() undercounts wide string columns, which skews the
    // eFGAC inline-vs-spill decision toward "inline" exactly when the
    // result is most expensive to hold.
    bytes += sizeof(std::string);
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  return bytes;
}

bool Column::Equals(const Column& other) const {
  if (kind_ != other.kind_ || length_ != other.length_) return false;
  for (size_t i = 0; i < length_; ++i) {
    if (IsNull(i) != other.IsNull(i)) return false;
    if (IsNull(i)) continue;
    if (!(GetValue(i) == other.GetValue(i))) return false;
  }
  return true;
}

void Column::ReserveStorage(size_t n) {
  valid_.reserve(n);
  switch (kind_) {
    case TypeKind::kInt64:
      ints_.reserve(n);
      break;
    case TypeKind::kFloat64:
      doubles_.reserve(n);
      break;
    case TypeKind::kBool:
      bools_.reserve(n);
      break;
    case TypeKind::kString:
    case TypeKind::kBinary:
      strings_.reserve(n);
      break;
    case TypeKind::kNull:
      break;
  }
}

ColumnBuilder::ColumnBuilder(TypeKind kind) { col_.kind_ = kind; }

void ColumnBuilder::Reserve(size_t n) { col_.ReserveStorage(n); }

void ColumnBuilder::AppendNull() {
  col_.valid_.push_back(0);
  switch (col_.kind_) {
    case TypeKind::kInt64:
      col_.ints_.push_back(0);
      break;
    case TypeKind::kFloat64:
      col_.doubles_.push_back(0.0);
      break;
    case TypeKind::kBool:
      col_.bools_.push_back(0);
      break;
    case TypeKind::kString:
    case TypeKind::kBinary:
      col_.strings_.emplace_back();
      break;
    case TypeKind::kNull:
      break;
  }
  ++col_.length_;
}

void ColumnBuilder::AppendInt(int64_t v) {
  col_.valid_.push_back(1);
  col_.ints_.push_back(v);
  ++col_.length_;
}

void ColumnBuilder::AppendDouble(double v) {
  col_.valid_.push_back(1);
  col_.doubles_.push_back(v);
  ++col_.length_;
}

void ColumnBuilder::AppendBool(bool v) {
  col_.valid_.push_back(1);
  col_.bools_.push_back(v ? 1 : 0);
  ++col_.length_;
}

void ColumnBuilder::AppendString(std::string v) {
  col_.valid_.push_back(1);
  col_.strings_.push_back(std::move(v));
  ++col_.length_;
}

Status ColumnBuilder::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (col_.kind_) {
    case TypeKind::kInt64: {
      LG_ASSIGN_OR_RETURN(int64_t iv, v.AsInt());
      AppendInt(iv);
      return Status::OK();
    }
    case TypeKind::kFloat64: {
      LG_ASSIGN_OR_RETURN(double dv, v.AsDouble());
      AppendDouble(dv);
      return Status::OK();
    }
    case TypeKind::kBool:
      if (!v.is_bool()) {
        return Status::InvalidArgument("expected BOOLEAN, got " +
                                       v.ToString());
      }
      AppendBool(v.bool_value());
      return Status::OK();
    case TypeKind::kString:
      if (v.is_string() || v.is_binary()) {
        AppendString(v.string_value());
      } else {
        AppendString(v.ToString());
      }
      return Status::OK();
    case TypeKind::kBinary:
      if (!v.is_string() && !v.is_binary()) {
        return Status::InvalidArgument("expected BINARY, got " + v.ToString());
      }
      AppendString(v.string_value());
      return Status::OK();
    case TypeKind::kNull:
      AppendNull();
      return Status::OK();
  }
  return Status::Internal("unreachable column kind");
}

Column ColumnBuilder::Finish() {
  Column out = std::move(col_);
  col_ = Column();
  col_.kind_ = out.kind_;
  return out;
}

}  // namespace lakeguard
