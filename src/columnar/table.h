#ifndef LAKEGUARD_COLUMNAR_TABLE_H_
#define LAKEGUARD_COLUMNAR_TABLE_H_

#include <vector>

#include "columnar/record_batch.h"

namespace lakeguard {

/// An in-memory table: a schema and a sequence of batches. Materialized
/// query results and the storage layer's decoded parts both use this shape.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<RecordBatch> batches)
      : schema_(std::move(schema)), batches_(std::move(batches)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<RecordBatch>& batches() const { return batches_; }

  size_t num_rows() const;
  size_t ByteSize() const;

  Status AppendBatch(RecordBatch batch);

  /// All batches merged into one.
  Result<RecordBatch> Combine() const;

  bool Equals(const Table& other) const;

  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<RecordBatch> batches_;
};

/// Convenience row-oriented builder for tests, examples and workload
/// generators: declare a schema, append rows of boxed values, build batches.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Appends one row; values must match the schema arity.
  Status AppendRow(const std::vector<Value>& row);

  /// Closes the current batch if it has rows (controls batch granularity).
  void FinishBatch();

  /// Returns the accumulated table.
  Table Build();

 private:
  Schema schema_;
  std::vector<ColumnBuilder> builders_;
  size_t rows_in_batch_ = 0;
  std::vector<RecordBatch> batches_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_TABLE_H_
