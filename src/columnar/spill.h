#ifndef LAKEGUARD_COLUMNAR_SPILL_H_
#define LAKEGUARD_COLUMNAR_SPILL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "common/clock.h"
#include "common/status.h"

namespace lakeguard::spill {

/// One sorted (or insertion-ordered) run persisted to local disk as a file
/// of length-prefixed IPC frames. Runs are write-once, read-forward.
struct SpillRun {
  std::string path;
  uint64_t bytes = 0;
  uint64_t batches = 0;
  uint64_t rows = 0;
};

/// Owns a unique temp subdirectory holding one query's spill runs. The
/// destructor removes the whole directory — a crashed merge, a fault-injected
/// write, or an abandoned iterator can never leave files behind.
class SpillDir {
 public:
  /// Creates a fresh `lg-spill-<id>` directory under `base` (or the system
  /// temp dir when `base` is empty).
  static Result<std::unique_ptr<SpillDir>> Create(const std::string& base);

  ~SpillDir();
  SpillDir(const SpillDir&) = delete;
  SpillDir& operator=(const SpillDir&) = delete;

  const std::string& path() const { return path_; }

  /// Writes `batches` as one run file. Every frame write passes the
  /// "spill.write" fault point; a failure deletes the partial file and
  /// surfaces the typed (retry-composable) status.
  Result<SpillRun> WriteRun(const std::vector<RecordBatch>& batches,
                            Clock* clock = nullptr);

  /// Best-effort single-run delete ("spill.delete" fault point). Callers may
  /// ignore the status: the directory sweep reclaims anything left.
  Status DeleteRun(const SpillRun& run, Clock* clock = nullptr);

 private:
  explicit SpillDir(std::string path) : path_(std::move(path)) {}
  std::string path_;
  uint64_t next_run_ = 0;
};

/// Forward reader over one run. Each pull deserializes one frame; reads pass
/// the "spill.read" fault point.
class SpillRunReader {
 public:
  static Result<SpillRunReader> Open(const SpillRun& run);

  /// Next batch, or nullopt at end of run.
  Result<std::optional<RecordBatch>> Next(Clock* clock = nullptr);

 private:
  explicit SpillRunReader(std::unique_ptr<std::ifstream> in)
      : in_(std::move(in)) {}
  std::unique_ptr<std::ifstream> in_;
};

}  // namespace lakeguard::spill

#endif  // LAKEGUARD_COLUMNAR_SPILL_H_
