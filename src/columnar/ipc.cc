#include "columnar/ipc.h"

#include "common/sha256.h"

namespace lakeguard {
namespace ipc {

namespace {
constexpr uint32_t kMagic = 0x4C474231;  // "LGB1"
}  // namespace

void SerializeSchema(const Schema& schema, ByteWriter* writer) {
  writer->PutVarint(schema.num_fields());
  for (const FieldDef& f : schema.fields()) {
    writer->PutString(f.name);
    writer->PutByte(static_cast<uint8_t>(f.type));
    writer->PutBool(f.nullable);
  }
}

Result<Schema> DeserializeSchema(ByteReader* reader) {
  LG_ASSIGN_OR_RETURN(uint64_t n, reader->ReadVarint());
  // Every field costs at least 3 bytes on the wire; an untrusted count
  // larger than that is corrupt — reject before allocating.
  if (n > reader->remaining() / 3 + 1) {
    return Status::DataLoss("schema field count exceeds frame size");
  }
  std::vector<FieldDef> fields;
  fields.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    FieldDef f;
    LG_ASSIGN_OR_RETURN(f.name, reader->ReadString());
    LG_ASSIGN_OR_RETURN(uint8_t kind, reader->ReadByte());
    if (kind > static_cast<uint8_t>(TypeKind::kBinary)) {
      return Status::DataLoss("invalid type kind in schema: " +
                              std::to_string(kind));
    }
    f.type = static_cast<TypeKind>(kind);
    LG_ASSIGN_OR_RETURN(f.nullable, reader->ReadBool());
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

void SerializeColumn(const Column& column, ByteWriter* writer) {
  writer->PutByte(static_cast<uint8_t>(column.kind()));
  writer->PutVarint(column.length());
  for (size_t i = 0; i < column.length(); ++i) {
    writer->PutByte(column.IsNull(i) ? 0 : 1);
  }
  for (size_t i = 0; i < column.length(); ++i) {
    if (column.IsNull(i)) continue;
    switch (column.kind()) {
      case TypeKind::kInt64:
        writer->PutZigzag(column.IntAt(i));
        break;
      case TypeKind::kFloat64:
        writer->PutDouble(column.DoubleAt(i));
        break;
      case TypeKind::kBool:
        writer->PutByte(column.BoolAt(i) ? 1 : 0);
        break;
      case TypeKind::kString:
      case TypeKind::kBinary:
        writer->PutString(column.StringAt(i));
        break;
      case TypeKind::kNull:
        break;
    }
  }
}

Result<Column> DeserializeColumn(ByteReader* reader) {
  LG_ASSIGN_OR_RETURN(uint8_t kind_byte, reader->ReadByte());
  if (kind_byte > static_cast<uint8_t>(TypeKind::kBinary)) {
    return Status::DataLoss("invalid column kind: " +
                            std::to_string(kind_byte));
  }
  TypeKind kind = static_cast<TypeKind>(kind_byte);
  LG_ASSIGN_OR_RETURN(uint64_t length, reader->ReadVarint());
  // The validity vector alone needs `length` bytes; reject corrupt counts
  // before allocating.
  if (length > reader->remaining()) {
    return Status::DataLoss("column length exceeds frame size");
  }
  std::vector<uint8_t> valid(static_cast<size_t>(length));
  for (uint64_t i = 0; i < length; ++i) {
    LG_ASSIGN_OR_RETURN(valid[i], reader->ReadByte());
  }
  ColumnBuilder builder(kind);
  builder.Reserve(static_cast<size_t>(length));
  for (uint64_t i = 0; i < length; ++i) {
    if (!valid[i]) {
      builder.AppendNull();
      continue;
    }
    switch (kind) {
      case TypeKind::kInt64: {
        LG_ASSIGN_OR_RETURN(int64_t v, reader->ReadZigzag());
        builder.AppendInt(v);
        break;
      }
      case TypeKind::kFloat64: {
        LG_ASSIGN_OR_RETURN(double v, reader->ReadDouble());
        builder.AppendDouble(v);
        break;
      }
      case TypeKind::kBool: {
        LG_ASSIGN_OR_RETURN(uint8_t v, reader->ReadByte());
        builder.AppendBool(v != 0);
        break;
      }
      case TypeKind::kString:
      case TypeKind::kBinary: {
        LG_ASSIGN_OR_RETURN(std::string v, reader->ReadString());
        builder.AppendString(std::move(v));
        break;
      }
      case TypeKind::kNull:
        builder.AppendNull();
        break;
    }
  }
  Column col = builder.Finish();
  if (kind == TypeKind::kBinary) {
    // ColumnBuilder stores strings; re-tag handled by kind, nothing to do.
  }
  return col;
}

std::vector<uint8_t> SerializeBatch(const RecordBatch& batch) {
  ByteWriter body;
  SerializeSchema(batch.schema(), &body);
  body.PutVarint(batch.num_columns());
  for (size_t i = 0; i < batch.num_columns(); ++i) {
    SerializeColumn(batch.column(i), &body);
  }

  ByteWriter frame;
  frame.PutFixed64(kMagic);
  frame.PutVarint(body.size());
  frame.PutRaw(body.data().data(), body.size());
  frame.PutFixed64(Fnv1a64(body.data().data(), body.size()));
  return frame.Release();
}

Result<RecordBatch> DeserializeBatch(const std::vector<uint8_t>& frame) {
  ByteReader reader(frame);
  LG_ASSIGN_OR_RETURN(uint64_t magic, reader.ReadFixed64());
  if (magic != kMagic) {
    return Status::DataLoss("bad IPC frame magic");
  }
  LG_ASSIGN_OR_RETURN(uint64_t body_len, reader.ReadVarint());
  if (reader.remaining() < body_len + 8) {
    return Status::DataLoss("truncated IPC frame");
  }
  const uint8_t* body_start = frame.data() + reader.position();
  ByteReader body(body_start, static_cast<size_t>(body_len));
  ByteReader trailer(body_start + body_len, 8);
  LG_ASSIGN_OR_RETURN(uint64_t checksum, trailer.ReadFixed64());
  if (checksum != Fnv1a64(body_start, static_cast<size_t>(body_len))) {
    return Status::DataLoss("IPC frame checksum mismatch");
  }

  LG_ASSIGN_OR_RETURN(Schema schema, DeserializeSchema(&body));
  LG_ASSIGN_OR_RETURN(uint64_t num_cols, body.ReadVarint());
  std::vector<Column> cols;
  cols.reserve(static_cast<size_t>(num_cols));
  for (uint64_t i = 0; i < num_cols; ++i) {
    LG_ASSIGN_OR_RETURN(Column col, DeserializeColumn(&body));
    cols.push_back(std::move(col));
  }
  return RecordBatch::Make(std::move(schema), std::move(cols));
}

}  // namespace ipc
}  // namespace lakeguard
