#include "columnar/spill.h"

#include <filesystem>
#include <system_error>

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"

namespace lakeguard::spill {

namespace fs = std::filesystem;

Result<std::unique_ptr<SpillDir>> SpillDir::Create(const std::string& base) {
  std::error_code ec;
  fs::path root = base.empty() ? fs::temp_directory_path(ec) : fs::path(base);
  if (ec) {
    return Status::Internal("spill: no temp directory: " + ec.message());
  }
  fs::path dir = root / IdGenerator::Next("lg-spill");
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("spill: cannot create " + dir.string() + ": " +
                            ec.message());
  }
  return std::unique_ptr<SpillDir>(new SpillDir(dir.string()));
}

SpillDir::~SpillDir() {
  std::error_code ec;
  fs::remove_all(path_, ec);  // Best effort; nothing to do on failure.
}

Result<SpillRun> SpillDir::WriteRun(const std::vector<RecordBatch>& batches,
                                    Clock* clock) {
  SpillRun run;
  run.path = (fs::path(path_) / ("run-" + std::to_string(next_run_++))).string();
  {
    std::ofstream out(run.path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("spill: cannot open " + run.path);
    }
    for (const RecordBatch& batch : batches) {
      Status faulted = fault::Inject("spill.write", clock);
      if (!faulted.ok()) {
        out.close();
        std::error_code ec;
        fs::remove(run.path, ec);
        return faulted.WithContext("spill write");
      }
      std::vector<uint8_t> frame = ipc::SerializeBatch(batch);
      uint64_t len = frame.size();
      out.write(reinterpret_cast<const char*>(&len), sizeof(len));
      out.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
      if (!out) {
        out.close();
        std::error_code ec;
        fs::remove(run.path, ec);
        return Status::Internal("spill: short write to " + run.path);
      }
      run.bytes += sizeof(len) + frame.size();
      ++run.batches;
      run.rows += batch.num_rows();
    }
  }
  return run;
}

Status SpillDir::DeleteRun(const SpillRun& run, Clock* clock) {
  LG_RETURN_IF_ERROR(fault::Inject("spill.delete", clock));
  std::error_code ec;
  if (!fs::remove(run.path, ec) || ec) {
    return Status::Internal("spill: cannot delete " + run.path);
  }
  return Status::OK();
}

Result<SpillRunReader> SpillRunReader::Open(const SpillRun& run) {
  auto in = std::make_unique<std::ifstream>(run.path, std::ios::binary);
  if (!*in) {
    return Status::Internal("spill: cannot open " + run.path + " for read");
  }
  return SpillRunReader(std::move(in));
}

Result<std::optional<RecordBatch>> SpillRunReader::Next(Clock* clock) {
  uint64_t len = 0;
  in_->read(reinterpret_cast<char*>(&len), sizeof(len));
  if (in_->eof()) return std::optional<RecordBatch>();
  if (!*in_) return Status::Internal("spill: truncated run header");
  LG_RETURN_IF_ERROR(fault::Inject("spill.read", clock));
  std::vector<uint8_t> frame(len);
  in_->read(reinterpret_cast<char*>(frame.data()),
            static_cast<std::streamsize>(len));
  if (!*in_) return Status::Internal("spill: truncated run frame");
  LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(frame));
  return std::optional<RecordBatch>(std::move(batch));
}

}  // namespace lakeguard::spill
