#include "columnar/types.h"

#include "common/strings.h"

namespace lakeguard {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOLEAN";
    case TypeKind::kInt64:
      return "BIGINT";
    case TypeKind::kFloat64:
      return "DOUBLE";
    case TypeKind::kString:
      return "STRING";
    case TypeKind::kBinary:
      return "BINARY";
  }
  return "UNKNOWN";
}

Result<TypeKind> TypeKindFromName(const std::string& name) {
  std::string up = ToUpperAscii(name);
  if (up == "BOOLEAN" || up == "BOOL") return TypeKind::kBool;
  if (up == "BIGINT" || up == "INT" || up == "INTEGER" || up == "LONG" ||
      up == "SMALLINT" || up == "TINYINT") {
    return TypeKind::kInt64;
  }
  if (up == "DOUBLE" || up == "FLOAT" || up == "FLOAT8" || up == "REAL" ||
      up == "DECIMAL") {
    return TypeKind::kFloat64;
  }
  if (up == "STRING" || up == "TEXT" || up == "VARCHAR" || up == "CHAR" ||
      up == "DATE" || up == "TIMESTAMP") {
    // Dates/timestamps are carried as ISO-8601 strings in this engine.
    return TypeKind::kString;
  }
  if (up == "BINARY" || up == "BYTES" || up == "BLOB") return TypeKind::kBinary;
  if (up == "NULL" || up == "VOID") return TypeKind::kNull;
  return Status::InvalidArgument("unknown type name: " + name);
}

int Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<FieldDef> Schema::GetField(const std::string& name) const {
  int idx = FindField(name);
  if (idx < 0) return Status::NotFound("no field named '" + name + "'");
  return fields_[static_cast<size_t>(idx)];
}

Schema Schema::Project(const std::vector<int>& indices) const {
  std::vector<FieldDef> out;
  out.reserve(indices.size());
  for (int i : indices) {
    out.push_back(fields_[static_cast<size_t>(i)]);
  }
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += TypeKindName(fields_[i].type);
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace lakeguard
