#ifndef LAKEGUARD_COLUMNAR_TYPES_H_
#define LAKEGUARD_COLUMNAR_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// Physical/logical column types supported by the engine. The set matches
/// what the paper's workloads exercise: relational scalars plus BINARY for
/// the healthcare example's raw sensor payloads.
enum class TypeKind : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,
  kBinary = 5,
};

/// Returns the SQL-ish name of `kind` ("BIGINT", "STRING", ...).
const char* TypeKindName(TypeKind kind);

/// Parses a SQL type name (case-insensitive); accepts common aliases
/// (INT/LONG/BIGINT, DOUBLE/FLOAT8, TEXT/VARCHAR/STRING, ...).
Result<TypeKind> TypeKindFromName(const std::string& name);

/// A named, typed column slot in a schema.
struct FieldDef {
  std::string name;
  TypeKind type = TypeKind::kNull;
  bool nullable = true;

  bool operator==(const FieldDef& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// Ordered collection of fields describing a RecordBatch / Table / plan
/// output. Field lookup is case-insensitive, as in Spark SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldDef> fields) : fields_(std::move(fields)) {}

  const std::vector<FieldDef>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const FieldDef& field(size_t i) const { return fields_[i]; }

  /// Returns the index of the field named `name` (case-insensitive), or -1.
  int FindField(const std::string& name) const;

  /// Returns the field named `name` or NotFound.
  Result<FieldDef> GetField(const std::string& name) const;

  void AddField(FieldDef field) { fields_.push_back(std::move(field)); }

  /// Schema with only the fields at `indices`, in that order.
  Schema Project(const std::vector<int>& indices) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }
  bool operator==(const Schema& other) const { return Equals(other); }

  /// "(a BIGINT, b STRING NOT NULL)" rendering for messages and plans.
  std::string ToString() const;

 private:
  std::vector<FieldDef> fields_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_TYPES_H_
