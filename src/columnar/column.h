#ifndef LAKEGUARD_COLUMNAR_COLUMN_H_
#define LAKEGUARD_COLUMNAR_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "columnar/value.h"
#include "common/status.h"

namespace lakeguard {

/// An immutable typed column with a validity vector, the unit of vectorized
/// execution. Storage is one contiguous vector per physical type; only the
/// vector matching `kind()` is populated. Strings and binary share the
/// string storage.
class Column {
 public:
  Column() : kind_(TypeKind::kNull), length_(0) {}

  TypeKind kind() const { return kind_; }
  size_t length() const { return length_; }
  bool IsNull(size_t i) const { return valid_[i] == 0; }

  int64_t IntAt(size_t i) const { return ints_[i]; }
  double DoubleAt(size_t i) const { return doubles_[i]; }
  bool BoolAt(size_t i) const { return bools_[i] != 0; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// Boxed accessor (slow path; prefer typed accessors in operators).
  Value GetValue(size_t i) const;

  /// Bulk constructors for vectorized kernels that fill raw buffers by
  /// index (no per-cell append branch). `valid` must match `values` in
  /// length; cells with valid[i]==0 are NULL and their value is ignored.
  static Column FromInts(std::vector<int64_t> values,
                         std::vector<uint8_t> valid);
  static Column FromDoubles(std::vector<double> values,
                            std::vector<uint8_t> valid);
  static Column FromBools(std::vector<uint8_t> values,
                          std::vector<uint8_t> valid);

  /// Sum of null flags; used by stats and tests.
  size_t NullCount() const;

  /// Returns a column with rows where `mask[i]` is true.
  Column Filter(const std::vector<uint8_t>& mask) const;

  /// Returns a column with rows at `indices` (gather).
  Column Take(const std::vector<int64_t>& indices) const;

  /// Returns rows [offset, offset+count).
  Column Slice(size_t offset, size_t count) const;

  /// Approximate in-memory footprint in bytes (drives eFGAC inline-vs-spill).
  size_t ByteSize() const;

  bool Equals(const Column& other) const;

 private:
  friend class ColumnBuilder;

  /// Pre-sizes the validity vector and the storage vector matching `kind_`
  /// for `n` rows — the gather/filter/builder hot paths call this once up
  /// front instead of reallocating while appending.
  void ReserveStorage(size_t n);

  TypeKind kind_;
  size_t length_;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
};

/// Append-only builder producing a `Column`.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(TypeKind kind);

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);

  /// Appends a boxed value, casting numerics to the column type.
  /// Type-mismatched values fail with InvalidArgument.
  Status AppendValue(const Value& v);

  void Reserve(size_t n);
  size_t length() const { return col_.length_; }

  /// Finalizes the column; the builder is left empty and reusable.
  Column Finish();

 private:
  Column col_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COLUMNAR_COLUMN_H_
