#include "serverless/workload_env.h"

namespace lakeguard {

Status WorkloadEnvironmentRegistry::Publish(WorkloadEnvironment env) {
  std::lock_guard<std::mutex> lock(mu_);
  if (envs_.count(env.version)) {
    return Status::AlreadyExists("workload environment version '" +
                                 env.version + "' already published");
  }
  envs_[env.version] = std::move(env);
  return Status::OK();
}

Result<WorkloadEnvironment> WorkloadEnvironmentRegistry::Get(
    const std::string& version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = envs_.find(version);
  if (it == envs_.end()) {
    return Status::NotFound("no workload environment version '" + version +
                            "'");
  }
  return it->second;
}

Result<WorkloadEnvironment> WorkloadEnvironmentRegistry::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (envs_.empty()) {
    return Status::NotFound("no workload environments published");
  }
  return envs_.rbegin()->second;
}

std::vector<std::string> WorkloadEnvironmentRegistry::Versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [version, env] : envs_) out.push_back(version);
  return out;
}

}  // namespace lakeguard
