#include "serverless/gateway.h"

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"

namespace lakeguard {

SparkConnectGateway::SparkConnectGateway(Clock* clock, BackendFactory factory,
                                         GatewayConfig config)
    : clock_(clock), factory_(std::move(factory)), config_(config) {}

Result<GatewayBackend*> SparkConnectGateway::AcquireBackend() {
  // Count live sessions per backend from our own placements.
  std::map<GatewayBackend*, size_t> load;
  for (const auto& [id, placement] : placements_) {
    ++load[placement.backend];
  }
  for (const auto& backend : backends_) {
    if (load[backend.get()] < config_.max_sessions_per_backend) {
      ++stats_.routed_to_existing;
      return backend.get();
    }
  }
  // All backends at capacity: provision a new one (cold start). Backend
  // provisioning goes to the same cluster manager as sandbox provisioning
  // and fails independently of the gateway (§6.2, Fig. 10).
  LG_RETURN_IF_ERROR(fault::Inject("gateway.provision", clock_));
  clock_->AdvanceMicros(config_.backend_cold_start_micros);
  backends_.push_back(factory_());
  ++stats_.backends_provisioned;
  return backends_.back().get();
}

Result<std::string> SparkConnectGateway::OpenSession(
    const std::string& auth_token) {
  std::lock_guard<std::mutex> lock(mu_);
  LG_ASSIGN_OR_RETURN(GatewayBackend * backend, AcquireBackend());
  LG_ASSIGN_OR_RETURN(std::string internal_id,
                      backend->service()->OpenSession(auth_token));
  std::string external_id = IdGenerator::Next("xsess");
  Placement placement;
  placement.backend = backend;
  placement.internal_session_id = internal_id;
  placement.auth_token = auth_token;
  placements_[external_id] = std::move(placement);
  ++stats_.sessions_opened;
  return external_id;
}

Result<Table> SparkConnectGateway::ExecuteSql(
    const std::string& external_session_id, const std::string& sql) {
  Placement placement;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = placements_.find(external_session_id);
    if (it == placements_.end()) {
      return Status::NotFound("no gateway session " + external_session_id);
    }
    placement = it->second;
  }
  ConnectRequest request;
  request.session_id = placement.internal_session_id;
  request.auth_token = placement.auth_token;
  request.sql = sql;
  ConnectResponse response = placement.backend->service()->Execute(request);
  if (!response.ok) {
    // Preserve the backend's typed code (audit: kInternal flattened every
    // error, hiding permission denials from gateway callers).
    return Status(StatusCodeFromString(response.error_code),
                  "backend error [" + response.error_code + "]: " +
                      response.error_message);
  }
  Table out(response.schema);
  for (const ResultChunk& chunk : response.inline_chunks) {
    auto batch = ipc::DeserializeBatch(chunk.frame);
    if (!batch.ok()) return batch.status();
    if (batch->num_rows() == 0) continue;
    LG_RETURN_IF_ERROR(out.AppendBatch(std::move(*batch)));
  }
  for (uint64_t i = response.inline_chunks.size(); i < response.total_chunks;
       ++i) {
    LG_ASSIGN_OR_RETURN(ResultChunk chunk,
                        placement.backend->service()->FetchChunk(
                            placement.internal_session_id,
                            response.operation_id, i));
    LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(chunk.frame));
    if (batch.num_rows() > 0) {
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(batch)));
    }
  }
  return out;
}

Status SparkConnectGateway::MigrateSession(
    const std::string& external_session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placements_.find(external_session_id);
  if (it == placements_.end()) {
    return Status::NotFound("no gateway session " + external_session_id);
  }
  Placement& placement = it->second;
  // Find a different backend with capacity, provisioning one if needed.
  std::map<GatewayBackend*, size_t> load;
  for (const auto& [id, p] : placements_) ++load[p.backend];
  GatewayBackend* target = nullptr;
  for (const auto& backend : backends_) {
    if (backend.get() != placement.backend &&
        load[backend.get()] < config_.max_sessions_per_backend) {
      target = backend.get();
      break;
    }
  }
  if (target == nullptr) {
    clock_->AdvanceMicros(config_.backend_cold_start_micros);
    backends_.push_back(factory_());
    ++stats_.backends_provisioned;
    target = backends_.back().get();
  }
  LG_ASSIGN_OR_RETURN(std::string new_internal,
                      target->service()->OpenSession(placement.auth_token));
  Status closed =
      placement.backend->service()->CloseSession(placement.internal_session_id);
  (void)closed;  // old backend may already be gone
  placement.backend = target;
  placement.internal_session_id = new_internal;
  ++stats_.migrations;
  return Status::OK();
}

Status SparkConnectGateway::CloseSession(
    const std::string& external_session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placements_.find(external_session_id);
  if (it == placements_.end()) {
    return Status::NotFound("no gateway session " + external_session_id);
  }
  Status s = it->second.backend->service()->CloseSession(
      it->second.internal_session_id);
  placements_.erase(it);
  return s;
}

size_t SparkConnectGateway::ScaleDown() {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<GatewayBackend*, size_t> load;
  for (const auto& [id, p] : placements_) ++load[p.backend];
  size_t removed = 0;
  for (auto it = backends_.begin();
       it != backends_.end() && backends_.size() > config_.min_backends;) {
    if (load[it->get()] == 0) {
      it = backends_.erase(it);
      ++removed;
      ++stats_.scale_downs;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t SparkConnectGateway::BackendCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backends_.size();
}

GatewayStats SparkConnectGateway::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lakeguard
