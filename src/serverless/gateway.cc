#include "serverless/gateway.h"

#include <algorithm>

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"
#include "common/retry.h"
#include "common/sha256.h"

namespace lakeguard {

namespace {

/// Failure codes the circuit breaker attributes to the replica itself.
/// Deliberately excludes kUnavailable: that code is this system's *flow
/// control* vocabulary (drain rejects, chunk-cache backpressure, migrated-op
/// reattach steers) and must not open breakers on healthy replicas.
bool IsReplicaFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:
    case StatusCode::kInternal:
    case StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

/// Releases a fair-scheduler admission slot on scope exit.
struct AdmissionRelease {
  WeightedFairScheduler* scheduler = nullptr;
  ~AdmissionRelease() {
    if (scheduler != nullptr) scheduler->Release();
  }
};

Status BackendError(const ConnectResponse& response) {
  return Status(StatusCodeFromString(response.error_code),
                "backend error [" + response.error_code +
                    "]: " + response.error_message);
}

}  // namespace

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kHealthy:
      return "healthy";
    case ReplicaState::kSuspect:
      return "suspect";
    case ReplicaState::kOpen:
      return "open";
    case ReplicaState::kDraining:
      return "draining";
    case ReplicaState::kRetired:
      return "retired";
  }
  return "unknown";
}

SparkConnectGateway::SparkConnectGateway(Clock* clock, BackendFactory factory,
                                         GatewayConfig config)
    : clock_(clock),
      factory_(std::move(factory)),
      config_(config),
      scheduler_(clock, config.admission) {}

void SparkConnectGateway::set_token_revend_hook(TokenRevendHook hook) {
  std::lock_guard<std::mutex> lock(mu_);
  revend_hook_ = std::move(hook);
}

void SparkConnectGateway::SetTenantWeight(const std::string& tenant,
                                          uint32_t weight) {
  scheduler_.SetWeight(tenant, weight);
}

// ---------------------------------------------------------------------------
// Ring & replica lifecycle
// ---------------------------------------------------------------------------

Result<SparkConnectGateway::Replica*>
SparkConnectGateway::ProvisionReplicaLocked() {
  // Backend provisioning goes to the same cluster manager as sandbox
  // provisioning and fails independently of the gateway (§6.2, Fig. 10).
  LG_RETURN_IF_ERROR(fault::Inject("gateway.provision", clock_));
  clock_->AdvanceMicros(config_.backend_cold_start_micros);
  std::unique_ptr<GatewayBackend> backend = factory_();
  auto replica = std::make_unique<Replica>();
  replica->id = backend->id();
  replica->backend = std::move(backend);
  Replica* raw = replica.get();
  replicas_.push_back(std::move(replica));
  ++stats_.backends_provisioned;
  RebuildRingLocked();
  return raw;
}

void SparkConnectGateway::RebuildRingLocked() {
  ring_.clear();
  for (const auto& replica : replicas_) {
    if (replica->state == ReplicaState::kRetired) continue;
    for (size_t v = 0; v < config_.virtual_nodes; ++v) {
      uint64_t point = Fnv1a64(replica->id + "#" + std::to_string(v));
      ring_.emplace_back(point, replica.get());
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const std::pair<uint64_t, Replica*>& a,
               const std::pair<uint64_t, Replica*>& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->id < b.second->id;
            });
}

SparkConnectGateway::Replica* SparkConnectGateway::RouteLocked(
    const std::string& key, const Replica* exclude) const {
  if (ring_.empty()) return nullptr;
  const uint64_t hash = Fnv1a64(key);
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const std::pair<uint64_t, Replica*>& point, uint64_t h) {
        return point.first < h;
      });
  size_t index = static_cast<size_t>(start - ring_.begin()) % ring_.size();
  for (size_t step = 0; step < ring_.size(); ++step) {
    Replica* candidate = ring_[(index + step) % ring_.size()].second;
    if (candidate == exclude) continue;
    if (candidate->state != ReplicaState::kHealthy &&
        candidate->state != ReplicaState::kSuspect) {
      continue;  // draining/open/retired replicas take no new sessions
    }
    if (candidate->sessions >= config_.max_sessions_per_backend) continue;
    return candidate;
  }
  return nullptr;
}

void SparkConnectGateway::KillReplicaLocked(Replica* replica) {
  replica->state = ReplicaState::kRetired;
  replica->sessions = 0;
  ++stats_.replica_kills;
  for (auto& [external_id, placement] : placements_) {
    if (placement.replica == replica) {
      placement.replica = nullptr;
      placement.lost = true;
    }
  }
  RebuildRingLocked();
  ReapIfRetiredLocked(replica);
}

bool SparkConnectGateway::ReapIfRetiredLocked(Replica* replica) {
  if (replica == nullptr || replica->state != ReplicaState::kRetired ||
      replica->inflight > 0) {
    return false;
  }
  for (auto it = replicas_.begin(); it != replicas_.end(); ++it) {
    if (it->get() == replica) {
      replicas_.erase(it);
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Pin / unpin: every routed call holds its replica alive and feeds its
// outcome back into the replica's health state.
// ---------------------------------------------------------------------------

Status SparkConnectGateway::FailoverPlacementLocked(
    const std::string& external_session_id, Placement& placement) {
  if (!revend_hook_) {
    return Status::FailedPrecondition(
        "session " + external_session_id +
        " lost its replica and no token re-vend hook is installed");
  }
  LG_ASSIGN_OR_RETURN(std::string token, revend_hook_(placement.token_digest));
  Replica* replica = RouteLocked(external_session_id, nullptr);
  if (replica == nullptr) {
    LG_ASSIGN_OR_RETURN(replica, ProvisionReplicaLocked());
  }
  LG_ASSIGN_OR_RETURN(std::string internal_id,
                      replica->backend->service()->OpenSession(token));
  placement.replica = replica;
  placement.internal_session_id = internal_id;
  placement.lost = false;
  ++replica->sessions;
  ++stats_.failovers;
  return Status::OK();
}

Result<SparkConnectGateway::Pinned> SparkConnectGateway::PinForCall(
    const std::string& external_session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placements_.find(external_session_id);
  if (it == placements_.end()) {
    return Status::NotFound("unknown gateway session " + external_session_id);
  }
  Placement& placement = it->second;
  if (placement.lost || placement.replica == nullptr ||
      placement.replica->state == ReplicaState::kRetired) {
    LG_RETURN_IF_ERROR(FailoverPlacementLocked(external_session_id, placement));
  }
  Replica* replica = placement.replica;
  Pinned pinned;
  if (replica->state == ReplicaState::kOpen) {
    const int64_t now = clock_->NowMicros();
    if (now - replica->breaker_opened_at < config_.breaker_cooldown_micros ||
        replica->probe_in_flight) {
      ++stats_.breaker_fast_fails;
      return Status::Unavailable("replica " + replica->id +
                                 " circuit breaker open; retry later");
    }
    // Cooldown elapsed: this call is the half-open probe.
    replica->probe_in_flight = true;
    pinned.is_probe = true;
    ++stats_.breaker_half_open_probes;
  }
  ++replica->inflight;
  pinned.replica = replica;
  pinned.service = replica->backend->service();
  pinned.external_session_id = external_session_id;
  pinned.internal_session_id = placement.internal_session_id;
  pinned.user = placement.user;
  return pinned;
}

Status SparkConnectGateway::UnpinAfterCall(Pinned& pinned, Status outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  Replica* replica = pinned.replica;
  --replica->inflight;
  if (pinned.is_probe) replica->probe_in_flight = false;
  if (replica->state == ReplicaState::kRetired) {
    // The replica was killed while this call was in flight. This is the one
    // typed retryable error an affected client observes: its next call
    // fails over to a live replica.
    ++stats_.lost_placement_errors;
    if (outcome.ok()) {
      outcome = Status::Unavailable("replica " + replica->id +
                                    " terminated mid-call; retry");
    }
    ReapIfRetiredLocked(replica);
    return outcome;
  }
  if (!outcome.ok()) {
    auto it = placements_.find(pinned.external_session_id);
    if (it != placements_.end() &&
        (it->second.replica != replica ||
         it->second.internal_session_id != pinned.internal_session_id)) {
      // The session migrated away while this call was executing on the
      // source copy (which the migration commit then closed). Like a
      // replica kill, this is the one typed retryable error the affected
      // client observes — its retry routes to the new placement. The
      // failure is the migration's doing, not the replica's: it must not
      // feed the breaker.
      ++stats_.lost_placement_errors;
      return Status::Unavailable("session " + pinned.external_session_id +
                                 " migrated mid-call; retry");
    }
  }
  const bool failure = !outcome.ok() && IsReplicaFailure(outcome);
  if (pinned.is_probe) {
    if (failure) {
      replica->state = ReplicaState::kOpen;
      replica->breaker_opened_at = clock_->NowMicros();
      ++stats_.breaker_open_events;
    } else {
      replica->state = ReplicaState::kHealthy;
      replica->consecutive_failures = 0;
      ++stats_.breaker_closes;
    }
  } else if (failure) {
    ++replica->consecutive_failures;
    if (replica->consecutive_failures >= config_.breaker_failure_threshold &&
        replica->state != ReplicaState::kOpen &&
        replica->state != ReplicaState::kDraining) {
      replica->state = ReplicaState::kOpen;
      replica->breaker_opened_at = clock_->NowMicros();
      ++stats_.breaker_open_events;
    } else if (replica->state == ReplicaState::kHealthy) {
      replica->state = ReplicaState::kSuspect;
    }
  } else if (outcome.ok()) {
    replica->consecutive_failures = 0;
    if (replica->state == ReplicaState::kSuspect) {
      replica->state = ReplicaState::kHealthy;
    }
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// Session lifecycle
// ---------------------------------------------------------------------------

Result<std::string> SparkConnectGateway::OpenSession(
    const std::string& auth_token) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string external_id = IdGenerator::Next("xsess");
  Replica* replica = RouteLocked(external_id, nullptr);
  if (replica != nullptr) {
    ++stats_.routed_to_existing;
  } else {
    LG_ASSIGN_OR_RETURN(replica, ProvisionReplicaLocked());
  }
  LG_ASSIGN_OR_RETURN(std::string internal_id,
                      replica->backend->service()->OpenSession(auth_token));
  Placement placement;
  placement.replica = replica;
  placement.internal_session_id = internal_id;
  // The plaintext token is deliberately NOT retained: only its digest,
  // which the re-vend hook exchanges for a fresh token when migration or
  // failover must re-authenticate.
  placement.token_digest = Sha256::HexDigest(auth_token);
  Result<SessionInfo> session =
      replica->backend->service()->GetSession(internal_id);
  if (session.ok()) placement.user = session->user;
  placements_[external_id] = std::move(placement);
  ++replica->sessions;
  ++stats_.sessions_opened;
  return external_id;
}

Status SparkConnectGateway::CloseSession(
    const std::string& external_session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placements_.find(external_session_id);
  if (it == placements_.end()) {
    return Status::NotFound("unknown gateway session " + external_session_id);
  }
  Placement& placement = it->second;
  Status closed = Status::OK();
  if (!placement.lost && placement.replica != nullptr &&
      placement.replica->state != ReplicaState::kRetired) {
    closed = placement.replica->backend->service()->CloseSession(
        placement.internal_session_id);
    if (placement.replica->sessions > 0) --placement.replica->sessions;
  }
  // Zeroize the credential digest before the map entry is freed.
  std::fill(placement.token_digest.begin(), placement.token_digest.end(), '0');
  placements_.erase(it);
  return closed;
}

Status SparkConnectGateway::MigrateSession(
    const std::string& external_session_id) {
  Replica* source = nullptr;
  Replica* target = nullptr;
  ConnectService* source_service = nullptr;
  ConnectService* target_service = nullptr;
  std::string internal_id;
  std::string digest;
  TokenRevendHook hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = placements_.find(external_session_id);
    if (it == placements_.end()) {
      return Status::NotFound("unknown gateway session " + external_session_id);
    }
    Placement& placement = it->second;
    if (placement.lost || placement.replica == nullptr ||
        placement.replica->state == ReplicaState::kRetired) {
      // The source replica is already gone — there is nothing to export.
      // Re-place the session instead (counts as a failover).
      return FailoverPlacementLocked(external_session_id, placement);
    }
    source = placement.replica;
    internal_id = placement.internal_session_id;
    digest = placement.token_digest;
    target = RouteLocked(external_session_id, source);
    if (target == nullptr) {
      LG_ASSIGN_OR_RETURN(target, ProvisionReplicaLocked());
    }
    source_service = source->backend->service();
    target_service = target->backend->service();
    // Pin both ends for the whole protocol: neither replica can be torn
    // down under an in-flight migration (the ScaleDown race).
    ++source->inflight;
    ++target->inflight;
    hook = revend_hook_;
  }
  auto fail = [&](Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.migration_failures;
    --source->inflight;
    --target->inflight;
    ReapIfRetiredLocked(source);
    ReapIfRetiredLocked(target);
    return status;
  };
  if (!hook) {
    return fail(Status::FailedPrecondition(
        "no token re-vend hook installed; migration cannot re-authenticate"));
  }
  Result<std::string> token = hook(digest);
  if (!token.ok()) return fail(token.status());
  Status serialize = fault::Inject("gateway.migrate.serialize", clock_);
  if (!serialize.ok()) return fail(serialize);
  Result<std::vector<uint8_t>> snapshot =
      source_service->ExportSession(internal_id);
  if (!snapshot.ok()) return fail(snapshot.status());
  Result<std::string> imported =
      target_service->ImportSession(*snapshot, *token);
  if (!imported.ok()) return fail(imported.status());
  Status replay = fault::Inject("gateway.migrate.replay", clock_);
  if (!replay.ok()) {
    // Cutover ack failed after the destination import: compensate by
    // closing the imported session so nothing orphans or double-executes.
    // The client's session stays fully live on the source replica.
    (void)target_service->CloseSession(*imported);
    return fail(replay);
  }
  bool placement_gone = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --source->inflight;
    --target->inflight;
    auto it = placements_.find(external_session_id);
    if (it == placements_.end()) {
      placement_gone = true;
      ++stats_.migration_failures;
    } else {
      Placement& placement = it->second;
      placement.replica = target;
      placement.internal_session_id = *imported;
      placement.lost = false;
      if (source->state != ReplicaState::kRetired && source->sessions > 0) {
        --source->sessions;
      }
      ++target->sessions;
      ++stats_.migrations;
    }
    ReapIfRetiredLocked(source);
    ReapIfRetiredLocked(target);
  }
  if (placement_gone) {
    (void)target_service->CloseSession(*imported);
    return Status::NotFound("session " + external_session_id +
                            " was closed during migration");
  }
  (void)source_service->CloseSession(internal_id);
  return Status::OK();
}

size_t SparkConnectGateway::ScaleDown() {
  std::lock_guard<std::mutex> lock(mu_);
  bool changed = false;
  // Reap retired replicas whose last pinned call has finished.
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if ((*it)->state == ReplicaState::kRetired && (*it)->inflight == 0) {
      it = replicas_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  size_t live = 0;
  for (const auto& replica : replicas_) {
    if (replica->state != ReplicaState::kRetired) ++live;
  }
  size_t removed = 0;
  for (auto it = replicas_.begin();
       it != replicas_.end() && live > config_.min_backends;) {
    Replica& replica = **it;
    const bool idle = replica.sessions == 0 && replica.inflight == 0 &&
                      (replica.state == ReplicaState::kHealthy ||
                       replica.state == ReplicaState::kSuspect);
    if (idle) {
      it = replicas_.erase(it);
      changed = true;
      --live;
      ++removed;
      ++stats_.scale_downs;
    } else {
      ++it;
    }
  }
  if (changed) RebuildRingLocked();
  return removed;
}

// ---------------------------------------------------------------------------
// Failure & lifecycle operations
// ---------------------------------------------------------------------------

Status SparkConnectGateway::KillReplica(const std::string& replica_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& replica : replicas_) {
    if (replica->id == replica_id &&
        replica->state != ReplicaState::kRetired) {
      KillReplicaLocked(replica.get());
      return Status::OK();
    }
  }
  return Status::NotFound("unknown replica " + replica_id);
}

Status SparkConnectGateway::DrainReplica(const std::string& replica_id) {
  ConnectService* service = nullptr;
  std::vector<std::string> to_migrate;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Replica* replica = nullptr;
    for (auto& r : replicas_) {
      if (r->id == replica_id && r->state != ReplicaState::kRetired) {
        replica = r.get();
        break;
      }
    }
    if (replica == nullptr) {
      return Status::NotFound("unknown replica " + replica_id);
    }
    replica->state = ReplicaState::kDraining;
    service = replica->backend->service();
    for (const auto& [external_id, placement] : placements_) {
      if (placement.replica == replica && !placement.lost) {
        to_migrate.push_back(external_id);
      }
    }
  }
  // The backend stops admitting new sessions (typed kUnavailable) while the
  // existing ones are moved off one by one.
  service->BeginDrain();
  for (const std::string& external_id : to_migrate) {
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.backoff.initial_micros = 10'000;
    Status migrated = RetryStatusCall(
        policy, clock_, [&] { return MigrateSession(external_id); });
    if (!migrated.ok() && !migrated.IsNotFound()) {
      // Leave the replica draining; the operator (or the next upgrade pass)
      // retries. Sessions already moved stay moved; the rest stay live on
      // the source.
      return migrated;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& r : replicas_) {
      if (r->id == replica_id && r->state == ReplicaState::kDraining) {
        Replica* replica = r.get();
        replica->state = ReplicaState::kRetired;
        RebuildRingLocked();
        ++stats_.drains_completed;
        ReapIfRetiredLocked(replica);
        break;
      }
    }
  }
  return Status::OK();
}

Status SparkConnectGateway::RollingUpgrade() {
  std::vector<std::string> generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& replica : replicas_) {
      if (replica->state != ReplicaState::kRetired) {
        generation.push_back(replica->id);
      }
    }
  }
  // Drain the old generation one replica at a time; migrations provision
  // fresh (upgraded) replicas as capacity demands.
  for (const std::string& replica_id : generation) {
    Status drained = DrainReplica(replica_id);
    if (!drained.ok() && !drained.IsNotFound()) return drained;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.rolling_upgrades;
  return Status::OK();
}

size_t SparkConnectGateway::SweepReplicas() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.heartbeat_sweeps;
  std::vector<Replica*> dead;
  for (const auto& replica : replicas_) {
    if (replica->state == ReplicaState::kRetired) continue;
    Status heartbeat = fault::Inject("gateway.replica.crash", clock_);
    if (!heartbeat.ok()) dead.push_back(replica.get());
  }
  for (Replica* replica : dead) KillReplicaLocked(replica);
  return dead.size();
}

// ---------------------------------------------------------------------------
// Query paths
// ---------------------------------------------------------------------------

Result<GatewayResultStream> SparkConnectGateway::OpenStream(
    const std::string& external_session_id, const std::string& sql,
    const std::string& statement_id) {
  std::string tenant;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = placements_.find(external_session_id);
    if (it == placements_.end()) {
      return Status::NotFound("unknown gateway session " + external_session_id);
    }
    tenant = it->second.user;
  }
  AdmissionRelease release;
  if (config_.admission.max_concurrent > 0) {
    LG_RETURN_IF_ERROR(scheduler_.Admit(tenant));
    release.scheduler = &scheduler_;
  }
  LG_ASSIGN_OR_RETURN(Pinned pinned, PinForCall(external_session_id));
  ConnectRequest request;
  request.session_id = pinned.internal_session_id;
  request.sql = sql;
  request.statement_id = statement_id;
  request.operation_id = IdGenerator::Next("gop");
  Status outcome = fault::Inject("gateway.route", clock_);
  ConnectResponse response;
  if (outcome.ok()) {
    response = pinned.service->Execute(request);
    outcome = response.ok ? Status::OK() : BackendError(response);
  }
  outcome = UnpinAfterCall(pinned, std::move(outcome));
  LG_RETURN_IF_ERROR(outcome);
  GatewayResultStream stream;
  stream.gateway_ = this;
  stream.external_session_id_ = external_session_id;
  stream.sql_ = sql;
  stream.statement_id_ = statement_id;
  stream.operation_id_ = request.operation_id;
  stream.schema_ = response.schema;
  stream.server_streaming_ = response.streaming;
  stream.total_chunks_ = response.total_chunks;
  for (const ResultChunk& chunk : response.inline_chunks) {
    if (!chunk.frame.empty()) {
      LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(chunk.frame));
      stream.ready_.push_back(std::move(batch));
    }
    stream.next_chunk_ = chunk.chunk_index + 1;
  }
  if (!response.streaming) stream.done_ = true;  // inline mode is complete
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.streams_opened;
  }
  return stream;
}

Result<ResultChunk> SparkConnectGateway::FetchStreamChunk(
    GatewayResultStream& stream) {
  LG_ASSIGN_OR_RETURN(Pinned pinned, PinForCall(stream.external_session_id_));
  Status outcome = fault::Inject("gateway.route", clock_);
  Result<ResultChunk> chunk = outcome;
  if (outcome.ok()) {
    chunk = pinned.service->FetchChunk(
        pinned.internal_session_id, stream.operation_id_, stream.next_chunk_);
    outcome = chunk.ok() ? Status::OK() : chunk.status();
  }
  outcome = UnpinAfterCall(pinned, std::move(outcome));
  if (!outcome.ok()) return outcome;
  return chunk;
}

Status SparkConnectGateway::ResumeStream(GatewayResultStream& stream) {
  // Reattach path: re-execute under the SAME operation id on whichever
  // replica now hosts the session. On the original replica this reattaches
  // to the buffered operation; on a new one (failover, migration) it is an
  // exact re-execution — chunk boundaries are deterministic, so skipping to
  // next_chunk_ resumes without loss or duplication.
  LG_ASSIGN_OR_RETURN(Pinned pinned, PinForCall(stream.external_session_id_));
  ConnectRequest request;
  request.session_id = pinned.internal_session_id;
  request.sql = stream.sql_;
  request.statement_id = stream.statement_id_;
  request.operation_id = stream.operation_id_;
  ConnectResponse response = pinned.service->Execute(request);
  Status outcome = response.ok ? Status::OK() : BackendError(response);
  outcome = UnpinAfterCall(pinned, std::move(outcome));
  LG_RETURN_IF_ERROR(outcome);
  for (const ResultChunk& chunk : response.inline_chunks) {
    if (chunk.chunk_index < stream.next_chunk_) continue;  // already consumed
    if (!chunk.frame.empty()) {
      LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(chunk.frame));
      stream.ready_.push_back(std::move(batch));
    }
    stream.next_chunk_ = chunk.chunk_index + 1;
    if (chunk.last) stream.done_ = true;
  }
  stream.server_streaming_ = response.streaming;
  if (!response.streaming) stream.done_ = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stream_resumes;
  }
  return Status::OK();
}

Result<std::optional<RecordBatch>> GatewayResultStream::Next() {
  bool resumed = false;
  while (true) {
    if (!ready_.empty()) {
      RecordBatch batch = std::move(ready_.front());
      ready_.pop_front();
      if (batch.num_rows() == 0) continue;
      return std::optional<RecordBatch>(std::move(batch));
    }
    if (done_) return std::optional<RecordBatch>();
    Result<ResultChunk> chunk = gateway_->FetchStreamChunk(*this);
    if (!chunk.ok()) {
      // One resume per read: a replica loss or migration mid-stream costs
      // the client at most one reattach, never a restart from chunk zero.
      if (!IsTransientError(chunk.status()) || resumed) return chunk.status();
      LG_RETURN_IF_ERROR(gateway_->ResumeStream(*this));
      resumed = true;
      continue;
    }
    ++next_chunk_;
    if (chunk->last) done_ = true;
    if (!chunk->frame.empty()) {
      LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(chunk->frame));
      if (batch.num_rows() > 0) {
        return std::optional<RecordBatch>(std::move(batch));
      }
    }
  }
}

Result<Table> SparkConnectGateway::CollectStream(GatewayResultStream stream) {
  Table table(stream.schema());
  while (true) {
    LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, stream.Next());
    if (!batch.has_value()) break;
    LG_RETURN_IF_ERROR(table.AppendBatch(std::move(*batch)));
  }
  return table;
}

Result<Table> SparkConnectGateway::ExecuteSql(
    const std::string& external_session_id, const std::string& sql) {
  LG_ASSIGN_OR_RETURN(GatewayResultStream stream,
                      OpenStream(external_session_id, sql, ""));
  return CollectStream(std::move(stream));
}

Result<GatewayResultStream> SparkConnectGateway::ExecuteSqlStreaming(
    const std::string& external_session_id, const std::string& sql) {
  return OpenStream(external_session_id, sql, "");
}

Result<std::string> SparkConnectGateway::PrepareStatement(
    const std::string& external_session_id, const std::string& sql) {
  LG_ASSIGN_OR_RETURN(Pinned pinned, PinForCall(external_session_id));
  Result<std::string> statement =
      pinned.service->PrepareStatement(pinned.internal_session_id, sql);
  Status outcome = UnpinAfterCall(
      pinned, statement.ok() ? Status::OK() : statement.status());
  LG_RETURN_IF_ERROR(outcome);
  return statement;
}

Result<Table> SparkConnectGateway::ExecuteStatement(
    const std::string& external_session_id, const std::string& statement_id) {
  LG_ASSIGN_OR_RETURN(GatewayResultStream stream,
                      OpenStream(external_session_id, "", statement_id));
  return CollectStream(std::move(stream));
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t SparkConnectGateway::BackendCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& replica : replicas_) {
    if (replica->state != ReplicaState::kRetired) ++live;
  }
  return live;
}

std::vector<std::string> SparkConnectGateway::ReplicaIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> ids;
  for (const auto& replica : replicas_) {
    if (replica->state != ReplicaState::kRetired) {
      ids.push_back(replica->id);
    }
  }
  return ids;
}

Result<ReplicaState> SparkConnectGateway::ReplicaStateOf(
    const std::string& replica_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& replica : replicas_) {
    if (replica->id == replica_id) return replica->state;
  }
  return Status::NotFound("unknown replica " + replica_id);
}

Result<GatewaySessionInfo> SparkConnectGateway::SessionPlacement(
    const std::string& external_session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = placements_.find(external_session_id);
  if (it == placements_.end()) {
    return Status::NotFound("unknown gateway session " + external_session_id);
  }
  const Placement& placement = it->second;
  GatewaySessionInfo info;
  info.replica_id = placement.replica != nullptr ? placement.replica->id : "";
  info.internal_session_id = placement.internal_session_id;
  info.token_digest = placement.token_digest;
  info.user = placement.user;
  info.lost = placement.lost;
  return info;
}

GatewayStats SparkConnectGateway::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lakeguard
