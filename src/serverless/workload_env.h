#ifndef LAKEGUARD_SERVERLESS_WORKLOAD_ENV_H_
#define LAKEGUARD_SERVERLESS_WORKLOAD_ENV_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// A versioned client-environment contract (§6.3): the client-library
/// version plus the dependency set the platform promises to keep stable.
/// Serverless Spark loads user code inside the workload environment the
/// client pinned, regardless of the server version — "versionless" Spark.
struct WorkloadEnvironment {
  std::string version;          // e.g. "2"
  std::string client_version;   // pinned Connect client version
  std::string interpreter;      // pinned user-code interpreter ("lgvm-1")
  std::map<std::string, std::string> dependencies;  // name -> version
};

/// Registry of published workload environments.
class WorkloadEnvironmentRegistry {
 public:
  Status Publish(WorkloadEnvironment env);
  Result<WorkloadEnvironment> Get(const std::string& version) const;
  Result<WorkloadEnvironment> Latest() const;
  std::vector<std::string> Versions() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, WorkloadEnvironment> envs_;  // ordered by version
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SERVERLESS_WORKLOAD_ENV_H_
