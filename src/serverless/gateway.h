#ifndef LAKEGUARD_SERVERLESS_GATEWAY_H_
#define LAKEGUARD_SERVERLESS_GATEWAY_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/clock.h"
#include "connect/service.h"

namespace lakeguard {

/// One Serverless Spark backend a gateway can route sessions to: a Standard
/// cluster + engine + Connect service bundle. Created by the platform's
/// factory so the gateway stays wiring-agnostic.
class GatewayBackend {
 public:
  virtual ~GatewayBackend() = default;
  virtual const std::string& id() const = 0;
  virtual ConnectService* service() = 0;
};

struct GatewayConfig {
  /// Session capacity before the autoscaler provisions a new backend.
  size_t max_sessions_per_backend = 8;
  /// Cluster provisioning latency (charged to the clock).
  int64_t backend_cold_start_micros = 30'000'000;
  /// Backends kept warm even when idle.
  size_t min_backends = 1;
};

struct GatewayStats {
  uint64_t sessions_opened = 0;
  uint64_t backends_provisioned = 0;
  uint64_t routed_to_existing = 0;
  uint64_t migrations = 0;
  uint64_t scale_downs = 0;
};

/// The regional Spark Connect Gateway (§6.2, Fig. 10): every workload of a
/// workspace connects to one endpoint; the gateway tracks backend capacity
/// and either routes to an existing Serverless backend or provisions a new
/// one. Sessions get a stable *external* id; the gateway owns the mapping
/// to (backend, internal session) and can migrate it without the client
/// noticing.
class SparkConnectGateway {
 public:
  using BackendFactory = std::function<std::unique_ptr<GatewayBackend>()>;

  SparkConnectGateway(Clock* clock, BackendFactory factory,
                      GatewayConfig config = {});

  /// Workspace endpoint: authenticates (against the routed backend) and
  /// returns a stable external session id.
  Result<std::string> OpenSession(const std::string& auth_token);

  /// Runs SQL on whichever backend currently hosts the session.
  Result<Table> ExecuteSql(const std::string& external_session_id,
                           const std::string& sql);

  /// Seamlessly migrates a session to another backend (provisioning one if
  /// needed). The external id — all the client holds — is unchanged (§6.2).
  Status MigrateSession(const std::string& external_session_id);

  Status CloseSession(const std::string& external_session_id);

  /// Tears down backends with no live sessions (keeps `min_backends`).
  size_t ScaleDown();

  size_t BackendCount() const;
  GatewayStats stats() const;

 private:
  struct Placement {
    GatewayBackend* backend = nullptr;
    std::string internal_session_id;
    std::string auth_token;  // kept to re-authenticate on migration
  };

  /// Returns a backend with spare capacity, provisioning when necessary.
  Result<GatewayBackend*> AcquireBackend();

  Clock* clock_;
  BackendFactory factory_;
  GatewayConfig config_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<GatewayBackend>> backends_;
  std::map<std::string, Placement> placements_;  // external id -> placement
  GatewayStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SERVERLESS_GATEWAY_H_
