#ifndef LAKEGUARD_SERVERLESS_GATEWAY_H_
#define LAKEGUARD_SERVERLESS_GATEWAY_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cluster/fair_scheduler.h"
#include "columnar/table.h"
#include "common/clock.h"
#include "connect/service.h"

namespace lakeguard {

/// One Serverless Spark backend a gateway can route sessions to: a Standard
/// cluster + engine + Connect service bundle. Created by the platform's
/// factory so the gateway stays wiring-agnostic.
class GatewayBackend {
 public:
  virtual ~GatewayBackend() = default;
  virtual const std::string& id() const = 0;
  virtual ConnectService* service() = 0;
};

/// Health lifecycle of one engine replica behind the gateway (DESIGN.md
/// §13): healthy → suspect (failures below the breaker threshold) → open
/// (breaker tripped: fast-fail, cooldown, single half-open probe) →
/// draining (rolling upgrade: sessions migrating off) → retired (torn down;
/// kept only while in-flight calls still pin it).
enum class ReplicaState {
  kHealthy,
  kSuspect,
  kOpen,
  kDraining,
  kRetired,
};

const char* ReplicaStateName(ReplicaState state);

struct GatewayConfig {
  /// Session capacity before the autoscaler provisions a new backend.
  size_t max_sessions_per_backend = 8;
  /// Cluster provisioning latency (charged to the clock).
  int64_t backend_cold_start_micros = 30'000'000;
  /// Backends kept warm even when idle.
  size_t min_backends = 1;
  /// Points each replica contributes to the consistent-hash ring. More
  /// points smooth the session distribution; membership changes only move
  /// the sessions that hashed to the departed replica's arcs.
  size_t virtual_nodes = 16;
  /// Consecutive backend failures that trip a replica's circuit breaker.
  size_t breaker_failure_threshold = 3;
  /// How long an open breaker fast-fails before admitting one probe.
  int64_t breaker_cooldown_micros = 10'000'000;
  /// Per-tenant weighted-fair admission for routed queries
  /// (max_concurrent == 0 disables it).
  FairSchedulerConfig admission;
};

struct GatewayStats {
  uint64_t sessions_opened = 0;
  uint64_t backends_provisioned = 0;
  uint64_t routed_to_existing = 0;
  uint64_t migrations = 0;
  uint64_t scale_downs = 0;
  // --- failover ---
  uint64_t replica_kills = 0;        ///< replicas declared dead (chaos/sweep)
  uint64_t failovers = 0;            ///< sessions re-placed off a dead replica
  uint64_t lost_placement_errors = 0;  ///< in-flight calls that got the one
                                       ///< typed kUnavailable for a kill
  // --- migration / upgrades ---
  uint64_t migration_failures = 0;   ///< aborted migrations (session stayed
                                     ///< on its source replica)
  uint64_t drains_completed = 0;     ///< replicas fully drained and retired
  uint64_t rolling_upgrades = 0;     ///< whole-fleet upgrade passes
  // --- circuit breaker ---
  uint64_t breaker_open_events = 0;
  uint64_t breaker_fast_fails = 0;   ///< calls refused while a breaker is open
  uint64_t breaker_half_open_probes = 0;
  uint64_t breaker_closes = 0;
  uint64_t heartbeat_sweeps = 0;     ///< SweepReplicas passes
  // --- streaming ---
  uint64_t streams_opened = 0;
  uint64_t stream_resumes = 0;       ///< streams re-attached after a replica
                                     ///< loss or migration mid-fetch
};

/// Placement introspection for tests and operators. The auth token itself is
/// never stored — only its SHA-256 digest survives in the gateway.
struct GatewaySessionInfo {
  std::string replica_id;
  std::string internal_session_id;
  std::string token_digest;
  std::string user;
  bool lost = false;
};

class SparkConnectGateway;

/// A lazily fetched result routed through the gateway: chunks are pulled
/// from the hosting replica on demand (same memory profile as the Connect
/// client's fetch loop — no whole-table materialization). If the replica
/// dies or the session migrates mid-stream, `Next` resumes once through the
/// reattach path: re-execute under the same operation id on the new replica
/// and continue at the next chunk index — exact, because chunk boundaries
/// are deterministic. Not thread-safe; one consumer per stream.
class GatewayResultStream {
 public:
  GatewayResultStream(GatewayResultStream&&) = default;
  GatewayResultStream& operator=(GatewayResultStream&&) = default;

  const Schema& schema() const { return schema_; }
  /// Next decoded batch, or nullopt at end of stream.
  Result<std::optional<RecordBatch>> Next();

 private:
  friend class SparkConnectGateway;
  GatewayResultStream() = default;

  SparkConnectGateway* gateway_ = nullptr;
  std::string external_session_id_;
  std::string sql_;           // set for SQL-text streams
  std::string statement_id_;  // set for prepared-statement streams
  std::string operation_id_;
  Schema schema_;
  std::deque<RecordBatch> ready_;  ///< decoded but unconsumed batches
  uint64_t next_chunk_ = 0;
  uint64_t total_chunks_ = 0;  ///< meaningful only when !server_streaming_
  bool server_streaming_ = false;
  bool done_ = false;
};

/// The regional Spark Connect Gateway (§6.2, Fig. 10), rebuilt as a
/// failure-tolerant routing tier over N engine replicas. Sessions get a
/// stable *external* id consistent-hashed onto the replica ring; the
/// gateway owns the mapping to (replica, internal session) and can move it
/// — live migration for drains and rolling upgrades, failover re-placement
/// after a replica death — without the client holding anything but the
/// external id. Per-replica circuit breakers fast-fail typed `kUnavailable`
/// while a replica misbehaves, and per-tenant weighted-fair admission keeps
/// one tenant's burst from starving the rest.
class SparkConnectGateway {
 public:
  using BackendFactory = std::function<std::unique_ptr<GatewayBackend>()>;
  /// Re-vends the plaintext bearer token for a stored SHA-256 digest. The
  /// gateway never retains tokens; migration and failover re-authenticate
  /// through this hook (the platform's auth system owns the secrets).
  using TokenRevendHook =
      std::function<Result<std::string>(const std::string& token_digest)>;

  SparkConnectGateway(Clock* clock, BackendFactory factory,
                      GatewayConfig config = {});

  void set_token_revend_hook(TokenRevendHook hook);
  /// Weighted-fair share for a tenant (default weight 1).
  void SetTenantWeight(const std::string& tenant, uint32_t weight);

  /// Workspace endpoint: authenticates (against the routed backend) and
  /// returns a stable external session id.
  Result<std::string> OpenSession(const std::string& auth_token);

  /// Runs SQL on whichever replica currently hosts the session and collects
  /// the full result (streaming under the hood).
  Result<Table> ExecuteSql(const std::string& external_session_id,
                           const std::string& sql);

  /// Streaming counterpart: chunks are produced lazily on the replica and
  /// fetched on demand — gateway clients get the PR-2 memory profile.
  Result<GatewayResultStream> ExecuteSqlStreaming(
      const std::string& external_session_id, const std::string& sql);

  /// Prepares a statement on the hosting replica; the returned handle
  /// survives migration (re-verified on the destination).
  Result<std::string> PrepareStatement(const std::string& external_session_id,
                                       const std::string& sql);
  /// Executes a prepared statement by handle (binding stamps re-checked).
  Result<Table> ExecuteStatement(const std::string& external_session_id,
                                 const std::string& statement_id);

  /// Live-migrates a session to another replica (provisioning one if
  /// needed): export on the source, re-verify + import on the destination,
  /// commit only on success. A failed migration leaves the session exactly
  /// where it was. The external id — all the client holds — is unchanged.
  Status MigrateSession(const std::string& external_session_id);

  Status CloseSession(const std::string& external_session_id);

  /// Tears down idle replicas (no sessions, no in-flight calls), keeping
  /// `min_backends`, and reaps retired replicas whose last pinned call has
  /// finished.
  size_t ScaleDown();

  // -- Failure & lifecycle ----------------------------------------------------
  /// Declares a replica dead (chaos): its placements are marked lost and
  /// fail over on their next call; in-flight calls observe exactly one
  /// typed retryable `kUnavailable`.
  Status KillReplica(const std::string& replica_id);
  /// Rolling-upgrade drain: mark draining (backend stops admitting
  /// sessions), migrate every session off, then retire the replica.
  Status DrainReplica(const std::string& replica_id);
  /// Drains and replaces every replica in sequence; sessions survive with
  /// at most a migration pause each.
  Status RollingUpgrade();
  /// Heartbeat liveness sweep (the Dispatcher pattern): evaluates the
  /// `gateway.replica.crash` fault point per replica and retires the ones
  /// that fail. Returns how many replicas were declared dead.
  size_t SweepReplicas();

  // -- Introspection ----------------------------------------------------------
  size_t BackendCount() const;
  std::vector<std::string> ReplicaIds() const;
  Result<ReplicaState> ReplicaStateOf(const std::string& replica_id) const;
  Result<GatewaySessionInfo> SessionPlacement(
      const std::string& external_session_id) const;
  GatewayStats stats() const;
  FairSchedulerStats admission_stats() const { return scheduler_.stats(); }

 private:
  friend class GatewayResultStream;

  struct Replica {
    std::string id;
    std::unique_ptr<GatewayBackend> backend;
    ReplicaState state = ReplicaState::kHealthy;
    size_t consecutive_failures = 0;
    int64_t breaker_opened_at = 0;
    bool probe_in_flight = false;
    /// Calls currently executing against this backend outside mu_. A
    /// retired replica is destroyed only when this drops to zero — the
    /// ScaleDown-vs-inflight teardown race is structurally closed.
    size_t inflight = 0;
    size_t sessions = 0;
  };

  struct Placement {
    Replica* replica = nullptr;  // null once the replica was killed
    std::string internal_session_id;
    /// SHA-256 hex digest of the bearer token; the plaintext is re-vended
    /// through the TokenRevendHook only when migration/failover must
    /// re-authenticate, and the digest is zeroized on CloseSession.
    std::string token_digest;
    std::string user;
    bool lost = false;
  };

  /// A call in flight against one replica: the replica stays pinned
  /// (inflight refcount) until UnpinAfterCall.
  struct Pinned {
    Replica* replica = nullptr;
    ConnectService* service = nullptr;
    std::string external_session_id;
    std::string internal_session_id;
    std::string user;
    bool is_probe = false;
  };

  Result<Replica*> ProvisionReplicaLocked();
  void RebuildRingLocked();
  /// Clockwise ring walk from `key`'s hash: first replica that is routable
  /// (healthy/suspect), not `exclude`, and under its session cap.
  Replica* RouteLocked(const std::string& key, const Replica* exclude) const;
  /// Re-places a lost session on a live replica (re-vend token, open a new
  /// internal session). Requires mu_ held.
  Status FailoverPlacementLocked(const std::string& external_session_id,
                                 Placement& placement);
  /// Resolves the placement, fails over if the replica is gone, applies the
  /// breaker gate, and pins the replica for a call outside mu_.
  Result<Pinned> PinForCall(const std::string& external_session_id);
  /// Unpins and folds the call outcome into the replica's health: breaker
  /// accounting, retired-mid-call override (the one typed kUnavailable a
  /// client of a killed replica observes), deferred reaping.
  Status UnpinAfterCall(Pinned& pinned, Status outcome);
  void KillReplicaLocked(Replica* replica);
  /// Erases a retired replica once nothing pins it. `replica` is dangling
  /// after this returns true.
  bool ReapIfRetiredLocked(Replica* replica);
  Result<GatewayResultStream> OpenStream(const std::string& external_session_id,
                                         const std::string& sql,
                                         const std::string& statement_id);
  /// Fetches the stream's next chunk; resumes once through the reattach
  /// path on replica loss or migration.
  Result<ResultChunk> FetchStreamChunk(GatewayResultStream& stream);
  Status ResumeStream(GatewayResultStream& stream);
  Result<Table> CollectStream(GatewayResultStream stream);

  Clock* clock_;
  BackendFactory factory_;
  GatewayConfig config_;
  TokenRevendHook revend_hook_;
  WeightedFairScheduler scheduler_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  /// Consistent-hash ring: (point, replica), sorted by point. Rebuilt on
  /// membership change only — state changes are filtered at walk time.
  std::vector<std::pair<uint64_t, Replica*>> ring_;
  std::map<std::string, Placement> placements_;  // external id -> placement
  GatewayStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SERVERLESS_GATEWAY_H_
