#include "connect/client.h"

#include "columnar/ipc.h"
#include "common/id.h"
#include "plan/plan_serde.h"

namespace lakeguard {

Result<ConnectClient> ConnectClient::Open(ConnectService* service,
                                          const std::string& auth_token) {
  LG_ASSIGN_OR_RETURN(std::string session_id,
                      service->OpenSession(auth_token));
  return ConnectClient(service, auth_token, session_id);
}

DataFrame ConnectClient::ReadTable(const std::string& name) const {
  return DataFrame(this, MakeTableRef(name));
}

DataFrame ConnectClient::FromBatch(RecordBatch batch) const {
  return DataFrame(this, MakeLocalRelation(std::move(batch)));
}

DataFrame ConnectClient::FromExtension(const std::string& name,
                                       std::vector<uint8_t> payload) const {
  return DataFrame(this, MakeExtension(name, std::move(payload)));
}

Result<::lakeguard::Table> ConnectClient::Sql(
    const std::string& sql, const std::string& operation_id) const {
  ConnectRequest request;
  request.session_id = session_id_;
  request.auth_token = auth_token_;
  request.sql = sql;
  request.operation_id = operation_id;
  return RoundTrip(std::move(request));
}

Result<::lakeguard::Table> ConnectClient::ExecutePlanRemote(
    const PlanPtr& plan, const std::string& operation_id) const {
  ConnectRequest request;
  request.session_id = session_id_;
  request.auth_token = auth_token_;
  request.plan_bytes = PlanToBytes(plan);
  request.operation_id = operation_id;
  return RoundTrip(std::move(request));
}

Status ConnectClient::CancelOperation(const std::string& operation_id) const {
  ConnectRequest request;
  request.session_id = session_id_;
  request.auth_token = auth_token_;
  request.cancel_operation_id = operation_id;
  // The cancel itself rides the transport retry: a dropped RPC must not
  // leave the server running a query the user asked to stop. Reattempts
  // are safe — CancelOperation is idempotent server-side.
  RetryStats retry_stats;
  Result<ConnectResponse> response = RetryCall<ConnectResponse>(
      retry_policy_, service_->clock(), [&] { return Exchange(request); },
      &retry_stats);
  stats_.rpc_attempts += retry_stats.attempts;
  stats_.rpc_retries += retry_stats.retries;
  stats_.deadline_hits += retry_stats.deadline_hits;
  return response.status();
}

Result<ConnectResponse> ConnectClient::Exchange(
    const ConnectRequest& request) const {
  // Encode -> wire -> decode on the server; response comes back the same
  // way. Both directions cross a real byte boundary.
  std::vector<uint8_t> response_bytes =
      service_->HandleRpc(EncodeRequest(request));
  LG_ASSIGN_OR_RETURN(ConnectResponse response,
                      DecodeResponse(response_bytes));
  if (!response.ok) {
    // Reconstruct the typed status so the retry loop can tell a dropped
    // stream (retry) from a permission denial (never retry).
    return Status(StatusCodeFromString(response.error_code),
                  "server error [" + response.error_code + "]: " +
                      response.error_message);
  }
  return response;
}

Result<ResultChunk> ConnectClient::FetchChunkWithRetry(
    const std::string& operation_id, uint64_t chunk_index) const {
  RetryStats retry_stats;
  Result<ResultChunk> chunk = RetryCall<ResultChunk>(
      retry_policy_, service_->clock(),
      [&] { return service_->FetchChunk(session_id_, operation_id,
                                        chunk_index); },
      &retry_stats);
  stats_.chunk_retries += retry_stats.retries;
  stats_.deadline_hits += retry_stats.deadline_hits;
  return chunk;
}

Result<::lakeguard::Table> ConnectClient::RoundTrip(ConnectRequest request) const {
  // A client-generated operation id makes the retry loop reattach-safe: a
  // request that failed after the server buffered its result is answered
  // from the buffer instead of re-executing (§3.2.3).
  if (request.operation_id.empty()) {
    request.operation_id = IdGenerator::Next("cop");
  }
  request.deadline_micros = operation_deadline_micros_;
  RetryStats retry_stats;
  Result<ConnectResponse> response = RetryCall<ConnectResponse>(
      retry_policy_, service_->clock(), [&] { return Exchange(request); },
      &retry_stats);
  stats_.rpc_attempts += retry_stats.attempts;
  stats_.rpc_retries += retry_stats.retries;
  stats_.deadline_hits += retry_stats.deadline_hits;
  LG_RETURN_IF_ERROR(response.status());

  Table out(response->schema);
  if (!response->inline_chunks.empty()) {
    for (const ResultChunk& chunk : response->inline_chunks) {
      LG_ASSIGN_OR_RETURN(RecordBatch batch,
                          ipc::DeserializeBatch(chunk.frame));
      if (batch.num_rows() == 0) continue;
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(batch)));
    }
    return out;
  }
  // Large result: stream chunk by chunk. Each chunk is fetched with its own
  // retry budget; a dropped stream resumes at the failed index — chunks
  // before it are never re-fetched, chunks after it never skipped. The
  // server produces chunks lazily, so fetch until one carries `last`
  // (`total_chunks` only counts what was buffered at Execute time); a
  // legacy non-streaming response is bounded by its exact count instead.
  for (uint64_t i = 0;; ++i) {
    if (!response->streaming && i >= response->total_chunks) break;
    LG_ASSIGN_OR_RETURN(ResultChunk chunk,
                        FetchChunkWithRetry(response->operation_id, i));
    LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(chunk.frame));
    if (batch.num_rows() > 0) {
      LG_RETURN_IF_ERROR(out.AppendBatch(std::move(batch)));
    }
    if (chunk.last) break;
  }
  service_->CloseOperation(session_id_, response->operation_id);
  return out;
}

Status ConnectClient::Close() { return service_->CloseSession(session_id_); }

DataFrame DataFrame::Select(std::vector<ExprPtr> exprs,
                            std::vector<std::string> names) const {
  return DataFrame(client_,
                   MakeProject(plan_, std::move(exprs), std::move(names)));
}

DataFrame DataFrame::Filter(ExprPtr condition) const {
  return DataFrame(client_, MakeFilter(plan_, std::move(condition)));
}

DataFrame DataFrame::Join(const DataFrame& right, JoinType type,
                          ExprPtr cond) const {
  return DataFrame(client_,
                   MakeJoin(plan_, right.plan_, type, std::move(cond)));
}

DataFrame DataFrame::GroupByAgg(std::vector<ExprPtr> group_exprs,
                                std::vector<std::string> group_names,
                                std::vector<ExprPtr> agg_exprs,
                                std::vector<std::string> agg_names) const {
  return DataFrame(client_,
                   MakeAggregate(plan_, std::move(group_exprs),
                                 std::move(group_names), std::move(agg_exprs),
                                 std::move(agg_names)));
}

DataFrame DataFrame::OrderBy(std::vector<SortKey> keys) const {
  return DataFrame(client_, MakeSort(plan_, std::move(keys)));
}

DataFrame DataFrame::Limit(int64_t n) const {
  return DataFrame(client_, MakeLimit(plan_, n));
}

Result<::lakeguard::Table> DataFrame::Collect() const {
  return client_->ExecutePlanRemote(plan_);
}

}  // namespace lakeguard
