#include "connect/service.h"

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"
#include "common/retry.h"
#include "plan/plan_serde.h"

namespace lakeguard {

void ConnectService::RegisterUserToken(const std::string& token,
                                       const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_[token] = user;
}

Result<std::string> ConnectService::OpenSession(
    const std::string& auth_token) {
  std::string user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Typed retryable rejection: the client's retry/failover loop treats
      // kUnavailable as "try another replica", not as a user error.
      ++service_stats_.drain_rejects;
      return Status::Unavailable(
          "service is draining; no new sessions are admitted");
    }
    auto it = tokens_.find(auth_token);
    if (it == tokens_.end()) {
      return Status::Unauthenticated("unknown auth token");
    }
    user = it->second;
  }
  // Cluster admission establishes the privilege scope of this session. The
  // control-plane call is retried briefly: a transient admission failure
  // must not bounce an authenticated user.
  RetryPolicy admission_retry;
  admission_retry.max_attempts = 3;
  admission_retry.backoff.initial_micros = 10'000;
  LG_ASSIGN_OR_RETURN(ComputeContext compute,
                      RetryCall<ComputeContext>(
                          admission_retry, clock_,
                          [&] { return cluster_->AttachUser(user); }));

  SessionInfo session;
  session.session_id = IdGenerator::Next("sess");
  session.user = user;
  session.compute = compute;
  session.created_micros = clock_->NowMicros();
  session.last_activity_micros = session.created_micros;
  session.temp_views =
      std::make_shared<std::map<std::string, std::string>>();
  std::string id = session.session_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[id] = std::move(session);
  }
  catalog_->audit().Record(user, cluster_->id(), "OPEN_SESSION", id, true);
  return id;
}

ConnectResponse ConnectService::ErrorResponse(
    const Status& status, const std::string& operation_id) const {
  ConnectResponse response;
  response.operation_id = operation_id;
  response.ok = false;
  response.error_code = StatusCodeToString(status.code());
  response.error_message = status.message();
  return response;
}

std::vector<uint8_t> ConnectService::HandleRpc(
    const std::vector<uint8_t>& request_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.rpcs;
  }
  // Transport seam: a dropped gRPC stream or corrupted frame surfaces here
  // as a transient error response the client's retry loop classifies.
  Status transport = fault::Inject("connect.rpc", clock_);
  if (!transport.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.rpc_faults;
    return EncodeResponse(ErrorResponse(transport, ""));
  }
  auto request = DecodeRequest(request_bytes);
  if (!request.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.rpc_faults;
    return EncodeResponse(ErrorResponse(request.status(), ""));
  }
  return EncodeResponse(Execute(*request));
}

ConnectResponse ConnectService::Execute(const ConnectRequest& request) {
  std::string operation_id = request.operation_id.empty()
                                 ? IdGenerator::Next("op")
                                 : request.operation_id;
  // Session lookup + liveness.
  SessionInfo session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(request.session_id);
    if (it == sessions_.end() || it->second.tombstoned) {
      return ErrorResponse(
          Status::NotFound("no live session " + request.session_id),
          operation_id);
    }
    it->second.last_activity_micros = clock_->NowMicros();
    session = it->second;
  }

  // CancelOperation RPC: no plan/sql executes; the response acknowledges
  // the (idempotent) cancel.
  if (!request.cancel_operation_id.empty()) {
    Status cancelled =
        CancelOperation(session.session_id, request.cancel_operation_id);
    if (!cancelled.ok()) return ErrorResponse(cancelled, operation_id);
    ConnectResponse response;
    response.operation_id = request.cancel_operation_id;
    response.ok = true;
    return response;
  }

  // Reattach (§3.2.3): a client retrying with the operation id of a
  // buffered result gets the original header back — the query is not
  // re-executed. A cancelled operation reattaches to its typed error.
  if (!request.operation_id.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = operations_.find(request.operation_id);
    if (it != operations_.end()) {
      if (it->second.session_id != session.session_id) {
        return ErrorResponse(
            Status::PermissionDenied("operation " + request.operation_id +
                                     " belongs to a different session"),
            operation_id);
      }
      if (it->second.cancelled) {
        return ErrorResponse(Status::Cancelled("operation " +
                                               request.operation_id +
                                               " was cancelled"),
                             operation_id);
      }
      ++service_stats_.reattaches;
      ConnectResponse response;
      response.operation_id = request.operation_id;
      response.ok = true;
      response.schema = it->second.schema;
      response.total_chunks = it->second.frames.size();
      response.streaming = true;
      return response;
    }
  }

  // Per-operation lifecycle: the deadline (when requested) is armed now,
  // so it covers the whole operation — execution, buffering and fetching.
  CancellationSource op_cancel =
      request.deadline_micros > 0
          ? CancellationSource::WithDeadline(
                clock_, clock_->NowMicros() + request.deadline_micros)
          : CancellationSource();
  if (request.deadline_micros > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.deadline_ops;
  }

  ExecutionContext context;
  context.user = session.user;
  context.session_id = session.session_id;
  context.compute = session.compute;
  context.temp_views = session.temp_views;
  context.cancel = op_cancel.token();

  Result<QueryResultStreamPtr> stream =
      Status::Internal("no request payload");
  if (!request.plan_bytes.empty()) {
    auto plan = PlanFromBytes(request.plan_bytes);
    if (!plan.ok()) return ErrorResponse(plan.status(), operation_id);
    stream = engine_->ExecutePlanStreaming(*plan, context);
  } else if (!request.sql.empty()) {
    stream = engine_->ExecuteSqlStreaming(request.sql, context);
  } else {
    return ErrorResponse(
        Status::InvalidArgument("request carries neither plan nor sql"),
        operation_id);
  }
  if (!stream.ok()) return ErrorResponse(stream.status(), operation_id);

  ConnectResponse response;
  response.operation_id = operation_id;
  response.ok = true;
  response.schema = (*stream)->schema();

  Operation op;
  op.session_id = session.session_id;
  op.schema = (*stream)->schema();
  op.stream = std::move(*stream);
  op.cancel = op_cancel;

  // Probe just past the inline limit: small results come back fully inline
  // (and execution errors still surface on Execute); anything larger is
  // buffered with its live stream and produced chunk by chunk on fetch.
  while (!op.Done() && op.frames.size() <= kInlineChunkLimit) {
    Status produced = ProduceFrame(op);
    if (!produced.ok()) return ErrorResponse(produced, operation_id);
  }

  response.total_chunks = op.frames.size();
  if (op.Done() && op.frames.size() <= kInlineChunkLimit) {
    // Small result: return inline with the response (§3.4 inline mode).
    for (size_t i = 0; i < op.frames.size(); ++i) {
      ResultChunk chunk;
      chunk.chunk_index = i;
      chunk.frame = op.frames[i];
      chunk.last = (i + 1 == op.frames.size());
      response.inline_chunks.push_back(std::move(chunk));
    }
  } else {
    // Large result: buffer server-side, client fetches chunk by chunk.
    // `total_chunks` reports only what is cut so far; the `streaming` flag
    // tells the client to fetch until a chunk carries `last`.
    response.streaming = true;
    std::lock_guard<std::mutex> lock(mu_);
    operations_[operation_id] = std::move(op);
  }
  return response;
}

Status ConnectService::ProduceFrame(Operation& op) {
  // Pull past one chunk's worth of rows so that when the final frame is cut
  // we already know the stream is exhausted and can flag it `last`.
  while (!op.exhausted && op.pending_rows <= kRowsPerChunk) {
    auto batch = op.stream->Next();
    LG_RETURN_IF_ERROR(batch.status());
    if (!batch->has_value()) {
      op.exhausted = true;
      break;
    }
    if ((*batch)->num_rows() == 0) continue;
    op.pending_rows += (*batch)->num_rows();
    op.pending.push_back(std::move(**batch));
  }
  if (op.pending_rows == 0) {
    // Empty result: a single empty frame so the client still sees the
    // schema (same shape the eager chunker produced).
    if (op.frames.empty()) {
      LG_ASSIGN_OR_RETURN(RecordBatch empty, Table(op.schema).Combine());
      op.frames.push_back(ipc::SerializeBatch(empty));
    }
    return Status::OK();
  }
  Table assembled(op.schema);
  for (RecordBatch& b : op.pending) {
    LG_RETURN_IF_ERROR(assembled.AppendBatch(std::move(b)));
  }
  op.pending.clear();
  LG_ASSIGN_OR_RETURN(RecordBatch combined, assembled.Combine());
  size_t take = std::min(kRowsPerChunk, combined.num_rows());
  RecordBatch frame_batch =
      take == combined.num_rows() ? combined : combined.Slice(0, take);
  op.frames.push_back(ipc::SerializeBatch(frame_batch));
  if (take < combined.num_rows()) {
    RecordBatch rest = combined.Slice(take, combined.num_rows() - take);
    op.pending_rows = rest.num_rows();
    op.pending.push_back(std::move(rest));
  } else {
    op.pending_rows = 0;
  }
  return Status::OK();
}

Result<ResultChunk> ConnectService::FetchChunk(const std::string& session_id,
                                               const std::string& operation_id,
                                               uint64_t chunk_index) {
  // Stream seam: models the result stream dropping mid-transfer. The chunk
  // stays buffered server-side, so a reattaching client resumes at exactly
  // the index it asked for — no rows duplicated or skipped.
  Status stream = fault::Inject("connect.stream", clock_);
  std::lock_guard<std::mutex> lock(mu_);
  ++service_stats_.fetches;
  if (!stream.ok()) {
    ++service_stats_.stream_faults;
    return stream;
  }
  auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end() || session_it->second.tombstoned) {
    return Status::NotFound("no live session " + session_id);
  }
  session_it->second.last_activity_micros = clock_->NowMicros();
  auto it = operations_.find(operation_id);
  if (it == operations_.end()) {
    return Status::NotFound("no buffered operation " + operation_id);
  }
  if (it->second.session_id != session_id) {
    // A session must never read another session's results.
    return Status::PermissionDenied("operation " + operation_id +
                                    " belongs to a different session");
  }
  Operation& op = it->second;
  if (op.cancelled) {
    return Status::Cancelled("operation " + operation_id + " was cancelled");
  }
  // Deadline check before producing: an operation past its deadline stops
  // serving even already-buffered chunks (the client's budget is spent).
  LG_RETURN_IF_ERROR(op.cancel.token().Check());
  // Lazy production: cut frames from the live stream until the requested
  // index exists (normally exactly one per fetch). Already-cut frames are
  // replayed from the cache, never re-pulled — so a retried index returns
  // identical bytes and the stream advances at most once per new chunk.
  while (chunk_index >= op.frames.size() && !op.Done()) {
    size_t before = op.frames.size();
    LG_RETURN_IF_ERROR(ProduceFrame(op));
    service_stats_.lazy_chunks += op.frames.size() - before;
  }
  if (chunk_index >= op.frames.size()) {
    return Status::InvalidArgument("chunk index out of range");
  }
  ResultChunk chunk;
  chunk.chunk_index = chunk_index;
  chunk.frame = op.frames[static_cast<size_t>(chunk_index)];
  chunk.last = (op.Done() && chunk_index + 1 == op.frames.size());
  return chunk;
}

void ConnectService::CancelOperationLocked(Operation& op,
                                           const std::string& reason) {
  op.cancel.Cancel(reason);
  if (op.stream) {
    // Tear the operator pipeline down now: resident batches, breaker
    // materializations and eFGAC spill objects are released immediately,
    // not when the client eventually closes the operation.
    op.stream->Cancel(reason);
    op.stream.reset();
  }
  op.frames.clear();
  op.pending.clear();
  op.pending_rows = 0;
  op.exhausted = true;
  op.cancelled = true;
}

Status ConnectService::CancelOperation(const std::string& session_id,
                                       const std::string& operation_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = operations_.find(operation_id);
  if (it == operations_.end() || it->second.cancelled) {
    // Unknown (already completed/closed) or already cancelled: idempotent
    // no-op — the caller's intent ("this operation must not run") holds.
    ++service_stats_.cancel_noops;
    return Status::OK();
  }
  if (it->second.session_id != session_id) {
    return Status::PermissionDenied("operation " + operation_id +
                                    " belongs to a different session");
  }
  CancelOperationLocked(it->second, "cancelled by client");
  ++service_stats_.cancels;
  return Status::OK();
}

void ConnectService::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void ConnectService::EndDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

bool ConnectService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t ConnectService::CancelAllOperations(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t cancelled = 0;
  for (auto& [id, op] : operations_) {
    if (op.cancelled) continue;
    CancelOperationLocked(op, reason);
    ++service_stats_.cancels;
    ++cancelled;
  }
  return cancelled;
}

size_t ConnectService::LiveOperationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [id, op] : operations_) {
    if (!op.cancelled && !op.Done()) ++live;
  }
  return live;
}

bool ConnectService::DrainComplete() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!draining_) return false;
  for (const auto& [id, op] : operations_) {
    if (!op.cancelled && !op.Done()) return false;
  }
  return true;
}

void ConnectService::CloseOperation(const std::string& session_id,
                                    const std::string& operation_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = operations_.find(operation_id);
  if (it != operations_.end() && it->second.session_id == session_id) {
    operations_.erase(it);
  }
}

Status ConnectService::CloseSession(const std::string& session_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + session_id);
    }
    it->second.tombstoned = true;
    for (auto op = operations_.begin(); op != operations_.end();) {
      if (op->second.session_id == session_id) {
        // Cancel before erasing so pipelines sharing the operation's token
        // (e.g. a mid-pull stream) observe the cancellation, then drop the
        // buffers/stream in the same lock pass as the tombstone.
        CancelOperationLocked(op->second, "session closed");
        op = operations_.erase(op);
      } else {
        ++op;
      }
    }
  }
  // Destroy the session's sandboxes on every host.
  for (auto& host : cluster_->hosts()) {
    host->dispatcher().ReleaseSession(session_id);
  }
  return Status::OK();
}

size_t ConnectService::ExpireIdleSessions(int64_t idle_micros) {
  int64_t now = clock_->NowMicros();
  std::vector<std::string> expired;
  {
    // One lock pass tombstones the session AND releases its buffered/lazy
    // operation streams: a FetchChunk racing the expirer either completes
    // before the tombstone or observes it — there is no window where the
    // session is gone but a live QueryResultStream lingers in the op map.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      if (session.tombstoned ||
          now - session.last_activity_micros <= idle_micros) {
        continue;
      }
      session.tombstoned = true;
      for (auto op = operations_.begin(); op != operations_.end();) {
        if (op->second.session_id == id) {
          CancelOperationLocked(op->second, "session expired");
          ++service_stats_.expired_operations;
          op = operations_.erase(op);
        } else {
          ++op;
        }
      }
      expired.push_back(id);
    }
  }
  // Sandbox teardown happens outside mu_ (the dispatcher has its own lock;
  // holding both invites ordering deadlocks). The session is already
  // tombstoned, so no new work can reach those sandboxes meanwhile.
  for (const std::string& id : expired) {
    for (auto& host : cluster_->hosts()) {
      host->dispatcher().ReleaseSession(id);
    }
  }
  return expired.size();
}

Result<SessionInfo> ConnectService::GetSession(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + session_id);
  }
  return it->second;
}

ConnectServiceStats ConnectService::service_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return service_stats_;
}

size_t ConnectService::ActiveSessionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session.tombstoned) ++n;
  }
  return n;
}

}  // namespace lakeguard
