#include "connect/service.h"

#include <algorithm>
#include <chrono>

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"
#include "common/retry.h"
#include "plan/plan_serde.h"

namespace lakeguard {

void ConnectService::RegisterUserToken(const std::string& token,
                                       const std::string& user) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_[token] = user;
}

Result<std::string> ConnectService::OpenSession(
    const std::string& auth_token) {
  std::string user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      // Typed retryable rejection: the client's retry/failover loop treats
      // kUnavailable as "try another replica", not as a user error.
      ++service_stats_.drain_rejects;
      return Status::Unavailable(
          "service is draining; no new sessions are admitted");
    }
    auto it = tokens_.find(auth_token);
    if (it == tokens_.end()) {
      return Status::Unauthenticated("unknown auth token");
    }
    user = it->second;
  }
  // Cluster admission establishes the privilege scope of this session. The
  // control-plane call is retried briefly: a transient admission failure
  // must not bounce an authenticated user.
  RetryPolicy admission_retry;
  admission_retry.max_attempts = 3;
  admission_retry.backoff.initial_micros = 10'000;
  LG_ASSIGN_OR_RETURN(ComputeContext compute,
                      RetryCall<ComputeContext>(
                          admission_retry, clock_,
                          [&] { return cluster_->AttachUser(user); }));

  SessionInfo session;
  session.session_id = IdGenerator::Next("sess");
  session.user = user;
  session.compute = compute;
  session.created_micros = clock_->NowMicros();
  session.last_activity_micros = session.created_micros;
  session.temp_views =
      std::make_shared<std::map<std::string, std::string>>();
  std::string id = session.session_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[id] = std::move(session);
    // Durable-before-ack: the session exists only if its snapshot does. A
    // persist failure (including simulated process death) rolls the open
    // back — the client never holds a session id that would vanish on
    // restart.
    if (Status persisted = PersistSessionLocked(id); !persisted.ok()) {
      sessions_.erase(id);
      return persisted.WithContext("persisting session snapshot");
    }
  }
  catalog_->audit().Record(user, cluster_->id(), "OPEN_SESSION", id, true);
  return id;
}

ConnectResponse ConnectService::ErrorResponse(
    const Status& status, const std::string& operation_id) const {
  ConnectResponse response;
  response.operation_id = operation_id;
  response.ok = false;
  response.error_code = StatusCodeToString(status.code());
  response.error_message = status.message();
  return response;
}

std::vector<uint8_t> ConnectService::HandleRpc(
    const std::vector<uint8_t>& request_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.rpcs;
  }
  // Transport seam: a dropped gRPC stream or corrupted frame surfaces here
  // as a transient error response the client's retry loop classifies.
  Status transport = fault::Inject("connect.rpc", clock_);
  if (!transport.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.rpc_faults;
    return EncodeResponse(ErrorResponse(transport, ""));
  }
  auto request = DecodeRequest(request_bytes);
  if (!request.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.rpc_faults;
    return EncodeResponse(ErrorResponse(request.status(), ""));
  }
  return EncodeResponse(Execute(*request));
}

ConnectResponse ConnectService::Execute(const ConnectRequest& request) {
  std::string operation_id = request.operation_id.empty()
                                 ? IdGenerator::Next("op")
                                 : request.operation_id;
  // Session lookup + liveness.
  SessionInfo session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(request.session_id);
    if (it == sessions_.end() || it->second.tombstoned) {
      return ErrorResponse(
          Status::NotFound("no live session " + request.session_id),
          operation_id);
    }
    it->second.last_activity_micros = clock_->NowMicros();
    session = it->second;
  }

  // CancelOperation RPC: no plan/sql executes; the response acknowledges
  // the (idempotent) cancel.
  if (!request.cancel_operation_id.empty()) {
    Status cancelled =
        CancelOperation(session.session_id, request.cancel_operation_id);
    if (!cancelled.ok()) return ErrorResponse(cancelled, operation_id);
    ConnectResponse response;
    response.operation_id = request.cancel_operation_id;
    response.ok = true;
    return response;
  }

  // Reattach (§3.2.3): a client retrying with the operation id of a
  // buffered result gets the original header back — the query is not
  // re-executed. A cancelled operation reattaches to its typed error.
  if (!request.operation_id.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = operations_.find(request.operation_id);
    if (it != operations_.end()) {
      if (it->second.session_id != session.session_id) {
        return ErrorResponse(
            Status::PermissionDenied("operation " + request.operation_id +
                                     " belongs to a different session"),
            operation_id);
      }
      if (it->second.cancelled) {
        return ErrorResponse(Status::Cancelled("operation " +
                                               request.operation_id +
                                               " was cancelled"),
                             operation_id);
      }
      ++service_stats_.reattaches;
      ConnectResponse response;
      response.operation_id = request.operation_id;
      response.ok = true;
      response.schema = it->second.schema;
      response.total_chunks = it->second.frames.size();
      response.streaming = true;
      return response;
    }
  }

  // Per-operation lifecycle: the deadline (when requested) is armed now,
  // so it covers the whole operation — execution, buffering and fetching.
  CancellationSource op_cancel =
      request.deadline_micros > 0
          ? CancellationSource::WithDeadline(
                clock_, clock_->NowMicros() + request.deadline_micros)
          : CancellationSource();
  if (request.deadline_micros > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.deadline_ops;
  }

  ExecutionContext context;
  context.user = session.user;
  context.session_id = session.session_id;
  context.compute = session.compute;
  context.temp_views = session.temp_views;
  context.cancel = op_cancel.token();
  {
    // Memory governance: the whole pipeline of this operation charges a
    // budget node scoped under the session's node (service/session/op).
    std::lock_guard<std::mutex> lock(mu_);
    if (governor_ != nullptr) {
      context.memory =
          governor_->CreateOperationBudget(session.session_id, operation_id);
    }
  }

  // Preparation — parse, rewrite, analyze, optimize and *verify* — runs
  // before admission: a plan the PlanVerifier rejects surfaces its typed
  // non-retryable kFailedPrecondition here without ever consuming an
  // execution slot. Only verified plans compete for capacity.
  Result<PreparedQuery> prepared = Status::Internal("no request payload");
  if (!request.statement_id.empty()) {
    PreparedStatementRecord record;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = prepared_.find(request.statement_id);
      if (it == prepared_.end()) {
        return ErrorResponse(
            Status::NotFound("no prepared statement " + request.statement_id),
            operation_id);
      }
      if (it->second.session_id != session.session_id) {
        return ErrorResponse(
            Status::PermissionDenied("prepared statement " +
                                     request.statement_id +
                                     " belongs to a different session"),
            operation_id);
      }
      record = it->second.record;
      ++service_stats_.statement_executions;
      if (record.catalog_epoch != 0 &&
          record.catalog_epoch != catalog_->epoch()) {
        ++service_stats_.statement_reverifications;
      }
    }
    prepared = engine_->PrepareSql(record.sql, context);
    if (prepared.ok() && prepared->analysis != nullptr) {
      // Execution runs under the stamps recorded when the statement was
      // prepared, not fresh ones: ExecutePrepared re-checks the principal/
      // compute binding (PV006) and re-verifies against current policy on
      // catalog-epoch drift.
      prepared->analysis->bound_principal = record.bound_principal;
      prepared->analysis->bound_compute_id = record.bound_compute_id;
      prepared->analysis->catalog_epoch = record.catalog_epoch;
    }
  } else if (!request.plan_bytes.empty()) {
    auto plan = PlanFromBytes(request.plan_bytes);
    if (!plan.ok()) return ErrorResponse(plan.status(), operation_id);
    prepared = engine_->PreparePlan(*plan, context);
  } else if (!request.sql.empty()) {
    prepared = engine_->PrepareSql(request.sql, context);
  } else {
    return ErrorResponse(
        Status::InvalidArgument("request carries neither plan nor sql"),
        operation_id);
  }
  if (!prepared.ok()) return ErrorResponse(prepared.status(), operation_id);

  // Admission control: bounded execution concurrency. A request beyond the
  // slot limit waits FIFO (bounded depth, deadline-aware) or is shed with a
  // typed retryable error the client's backoff loop absorbs.
  bool holds_slot = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (admission_.max_concurrent_operations > 0) {
      Status admitted = AdmitOperation(lock, op_cancel.token());
      if (!admitted.ok()) return ErrorResponse(admitted, operation_id);
      holds_slot = true;
    }
  }
  // Any exit before the operation is buffered must return the slot.
  auto release_slot = [&] {
    if (!holds_slot) return;
    holds_slot = false;
    std::lock_guard<std::mutex> lock(mu_);
    if (running_operations_ > 0) --running_operations_;
    admission_cv_.notify_all();
  };

  Result<QueryResultStreamPtr> stream =
      engine_->ExecutePrepared(std::move(*prepared), context);
  if (!stream.ok()) {
    release_slot();
    return ErrorResponse(stream.status(), operation_id);
  }

  ConnectResponse response;
  response.operation_id = operation_id;
  response.ok = true;
  response.schema = (*stream)->schema();

  Operation op;
  op.session_id = session.session_id;
  op.schema = (*stream)->schema();
  op.stream = std::move(*stream);
  op.cancel = op_cancel;

  // Probe just past the inline limit: small results come back fully inline
  // (and execution errors still surface on Execute); anything larger is
  // buffered with its live stream and produced chunk by chunk on fetch. A
  // full chunk cache cuts the probe short — the result streams and the
  // client's fetch loop paces production against cache releases.
  Status produced = Status::OK();
  bool cache_full = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (!op.Done() && op.frames.size() <= kInlineChunkLimit &&
           !cache_full) {
      produced = ProduceFrame(op, &cache_full);
      if (!produced.ok()) {
        ReleaseFramesLocked(op, op.frames.size());
        break;
      }
    }
  }
  if (!produced.ok()) {
    release_slot();
    return ErrorResponse(produced, operation_id);
  }

  response.total_chunks = op.frames.size();
  if (op.Done() && op.frames.size() <= kInlineChunkLimit) {
    // Small result: return inline with the response (§3.4 inline mode).
    for (size_t i = 0; i < op.frames.size(); ++i) {
      ResultChunk chunk;
      chunk.chunk_index = i;
      chunk.frame = op.frames[i];
      chunk.last = (i + 1 == op.frames.size());
      response.inline_chunks.push_back(std::move(chunk));
    }
    {
      // Inline frames leave the server with this response — uncharge them
      // (quietly: they were never held for a fetch, so this is not an
      // eviction worth counting).
      std::lock_guard<std::mutex> lock(mu_);
      chunk_cache_bytes_ -= std::min(chunk_cache_bytes_, op.cached_bytes);
      op.cached_bytes = 0;
    }
    release_slot();
  } else {
    // Large result: buffer server-side, client fetches chunk by chunk.
    // `total_chunks` reports only what is cut so far; the `streaming` flag
    // tells the client to fetch until a chunk carries `last`. The admission
    // slot stays with the operation until its last chunk is served (or it
    // is cancelled/closed/expired).
    response.streaming = true;
    op.holds_slot = holds_slot;
    holds_slot = false;
    std::lock_guard<std::mutex> lock(mu_);
    operations_[operation_id] = std::move(op);
  }
  return response;
}

Status ConnectService::AdmitOperation(std::unique_lock<std::mutex>& lock,
                                      const CancellationToken& deadline) {
  if (running_operations_ < admission_.max_concurrent_operations &&
      admission_queue_.empty()) {
    ++running_operations_;
    ++service_stats_.admitted_operations;
    return Status::OK();
  }
  if (admission_queue_.size() >= admission_.max_queue_depth) {
    // Load shedding: beyond the queue bound the server refuses typed and
    // retryable instead of building an unbounded backlog.
    ++service_stats_.shed_operations;
    return Status::Unavailable(
        "admission queue full (" + std::to_string(admission_queue_.size()) +
        " waiting, " + std::to_string(running_operations_) +
        " running); retry with backoff");
  }
  const uint64_t ticket = next_ticket_++;
  admission_queue_.push_back(ticket);
  ++service_stats_.queued_operations;
  service_stats_.peak_queue_depth = std::max<uint64_t>(
      service_stats_.peak_queue_depth, admission_queue_.size());
  const int64_t enqueued_at = clock_->NowMicros();

  auto my_turn = [&] {
    return !admission_queue_.empty() && admission_queue_.front() == ticket &&
           running_operations_ < admission_.max_concurrent_operations;
  };
  Status verdict = Status::OK();
  while (!my_turn()) {
    // The operation's own deadline wins over the queue-wait bound: a
    // deadline expiry is the client's budget running out, not a shed.
    Status alive = deadline.Check();
    if (!alive.ok()) {
      verdict = alive;
      break;
    }
    int64_t waited = clock_->NowMicros() - enqueued_at;
    if (waited >= admission_.max_queue_wait_micros) {
      ++service_stats_.queue_timeouts;
      ++service_stats_.shed_operations;
      verdict = Status::Unavailable(
          "shed after waiting " + std::to_string(waited) +
          "us for an execution slot; retry with backoff");
      break;
    }
    const int64_t before = clock_->NowMicros();
    admission_cv_.wait_for(lock, std::chrono::milliseconds(2));
    if (clock_->NowMicros() == before) {
      // Simulated clock and nobody advanced it (single-threaded test or
      // every thread parked here): charge the wait ourselves so queue
      // timeouts and deadlines still fire on the virtual timeline.
      lock.unlock();
      clock_->AdvanceMicros(10'000);
      lock.lock();
    }
  }
  service_stats_.queue_wait_micros +=
      static_cast<uint64_t>(clock_->NowMicros() - enqueued_at);
  auto it =
      std::find(admission_queue_.begin(), admission_queue_.end(), ticket);
  if (it != admission_queue_.end()) admission_queue_.erase(it);
  if (!verdict.ok()) {
    // Our departure may unblock the next waiter in line.
    admission_cv_.notify_all();
    return verdict;
  }
  ++running_operations_;
  ++service_stats_.admitted_operations;
  admission_cv_.notify_all();
  return Status::OK();
}

void ConnectService::ReleaseSlotLocked(Operation& op) {
  if (!op.holds_slot) return;
  op.holds_slot = false;
  if (running_operations_ > 0) --running_operations_;
  admission_cv_.notify_all();
}

void ConnectService::ReleaseFramesLocked(Operation& op, size_t upto) {
  upto = std::min(upto, op.frames.size());
  for (size_t i = op.released_below; i < upto; ++i) {
    size_t bytes = op.frames[i].size();
    if (bytes == 0) continue;
    // Swap-free so the vector keeps its slot (indices stay aligned) while
    // the frame's heap allocation is returned now.
    std::vector<uint8_t>().swap(op.frames[i]);
    op.cached_bytes -= std::min(op.cached_bytes, bytes);
    chunk_cache_bytes_ -= std::min(chunk_cache_bytes_, bytes);
    ++service_stats_.frames_released;
  }
  if (upto > op.released_below) op.released_below = upto;
}

Status ConnectService::ProduceFrame(Operation& op, bool* cache_full) {
  // Chunk-cache gate: when the cache is at capacity and *other* operations
  // hold part of it, don't pull — the caller applies backpressure instead.
  // An operation holding the whole cache itself may always produce one more
  // frame (progress guarantee: its own fetch is what releases bytes).
  if (chunk_cache_limit_bytes_ > 0 &&
      chunk_cache_bytes_ >= chunk_cache_limit_bytes_ &&
      op.cached_bytes < chunk_cache_bytes_) {
    if (cache_full != nullptr) *cache_full = true;
    return Status::OK();
  }
  auto push_frame = [&](std::vector<uint8_t> frame) {
    size_t bytes = frame.size();
    op.cached_bytes += bytes;
    chunk_cache_bytes_ += bytes;
    service_stats_.chunk_cache_peak_bytes = std::max<uint64_t>(
        service_stats_.chunk_cache_peak_bytes, chunk_cache_bytes_);
    op.frames.push_back(std::move(frame));
  };
  // Pull past one chunk's worth of rows so that when the final frame is cut
  // we already know the stream is exhausted and can flag it `last`.
  while (!op.exhausted && op.pending_rows <= kRowsPerChunk) {
    auto batch = op.stream->Next();
    LG_RETURN_IF_ERROR(batch.status());
    if (!batch->has_value()) {
      op.exhausted = true;
      break;
    }
    if ((*batch)->num_rows() == 0) continue;
    op.pending_rows += (*batch)->num_rows();
    op.pending.push_back(std::move(**batch));
  }
  if (op.pending_rows == 0) {
    // Empty result: a single empty frame so the client still sees the
    // schema (same shape the eager chunker produced).
    if (op.frames.empty()) {
      LG_ASSIGN_OR_RETURN(RecordBatch empty, Table(op.schema).Combine());
      push_frame(ipc::SerializeBatch(empty));
    }
    return Status::OK();
  }
  Table assembled(op.schema);
  for (RecordBatch& b : op.pending) {
    LG_RETURN_IF_ERROR(assembled.AppendBatch(std::move(b)));
  }
  op.pending.clear();
  LG_ASSIGN_OR_RETURN(RecordBatch combined, assembled.Combine());
  size_t take = std::min(kRowsPerChunk, combined.num_rows());
  RecordBatch frame_batch =
      take == combined.num_rows() ? combined : combined.Slice(0, take);
  push_frame(ipc::SerializeBatch(frame_batch));
  if (take < combined.num_rows()) {
    RecordBatch rest = combined.Slice(take, combined.num_rows() - take);
    op.pending_rows = rest.num_rows();
    op.pending.push_back(std::move(rest));
  } else {
    op.pending_rows = 0;
  }
  return Status::OK();
}

Result<ResultChunk> ConnectService::FetchChunk(const std::string& session_id,
                                               const std::string& operation_id,
                                               uint64_t chunk_index) {
  // Stream seam: models the result stream dropping mid-transfer. The chunk
  // stays buffered server-side, so a reattaching client resumes at exactly
  // the index it asked for — no rows duplicated or skipped.
  Status stream = fault::Inject("connect.stream", clock_);
  std::lock_guard<std::mutex> lock(mu_);
  ++service_stats_.fetches;
  if (!stream.ok()) {
    ++service_stats_.stream_faults;
    return stream;
  }
  auto session_it = sessions_.find(session_id);
  if (session_it == sessions_.end() || session_it->second.tombstoned) {
    return Status::NotFound("no live session " + session_id);
  }
  session_it->second.last_activity_micros = clock_->NowMicros();
  auto it = operations_.find(operation_id);
  if (it == operations_.end()) {
    auto migrated = migrated_ops_.find(operation_id);
    if (migrated != migrated_ops_.end() &&
        migrated->second.session_id == session_id) {
      // The operation moved here with its session but its result bytes did
      // not (they lived on the source replica). Typed retryable: the client
      // reattaches — re-executes under the same operation id and resumes at
      // its next chunk index, exact because chunking is deterministic.
      ++service_stats_.migrated_fetch_redirects;
      return Status::Unavailable(
          "operation " + operation_id +
          " migrated with its session; reattach and re-execute");
    }
    return Status::NotFound("no buffered operation " + operation_id);
  }
  if (it->second.session_id != session_id) {
    // A session must never read another session's results.
    return Status::PermissionDenied("operation " + operation_id +
                                    " belongs to a different session");
  }
  Operation& op = it->second;
  if (op.cancelled) {
    return Status::Cancelled("operation " + operation_id + " was cancelled");
  }
  // Deadline check before producing: an operation past its deadline stops
  // serving even already-buffered chunks (the client's budget is spent).
  LG_RETURN_IF_ERROR(op.cancel.token().Check());
  if (chunk_index < op.released_below) {
    // The frame was released (acked by a later sequential fetch, or freed
    // when the last chunk was served): its bytes are gone for good.
    return Status::InvalidArgument(
        "chunk " + std::to_string(chunk_index) +
        " of operation " + operation_id + " was already fetched and released");
  }
  // Lazy production: cut frames from the live stream until the requested
  // index exists (normally exactly one per fetch). Already-cut frames are
  // replayed from the cache, never re-pulled — so a retried index returns
  // identical bytes and the stream advances at most once per new chunk.
  while (chunk_index >= op.frames.size() && !op.Done()) {
    size_t before = op.frames.size();
    bool cache_full = false;
    LG_RETURN_IF_ERROR(ProduceFrame(op, &cache_full));
    if (cache_full) {
      // Backpressure: the cache budget is spent on other operations'
      // un-acked frames. Typed retryable — the client's chunk retry loop
      // backs off and re-asks for the same index.
      ++service_stats_.cache_backpressure;
      return Status::Unavailable(
          "result chunk cache at capacity (" +
          std::to_string(chunk_cache_bytes_) + " of " +
          std::to_string(chunk_cache_limit_bytes_) +
          " bytes); retry after other results are fetched");
    }
    service_stats_.lazy_chunks += op.frames.size() - before;
  }
  if (chunk_index >= op.frames.size()) {
    return Status::InvalidArgument("chunk index out of range");
  }
  ResultChunk chunk;
  chunk.chunk_index = chunk_index;
  chunk.frame = op.frames[static_cast<size_t>(chunk_index)];
  chunk.last = (op.Done() && chunk_index + 1 == op.frames.size());
  if (chunk.last) {
    // The client has (or is about to have) the whole result: free every
    // cached frame and the admission slot now instead of waiting for
    // CloseOperation or session expiry. The operation entry itself stays
    // as a lightweight tombstone so cancel/reattach semantics hold.
    ReleaseFramesLocked(op, op.frames.size());
    ++service_stats_.completed_releases;
    ReleaseSlotLocked(op);
    op.stream.reset();
  } else if (chunk_cache_limit_bytes_ > 0) {
    // Ack-watermark eviction (capped mode only): clients fetch
    // sequentially, so serving index i acknowledges receipt of everything
    // before it. Uncapped mode keeps all frames for out-of-order replay.
    ReleaseFramesLocked(op, static_cast<size_t>(chunk_index));
  }
  return chunk;
}

void ConnectService::CancelOperationLocked(Operation& op,
                                           const std::string& reason) {
  // Return the memory first: cached frames uncharge the chunk cache and the
  // admission slot frees for the next waiter.
  ReleaseFramesLocked(op, op.frames.size());
  ReleaseSlotLocked(op);
  op.cancel.Cancel(reason);
  if (op.stream) {
    // Tear the operator pipeline down now: resident batches, breaker
    // materializations and eFGAC spill objects are released immediately,
    // not when the client eventually closes the operation.
    op.stream->Cancel(reason);
    op.stream.reset();
  }
  op.frames.clear();
  op.pending.clear();
  op.pending_rows = 0;
  op.exhausted = true;
  op.cancelled = true;
}

Status ConnectService::CancelOperation(const std::string& session_id,
                                       const std::string& operation_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = operations_.find(operation_id);
  if (it == operations_.end() || it->second.cancelled) {
    // Unknown (already completed/closed) or already cancelled: idempotent
    // no-op — the caller's intent ("this operation must not run") holds.
    ++service_stats_.cancel_noops;
    return Status::OK();
  }
  if (it->second.session_id != session_id) {
    return Status::PermissionDenied("operation " + operation_id +
                                    " belongs to a different session");
  }
  CancelOperationLocked(it->second, "cancelled by client");
  ++service_stats_.cancels;
  return Status::OK();
}

void ConnectService::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void ConnectService::EndDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

bool ConnectService::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

size_t ConnectService::CancelAllOperations(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t cancelled = 0;
  for (auto& [id, op] : operations_) {
    if (op.cancelled) continue;
    CancelOperationLocked(op, reason);
    ++service_stats_.cancels;
    ++cancelled;
  }
  return cancelled;
}

size_t ConnectService::LiveOperationCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const auto& [id, op] : operations_) {
    if (!op.cancelled && !op.Done()) ++live;
  }
  return live;
}

bool ConnectService::DrainComplete() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!draining_) return false;
  for (const auto& [id, op] : operations_) {
    if (!op.cancelled && !op.Done()) return false;
  }
  return true;
}

void ConnectService::CloseOperation(const std::string& session_id,
                                    const std::string& operation_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = operations_.find(operation_id);
  if (it != operations_.end() && it->second.session_id == session_id) {
    ReleaseFramesLocked(it->second, it->second.frames.size());
    ReleaseSlotLocked(it->second);
    operations_.erase(it);
  }
}

Result<std::string> ConnectService::PrepareStatement(
    const std::string& session_id, const std::string& sql) {
  SessionInfo session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || it->second.tombstoned) {
      return Status::NotFound("no live session " + session_id);
    }
    it->second.last_activity_micros = clock_->NowMicros();
    session = it->second;
  }
  ExecutionContext context;
  context.user = session.user;
  context.session_id = session.session_id;
  context.compute = session.compute;
  context.temp_views = session.temp_views;
  // The full prepare pipeline (rewrite, analyze, verify) runs here once; a
  // plan the PlanVerifier rejects never becomes a statement handle.
  LG_ASSIGN_OR_RETURN(PreparedQuery prepared,
                      engine_->PrepareSql(sql, context));
  PreparedStatement stored;
  stored.session_id = session_id;
  stored.record.statement_id = IdGenerator::Next("stmt");
  stored.record.sql = sql;
  if (prepared.analysis != nullptr) {
    stored.record.bound_principal = prepared.analysis->bound_principal;
    stored.record.bound_compute_id = prepared.analysis->bound_compute_id;
    stored.record.catalog_epoch = prepared.analysis->catalog_epoch;
  } else {
    // Commands carry no analysis; stamp from the session so the binding
    // checks still gate who replays the handle.
    stored.record.bound_principal = session.user;
    stored.record.bound_compute_id = session.compute.compute_id;
    stored.record.catalog_epoch = catalog_->epoch();
  }
  std::string statement_id = stored.record.statement_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto live = sessions_.find(session_id);
    if (live == sessions_.end() || live->second.tombstoned) {
      // The session was closed while we prepared; don't resurrect state.
      return Status::NotFound("no live session " + session_id);
    }
    prepared_[statement_id] = std::move(stored);
    // Durable-before-ack: the statement handle is only returned once the
    // session snapshot that contains it is on disk; a persist failure
    // unwinds the statement.
    if (Status persisted = PersistSessionLocked(session_id);
        !persisted.ok()) {
      prepared_.erase(statement_id);
      return persisted.WithContext("persisting session snapshot");
    }
    ++service_stats_.statements_prepared;
  }
  return statement_id;
}

Result<std::vector<uint8_t>> ConnectService::ExportSession(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.tombstoned) {
    return Status::NotFound("no live session " + session_id);
  }
  SessionSnapshot snapshot = BuildSnapshotLocked(it->second);
  ++service_stats_.sessions_exported;
  return EncodeSessionSnapshot(snapshot);
}

SessionSnapshot ConnectService::BuildSnapshotLocked(
    const SessionInfo& session) const {
  SessionSnapshot snapshot;
  snapshot.user = session.user;
  snapshot.source_epoch = catalog_->epoch();
  if (session.temp_views != nullptr) {
    snapshot.temp_views = *session.temp_views;
  }
  for (const auto& [id, stmt] : prepared_) {
    if (stmt.session_id == session.session_id) {
      snapshot.prepared.push_back(stmt.record);
    }
  }
  for (const auto& [op_id, op] : operations_) {
    if (op.session_id != session.session_id) continue;
    OperationWatermark wm;
    wm.operation_id = op_id;
    wm.released_below = op.released_below;
    wm.done = op.cancelled || op.Done();
    snapshot.watermarks.push_back(std::move(wm));
  }
  return snapshot;
}

Result<std::string> ConnectService::ImportSession(
    const std::vector<uint8_t>& snapshot_bytes,
    const std::string& auth_token) {
  LG_ASSIGN_OR_RETURN(SessionSnapshot snapshot,
                      DecodeSessionSnapshot(snapshot_bytes));
  const uint64_t current_epoch = catalog_->epoch();
  std::string user;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ++service_stats_.drain_rejects;
      return Status::Unavailable(
          "service is draining; no new sessions are admitted");
    }
    auto it = tokens_.find(auth_token);
    if (it == tokens_.end()) {
      return Status::Unauthenticated("unknown auth token");
    }
    user = it->second;
    for (const PreparedStatementRecord& record : snapshot.prepared) {
      if (prepared_.count(record.statement_id) > 0) {
        // The same snapshot landing twice on one replica is a replay, not a
        // migration — the gateway never commits two imports of one session.
        ++service_stats_.import_rejects;
        return Status::FailedPrecondition(
            "snapshot replay: statement " + record.statement_id +
            " already exists on this replica");
      }
    }
  }
  auto reject = [&](Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    ++service_stats_.import_rejects;
    return status;
  };
  if (user != snapshot.user) {
    // A captured snapshot replayed under another identity: the session's
    // privileges belong to whoever the token authenticates, and that must
    // be the identity the state was serialized under.
    return reject(Status::PermissionDenied(
        "snapshot belongs to " + snapshot.user +
        " but the token authenticates " + user));
  }
  if (snapshot.source_epoch > current_epoch) {
    return reject(Status::FailedPrecondition(
        "snapshot stamped with future catalog epoch " +
        std::to_string(snapshot.source_epoch) + " (current " +
        std::to_string(current_epoch) + "); refusing forged snapshot"));
  }
  for (const PreparedStatementRecord& record : snapshot.prepared) {
    if (record.bound_principal != snapshot.user) {
      return reject(Status::PermissionDenied(
          "prepared statement " + record.statement_id +
          " is bound to principal " + record.bound_principal +
          ", not the session identity " + snapshot.user));
    }
    if (record.catalog_epoch > current_epoch) {
      return reject(Status::FailedPrecondition(
          "prepared statement " + record.statement_id +
          " stamped with future catalog epoch " +
          std::to_string(record.catalog_epoch)));
    }
  }
  // Same admission as OpenSession: the destination's privilege scope is
  // established fresh, never copied from the snapshot.
  RetryPolicy admission_retry;
  admission_retry.max_attempts = 3;
  admission_retry.backoff.initial_micros = 10'000;
  LG_ASSIGN_OR_RETURN(ComputeContext compute,
                      RetryCall<ComputeContext>(
                          admission_retry, clock_,
                          [&] { return cluster_->AttachUser(user); }));

  SessionInfo session;
  session.session_id = IdGenerator::Next("sess");
  session.user = user;
  session.compute = compute;
  session.created_micros = clock_->NowMicros();
  session.last_activity_micros = session.created_micros;
  session.temp_views = std::make_shared<std::map<std::string, std::string>>(
      snapshot.temp_views);
  std::string session_id = session.session_id;
  auto temp_views = session.temp_views;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_[session_id] = std::move(session);
  }

  // Re-prepare every statement under the imported identity against the
  // *current* catalog: analysis re-vends credentials and the PlanVerifier
  // re-runs its invariants, so privileges revoked since the export surface
  // here as typed non-retryable failures and abort the whole import.
  ExecutionContext context;
  context.user = user;
  context.session_id = session_id;
  context.compute = compute;
  context.temp_views = temp_views;
  std::vector<PreparedStatement> accepted;
  for (const PreparedStatementRecord& record : snapshot.prepared) {
    Result<PreparedQuery> reprepared =
        engine_->PrepareSql(record.sql, context);
    if (!reprepared.ok()) {
      (void)CloseSession(session_id);
      return reject(Status(reprepared.status().code(),
                           "snapshot import rejected: statement " +
                               record.statement_id +
                               " failed re-verification: " +
                               reprepared.status().message()));
    }
    PreparedStatement stored;
    stored.session_id = session_id;
    stored.record.statement_id = record.statement_id;
    stored.record.sql = record.sql;
    // Re-bound to the destination: the statement now belongs to this
    // replica's compute and the epoch it was just re-verified under.
    stored.record.bound_principal = user;
    stored.record.bound_compute_id = compute.compute_id;
    stored.record.catalog_epoch =
        reprepared->analysis != nullptr ? reprepared->analysis->catalog_epoch
                                        : current_epoch;
    accepted.push_back(std::move(stored));
  }
  Status persisted = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (PreparedStatement& stored : accepted) {
      std::string id = stored.record.statement_id;
      prepared_[id] = std::move(stored);
    }
    for (const OperationWatermark& wm : snapshot.watermarks) {
      MigratedOperation migrated;
      migrated.session_id = session_id;
      migrated.released_below = wm.released_below;
      migrated_ops_[wm.operation_id] = migrated;
    }
    // Durable-before-ack: the import is acknowledged (and the gateway
    // commits the move) only once the re-bound session is on disk.
    persisted = PersistSessionLocked(session_id);
    if (persisted.ok()) ++service_stats_.sessions_imported;
  }
  if (!persisted.ok()) {
    // All or nothing: unwind the session (and its statements/watermarks)
    // so this replica is left without any trace of the failed import.
    (void)CloseSession(session_id);
    return reject(persisted.WithContext("persisting imported session"));
  }
  catalog_->audit().Record(user, cluster_->id(), "IMPORT_SESSION",
                           session_id, true);
  return session_id;
}

Status ConnectService::CloseSession(const std::string& session_id) {
  MemoryGovernor* governor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return Status::NotFound("no session " + session_id);
    }
    it->second.tombstoned = true;
    for (auto op = operations_.begin(); op != operations_.end();) {
      if (op->second.session_id == session_id) {
        // Cancel before erasing so pipelines sharing the operation's token
        // (e.g. a mid-pull stream) observe the cancellation, then drop the
        // buffers/stream in the same lock pass as the tombstone.
        CancelOperationLocked(op->second, "session closed");
        op = operations_.erase(op);
      } else {
        ++op;
      }
    }
    for (auto stmt = prepared_.begin(); stmt != prepared_.end();) {
      stmt = stmt->second.session_id == session_id ? prepared_.erase(stmt)
                                                   : std::next(stmt);
    }
    for (auto mig = migrated_ops_.begin(); mig != migrated_ops_.end();) {
      mig = mig->second.session_id == session_id ? migrated_ops_.erase(mig)
                                                 : std::next(mig);
    }
    RemoveSnapshotLocked(session_id);
    governor = governor_;
  }
  // Destroy the session's sandboxes on every host and drop the session's
  // budget node (any residual charge returns to the service budget).
  for (auto& host : cluster_->hosts()) {
    host->dispatcher().ReleaseSession(session_id);
  }
  if (governor != nullptr) governor->ReleaseSession(session_id);
  return Status::OK();
}

size_t ConnectService::ExpireIdleSessions(int64_t idle_micros) {
  int64_t now = clock_->NowMicros();
  std::vector<std::string> expired;
  MemoryGovernor* governor = nullptr;
  {
    // One lock pass tombstones the session AND releases its buffered/lazy
    // operation streams: a FetchChunk racing the expirer either completes
    // before the tombstone or observes it — there is no window where the
    // session is gone but a live QueryResultStream lingers in the op map.
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      if (session.tombstoned ||
          now - session.last_activity_micros <= idle_micros) {
        continue;
      }
      session.tombstoned = true;
      for (auto op = operations_.begin(); op != operations_.end();) {
        if (op->second.session_id == id) {
          CancelOperationLocked(op->second, "session expired");
          ++service_stats_.expired_operations;
          op = operations_.erase(op);
        } else {
          ++op;
        }
      }
      for (auto stmt = prepared_.begin(); stmt != prepared_.end();) {
        stmt = stmt->second.session_id == id ? prepared_.erase(stmt)
                                             : std::next(stmt);
      }
      for (auto mig = migrated_ops_.begin(); mig != migrated_ops_.end();) {
        mig = mig->second.session_id == id ? migrated_ops_.erase(mig)
                                           : std::next(mig);
      }
      RemoveSnapshotLocked(id);
      expired.push_back(id);
    }
    governor = governor_;
  }
  // Sandbox teardown happens outside mu_ (the dispatcher has its own lock;
  // holding both invites ordering deadlocks). The session is already
  // tombstoned, so no new work can reach those sandboxes meanwhile.
  for (const std::string& id : expired) {
    for (auto& host : cluster_->hosts()) {
      host->dispatcher().ReleaseSession(id);
    }
    if (governor != nullptr) governor->ReleaseSession(id);
  }
  return expired.size();
}

Result<SessionInfo> ConnectService::GetSession(
    const std::string& session_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + session_id);
  }
  return it->second;
}

void ConnectService::AttachSessionStore(SnapshotStore* store) {
  std::lock_guard<std::mutex> lock(mu_);
  session_store_ = store;
}

Status ConnectService::PersistSessionLocked(const std::string& session_id) {
  if (session_store_ == nullptr) return Status::OK();
  auto it = sessions_.find(session_id);
  if (it == sessions_.end() || it->second.tombstoned) {
    return Status::NotFound("no live session " + session_id);
  }
  LG_RETURN_IF_ERROR(session_store_->Put(
      session_id, EncodeSessionSnapshot(BuildSnapshotLocked(it->second))));
  ++service_stats_.snapshots_persisted;
  return Status::OK();
}

void ConnectService::RemoveSnapshotLocked(const std::string& session_id) {
  if (session_store_ == nullptr) return;
  if (session_store_->Remove(session_id).ok()) {
    ++service_stats_.snapshots_removed;
  }
}

Result<SessionRecoveryStats> ConnectService::RecoverSessions() {
  SnapshotStore* store;
  {
    std::lock_guard<std::mutex> lock(mu_);
    store = session_store_;
  }
  if (store == nullptr) {
    return Status::FailedPrecondition(
        "RecoverSessions requires an attached session store");
  }
  LG_ASSIGN_OR_RETURN(std::vector<SnapshotEntry> entries, store->LoadAll());
  SessionRecoveryStats stats;
  for (const SnapshotEntry& entry : entries) {
    if (auto crash = fault::CheckCrash("snapshot.import")) {
      // Simulated death mid-recovery: the snapshots not yet re-imported
      // stay on disk untouched, so the next restart picks them up.
      (void)crash;
      return fault::Death("snapshot.import");
    }
    if (!entry.status.ok()) {
      // Torn, bit-flipped or garbage snapshot: counted, never admitted.
      // The file is left for forensics; it can never become a session.
      ++stats.corrupt;
      continue;
    }
    Result<SessionSnapshot> decoded = DecodeSessionSnapshot(entry.payload);
    if (!decoded.ok()) {
      ++stats.corrupt;
      continue;
    }
    // Recovery re-authenticates: the snapshot's identity must still hold a
    // registered token on this replica, exactly as a live migration would
    // require. A user deprovisioned across the restart is rejected.
    std::string token;
    bool have_token = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [tok, user] : tokens_) {
        if (user == decoded->user) {
          token = tok;
          have_token = true;
          break;
        }
      }
    }
    if (!have_token) {
      ++stats.rejected;
      continue;
    }
    // The full import pipeline: all-or-nothing re-prepare, PV001–PV007
    // re-verification against the current catalog, forged-stamp rejection.
    // A successful import persists the session under its NEW id, after
    // which the pre-restart snapshot is retired.
    Result<std::string> imported = ImportSession(entry.payload, token);
    if (imported.ok()) {
      ++stats.recovered;
      std::lock_guard<std::mutex> lock(mu_);
      RemoveSnapshotLocked(entry.id);
    } else if (fault::IsDeath(imported.status())) {
      return imported.status();
    } else {
      ++stats.rejected;
    }
  }
  return stats;
}

ConnectServiceStats ConnectService::service_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return service_stats_;
}

size_t ConnectService::ActiveSessionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session.tombstoned) ++n;
  }
  return n;
}

}  // namespace lakeguard
