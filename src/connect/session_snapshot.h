#ifndef LAKEGUARD_CONNECT_SESSION_SNAPSHOT_H_
#define LAKEGUARD_CONNECT_SESSION_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/serde.h"

namespace lakeguard {

/// One prepared statement as carried across a migration: the SQL text plus
/// the binding stamps it was admitted under (§4.2 of DESIGN.md; PV006). The
/// destination replica re-prepares the SQL under the imported identity —
/// re-running analysis, credential vending and the PlanVerifier against the
/// *current* catalog — so a snapshot cannot resurrect privileges revoked
/// after it was taken. The stamps are integrity-checked on import: a record
/// bound to a principal other than the snapshot's session identity is a
/// forgery and is rejected.
struct PreparedStatementRecord {
  std::string statement_id;
  std::string sql;
  std::string bound_principal;
  std::string bound_compute_id;
  uint64_t catalog_epoch = 0;
};

/// Ack watermark of one operation the client may still be fetching. The
/// destination cannot replay result bytes it never produced; instead it
/// answers fetches of a migrated operation with a typed retryable
/// `kUnavailable`, steering the client onto the reattach path (re-execute
/// under the same operation id, resume at its next chunk index — exact,
/// because chunk boundaries are deterministic).
struct OperationWatermark {
  std::string operation_id;
  uint64_t released_below = 0;
  bool done = false;
};

/// Everything a session is, minus the replica it lives on: identity, the
/// catalog epoch at export, temp views, prepared statements and operation
/// watermarks. This is the unit the gateway moves during live migration and
/// rolling upgrades.
struct SessionSnapshot {
  std::string user;
  uint64_t source_epoch = 0;
  std::map<std::string, std::string> temp_views;
  std::vector<PreparedStatementRecord> prepared;
  std::vector<OperationWatermark> watermarks;
};

// Tagged wire encoding (same append-only field-tag scheme as the Connect
// protocol: unknown fields are skipped, so snapshot versions interoperate).
std::vector<uint8_t> EncodeSessionSnapshot(const SessionSnapshot& snapshot);
Result<SessionSnapshot> DecodeSessionSnapshot(
    const std::vector<uint8_t>& bytes);

}  // namespace lakeguard

#endif  // LAKEGUARD_CONNECT_SESSION_SNAPSHOT_H_
