#include "connect/session_snapshot.h"

namespace lakeguard {

namespace {
// Field tags. Append-only; never renumber.
enum SnapField : uint32_t {
  kSnapUser = 1,
  kSnapSourceEpoch = 2,
  kSnapTempView = 3,   // repeated nested {name, definition}
  kSnapPrepared = 4,   // repeated nested PreparedStatementRecord
  kSnapWatermark = 5,  // repeated nested OperationWatermark
};
enum ViewField : uint32_t {
  kViewName = 1,
  kViewDefinition = 2,
};
enum StmtField : uint32_t {
  kStmtId = 1,
  kStmtSql = 2,
  kStmtPrincipal = 3,
  kStmtCompute = 4,
  kStmtEpoch = 5,
};
enum WmField : uint32_t {
  kWmOperation = 1,
  kWmReleasedBelow = 2,
  kWmDone = 3,
};
}  // namespace

std::vector<uint8_t> EncodeSessionSnapshot(const SessionSnapshot& snapshot) {
  ByteWriter w;
  w.PutTaggedString(kSnapUser, snapshot.user);
  w.PutTaggedVarint(kSnapSourceEpoch, snapshot.source_epoch);
  for (const auto& [name, definition] : snapshot.temp_views) {
    ByteWriter view;
    view.PutTaggedString(kViewName, name);
    view.PutTaggedString(kViewDefinition, definition);
    w.PutTaggedMessage(kSnapTempView, view);
  }
  for (const PreparedStatementRecord& record : snapshot.prepared) {
    ByteWriter stmt;
    stmt.PutTaggedString(kStmtId, record.statement_id);
    stmt.PutTaggedString(kStmtSql, record.sql);
    stmt.PutTaggedString(kStmtPrincipal, record.bound_principal);
    stmt.PutTaggedString(kStmtCompute, record.bound_compute_id);
    stmt.PutTaggedVarint(kStmtEpoch, record.catalog_epoch);
    w.PutTaggedMessage(kSnapPrepared, stmt);
  }
  for (const OperationWatermark& wm : snapshot.watermarks) {
    ByteWriter mark;
    mark.PutTaggedString(kWmOperation, wm.operation_id);
    mark.PutTaggedVarint(kWmReleasedBelow, wm.released_below);
    mark.PutTaggedBool(kWmDone, wm.done);
    w.PutTaggedMessage(kSnapWatermark, mark);
  }
  return w.Release();
}

namespace {

Result<PreparedStatementRecord> DecodeStatement(ByteReader* r) {
  PreparedStatementRecord record;
  while (!r->AtEnd()) {
    LG_ASSIGN_OR_RETURN(ByteReader::Tag tag, r->ReadTag());
    switch (tag.field) {
      case kStmtId: {
        LG_ASSIGN_OR_RETURN(record.statement_id, r->ReadString());
        break;
      }
      case kStmtSql: {
        LG_ASSIGN_OR_RETURN(record.sql, r->ReadString());
        break;
      }
      case kStmtPrincipal: {
        LG_ASSIGN_OR_RETURN(record.bound_principal, r->ReadString());
        break;
      }
      case kStmtCompute: {
        LG_ASSIGN_OR_RETURN(record.bound_compute_id, r->ReadString());
        break;
      }
      case kStmtEpoch: {
        LG_ASSIGN_OR_RETURN(record.catalog_epoch, r->ReadVarint());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(r->SkipValue(tag.type));
        break;
    }
  }
  return record;
}

Result<OperationWatermark> DecodeWatermark(ByteReader* r) {
  OperationWatermark wm;
  while (!r->AtEnd()) {
    LG_ASSIGN_OR_RETURN(ByteReader::Tag tag, r->ReadTag());
    switch (tag.field) {
      case kWmOperation: {
        LG_ASSIGN_OR_RETURN(wm.operation_id, r->ReadString());
        break;
      }
      case kWmReleasedBelow: {
        LG_ASSIGN_OR_RETURN(wm.released_below, r->ReadVarint());
        break;
      }
      case kWmDone: {
        LG_ASSIGN_OR_RETURN(wm.done, r->ReadBool());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(r->SkipValue(tag.type));
        break;
    }
  }
  return wm;
}

}  // namespace

Result<SessionSnapshot> DecodeSessionSnapshot(
    const std::vector<uint8_t>& bytes) {
  SessionSnapshot snapshot;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    LG_ASSIGN_OR_RETURN(ByteReader::Tag tag, r.ReadTag());
    switch (tag.field) {
      case kSnapUser: {
        LG_ASSIGN_OR_RETURN(snapshot.user, r.ReadString());
        break;
      }
      case kSnapSourceEpoch: {
        LG_ASSIGN_OR_RETURN(snapshot.source_epoch, r.ReadVarint());
        break;
      }
      case kSnapTempView: {
        LG_ASSIGN_OR_RETURN(ByteReader nested, r.ReadMessage());
        std::string name;
        std::string definition;
        while (!nested.AtEnd()) {
          LG_ASSIGN_OR_RETURN(ByteReader::Tag vtag, nested.ReadTag());
          switch (vtag.field) {
            case kViewName: {
              LG_ASSIGN_OR_RETURN(name, nested.ReadString());
              break;
            }
            case kViewDefinition: {
              LG_ASSIGN_OR_RETURN(definition, nested.ReadString());
              break;
            }
            default:
              LG_RETURN_IF_ERROR(nested.SkipValue(vtag.type));
              break;
          }
        }
        snapshot.temp_views[name] = definition;
        break;
      }
      case kSnapPrepared: {
        LG_ASSIGN_OR_RETURN(ByteReader nested, r.ReadMessage());
        LG_ASSIGN_OR_RETURN(PreparedStatementRecord record,
                            DecodeStatement(&nested));
        snapshot.prepared.push_back(std::move(record));
        break;
      }
      case kSnapWatermark: {
        LG_ASSIGN_OR_RETURN(ByteReader nested, r.ReadMessage());
        LG_ASSIGN_OR_RETURN(OperationWatermark wm, DecodeWatermark(&nested));
        snapshot.watermarks.push_back(std::move(wm));
        break;
      }
      default:
        LG_RETURN_IF_ERROR(r.SkipValue(tag.type));
        break;
    }
  }
  return snapshot;
}

}  // namespace lakeguard
