#ifndef LAKEGUARD_CONNECT_PROTOCOL_H_
#define LAKEGUARD_CONNECT_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "common/serde.h"

namespace lakeguard {

/// Protocol version spoken by this library. The wire format is
/// *field-tagged* (proto-style): decoders skip unknown fields, so newer
/// clients/servers interoperate with older ones — the versionless-workloads
/// property of §6.3. Bump when adding fields; never renumber.
inline constexpr uint32_t kConnectProtocolVersion = 5;

/// ExecutePlan / AnalyzePlan request (§3.2.2). Exactly one of `plan_bytes`
/// (a serialized unresolved relation) or `sql` (a command or query in text
/// form) is set: relations compose, commands side-effect.
struct ConnectRequest {
  uint32_t client_version = kConnectProtocolVersion;
  std::string session_id;
  std::string auth_token;
  std::vector<uint8_t> plan_bytes;
  std::string sql;
  /// Client-generated id allowing reattach to a running operation.
  std::string operation_id;
  /// Relative per-operation deadline in microseconds of service-clock time
  /// (0 = none). The server arms it when the operation starts; once it
  /// passes, pulls on the operation's stream return `kDeadlineExceeded`.
  int64_t deadline_micros = 0;
  /// When set, this request is a CancelOperation RPC for the named
  /// operation (no plan/sql is executed). Cancelling an unknown or
  /// already-cancelled operation is a no-op that still answers OK.
  std::string cancel_operation_id;
  /// When set, the request executes a server-side prepared statement (see
  /// ConnectService::PrepareStatement) instead of carrying plan/sql. The
  /// statement's binding stamps — principal, compute, catalog epoch — are
  /// re-checked on every execution (v5; older servers skip the field and
  /// answer "neither plan nor sql").
  std::string statement_id;
};

/// One streamed result chunk: a serialized IPC batch frame.
struct ResultChunk {
  uint64_t chunk_index = 0;
  std::vector<uint8_t> frame;
  bool last = false;
};

/// ExecutePlan response header: operation handle, result schema, and —
/// for small results — the inline chunks (§3.4 result modes use the same
/// shape).
struct ConnectResponse {
  uint32_t server_version = kConnectProtocolVersion;
  std::string operation_id;
  Schema schema;
  std::vector<ResultChunk> inline_chunks;
  uint64_t total_chunks = 0;
  bool ok = false;
  std::string error_code;     // canonical status-code name on failure
  std::string error_message;
  /// True when the result is produced lazily: `total_chunks` then counts
  /// only the chunks buffered so far and clients must fetch until a chunk
  /// carries `last` instead of trusting the count. Older clients see only
  /// `total_chunks` (the field is skipped) and still drain every buffered
  /// chunk.
  bool streaming = false;
};

// Tagged wire encodings; all fields are individually tagged and unknown
// tags are skipped on decode.
std::vector<uint8_t> EncodeRequest(const ConnectRequest& request);
Result<ConnectRequest> DecodeRequest(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> EncodeResponse(const ConnectResponse& response);
Result<ConnectResponse> DecodeResponse(const std::vector<uint8_t>& bytes);

}  // namespace lakeguard

#endif  // LAKEGUARD_CONNECT_PROTOCOL_H_
