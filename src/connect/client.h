#ifndef LAKEGUARD_CONNECT_CLIENT_H_
#define LAKEGUARD_CONNECT_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "connect/service.h"
#include "plan/plan.h"

namespace lakeguard {

class DataFrame;

/// The Spark Connect *client* (§3.2.1): builds unresolved plans from a
/// DataFrame API, serializes them over the wire, and decodes streamed IPC
/// results. The client process holds no engine state, no credentials and no
/// data — the separation that makes client code untrusted-by-construction.
///
/// Transport note: calls go through `ConnectService::HandleRpc` on encoded
/// byte buffers, so every request/response crosses a real serialization
/// boundary (our stand-in for gRPC/HTTP2).
class ConnectClient {
 public:
  /// Connects and opens a session. `auth_token` identifies the user.
  static Result<ConnectClient> Open(ConnectService* service,
                                    const std::string& auth_token);

  /// DataFrame over a catalog relation ("spark.table(...)").
  DataFrame ReadTable(const std::string& name) const;

  /// DataFrame over inline data ("spark.createDataFrame(...)").
  DataFrame FromBatch(RecordBatch batch) const;

  /// DataFrame over a protocol-extension relation (§3.2.2): `payload` is an
  /// opaque message a server-side plugin registered under `name` expands.
  DataFrame FromExtension(const std::string& name,
                          std::vector<uint8_t> payload) const;

  /// Runs a SQL string (query or command) and collects the full result.
  Result<::lakeguard::Table> Sql(const std::string& sql) const;

  /// Executes a plan and collects the full result (used by DataFrame).
  Result<::lakeguard::Table> ExecutePlanRemote(const PlanPtr& plan) const;

  /// Closes the session server-side.
  Status Close();

  const std::string& session_id() const { return session_id_; }

 private:
  ConnectClient(ConnectService* service, std::string auth_token,
                std::string session_id)
      : service_(service),
        auth_token_(std::move(auth_token)),
        session_id_(std::move(session_id)) {}

  Result<::lakeguard::Table> RoundTrip(ConnectRequest request) const;

  ConnectService* service_;
  std::string auth_token_;
  std::string session_id_;
};

/// Lazily-built unresolved plan with Spark-flavoured combinators. All
/// methods are cheap plan constructions; `Collect` ships the plan to the
/// server (Fig. 5 flow).
class DataFrame {
 public:
  DataFrame(const ConnectClient* client, PlanPtr plan)
      : client_(client), plan_(std::move(plan)) {}

  const PlanPtr& plan() const { return plan_; }

  DataFrame Select(std::vector<ExprPtr> exprs,
                   std::vector<std::string> names) const;
  DataFrame Filter(ExprPtr condition) const;
  DataFrame Join(const DataFrame& right, JoinType type, ExprPtr cond) const;
  DataFrame GroupByAgg(std::vector<ExprPtr> group_exprs,
                       std::vector<std::string> group_names,
                       std::vector<ExprPtr> agg_exprs,
                       std::vector<std::string> agg_names) const;
  DataFrame OrderBy(std::vector<SortKey> keys) const;
  DataFrame Limit(int64_t n) const;

  /// Executes remotely and materializes the full result client-side.
  Result<::lakeguard::Table> Collect() const;

 private:
  const ConnectClient* client_;
  PlanPtr plan_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CONNECT_CLIENT_H_
