#ifndef LAKEGUARD_CONNECT_CLIENT_H_
#define LAKEGUARD_CONNECT_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "common/retry.h"
#include "connect/service.h"
#include "plan/plan.h"

namespace lakeguard {

class DataFrame;

/// Client-side resilience counters (retries are a *client* concern in
/// Connect: the service stays stateless about transport failures).
struct ConnectClientStats {
  uint64_t rpc_attempts = 0;
  uint64_t rpc_retries = 0;      ///< whole-RPC retries (reattach by op id)
  uint64_t chunk_retries = 0;    ///< single-chunk re-fetches after a drop
  uint64_t deadline_hits = 0;
};

/// The Spark Connect *client* (§3.2.1): builds unresolved plans from a
/// DataFrame API, serializes them over the wire, and decodes streamed IPC
/// results. The client process holds no engine state, no credentials and no
/// data — the separation that makes client code untrusted-by-construction.
///
/// Transport note: calls go through `ConnectService::HandleRpc` on encoded
/// byte buffers, so every request/response crosses a real serialization
/// boundary (our stand-in for gRPC/HTTP2).
class ConnectClient {
 public:
  /// Connects and opens a session. `auth_token` identifies the user.
  static Result<ConnectClient> Open(ConnectService* service,
                                    const std::string& auth_token);

  /// DataFrame over a catalog relation ("spark.table(...)").
  DataFrame ReadTable(const std::string& name) const;

  /// DataFrame over inline data ("spark.createDataFrame(...)").
  DataFrame FromBatch(RecordBatch batch) const;

  /// DataFrame over a protocol-extension relation (§3.2.2): `payload` is an
  /// opaque message a server-side plugin registered under `name` expands.
  DataFrame FromExtension(const std::string& name,
                          std::vector<uint8_t> payload) const;

  /// Runs a SQL string (query or command) and collects the full result.
  /// `operation_id`, when non-empty, names the operation (otherwise the
  /// client generates one) — callers that may need to CancelOperation from
  /// another thread pick the id up front.
  Result<::lakeguard::Table> Sql(const std::string& sql,
                                 const std::string& operation_id = "") const;

  /// Executes a plan and collects the full result (used by DataFrame).
  Result<::lakeguard::Table> ExecutePlanRemote(
      const PlanPtr& plan, const std::string& operation_id = "") const;

  /// Cancels a server-side operation (idempotent: cancelling an unknown or
  /// already-cancelled operation succeeds). Goes over the wire with the
  /// usual transport retry.
  Status CancelOperation(const std::string& operation_id) const;

  /// Arms a per-operation deadline (service-clock micros, relative) stamped
  /// on every subsequent Execute; 0 disables. Once it passes server-side,
  /// pulls/fetches for that operation answer `kDeadlineExceeded`.
  void set_operation_deadline_micros(int64_t micros) {
    operation_deadline_micros_ = micros;
  }

  /// Closes the session server-side.
  Status Close();

  const std::string& session_id() const { return session_id_; }

  /// Replaces the transport retry policy (defaults to 4 attempts with
  /// jittered exponential backoff, charged to the service clock).
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  const ConnectClientStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ConnectClientStats(); }

 private:
  ConnectClient(ConnectService* service, std::string auth_token,
                std::string session_id)
      : service_(service),
        auth_token_(std::move(auth_token)),
        session_id_(std::move(session_id)) {
    retry_policy_.max_attempts = 4;
    retry_policy_.backoff.initial_micros = 20'000;
    retry_policy_.backoff.multiplier = 2.0;
    retry_policy_.backoff.max_micros = 500'000;
    retry_policy_.backoff.jitter = 0.25;
  }

  Result<::lakeguard::Table> RoundTrip(ConnectRequest request) const;
  /// One encode → HandleRpc → decode exchange, with the server error code
  /// mapped back to a typed `Status` for retry classification.
  Result<ConnectResponse> Exchange(const ConnectRequest& request) const;
  Result<ResultChunk> FetchChunkWithRetry(const std::string& operation_id,
                                          uint64_t chunk_index) const;

  ConnectService* service_;
  std::string auth_token_;
  std::string session_id_;
  RetryPolicy retry_policy_;
  int64_t operation_deadline_micros_ = 0;
  mutable ConnectClientStats stats_;
};

/// Lazily-built unresolved plan with Spark-flavoured combinators. All
/// methods are cheap plan constructions; `Collect` ships the plan to the
/// server (Fig. 5 flow).
class DataFrame {
 public:
  DataFrame(const ConnectClient* client, PlanPtr plan)
      : client_(client), plan_(std::move(plan)) {}

  const PlanPtr& plan() const { return plan_; }

  DataFrame Select(std::vector<ExprPtr> exprs,
                   std::vector<std::string> names) const;
  DataFrame Filter(ExprPtr condition) const;
  DataFrame Join(const DataFrame& right, JoinType type, ExprPtr cond) const;
  DataFrame GroupByAgg(std::vector<ExprPtr> group_exprs,
                       std::vector<std::string> group_names,
                       std::vector<ExprPtr> agg_exprs,
                       std::vector<std::string> agg_names) const;
  DataFrame OrderBy(std::vector<SortKey> keys) const;
  DataFrame Limit(int64_t n) const;

  /// Executes remotely and materializes the full result client-side.
  Result<::lakeguard::Table> Collect() const;

 private:
  const ConnectClient* client_;
  PlanPtr plan_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CONNECT_CLIENT_H_
