#include "connect/protocol.h"

#include "columnar/ipc.h"

namespace lakeguard {

namespace {
// Field tags. Append-only; never renumber.
enum ReqField : uint32_t {
  kReqVersion = 1,
  kReqSession = 2,
  kReqToken = 3,
  kReqPlan = 4,
  kReqSql = 5,
  kReqOperation = 6,
  kReqDeadlineMicros = 7,
  kReqCancelOperation = 8,
  kReqStatement = 9,
};
enum RespField : uint32_t {
  kRespVersion = 1,
  kRespOperation = 2,
  kRespSchema = 3,
  kRespChunk = 4,
  kRespTotalChunks = 5,
  kRespOk = 6,
  kRespErrorCode = 7,
  kRespErrorMessage = 8,
  kRespStreaming = 9,
};
enum ChunkField : uint32_t {
  kChunkIndex = 1,
  kChunkFrame = 2,
  kChunkLast = 3,
};
}  // namespace

std::vector<uint8_t> EncodeRequest(const ConnectRequest& request) {
  ByteWriter w;
  w.PutTaggedVarint(kReqVersion, request.client_version);
  w.PutTaggedString(kReqSession, request.session_id);
  w.PutTaggedString(kReqToken, request.auth_token);
  if (!request.plan_bytes.empty()) {
    w.PutTaggedBytes(kReqPlan, request.plan_bytes);
  }
  if (!request.sql.empty()) {
    w.PutTaggedString(kReqSql, request.sql);
  }
  w.PutTaggedString(kReqOperation, request.operation_id);
  if (request.deadline_micros > 0) {
    w.PutTaggedVarint(kReqDeadlineMicros,
                      static_cast<uint64_t>(request.deadline_micros));
  }
  if (!request.cancel_operation_id.empty()) {
    w.PutTaggedString(kReqCancelOperation, request.cancel_operation_id);
  }
  if (!request.statement_id.empty()) {
    w.PutTaggedString(kReqStatement, request.statement_id);
  }
  return w.Release();
}

Result<ConnectRequest> DecodeRequest(const std::vector<uint8_t>& bytes) {
  ConnectRequest request;
  request.client_version = 0;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    LG_ASSIGN_OR_RETURN(ByteReader::Tag tag, r.ReadTag());
    switch (tag.field) {
      case kReqVersion: {
        LG_ASSIGN_OR_RETURN(uint64_t v, r.ReadVarint());
        request.client_version = static_cast<uint32_t>(v);
        break;
      }
      case kReqSession: {
        LG_ASSIGN_OR_RETURN(request.session_id, r.ReadString());
        break;
      }
      case kReqToken: {
        LG_ASSIGN_OR_RETURN(request.auth_token, r.ReadString());
        break;
      }
      case kReqPlan: {
        LG_ASSIGN_OR_RETURN(request.plan_bytes, r.ReadBytes());
        break;
      }
      case kReqSql: {
        LG_ASSIGN_OR_RETURN(request.sql, r.ReadString());
        break;
      }
      case kReqOperation: {
        LG_ASSIGN_OR_RETURN(request.operation_id, r.ReadString());
        break;
      }
      case kReqDeadlineMicros: {
        LG_ASSIGN_OR_RETURN(uint64_t v, r.ReadVarint());
        request.deadline_micros = static_cast<int64_t>(v);
        break;
      }
      case kReqCancelOperation: {
        LG_ASSIGN_OR_RETURN(request.cancel_operation_id, r.ReadString());
        break;
      }
      case kReqStatement: {
        LG_ASSIGN_OR_RETURN(request.statement_id, r.ReadString());
        break;
      }
      default:
        // Unknown field from a newer client: skip (forward compatibility).
        LG_RETURN_IF_ERROR(r.SkipValue(tag.type));
        break;
    }
  }
  return request;
}

namespace {

void EncodeChunk(const ResultChunk& chunk, ByteWriter* w) {
  ByteWriter nested;
  nested.PutTaggedVarint(kChunkIndex, chunk.chunk_index);
  nested.PutTaggedBytes(kChunkFrame, chunk.frame);
  nested.PutTaggedBool(kChunkLast, chunk.last);
  w->PutTaggedMessage(kRespChunk, nested);
}

Result<ResultChunk> DecodeChunk(ByteReader* r) {
  ResultChunk chunk;
  while (!r->AtEnd()) {
    LG_ASSIGN_OR_RETURN(ByteReader::Tag tag, r->ReadTag());
    switch (tag.field) {
      case kChunkIndex: {
        LG_ASSIGN_OR_RETURN(chunk.chunk_index, r->ReadVarint());
        break;
      }
      case kChunkFrame: {
        LG_ASSIGN_OR_RETURN(chunk.frame, r->ReadBytes());
        break;
      }
      case kChunkLast: {
        LG_ASSIGN_OR_RETURN(chunk.last, r->ReadBool());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(r->SkipValue(tag.type));
        break;
    }
  }
  return chunk;
}

}  // namespace

std::vector<uint8_t> EncodeResponse(const ConnectResponse& response) {
  ByteWriter w;
  w.PutTaggedVarint(kRespVersion, response.server_version);
  w.PutTaggedString(kRespOperation, response.operation_id);
  ByteWriter schema_bytes;
  ipc::SerializeSchema(response.schema, &schema_bytes);
  w.PutTaggedMessage(kRespSchema, schema_bytes);
  for (const ResultChunk& chunk : response.inline_chunks) {
    EncodeChunk(chunk, &w);
  }
  w.PutTaggedVarint(kRespTotalChunks, response.total_chunks);
  w.PutTaggedBool(kRespOk, response.ok);
  w.PutTaggedString(kRespErrorCode, response.error_code);
  w.PutTaggedString(kRespErrorMessage, response.error_message);
  w.PutTaggedBool(kRespStreaming, response.streaming);
  return w.Release();
}

Result<ConnectResponse> DecodeResponse(const std::vector<uint8_t>& bytes) {
  ConnectResponse response;
  ByteReader r(bytes);
  while (!r.AtEnd()) {
    LG_ASSIGN_OR_RETURN(ByteReader::Tag tag, r.ReadTag());
    switch (tag.field) {
      case kRespVersion: {
        LG_ASSIGN_OR_RETURN(uint64_t v, r.ReadVarint());
        response.server_version = static_cast<uint32_t>(v);
        break;
      }
      case kRespOperation: {
        LG_ASSIGN_OR_RETURN(response.operation_id, r.ReadString());
        break;
      }
      case kRespSchema: {
        LG_ASSIGN_OR_RETURN(ByteReader nested, r.ReadMessage());
        LG_ASSIGN_OR_RETURN(response.schema, ipc::DeserializeSchema(&nested));
        break;
      }
      case kRespChunk: {
        LG_ASSIGN_OR_RETURN(ByteReader nested, r.ReadMessage());
        LG_ASSIGN_OR_RETURN(ResultChunk chunk, DecodeChunk(&nested));
        response.inline_chunks.push_back(std::move(chunk));
        break;
      }
      case kRespTotalChunks: {
        LG_ASSIGN_OR_RETURN(response.total_chunks, r.ReadVarint());
        break;
      }
      case kRespOk: {
        LG_ASSIGN_OR_RETURN(response.ok, r.ReadBool());
        break;
      }
      case kRespErrorCode: {
        LG_ASSIGN_OR_RETURN(response.error_code, r.ReadString());
        break;
      }
      case kRespErrorMessage: {
        LG_ASSIGN_OR_RETURN(response.error_message, r.ReadString());
        break;
      }
      case kRespStreaming: {
        LG_ASSIGN_OR_RETURN(response.streaming, r.ReadBool());
        break;
      }
      default:
        LG_RETURN_IF_ERROR(r.SkipValue(tag.type));
        break;
    }
  }
  return response;
}

}  // namespace lakeguard
