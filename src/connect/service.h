#ifndef LAKEGUARD_CONNECT_SERVICE_H_
#define LAKEGUARD_CONNECT_SERVICE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cluster/cluster.h"
#include "connect/protocol.h"
#include "engine/engine.h"

namespace lakeguard {

/// State of one multi-user Spark session on the server (§3.2.3): the
/// authenticated identity, its privilege scope, activity timestamps and the
/// operations it owns.
struct SessionInfo {
  std::string session_id;
  std::string user;
  ComputeContext compute;
  int64_t created_micros = 0;
  int64_t last_activity_micros = 0;
  bool tombstoned = false;
  /// Session-scoped temporary views (shared with every execution context
  /// this session produces; §3.2.3).
  std::shared_ptr<std::map<std::string, std::string>> temp_views;
};

/// Result-chunking policy: results at most this many rows per chunk.
inline constexpr size_t kRowsPerChunk = 1024;
/// Results up to this many chunks come back inline; larger ones stream via
/// FetchChunk (reattach-friendly).
inline constexpr size_t kInlineChunkLimit = 4;

/// Service-level resilience counters: how often the RPC seam and the result
/// stream failed (injected or real), and how often clients reattached to a
/// buffered operation instead of re-executing.
struct ConnectServiceStats {
  uint64_t rpcs = 0;
  uint64_t rpc_faults = 0;       ///< HandleRpc failed at the transport seam
  uint64_t fetches = 0;
  uint64_t stream_faults = 0;    ///< FetchChunk failed at the stream seam
  uint64_t reattaches = 0;       ///< Execute served a buffered header again
  uint64_t lazy_chunks = 0;      ///< chunks produced on demand in FetchChunk
  // --- lifecycle ---
  uint64_t cancels = 0;          ///< CancelOperation that cancelled a live op
  uint64_t cancel_noops = 0;     ///< cancels of unknown/already-cancelled ops
  uint64_t deadline_ops = 0;     ///< operations armed with a deadline
  uint64_t drain_rejects = 0;    ///< OpenSession rejected while draining
  uint64_t expired_operations = 0;  ///< op streams torn down by the expirer
};

/// The Spark Connect service of one cluster: authenticates tokens to users,
/// maps connections to sessions, runs plans/commands through the engine
/// under the session identity, and streams results back as IPC chunks.
/// Multi-user by construction — every session carries its own identity and
/// its own sandboxes (§3.2.3, §4.1).
class ConnectService {
 public:
  ConnectService(QueryEngine* engine, Cluster* cluster, UnityCatalog* catalog,
                 Clock* clock)
      : engine_(engine), cluster_(cluster), catalog_(catalog), clock_(clock) {}

  ConnectService(const ConnectService&) = delete;
  ConnectService& operator=(const ConnectService&) = delete;

  /// Registers a bearer token for a user (the platform's auth system).
  void RegisterUserToken(const std::string& token, const std::string& user);

  /// Opens a session: authenticates the token, runs cluster admission and
  /// captures the resulting privilege scope.
  Result<std::string> OpenSession(const std::string& auth_token);

  /// The single RPC entry point: decodes the request, executes, encodes the
  /// response. This is the function a gRPC handler would wrap.
  std::vector<uint8_t> HandleRpc(const std::vector<uint8_t>& request_bytes);

  /// Typed counterpart of HandleRpc (used by in-process clients).
  ConnectResponse Execute(const ConnectRequest& request);

  /// Fetches one chunk of a large (non-inline) result; supports reattach.
  Result<ResultChunk> FetchChunk(const std::string& session_id,
                                 const std::string& operation_id,
                                 uint64_t chunk_index);

  /// Cancels a running operation: the live query stream is torn down (all
  /// resident batches and spill state released) and buffered chunks are
  /// dropped; further fetches answer `kCancelled`. Cancelling an unknown or
  /// already-cancelled operation is an idempotent no-op (the first cancel
  /// may have won a race — the client must not see an error). Cancelling
  /// another session's operation is `kPermissionDenied`.
  Status CancelOperation(const std::string& session_id,
                         const std::string& operation_id);

  /// Releases an operation's buffered result.
  void CloseOperation(const std::string& session_id,
                      const std::string& operation_id);

  /// Enters drain mode: new sessions are rejected with `kUnavailable` (a
  /// typed *retryable* status — clients fail over to another replica) while
  /// existing sessions keep executing and fetching until their operations
  /// finish, are cancelled, or hit their deadlines.
  void BeginDrain();
  /// Leaves drain mode (tests; a real rollout would restart instead).
  void EndDrain();
  bool draining() const;
  /// Force-drain hammer: cancels every live operation. Returns the count.
  size_t CancelAllOperations(const std::string& reason);
  /// Operations whose stream is still live (not exhausted, not cancelled).
  size_t LiveOperationCount() const;
  /// True once draining and no operation is live — safe to stop the server.
  bool DrainComplete() const;

  /// Closes the session, destroys its sandboxes, tombstones its operations.
  Status CloseSession(const std::string& session_id);

  /// Abandons sessions idle for longer than `idle_micros` (the paper's
  /// lifecycle management of disappeared clients). Returns the count.
  size_t ExpireIdleSessions(int64_t idle_micros);

  Result<SessionInfo> GetSession(const std::string& session_id) const;
  size_t ActiveSessionCount() const;

  QueryEngine* engine() { return engine_; }
  Cluster* cluster() { return cluster_; }
  /// The service clock — clients charge their retry backoff here so client
  /// and server share one (possibly simulated) timeline.
  Clock* clock() const { return clock_; }
  ConnectServiceStats service_stats() const;

 private:
  /// A buffered operation over a *live* query stream. Frames are cut from
  /// the stream on demand (kRowsPerChunk rows each) and cached: a re-fetched
  /// chunk index replays its cached frame byte-for-byte — the stream is
  /// never pulled twice for the same chunk, which is what makes chunk-level
  /// retry after a dropped stream exact.
  struct Operation {
    std::string session_id;
    Schema schema;
    std::vector<std::vector<uint8_t>> frames;  // chunks cut so far
    QueryResultStreamPtr stream;               // null for fully-cut results
    std::vector<RecordBatch> pending;          // pulled but not yet framed
    size_t pending_rows = 0;
    bool exhausted = false;                    // stream returned end-of-data
    /// Lifecycle owner of the operation's query: Execute arms the deadline
    /// here and CancelOperation fires it; the stream's pipeline checks the
    /// linked token on every pull.
    CancellationSource cancel;
    bool cancelled = false;

    bool Done() const { return exhausted && pending_rows == 0; }
  };

  /// Cancels `op` and tears down its stream/buffers; requires mu_ held.
  void CancelOperationLocked(Operation& op, const std::string& reason);

  /// Cuts the next frame from `op` (requires mu_ held; the engine pull
  /// happens under the lock — acceptable for this single-process model, a
  /// real server would move production to a worker). Guarantees progress:
  /// either `op.frames` grows or `op.Done()` becomes true.
  Status ProduceFrame(Operation& op);

  ConnectResponse ErrorResponse(const Status& status,
                                const std::string& operation_id) const;

  QueryEngine* engine_;
  Cluster* cluster_;
  UnityCatalog* catalog_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::map<std::string, std::string> tokens_;  // token -> user
  std::map<std::string, SessionInfo> sessions_;
  std::map<std::string, Operation> operations_;  // operation_id -> op
  ConnectServiceStats service_stats_;
  bool draining_ = false;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CONNECT_SERVICE_H_
