#ifndef LAKEGUARD_CONNECT_SERVICE_H_
#define LAKEGUARD_CONNECT_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cluster/cluster.h"
#include "common/memory_budget.h"
#include "connect/protocol.h"
#include "connect/session_snapshot.h"
#include "engine/engine.h"
#include "storage/durable/snapshot_store.h"

namespace lakeguard {

/// State of one multi-user Spark session on the server (§3.2.3): the
/// authenticated identity, its privilege scope, activity timestamps and the
/// operations it owns.
struct SessionInfo {
  std::string session_id;
  std::string user;
  ComputeContext compute;
  int64_t created_micros = 0;
  int64_t last_activity_micros = 0;
  bool tombstoned = false;
  /// Session-scoped temporary views (shared with every execution context
  /// this session produces; §3.2.3).
  std::shared_ptr<std::map<std::string, std::string>> temp_views;
};

/// Result-chunking policy: results at most this many rows per chunk.
inline constexpr size_t kRowsPerChunk = 1024;
/// Results up to this many chunks come back inline; larger ones stream via
/// FetchChunk (reattach-friendly).
inline constexpr size_t kInlineChunkLimit = 4;

/// Admission control for ExecutePlan: at most `max_concurrent_operations`
/// operations hold an execution slot at a time; arrivals beyond that wait in
/// a FIFO queue bounded by `max_queue_depth`. A waiter that exceeds
/// `max_queue_wait_micros` (or whose operation deadline fires first) is shed
/// with a typed retryable error — load shedding composes with the client's
/// retry/backoff loop instead of letting the server melt down.
/// `max_concurrent_operations == 0` disables admission control entirely.
struct ConnectAdmissionConfig {
  size_t max_concurrent_operations = 0;  // 0 = unlimited
  size_t max_queue_depth = 4;
  int64_t max_queue_wait_micros = 5'000'000;
};

/// Service-level resilience counters: how often the RPC seam and the result
/// stream failed (injected or real), and how often clients reattached to a
/// buffered operation instead of re-executing.
struct ConnectServiceStats {
  uint64_t rpcs = 0;
  uint64_t rpc_faults = 0;       ///< HandleRpc failed at the transport seam
  uint64_t fetches = 0;
  uint64_t stream_faults = 0;    ///< FetchChunk failed at the stream seam
  uint64_t reattaches = 0;       ///< Execute served a buffered header again
  uint64_t lazy_chunks = 0;      ///< chunks produced on demand in FetchChunk
  // --- lifecycle ---
  uint64_t cancels = 0;          ///< CancelOperation that cancelled a live op
  uint64_t cancel_noops = 0;     ///< cancels of unknown/already-cancelled ops
  uint64_t deadline_ops = 0;     ///< operations armed with a deadline
  uint64_t drain_rejects = 0;    ///< OpenSession rejected while draining
  uint64_t expired_operations = 0;  ///< op streams torn down by the expirer
  // --- admission control ---
  uint64_t admitted_operations = 0;  ///< operations granted an execution slot
  uint64_t queued_operations = 0;    ///< operations that had to wait for one
  uint64_t shed_operations = 0;      ///< typed retryable rejects (full queue
                                     ///< or queue-wait timeout)
  uint64_t queue_timeouts = 0;       ///< sheds caused by queue-wait timeout
  uint64_t peak_queue_depth = 0;     ///< deepest the wait queue ever got
  uint64_t queue_wait_micros = 0;    ///< total clock time spent queued
  // --- chunk cache ---
  uint64_t cache_backpressure = 0;   ///< fetches refused: cache at capacity
  uint64_t frames_released = 0;      ///< cached frames evicted/released
  uint64_t completed_releases = 0;   ///< ops whose frames were freed on the
                                     ///< last-chunk fetch (not session expiry)
  uint64_t chunk_cache_peak_bytes = 0;  ///< high-water mark of cached bytes
  // --- prepared statements & migration ---
  uint64_t statements_prepared = 0;      ///< PrepareStatement successes
  uint64_t statement_executions = 0;     ///< executions via statement_id
  uint64_t statement_reverifications = 0;  ///< executions that hit the
                                           ///< epoch-drift re-verify path
  uint64_t sessions_exported = 0;        ///< ExportSession successes
  uint64_t sessions_imported = 0;        ///< ImportSession successes
  uint64_t import_rejects = 0;           ///< snapshots refused (identity or
                                         ///< stamp mismatch, failed re-verify)
  uint64_t migrated_fetch_redirects = 0;  ///< fetches of a migrated op
                                          ///< answered with typed retryable
                                          ///< kUnavailable (reattach steer)
  // --- session durability ---
  uint64_t snapshots_persisted = 0;  ///< session snapshots written durably
  uint64_t snapshots_removed = 0;    ///< snapshots deleted on session close
};

/// Outcome of replaying persisted session snapshots after a restart. Every
/// snapshot on disk lands in exactly one bucket; `corrupt` and `rejected`
/// sessions are NOT admitted (fail closed).
struct SessionRecoveryStats {
  size_t recovered = 0;  ///< sessions re-imported and fully re-verified
  size_t rejected = 0;   ///< decodable snapshots refused by re-verification
                         ///< (revoked identity, stale/forged stamps, …)
  size_t corrupt = 0;    ///< undecodable snapshots (torn/flipped/garbage)
};

/// The Spark Connect service of one cluster: authenticates tokens to users,
/// maps connections to sessions, runs plans/commands through the engine
/// under the session identity, and streams results back as IPC chunks.
/// Multi-user by construction — every session carries its own identity and
/// its own sandboxes (§3.2.3, §4.1).
class ConnectService {
 public:
  ConnectService(QueryEngine* engine, Cluster* cluster, UnityCatalog* catalog,
                 Clock* clock)
      : engine_(engine), cluster_(cluster), catalog_(catalog), clock_(clock) {}

  ConnectService(const ConnectService&) = delete;
  ConnectService& operator=(const ConnectService&) = delete;

  /// Registers a bearer token for a user (the platform's auth system).
  void RegisterUserToken(const std::string& token, const std::string& user);

  /// Opens a session: authenticates the token, runs cluster admission and
  /// captures the resulting privilege scope.
  Result<std::string> OpenSession(const std::string& auth_token);

  /// The single RPC entry point: decodes the request, executes, encodes the
  /// response. This is the function a gRPC handler would wrap.
  std::vector<uint8_t> HandleRpc(const std::vector<uint8_t>& request_bytes);

  /// Typed counterpart of HandleRpc (used by in-process clients).
  ConnectResponse Execute(const ConnectRequest& request);

  /// Fetches one chunk of a large (non-inline) result; supports reattach.
  Result<ResultChunk> FetchChunk(const std::string& session_id,
                                 const std::string& operation_id,
                                 uint64_t chunk_index);

  /// Cancels a running operation: the live query stream is torn down (all
  /// resident batches and spill state released) and buffered chunks are
  /// dropped; further fetches answer `kCancelled`. Cancelling an unknown or
  /// already-cancelled operation is an idempotent no-op (the first cancel
  /// may have won a race — the client must not see an error). Cancelling
  /// another session's operation is `kPermissionDenied`.
  Status CancelOperation(const std::string& session_id,
                         const std::string& operation_id);

  /// Releases an operation's buffered result.
  void CloseOperation(const std::string& session_id,
                      const std::string& operation_id);

  /// Enters drain mode: new sessions are rejected with `kUnavailable` (a
  /// typed *retryable* status — clients fail over to another replica) while
  /// existing sessions keep executing and fetching until their operations
  /// finish, are cancelled, or hit their deadlines.
  void BeginDrain();
  /// Leaves drain mode (tests; a real rollout would restart instead).
  void EndDrain();
  bool draining() const;
  /// Force-drain hammer: cancels every live operation. Returns the count.
  size_t CancelAllOperations(const std::string& reason);
  /// Operations whose stream is still live (not exhausted, not cancelled).
  size_t LiveOperationCount() const;
  /// True once draining and no operation is live — safe to stop the server.
  bool DrainComplete() const;

  /// Prepares a SQL statement server-side: runs the full prepare pipeline
  /// (rewrite, analyze, verify) once, records the binding stamps —
  /// principal, compute, catalog epoch — and returns a statement id the
  /// client executes by reference (`ConnectRequest::statement_id`). Every
  /// execution re-checks the stamps: a principal or compute mismatch is
  /// `kPermissionDenied`, and catalog-epoch drift re-verifies the plan
  /// against current policy before running.
  Result<std::string> PrepareStatement(const std::string& session_id,
                                       const std::string& sql);

  /// Serializes the session for live migration: identity, temp views,
  /// prepared-statement binding stamps and chunk-cache ack watermarks. The
  /// session keeps running — export is read-only; the gateway commits the
  /// move only after the destination import succeeds.
  Result<std::vector<uint8_t>> ExportSession(const std::string& session_id);

  /// Rebuilds a session from a snapshot on this replica. The token must
  /// authenticate to the snapshot's identity, and every prepared statement
  /// is *re-prepared and re-verified* against the current catalog under the
  /// imported identity (PV001–PV007) — a stale snapshot cannot resurrect
  /// revoked privileges, and tampered binding stamps are rejected. All or
  /// nothing: any failure leaves this replica without the session.
  Result<std::string> ImportSession(const std::vector<uint8_t>& snapshot_bytes,
                                    const std::string& auth_token);

  /// Closes the session, destroys its sandboxes, tombstones its operations.
  Status CloseSession(const std::string& session_id);

  /// Abandons sessions idle for longer than `idle_micros` (the paper's
  /// lifecycle management of disappeared clients). Returns the count.
  size_t ExpireIdleSessions(int64_t idle_micros);

  Result<SessionInfo> GetSession(const std::string& session_id) const;
  size_t ActiveSessionCount() const;

  // -- Durability --

  /// Wires a durable snapshot store under the session map. From this point
  /// every session-shaping mutation (open, prepare, import) persists the
  /// owning session's snapshot BEFORE the mutation is acknowledged — a
  /// persist failure rolls the mutation back — and closing or expiring a
  /// session removes its snapshot. Call before any traffic.
  void AttachSessionStore(SnapshotStore* store);

  /// Replays persisted session snapshots after a restart. Each decodable
  /// snapshot goes through the full ImportSession pipeline — identity
  /// re-authentication (the token registry must be re-populated first),
  /// all-or-nothing re-prepare, PV001–PV007 re-verification against the
  /// *current* catalog — so recovery admits exactly what a live migration
  /// would. Corrupt snapshots are counted and skipped, never admitted (fail
  /// closed). Crash seam: `snapshot.import` (death aborts recovery; the
  /// snapshots not yet re-imported survive on disk for the next restart).
  Result<SessionRecoveryStats> RecoverSessions();

  /// Installs admission control for ExecutePlan (see ConnectAdmissionConfig).
  void set_admission_config(ConnectAdmissionConfig config) {
    std::lock_guard<std::mutex> lock(mu_);
    admission_ = config;
  }

  /// Caps the total bytes of cached (cut but un-released) result frames
  /// across all operations (0 = unlimited). When the cap is hit, fetches
  /// that would cut *new* frames get a typed retryable `kUnavailable` —
  /// backpressure the client's retry loop absorbs — and each successful
  /// fetch releases the frames below the served index (the client fetches
  /// sequentially, so a served index acknowledges everything before it).
  void set_chunk_cache_limit_bytes(size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    chunk_cache_limit_bytes_ = bytes;
  }

  /// Attaches the memory governor: every ExecutePlan charges its pipeline
  /// to an operation budget under the session's budget, and closing or
  /// expiring a session drops its budget node.
  void set_memory_governor(MemoryGovernor* governor) {
    std::lock_guard<std::mutex> lock(mu_);
    governor_ = governor;
  }

  QueryEngine* engine() { return engine_; }
  Cluster* cluster() { return cluster_; }
  /// The service clock — clients charge their retry backoff here so client
  /// and server share one (possibly simulated) timeline.
  Clock* clock() const { return clock_; }
  ConnectServiceStats service_stats() const;

 private:
  /// A buffered operation over a *live* query stream. Frames are cut from
  /// the stream on demand (kRowsPerChunk rows each) and cached: a re-fetched
  /// chunk index replays its cached frame byte-for-byte — the stream is
  /// never pulled twice for the same chunk, which is what makes chunk-level
  /// retry after a dropped stream exact.
  struct Operation {
    std::string session_id;
    Schema schema;
    std::vector<std::vector<uint8_t>> frames;  // chunks cut so far
    QueryResultStreamPtr stream;               // null for fully-cut results
    std::vector<RecordBatch> pending;          // pulled but not yet framed
    size_t pending_rows = 0;
    bool exhausted = false;                    // stream returned end-of-data
    /// Lifecycle owner of the operation's query: Execute arms the deadline
    /// here and CancelOperation fires it; the stream's pipeline checks the
    /// linked token on every pull.
    CancellationSource cancel;
    bool cancelled = false;
    /// Bytes this operation currently holds in the chunk cache.
    size_t cached_bytes = 0;
    /// Frames below this index have been released (fetched-and-acked, or
    /// freed wholesale on the last-chunk fetch). The vector keeps its length
    /// so chunk indices stay aligned; released slots are empty.
    size_t released_below = 0;
    /// True while the operation holds an admission slot.
    bool holds_slot = false;

    bool Done() const { return exhausted && pending_rows == 0; }
  };

  /// Cancels `op` and tears down its stream/buffers; requires mu_ held.
  void CancelOperationLocked(Operation& op, const std::string& reason);

  /// Cuts the next frame from `op` (requires mu_ held; the engine pull
  /// happens under the lock — acceptable for this single-process model, a
  /// real server would move production to a worker). Guarantees progress:
  /// either `op.frames` grows, `op.Done()` becomes true, or — when the
  /// chunk cache is at capacity and other operations hold part of it —
  /// `*cache_full` is set and nothing is pulled.
  Status ProduceFrame(Operation& op, bool* cache_full);

  /// Waits for an execution slot (FIFO, deadline-aware) or sheds the
  /// request. `lock` must hold mu_ on entry and holds it again on return.
  Status AdmitOperation(std::unique_lock<std::mutex>& lock,
                        const CancellationToken& deadline);

  /// Returns `op`'s admission slot (if held) and wakes a waiter; needs mu_.
  void ReleaseSlotLocked(Operation& op);

  /// Releases the cached frames of `op` below `upto` (swap-frees the byte
  /// vectors, keeps the vector length for index alignment); requires mu_.
  void ReleaseFramesLocked(Operation& op, size_t upto);

  ConnectResponse ErrorResponse(const Status& status,
                                const std::string& operation_id) const;

  /// Builds the migration/durability snapshot of one live session: identity,
  /// catalog epoch, temp views, prepared-statement binding stamps and
  /// operation ack watermarks. Requires mu_ held; read-only.
  SessionSnapshot BuildSnapshotLocked(const SessionInfo& session) const;

  /// Persists `session_id`'s snapshot to the attached store (no-op without
  /// one). Requires mu_ held. Callers treat a failure as "mutation not
  /// acknowledged" and roll back.
  Status PersistSessionLocked(const std::string& session_id);

  /// Removes `session_id`'s persisted snapshot (no-op without a store);
  /// requires mu_ held. Best-effort: a closed session whose snapshot
  /// lingers is re-verified (and typically replay-rejected) at recovery —
  /// it can never resurrect privileges.
  void RemoveSnapshotLocked(const std::string& session_id);

  QueryEngine* engine_;
  Cluster* cluster_;
  UnityCatalog* catalog_;
  Clock* clock_;

  /// One server-side prepared statement and the session that owns it.
  struct PreparedStatement {
    std::string session_id;
    PreparedStatementRecord record;
  };
  /// Tombstone of an operation that migrated away with its session: fetches
  /// answer typed retryable `kUnavailable` (steering the client onto the
  /// reattach path) instead of `kNotFound`.
  struct MigratedOperation {
    std::string session_id;
    uint64_t released_below = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::string> tokens_;  // token -> user
  std::map<std::string, SessionInfo> sessions_;
  std::map<std::string, Operation> operations_;  // operation_id -> op
  std::map<std::string, PreparedStatement> prepared_;  // statement_id -> stmt
  std::map<std::string, MigratedOperation> migrated_ops_;
  ConnectServiceStats service_stats_;
  bool draining_ = false;

  // --- admission control (guarded by mu_) ---
  ConnectAdmissionConfig admission_;
  std::condition_variable admission_cv_;
  std::deque<uint64_t> admission_queue_;  // FIFO of waiting tickets
  uint64_t next_ticket_ = 0;
  size_t running_operations_ = 0;

  // --- chunk cache (guarded by mu_) ---
  size_t chunk_cache_limit_bytes_ = 0;  // 0 = unlimited
  size_t chunk_cache_bytes_ = 0;

  MemoryGovernor* governor_ = nullptr;

  // --- session durability (guarded by mu_) ---
  SnapshotStore* session_store_ = nullptr;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_CONNECT_SERVICE_H_
