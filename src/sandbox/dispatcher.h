#ifndef LAKEGUARD_SANDBOX_DISPATCHER_H_
#define LAKEGUARD_SANDBOX_DISPATCHER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/id.h"
#include "common/retry.h"
#include "sandbox/sandbox.h"

namespace lakeguard {

/// Provisions sandboxes on behalf of the dispatcher — the cluster-manager
/// interface of Fig. 7. Implementations decide where the sandbox runs and
/// what provisioning costs; provisioning latency is charged to the clock.
class SandboxProvisioner {
 public:
  virtual ~SandboxProvisioner() = default;
  virtual Result<std::unique_ptr<Sandbox>> Provision(
      const std::string& trust_domain, const SandboxPolicy& policy) = 0;
};

/// Default provisioner: sandboxes run on the local host environment, and a
/// cold start costs `cold_start_micros` of (possibly simulated) clock time —
/// the ≈2 s the paper measures for provisioning + interpreter start (§5).
class LocalSandboxProvisioner : public SandboxProvisioner {
 public:
  LocalSandboxProvisioner(SimulatedHostEnvironment* env, Clock* clock,
                          int64_t cold_start_micros = 2'000'000)
      : env_(env), clock_(clock), cold_start_micros_(cold_start_micros) {}

  Result<std::unique_ptr<Sandbox>> Provision(
      const std::string& trust_domain, const SandboxPolicy& policy) override;

  int64_t cold_start_micros() const { return cold_start_micros_; }

 private:
  SimulatedHostEnvironment* env_;
  Clock* clock_;
  int64_t cold_start_micros_;
};

/// Dispatcher counters (cold-start amortization analysis, §5; provisioning
/// resilience counters so chaos benches can report retry behaviour).
struct DispatcherStats {
  uint64_t cold_starts = 0;
  uint64_t reuses = 0;
  uint64_t evictions = 0;
  /// Provision attempts beyond the first, across all acquisitions.
  uint64_t provision_retries = 0;
  /// Acquisitions that failed even after retrying.
  uint64_t provision_failures = 0;
  /// Retry loops aborted because the backoff schedule hit the deadline.
  uint64_t provision_deadline_hits = 0;
};

/// Manages the sandboxes of one host (Fig. 7): acquisition keyed by
/// (session, trust domain), reuse across queries of the same session, and
/// idle eviction. Two invariants:
///  * code of different owners (trust domains) never shares a sandbox;
///  * code of different sessions never shares a sandbox (multi-user
///    isolation, §2.5).
class Dispatcher {
 public:
  explicit Dispatcher(SandboxProvisioner* provisioner, Clock* clock)
      : provisioner_(provisioner), clock_(clock) {
    // Provisioning talks to the cluster manager, which fails independently
    // of the dispatcher (§4, Fig. 7): bounded retries with exponential
    // backoff charged to the clock, then a typed error to the caller.
    provision_retry_.max_attempts = 3;
    provision_retry_.backoff.initial_micros = 100'000;
    provision_retry_.backoff.multiplier = 2.0;
    provision_retry_.backoff.max_micros = 1'000'000;
  }

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Replaces the provisioning retry policy (tests tighten deadlines here).
  void set_provision_retry_policy(RetryPolicy policy) {
    std::lock_guard<std::mutex> lock(mu_);
    provision_retry_ = policy;
  }

  /// Returns the sandbox for (session, trust_domain), provisioning on first
  /// use. If the cached sandbox's policy no longer matches, it is replaced
  /// (policies are immutable per sandbox lifetime).
  Result<Sandbox*> Acquire(const std::string& session_id,
                           const std::string& trust_domain,
                           const SandboxPolicy& policy);

  /// Destroys all sandboxes of a session (session close / tombstone).
  void ReleaseSession(const std::string& session_id);

  /// Destroys sandboxes idle for longer than `idle_micros`.
  size_t EvictIdle(int64_t idle_micros);

  size_t ActiveSandboxCount() const;
  DispatcherStats stats() const;

 private:
  static bool PolicyEquals(const SandboxPolicy& a, const SandboxPolicy& b);

  SandboxProvisioner* provisioner_;
  Clock* clock_;
  mutable std::mutex mu_;
  // key: session_id + '\n' + trust_domain
  std::map<std::string, std::unique_ptr<Sandbox>> sandboxes_;
  DispatcherStats stats_;
  RetryPolicy provision_retry_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SANDBOX_DISPATCHER_H_
