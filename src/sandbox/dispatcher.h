#ifndef LAKEGUARD_SANDBOX_DISPATCHER_H_
#define LAKEGUARD_SANDBOX_DISPATCHER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/id.h"
#include "common/retry.h"
#include "core/thread_annotations.h"
#include "sandbox/sandbox.h"
#include "udf/verifier/cache.h"

namespace lakeguard {

/// Provisions sandboxes on behalf of the dispatcher — the cluster-manager
/// interface of Fig. 7. Implementations decide where the sandbox runs and
/// what provisioning costs; provisioning latency is charged to the clock.
class SandboxProvisioner {
 public:
  virtual ~SandboxProvisioner() = default;
  virtual Result<std::unique_ptr<Sandbox>> Provision(
      const std::string& trust_domain, const SandboxPolicy& policy) = 0;
};

/// Default provisioner: sandboxes run on the local host environment, and a
/// cold start costs `cold_start_micros` of (possibly simulated) clock time —
/// the ≈2 s the paper measures for provisioning + interpreter start (§5).
class LocalSandboxProvisioner : public SandboxProvisioner {
 public:
  LocalSandboxProvisioner(SimulatedHostEnvironment* env, Clock* clock,
                          int64_t cold_start_micros = 2'000'000)
      : env_(env), clock_(clock), cold_start_micros_(cold_start_micros) {}

  Result<std::unique_ptr<Sandbox>> Provision(
      const std::string& trust_domain, const SandboxPolicy& policy) override;

  int64_t cold_start_micros() const { return cold_start_micros_; }

 private:
  SimulatedHostEnvironment* env_;
  Clock* clock_;
  int64_t cold_start_micros_;
};

/// Dispatcher counters (cold-start amortization analysis, §5; provisioning
/// resilience counters so chaos benches can report retry behaviour;
/// supervisor counters for the crash/quarantine/breaker lifecycle).
struct DispatcherStats {
  uint64_t cold_starts = 0;
  uint64_t reuses = 0;
  uint64_t evictions = 0;
  /// Provision attempts beyond the first, across all acquisitions.
  uint64_t provision_retries = 0;
  /// Acquisitions that failed even after retrying.
  uint64_t provision_failures = 0;
  /// Retry loops aborted because the backoff schedule hit the deadline.
  uint64_t provision_deadline_hits = 0;
  // --- supervisor ---
  uint64_t crashes_detected = 0;     ///< sandboxes found dead (any path)
  uint64_t quarantines = 0;          ///< dead sandboxes torn down
  uint64_t respawns = 0;             ///< cold starts replacing a crashed one
  uint64_t heartbeat_checks = 0;     ///< liveness probes run by CheckLiveness
  uint64_t busy_evict_skips = 0;     ///< EvictIdle passes over in-flight ones
  // --- circuit breaker ---
  uint64_t breaker_open_events = 0;      ///< closed/half-open -> open
  uint64_t breaker_fast_fails = 0;       ///< acquisitions rejected while open
  uint64_t breaker_half_open_probes = 0; ///< probe dispatches admitted
  uint64_t breaker_closes = 0;           ///< half-open probe restored service
  // --- memory governance ---
  uint64_t oversized_batches = 0;  ///< dispatches refused by the byte cap
  // --- bytecode verifier (admission gate) ---
  uint64_t verifier_admissions = 0;   ///< programs admitted to a sandbox
  uint64_t verifier_rejections = 0;   ///< dispatches refused pre-provisioning
  uint64_t verifier_cache_hits = 0;   ///< certificate served from cache
  uint64_t verifier_cache_misses = 0; ///< certificate verified on demand
};

/// Per-trust-domain circuit breaker tuning. `failure_threshold` consecutive
/// sandbox crashes open the breaker; it stays open for `cooldown_micros` of
/// clock time, then admits a single half-open probe.
struct BreakerConfig {
  int failure_threshold = 3;
  int64_t cooldown_micros = 10'000'000;  // 10 s — several cold starts' worth
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateToString(BreakerState state);

/// Manages the sandboxes of one host (Fig. 7): acquisition keyed by
/// (session, trust domain), reuse across queries of the same session, and
/// idle eviction. Two invariants:
///  * code of different owners (trust domains) never shares a sandbox;
///  * code of different sessions never shares a sandbox (multi-user
///    isolation, §2.5).
///
/// The dispatcher is also the sandbox *supervisor*: `Dispatch` detects a
/// sandbox that died executing a batch, quarantines it (the dead container
/// is torn down and never reused) and lets the next acquisition respawn it.
/// Consecutive crashes in one trust domain trip a per-domain circuit
/// breaker: while open, provisioning for that domain fails fast with
/// `kUnavailable` — no cold start is burned on code that keeps dying —
/// until a clock-driven cooldown admits one half-open probe (§3.3's
/// fail-fast contract for repeatedly-crashing user code).
class Dispatcher {
 public:
  explicit Dispatcher(SandboxProvisioner* provisioner, Clock* clock)
      : provisioner_(provisioner), clock_(clock) {
    // Provisioning talks to the cluster manager, which fails independently
    // of the dispatcher (§4, Fig. 7): bounded retries with exponential
    // backoff charged to the clock, then a typed error to the caller.
    provision_retry_.max_attempts = 3;
    provision_retry_.backoff.initial_micros = 100'000;
    provision_retry_.backoff.multiplier = 2.0;
    provision_retry_.backoff.max_micros = 1'000'000;
  }

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Replaces the provisioning retry policy (tests tighten deadlines here).
  void set_provision_retry_policy(RetryPolicy policy) {
    MutexLock lock(mu_);
    provision_retry_ = policy;
  }

  /// Replaces the circuit-breaker tuning (benches disable the breaker by
  /// raising the threshold out of reach).
  void set_breaker_config(BreakerConfig config) {
    MutexLock lock(mu_);
    breaker_config_ = config;
  }

  /// Caps the bytes of one dispatched argument batch (0 = unlimited). An
  /// oversized batch is refused with typed kResourceExhausted *before* the
  /// sandbox boundary — the executor reacts by splitting the batch.
  void set_max_batch_bytes(size_t bytes) {
    MutexLock lock(mu_);
    max_batch_bytes_ = bytes;
  }

  /// Replaces the verifier-certificate cache (tests isolate their stats
  /// here). Defaults to the process-wide cache.
  void set_verifier_cache(VerifiedProgramCache* cache) {
    MutexLock lock(mu_);
    verifier_cache_ = cache;
  }

  /// Returns the sandbox for (session, trust_domain), provisioning on first
  /// use. If the cached sandbox's policy no longer matches, it is replaced
  /// (policies are immutable per sandbox lifetime). A cached sandbox found
  /// dead is quarantined and respawned; an open breaker for the trust
  /// domain fails the provision fast with `kUnavailable`.
  Result<Sandbox*> Acquire(const std::string& session_id,
                           const std::string& trust_domain,
                           const SandboxPolicy& policy);

  /// Supervised UDF dispatch: acquires the (session, trust_domain) sandbox,
  /// pins it busy for the duration of `ExecuteBatch`, and records the
  /// outcome with the supervisor — a crash quarantines the sandbox and
  /// counts against the trust domain's breaker; a success closes a
  /// half-open breaker. This is the entry point the executor uses; `Acquire`
  /// remains for callers that manage the sandbox lifetime themselves.
  Result<RecordBatch> Dispatch(const std::string& session_id,
                               const std::string& trust_domain,
                               const SandboxPolicy& policy,
                               const RecordBatch& args,
                               const std::vector<UdfInvocation>& invocations);

  /// Supervisor sweep: heartbeats every cached sandbox and quarantines the
  /// dead (skipping busy ones — their in-flight dispatch will report the
  /// crash itself). Returns the number quarantined.
  size_t CheckLiveness();

  /// Destroys all sandboxes of a session (session close / tombstone).
  void ReleaseSession(const std::string& session_id);

  /// Destroys sandboxes idle for longer than `idle_micros`. Sandboxes with
  /// an in-flight dispatch are never evicted from under their caller.
  size_t EvictIdle(int64_t idle_micros);

  size_t ActiveSandboxCount() const;
  DispatcherStats stats() const;

  /// Breaker state for one trust domain (tests/observability).
  BreakerState breaker_state(const std::string& trust_domain) const;

 private:
  struct Entry {
    std::unique_ptr<Sandbox> sandbox;
    int busy = 0;        // in-flight dispatches pinning this entry
    bool doomed = false; // release requested while busy; erased on unpin
  };

  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    int64_t opened_at_micros = 0;
    bool probe_in_flight = false;
  };

  static bool PolicyEquals(const SandboxPolicy& a, const SandboxPolicy& b);

  /// Acquire body; requires mu_ held.
  Result<Sandbox*> AcquireLocked(const std::string& session_id,
                                 const std::string& trust_domain,
                                 const SandboxPolicy& policy)
      LG_REQUIRES(mu_);
  /// Gate on the trust domain's breaker before provisioning; requires mu_.
  Status CheckBreakerLocked(const std::string& trust_domain) LG_REQUIRES(mu_);
  /// Records a sandbox crash against the domain's breaker; requires mu_.
  void RecordCrashLocked(const std::string& trust_domain) LG_REQUIRES(mu_);
  /// Records a successful dispatch (resets/closes the breaker); requires mu_.
  void RecordSuccessLocked(const std::string& trust_domain) LG_REQUIRES(mu_);

  SandboxProvisioner* provisioner_;
  Clock* clock_;
  mutable Mutex mu_;
  // key: session_id + '\n' + trust_domain
  std::map<std::string, Entry> sandboxes_ LG_GUARDED_BY(mu_);
  std::map<std::string, Breaker> breakers_ LG_GUARDED_BY(mu_);  // key: trust_domain
  DispatcherStats stats_ LG_GUARDED_BY(mu_);
  RetryPolicy provision_retry_ LG_GUARDED_BY(mu_);
  BreakerConfig breaker_config_ LG_GUARDED_BY(mu_);
  size_t max_batch_bytes_ LG_GUARDED_BY(mu_) = 0;  // 0 = unlimited
  VerifiedProgramCache* verifier_cache_ LG_GUARDED_BY(mu_) =
      VerifiedProgramCache::Global();
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SANDBOX_DISPATCHER_H_
