#ifndef LAKEGUARD_SANDBOX_SANDBOX_H_
#define LAKEGUARD_SANDBOX_SANDBOX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "common/clock.h"
#include "sandbox/host_env.h"
#include "sandbox/policy.h"
#include "udf/bytecode.h"
#include "udf/vm.h"

namespace lakeguard {

/// One user function to run inside a sandbox over a shipped argument batch.
/// `arg_indices` select the argument columns from that batch.
struct UdfInvocation {
  UdfBytecode bytecode;
  std::vector<size_t> arg_indices;
  std::string result_name;
  TypeKind result_type = TypeKind::kNull;
  /// Bit i set when the UDF's argument position i is bound to a
  /// masked/filter-protected column (UdfCertificate::ArgTaintBit positions).
  /// The dispatcher refuses admission when such an argument can reach an
  /// exfiltration sink per the program's verifier certificate.
  uint64_t tainted_args = 0;
};

/// Execution counters for one sandbox lifetime.
struct SandboxStats {
  uint64_t batches = 0;
  uint64_t rows = 0;
  uint64_t udf_calls = 0;
  uint64_t bytes_in = 0;   // serialized argument bytes crossing the boundary
  uint64_t bytes_out = 0;  // serialized result bytes crossing the boundary
  uint64_t host_calls = 0;
  uint64_t denied_host_calls = 0;
};

/// `HostInterface` implementation that enforces a `SandboxPolicy` on every
/// capability request from user code — the seccomp/network-namespace layer.
class SandboxHost : public HostInterface {
 public:
  SandboxHost(std::string sandbox_id, const SandboxPolicy* policy,
              SimulatedHostEnvironment* env, SandboxStats* stats)
      : sandbox_id_(std::move(sandbox_id)),
        policy_(policy),
        env_(env),
        stats_(stats) {}

  Result<Value> CallHost(HostFn fn, const std::vector<Value>& args) override;

 private:
  std::string sandbox_id_;
  const SandboxPolicy* policy_;
  SimulatedHostEnvironment* env_;
  SandboxStats* stats_;
};

/// An isolated execution environment for user code — the container the
/// Dispatcher provisions through the cluster manager (§3.3, Fig. 7).
///
/// Isolation model (substituting for Linux containers, see DESIGN.md):
///  * user code runs only in the LGVM, which has no ambient authority;
///  * every batch entering or leaving is *serialized* through an IPC frame
///    (real copy + checksum), as the container boundary imposes;
///  * host access goes through `SandboxHost`, which applies the policy;
///  * runaway code is killed by fuel/stack limits.
///
/// A sandbox belongs to exactly one trust domain (code owner). The
/// dispatcher never routes another owner's code here.
class Sandbox {
 public:
  Sandbox(std::string id, std::string trust_domain, SandboxPolicy policy,
          SimulatedHostEnvironment* env, Clock* clock);

  Sandbox(const Sandbox&) = delete;
  Sandbox& operator=(const Sandbox&) = delete;

  const std::string& id() const { return id_; }
  const std::string& trust_domain() const { return trust_domain_; }
  const SandboxPolicy& policy() const { return policy_; }
  int64_t created_at_micros() const { return created_at_micros_; }
  int64_t last_used_micros() const { return last_used_micros_; }

  /// False once the sandboxed process died (crash injected at the
  /// `sandbox.crash` fault point, or a failed liveness probe). A dead
  /// sandbox never recovers — the dispatcher quarantines and respawns.
  bool alive() const { return alive_; }

  /// Liveness probe (the supervisor's heartbeat against the host
  /// environment). The `sandbox.heartbeat` fault point models a probe that
  /// finds the container gone; a failed probe marks the sandbox dead.
  Status Heartbeat();

  /// Ships `args` across the boundary, evaluates every invocation per row,
  /// and ships back a batch with one column per invocation. Fused execution
  /// of N UDFs = one call with N invocations = one boundary round-trip.
  Result<RecordBatch> ExecuteBatch(
      const RecordBatch& args,
      const std::vector<UdfInvocation>& invocations);

  const SandboxStats& stats() const { return stats_; }

 private:
  std::string id_;
  std::string trust_domain_;
  SandboxPolicy policy_;
  SimulatedHostEnvironment* env_;
  Clock* clock_;
  int64_t created_at_micros_;
  // Atomic: ExecuteBatch stamps this outside the dispatcher lock
  // (mid-dispatch) while EvictIdle reads it under the lock.
  std::atomic<int64_t> last_used_micros_;
  // Atomic: crashes flip this outside the dispatcher lock (mid-dispatch)
  // while the supervisor reads it under the lock.
  std::atomic<bool> alive_{true};
  SandboxStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SANDBOX_SANDBOX_H_
