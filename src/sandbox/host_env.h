#ifndef LAKEGUARD_SANDBOX_HOST_ENV_H_
#define LAKEGUARD_SANDBOX_HOST_ENV_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace lakeguard {

/// One recorded outbound network request (tests assert on these to prove
/// exfiltration attempts never left the sandbox).
struct EgressRecord {
  std::string url;
  std::string sandbox_id;  // empty when issued by unisolated code
  bool allowed = false;
};

/// The simulated machine a cluster host runs on: a file system, environment
/// variables (where credentials and secrets live in real deployments), and
/// a network. Trusted engine code accesses it directly; user code can only
/// reach it through a policy-checked `SandboxHost`. This is the asset §2.4
/// says must be protected from UDFs.
class SimulatedHostEnvironment {
 public:
  explicit SimulatedHostEnvironment(Clock* clock) : clock_(clock) {}

  // -- Files -----------------------------------------------------------------
  void WriteFile(const std::string& path, const std::string& contents);
  Result<std::string> ReadFile(const std::string& path) const;
  bool FileExists(const std::string& path) const;

  // -- Environment -------------------------------------------------------------
  void SetEnv(const std::string& name, const std::string& value);
  Result<std::string> GetEnv(const std::string& name) const;

  // -- Network -----------------------------------------------------------------
  /// Registers a canned HTTP endpoint: exact-URL-prefix -> handler(url).
  void RegisterHttpHandler(
      const std::string& url_prefix,
      std::function<std::string(const std::string&)> handler);
  /// Performs a request; records it in the egress log with attribution.
  Result<std::string> HttpGet(const std::string& url,
                              const std::string& sandbox_id, bool allowed);

  std::vector<EgressRecord> egress_log() const;
  size_t BlockedEgressCount() const;

  Clock* clock() const { return clock_; }

 private:
  Clock* clock_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> files_;
  std::map<std::string, std::string> env_;
  std::vector<std::pair<std::string,
                        std::function<std::string(const std::string&)>>>
      http_handlers_;
  std::vector<EgressRecord> egress_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SANDBOX_HOST_ENV_H_
