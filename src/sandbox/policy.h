#ifndef LAKEGUARD_SANDBOX_POLICY_H_
#define LAKEGUARD_SANDBOX_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lakeguard {

/// Capability policy of one sandbox — the analogue of the container's
/// seccomp/namespace/network-rule configuration (§3.3). Everything defaults
/// to denied; the dispatcher grants exactly what the workload's governance
/// configuration allows (e.g. the egress hosts registered for a cataloged
/// UDF).
struct SandboxPolicy {
  bool allow_file_read = false;
  bool allow_file_write = false;
  bool allow_env_read = false;
  bool allow_clock = true;
  /// Wildcard host patterns egress is allowed to ("*.aqi.example.com").
  /// Empty means no network at all.
  std::vector<std::string> egress_allow;

  /// Execution limits enforced on user code.
  int64_t fuel = 50'000'000;
  size_t max_stack = 4096;

  /// A fully-locked-down policy (the default for ad-hoc session UDFs).
  static SandboxPolicy LockedDown() { return SandboxPolicy{}; }

  /// Policy with the given egress allow-list and nothing else.
  static SandboxPolicy WithEgress(std::vector<std::string> hosts) {
    SandboxPolicy policy;
    policy.egress_allow = std::move(hosts);
    return policy;
  }
};

}  // namespace lakeguard

#endif  // LAKEGUARD_SANDBOX_POLICY_H_
