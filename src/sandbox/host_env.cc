#include "sandbox/host_env.h"

#include "common/strings.h"

namespace lakeguard {

void SimulatedHostEnvironment::WriteFile(const std::string& path,
                                         const std::string& contents) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[path] = contents;
}

Result<std::string> SimulatedHostEnvironment::ReadFile(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no file at " + path);
  return it->second;
}

bool SimulatedHostEnvironment::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

void SimulatedHostEnvironment::SetEnv(const std::string& name,
                                      const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  env_[name] = value;
}

Result<std::string> SimulatedHostEnvironment::GetEnv(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = env_.find(name);
  if (it == env_.end()) return Status::NotFound("no env var " + name);
  return it->second;
}

void SimulatedHostEnvironment::RegisterHttpHandler(
    const std::string& url_prefix,
    std::function<std::string(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(mu_);
  http_handlers_.emplace_back(url_prefix, std::move(handler));
}

Result<std::string> SimulatedHostEnvironment::HttpGet(
    const std::string& url, const std::string& sandbox_id, bool allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  egress_.push_back({url, sandbox_id, allowed});
  if (!allowed) {
    return Status::PermissionDenied("egress to " + url +
                                    " blocked by sandbox policy");
  }
  for (const auto& [prefix, handler] : http_handlers_) {
    if (StartsWith(url, prefix)) return handler(url);
  }
  return Status::NotFound("no route to " + url);
}

std::vector<EgressRecord> SimulatedHostEnvironment::egress_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return egress_;
}

size_t SimulatedHostEnvironment::BlockedEgressCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const EgressRecord& r : egress_) {
    if (!r.allowed) ++n;
  }
  return n;
}

}  // namespace lakeguard
