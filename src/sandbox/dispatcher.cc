#include "sandbox/dispatcher.h"

#include "common/fault.h"

namespace lakeguard {

Result<std::unique_ptr<Sandbox>> LocalSandboxProvisioner::Provision(
    const std::string& trust_domain, const SandboxPolicy& policy) {
  // The cluster-manager call that creates the container can fail or stall
  // independently of this host (§4, Fig. 7).
  LG_RETURN_IF_ERROR(fault::Inject("dispatcher.provision", clock_));
  // Provisioning the container and starting the interpreter inside it is
  // modeled as clock time (virtual in tests/benchmarks of cold start).
  clock_->AdvanceMicros(cold_start_micros_);
  return std::make_unique<Sandbox>(IdGenerator::Next("sbx"), trust_domain,
                                   policy, env_, clock_);
}

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

bool Dispatcher::PolicyEquals(const SandboxPolicy& a, const SandboxPolicy& b) {
  return a.allow_file_read == b.allow_file_read &&
         a.allow_file_write == b.allow_file_write &&
         a.allow_env_read == b.allow_env_read &&
         a.allow_clock == b.allow_clock &&
         a.egress_allow == b.egress_allow && a.fuel == b.fuel &&
         a.max_stack == b.max_stack;
}

Status Dispatcher::CheckBreakerLocked(const std::string& trust_domain) {
  auto it = breakers_.find(trust_domain);
  if (it == breakers_.end()) return Status::OK();
  Breaker& breaker = it->second;
  if (breaker.state != BreakerState::kOpen) return Status::OK();
  if (clock_->NowMicros() - breaker.opened_at_micros >=
      breaker_config_.cooldown_micros) {
    // Cooldown elapsed: admit exactly one probe dispatch.
    breaker.state = BreakerState::kHalfOpen;
    breaker.probe_in_flight = false;
    return Status::OK();
  }
  ++stats_.breaker_fast_fails;
  return Status::Unavailable(
      "circuit breaker open for trust domain '" + trust_domain + "' after " +
      std::to_string(breaker.consecutive_failures) +
      " consecutive sandbox crashes; retry after cooldown");
}

void Dispatcher::RecordCrashLocked(const std::string& trust_domain) {
  Breaker& breaker = breakers_[trust_domain];
  ++breaker.consecutive_failures;
  const bool trip =
      breaker.state == BreakerState::kHalfOpen ||  // failed probe: reopen
      breaker.consecutive_failures >= breaker_config_.failure_threshold;
  if (trip && breaker.state != BreakerState::kOpen) {
    breaker.state = BreakerState::kOpen;
    ++stats_.breaker_open_events;
  }
  if (breaker.state == BreakerState::kOpen) {
    breaker.opened_at_micros = clock_->NowMicros();
    breaker.probe_in_flight = false;
  }
}

void Dispatcher::RecordSuccessLocked(const std::string& trust_domain) {
  auto it = breakers_.find(trust_domain);
  if (it == breakers_.end()) return;
  Breaker& breaker = it->second;
  breaker.consecutive_failures = 0;
  breaker.probe_in_flight = false;
  if (breaker.state != BreakerState::kClosed) {
    breaker.state = BreakerState::kClosed;
    ++stats_.breaker_closes;
  }
}

Result<Sandbox*> Dispatcher::AcquireLocked(const std::string& session_id,
                                           const std::string& trust_domain,
                                           const SandboxPolicy& policy) {
  std::string key = session_id + "\n" + trust_domain;
  bool respawn = false;
  auto it = sandboxes_.find(key);
  if (it != sandboxes_.end()) {
    if (!it->second.sandbox->alive()) {
      if (it->second.busy > 0) {
        // The in-flight dispatch will quarantine it on completion.
        return Status::Unavailable("sandbox for trust domain '" +
                                   trust_domain +
                                   "' crashed; quarantine pending");
      }
      // Dead container found at acquisition (e.g. it died between queries):
      // quarantine and respawn — unless this crash trips the breaker below.
      ++stats_.crashes_detected;
      ++stats_.quarantines;
      RecordCrashLocked(trust_domain);
      sandboxes_.erase(it);
      respawn = true;
    } else if (!PolicyEquals(it->second.sandbox->policy(), policy)) {
      // Policy changed: the old sandbox must not survive with stale rights.
      if (it->second.busy > 0) {
        return Status::Unavailable(
            "sandbox policy change for trust domain '" + trust_domain +
            "' pending on an in-flight dispatch");
      }
      sandboxes_.erase(it);
      ++stats_.evictions;
    } else {
      ++stats_.reuses;
      return it->second.sandbox.get();
    }
  }
  // Fail fast while the domain's breaker is open: no provisioner call, no
  // cold start burned on code that keeps killing its container.
  LG_RETURN_IF_ERROR(CheckBreakerLocked(trust_domain));
  // A failed provision attempt leaves no cached entry behind, so each retry
  // (and any later acquisition) starts from a fresh sandbox. Provision
  // failures are a *cluster manager* problem and do not count against the
  // trust domain's breaker.
  RetryStats retry_stats;
  Result<std::unique_ptr<Sandbox>> sandbox = RetryCall<std::unique_ptr<Sandbox>>(
      provision_retry_, clock_,
      [&] { return provisioner_->Provision(trust_domain, policy); },
      &retry_stats);
  stats_.provision_retries += retry_stats.retries;
  stats_.provision_deadline_hits += retry_stats.deadline_hits;
  if (!sandbox.ok()) {
    ++stats_.provision_failures;
    return sandbox.status().WithContext("provisioning sandbox for '" +
                                        trust_domain + "'");
  }
  ++stats_.cold_starts;
  if (respawn) ++stats_.respawns;
  Sandbox* raw = sandbox->get();
  Entry entry;
  entry.sandbox = std::move(*sandbox);
  sandboxes_[key] = std::move(entry);
  return raw;
}

Result<Sandbox*> Dispatcher::Acquire(const std::string& session_id,
                                     const std::string& trust_domain,
                                     const SandboxPolicy& policy) {
  MutexLock lock(mu_);
  return AcquireLocked(session_id, trust_domain, policy);
}

Result<RecordBatch> Dispatcher::Dispatch(
    const std::string& session_id, const std::string& trust_domain,
    const SandboxPolicy& policy, const RecordBatch& args,
    const std::vector<UdfInvocation>& invocations) {
  std::string key = session_id + "\n" + trust_domain;
  Sandbox* sandbox = nullptr;
  bool is_probe = false;
  // Admission gate: every program is statically verified (certificate from
  // the hash-keyed cache, so re-execution costs one lookup) and its
  // certificate checked against this trust domain's policy and argument
  // taint — *before* the lock, the breaker, and above all the provisioner.
  // A rejected program consumes no sandbox, cold start, or batch transfer.
  {
    VerifiedProgramCache* cache;
    {
      MutexLock lock(mu_);
      cache = verifier_cache_;
    }
    uint64_t hits = 0;
    uint64_t misses = 0;
    Status admission = Status::OK();
    for (const UdfInvocation& inv : invocations) {
      bool cache_hit = false;
      Result<UdfCertificate> cert = cache->GetOrVerify(inv.bytecode, &cache_hit);
      if (cache_hit) {
        ++hits;
      } else {
        ++misses;
      }
      admission = cert.ok()
                      ? AdmitCertificate(*cert, policy, inv.tainted_args)
                      : cert.status();
      if (!admission.ok()) {
        admission = admission.WithContext("dispatching UDF '" +
                                          inv.bytecode.name + "' for '" +
                                          trust_domain + "'");
        break;
      }
    }
    MutexLock lock(mu_);
    stats_.verifier_cache_hits += hits;
    stats_.verifier_cache_misses += misses;
    if (!admission.ok()) {
      ++stats_.verifier_rejections;
      return admission;
    }
    stats_.verifier_admissions += invocations.size();
  }
  {
    MutexLock lock(mu_);
    if (max_batch_bytes_ > 0 && args.ByteSize() > max_batch_bytes_) {
      // Refused before provisioning: an oversized transfer never reaches
      // the sandbox boundary. Typed so the executor can split and retry.
      ++stats_.oversized_batches;
      return Status::ResourceExhausted(
          "UDF argument batch of " + std::to_string(args.ByteSize()) +
          " bytes exceeds the sandbox transfer cap of " +
          std::to_string(max_batch_bytes_) + " bytes");
    }
    LG_ASSIGN_OR_RETURN(sandbox,
                        AcquireLocked(session_id, trust_domain, policy));
    auto bit = breakers_.find(trust_domain);
    if (bit != breakers_.end() &&
        bit->second.state == BreakerState::kHalfOpen) {
      if (bit->second.probe_in_flight) {
        ++stats_.breaker_fast_fails;
        return Status::Unavailable(
            "half-open probe already in flight for trust domain '" +
            trust_domain + "'");
      }
      bit->second.probe_in_flight = true;
      is_probe = true;
      ++stats_.breaker_half_open_probes;
    }
    ++sandboxes_[key].busy;  // pin: no eviction from under this dispatch
  }

  Result<RecordBatch> result = sandbox->ExecuteBatch(args, invocations);

  {
    MutexLock lock(mu_);
    auto it = sandboxes_.find(key);
    if (it != sandboxes_.end() && it->second.sandbox.get() == sandbox) {
      --it->second.busy;
      if (!it->second.sandbox->alive()) {
        // Crash on dispatch: quarantine the dead container and charge the
        // trust domain's breaker.
        ++stats_.crashes_detected;
        ++stats_.quarantines;
        RecordCrashLocked(trust_domain);
        sandboxes_.erase(it);
      } else {
        // The sandbox infrastructure worked (even if the UDF itself
        // trapped): reset the domain's crash streak.
        RecordSuccessLocked(trust_domain);
        if (it->second.doomed && it->second.busy == 0) {
          sandboxes_.erase(it);
          ++stats_.evictions;
        }
      }
    }
    if (is_probe) {
      auto bit = breakers_.find(trust_domain);
      if (bit != breakers_.end()) bit->second.probe_in_flight = false;
    }
  }
  return result;
}

size_t Dispatcher::CheckLiveness() {
  MutexLock lock(mu_);
  size_t quarantined = 0;
  for (auto it = sandboxes_.begin(); it != sandboxes_.end();) {
    if (it->second.busy > 0) {
      // The in-flight dispatch reports its own outcome.
      ++it;
      continue;
    }
    ++stats_.heartbeat_checks;
    Status probe = it->second.sandbox->Heartbeat();
    if (probe.ok()) {
      ++it;
      continue;
    }
    std::string trust_domain = it->second.sandbox->trust_domain();
    ++stats_.crashes_detected;
    ++stats_.quarantines;
    RecordCrashLocked(trust_domain);
    it = sandboxes_.erase(it);
    ++quarantined;
  }
  return quarantined;
}

void Dispatcher::ReleaseSession(const std::string& session_id) {
  std::string prefix = session_id + "\n";
  MutexLock lock(mu_);
  for (auto it = sandboxes_.begin(); it != sandboxes_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      if (it->second.busy > 0) {
        // Never destroy a sandbox under an in-flight dispatch; it is
        // erased when the dispatch unpins it.
        it->second.doomed = true;
        ++it;
      } else {
        it = sandboxes_.erase(it);
        ++stats_.evictions;
      }
    } else {
      ++it;
    }
  }
}

size_t Dispatcher::EvictIdle(int64_t idle_micros) {
  int64_t now = clock_->NowMicros();
  size_t evicted = 0;
  MutexLock lock(mu_);
  for (auto it = sandboxes_.begin(); it != sandboxes_.end();) {
    if (now - it->second.sandbox->last_used_micros() > idle_micros) {
      if (it->second.busy > 0) {
        // In-flight dispatch: not idle, whatever the timestamp says.
        ++stats_.busy_evict_skips;
        ++it;
        continue;
      }
      it = sandboxes_.erase(it);
      ++evicted;
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t Dispatcher::ActiveSandboxCount() const {
  MutexLock lock(mu_);
  return sandboxes_.size();
}

DispatcherStats Dispatcher::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

BreakerState Dispatcher::breaker_state(const std::string& trust_domain) const {
  MutexLock lock(mu_);
  auto it = breakers_.find(trust_domain);
  return it == breakers_.end() ? BreakerState::kClosed : it->second.state;
}

}  // namespace lakeguard
