#include "sandbox/dispatcher.h"

#include "common/fault.h"

namespace lakeguard {

Result<std::unique_ptr<Sandbox>> LocalSandboxProvisioner::Provision(
    const std::string& trust_domain, const SandboxPolicy& policy) {
  // The cluster-manager call that creates the container can fail or stall
  // independently of this host (§4, Fig. 7).
  LG_RETURN_IF_ERROR(fault::Inject("dispatcher.provision", clock_));
  // Provisioning the container and starting the interpreter inside it is
  // modeled as clock time (virtual in tests/benchmarks of cold start).
  clock_->AdvanceMicros(cold_start_micros_);
  return std::make_unique<Sandbox>(IdGenerator::Next("sbx"), trust_domain,
                                   policy, env_, clock_);
}

bool Dispatcher::PolicyEquals(const SandboxPolicy& a, const SandboxPolicy& b) {
  return a.allow_file_read == b.allow_file_read &&
         a.allow_file_write == b.allow_file_write &&
         a.allow_env_read == b.allow_env_read &&
         a.allow_clock == b.allow_clock &&
         a.egress_allow == b.egress_allow && a.fuel == b.fuel &&
         a.max_stack == b.max_stack;
}

Result<Sandbox*> Dispatcher::Acquire(const std::string& session_id,
                                     const std::string& trust_domain,
                                     const SandboxPolicy& policy) {
  std::string key = session_id + "\n" + trust_domain;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sandboxes_.find(key);
  if (it != sandboxes_.end()) {
    if (PolicyEquals(it->second->policy(), policy)) {
      ++stats_.reuses;
      return it->second.get();
    }
    // Policy changed: the old sandbox must not survive with stale rights.
    sandboxes_.erase(it);
    ++stats_.evictions;
  }
  // A failed provision attempt leaves no cached entry behind, so each retry
  // (and any later acquisition) starts from a fresh sandbox.
  RetryStats retry_stats;
  Result<std::unique_ptr<Sandbox>> sandbox = RetryCall<std::unique_ptr<Sandbox>>(
      provision_retry_, clock_,
      [&] { return provisioner_->Provision(trust_domain, policy); },
      &retry_stats);
  stats_.provision_retries += retry_stats.retries;
  stats_.provision_deadline_hits += retry_stats.deadline_hits;
  if (!sandbox.ok()) {
    ++stats_.provision_failures;
    return sandbox.status().WithContext("provisioning sandbox for '" +
                                        trust_domain + "'");
  }
  ++stats_.cold_starts;
  Sandbox* raw = sandbox->get();
  sandboxes_[key] = std::move(*sandbox);
  return raw;
}

void Dispatcher::ReleaseSession(const std::string& session_id) {
  std::string prefix = session_id + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sandboxes_.begin(); it != sandboxes_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      it = sandboxes_.erase(it);
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
}

size_t Dispatcher::EvictIdle(int64_t idle_micros) {
  int64_t now = clock_->NowMicros();
  size_t evicted = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sandboxes_.begin(); it != sandboxes_.end();) {
    if (now - it->second->last_used_micros() > idle_micros) {
      it = sandboxes_.erase(it);
      ++evicted;
      ++stats_.evictions;
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t Dispatcher::ActiveSandboxCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sandboxes_.size();
}

DispatcherStats Dispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lakeguard
