#include "sandbox/sandbox.h"

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/strings.h"

namespace lakeguard {

namespace {

/// Extracts the host from an URL ("http://a.b.c/x" -> "a.b.c").
std::string UrlHost(const std::string& url) {
  size_t scheme = url.find("://");
  size_t start = scheme == std::string::npos ? 0 : scheme + 3;
  size_t end = url.find('/', start);
  return url.substr(start,
                    end == std::string::npos ? std::string::npos : end - start);
}

}  // namespace

Result<Value> SandboxHost::CallHost(HostFn fn, const std::vector<Value>& args) {
  ++stats_->host_calls;
  auto deny = [this, fn](const std::string& why) -> Result<Value> {
    ++stats_->denied_host_calls;
    return Status::PermissionDenied(std::string("sandbox ") + sandbox_id_ +
                                    ": host call '" + HostFnName(fn) +
                                    "' denied: " + why);
  };
  switch (fn) {
    case HostFn::kReadFile: {
      if (!policy_->allow_file_read) return deny("file system not mapped");
      if (args.size() != 1 || !args[0].is_string()) {
        return Status::InvalidArgument("read_file(path) expects one string");
      }
      LG_ASSIGN_OR_RETURN(std::string data,
                          env_->ReadFile(args[0].string_value()));
      return Value::String(std::move(data));
    }
    case HostFn::kWriteFile: {
      if (!policy_->allow_file_write) return deny("file system is read-only");
      if (args.size() != 2 || !args[0].is_string()) {
        return Status::InvalidArgument(
            "write_file(path, contents) expects two strings");
      }
      env_->WriteFile(args[0].string_value(), args[1].ToString());
      return Value::Bool(true);
    }
    case HostFn::kHttpGet: {
      if (args.size() != 1 || !args[0].is_string()) {
        return Status::InvalidArgument("http_get(url) expects one string");
      }
      const std::string& url = args[0].string_value();
      std::string host = UrlHost(url);
      bool allowed = false;
      for (const std::string& pattern : policy_->egress_allow) {
        if (MatchesWildcard(pattern, host)) {
          allowed = true;
          break;
        }
      }
      // The attempt is recorded either way (network-namespace drop log).
      auto response = env_->HttpGet(url, sandbox_id_, allowed);
      if (!allowed) {
        ++stats_->denied_host_calls;
        return response.status();
      }
      LG_ASSIGN_OR_RETURN(std::string body, std::move(response));
      return Value::String(std::move(body));
    }
    case HostFn::kGetEnv: {
      if (!policy_->allow_env_read) return deny("environment not visible");
      if (args.size() != 1 || !args[0].is_string()) {
        return Status::InvalidArgument("get_env(name) expects one string");
      }
      LG_ASSIGN_OR_RETURN(std::string v, env_->GetEnv(args[0].string_value()));
      return Value::String(std::move(v));
    }
    case HostFn::kClockNow: {
      if (!policy_->allow_clock) return deny("clock not available");
      return Value::Int(env_->clock()->NowMicros());
    }
    case HostFn::kLog:
      // Logging is always allowed; the message is dropped (no side channel).
      return Value::Null();
  }
  return Status::Internal("unreachable host fn");
}

Sandbox::Sandbox(std::string id, std::string trust_domain,
                 SandboxPolicy policy, SimulatedHostEnvironment* env,
                 Clock* clock)
    : id_(std::move(id)),
      trust_domain_(std::move(trust_domain)),
      policy_(std::move(policy)),
      env_(env),
      clock_(clock),
      created_at_micros_(clock->NowMicros()),
      last_used_micros_(clock->NowMicros()) {}

Status Sandbox::Heartbeat() {
  if (!alive_) {
    return Status::Unavailable("sandbox " + id_ + " is dead");
  }
  Status probe = fault::Inject("sandbox.heartbeat", clock_);
  if (!probe.ok()) {
    alive_ = false;
    return Status::Unavailable("sandbox " + id_ +
                               " failed liveness probe: " + probe.message());
  }
  return Status::OK();
}

Result<RecordBatch> Sandbox::ExecuteBatch(
    const RecordBatch& args, const std::vector<UdfInvocation>& invocations) {
  if (!alive_) {
    return Status::Unavailable("sandbox " + id_ + " is dead");
  }
  // Crash seam: the container dying mid-batch (OOM kill, segfault in user
  // code). The batch is lost (kDataLoss — the attempt, not the request,
  // failed) and the sandbox never answers again.
  Status crash = fault::Inject("sandbox.crash", clock_);
  if (!crash.ok()) {
    alive_ = false;
    return Status::DataLoss("sandbox " + id_ +
                            " crashed executing user code: " +
                            crash.message());
  }
  last_used_micros_ = clock_->NowMicros();
  ++stats_.batches;
  stats_.rows += args.num_rows();

  // --- Boundary in: serialize the argument batch into the sandbox, exactly
  // as the container boundary would (copy + integrity check + decode).
  std::vector<uint8_t> frame_in = ipc::SerializeBatch(args);
  stats_.bytes_in += frame_in.size();
  LG_ASSIGN_OR_RETURN(RecordBatch inside, ipc::DeserializeBatch(frame_in));

  VmLimits limits;
  limits.fuel = policy_.fuel;
  limits.max_stack = policy_.max_stack;
  SandboxHost host(id_, &policy_, env_, &stats_);

  const size_t rows = inside.num_rows();
  std::vector<FieldDef> out_fields;
  std::vector<Column> out_columns;
  out_fields.reserve(invocations.size());
  out_columns.reserve(invocations.size());

  for (const UdfInvocation& inv : invocations) {
    for (size_t idx : inv.arg_indices) {
      if (idx >= inside.num_columns()) {
        return Status::InvalidArgument(
            "UDF '" + inv.bytecode.name + "' references argument column " +
            std::to_string(idx) + " but batch has " +
            std::to_string(inside.num_columns()));
      }
    }
    ColumnBuilder builder(inv.result_type);
    builder.Reserve(rows);
    std::vector<Value> row_args(inv.arg_indices.size());
    for (size_t r = 0; r < rows; ++r) {
      for (size_t j = 0; j < inv.arg_indices.size(); ++j) {
        row_args[j] = inside.column(inv.arg_indices[j]).GetValue(r);
      }
      VmStats vm_stats;
      auto result =
          ExecuteUdf(inv.bytecode, row_args, &host, limits, &vm_stats);
      ++stats_.udf_calls;
      if (!result.ok()) {
        return result.status().WithContext("UDF '" + inv.bytecode.name +
                                           "' in sandbox " + id_);
      }
      LG_ASSIGN_OR_RETURN(Value casted, result->CastTo(inv.result_type));
      LG_RETURN_IF_ERROR(builder.AppendValue(casted));
    }
    out_fields.push_back({inv.result_name, inv.result_type, true});
    out_columns.push_back(builder.Finish());
  }

  RecordBatch result(Schema(std::move(out_fields)), std::move(out_columns));

  // --- Boundary out: serialize results back to the engine.
  std::vector<uint8_t> frame_out = ipc::SerializeBatch(result);
  stats_.bytes_out += frame_out.size();
  return ipc::DeserializeBatch(frame_out);
}

}  // namespace lakeguard
