#ifndef LAKEGUARD_STORAGE_DELTA_TABLE_H_
#define LAKEGUARD_STORAGE_DELTA_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/table.h"
#include "storage/object_store.h"

namespace lakeguard {

/// One data file entry in a table version's manifest.
struct DataPart {
  std::string path;
  uint64_t num_rows = 0;
  uint64_t num_bytes = 0;
};

/// A committed table version: schema + list of parts. Versions are
/// append-only; version N's manifest lives at `<root>/_log/<N>.manifest`.
struct TableManifest {
  uint64_t version = 0;
  Schema schema;
  std::vector<DataPart> parts;

  uint64_t TotalRows() const;
};

/// Delta-/Iceberg-flavoured table layout over the object store: immutable
/// IPC-framed part files plus a versioned manifest log. This is the "open
/// file format on cheap cloud storage" substrate of the Lakehouse stack
/// (§1): the catalog stores only the root path; engines read parts directly
/// with vended credentials.
class DeltaTableFormat {
 public:
  explicit DeltaTableFormat(ObjectStore* store) : store_(store) {}

  /// Creates version 0 of a table at `root` with `table`'s batches as parts.
  Status CreateTable(const std::string& token, const std::string& root,
                     const Table& table);

  /// Commits a new version appending `rows`' batches to the latest version.
  Status AppendToTable(const std::string& token, const std::string& root,
                       const Table& rows);

  /// Loads the latest manifest.
  Result<TableManifest> LoadManifest(const std::string& token,
                                     const std::string& root) const;

  /// Loads a specific version ("time travel").
  Result<TableManifest> LoadManifestVersion(const std::string& token,
                                            const std::string& root,
                                            uint64_t version) const;

  /// Reads one part file into a batch.
  Result<RecordBatch> ReadPart(const std::string& token,
                               const DataPart& part) const;

  /// Reads the entire latest table version.
  Result<Table> ReadTable(const std::string& token,
                          const std::string& root) const;

 private:
  Status WriteManifest(const std::string& token, const std::string& root,
                       const TableManifest& manifest);
  Status WriteParts(const std::string& token, const std::string& root,
                    uint64_t version, const Table& table,
                    std::vector<DataPart>* parts);

  ObjectStore* store_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_DELTA_TABLE_H_
