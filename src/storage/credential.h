#ifndef LAKEGUARD_STORAGE_CREDENTIAL_H_
#define LAKEGUARD_STORAGE_CREDENTIAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace lakeguard {

/// Storage operations a credential can authorize.
enum class StorageOp { kRead = 0, kWrite = 1, kList = 2, kDelete = 3 };

const char* StorageOpName(StorageOp op);

/// A temporary, scoped storage credential — the unit Unity Catalog vends to
/// engines (§2.2, Fig. 2). A credential carries the requesting user
/// identity, the compute that requested it, the path prefixes it unlocks,
/// whether writes are allowed, and an expiry instant. Data access is
/// *user-bound*: every token references a principal and every storage access
/// is attributable to that principal in the audit trail.
struct StorageCredential {
  std::string token_id;
  std::string principal;
  std::string compute_id;
  std::vector<std::string> allowed_prefixes;  // wildcard patterns
  bool allow_write = false;
  int64_t expires_at_micros = 0;
};

/// Issues and validates credentials. The object store only honors tokens
/// registered here and not yet expired or revoked — modeling the cloud
/// vendor's STS. The catalog is the sole issuer in a correctly-wired
/// platform; tests also use it directly.
class CredentialAuthority {
 public:
  explicit CredentialAuthority(Clock* clock) : clock_(clock) {}

  CredentialAuthority(const CredentialAuthority&) = delete;
  CredentialAuthority& operator=(const CredentialAuthority&) = delete;

  /// Issues a credential valid for `ttl_micros` from now.
  StorageCredential Issue(const std::string& principal,
                          const std::string& compute_id,
                          std::vector<std::string> allowed_prefixes,
                          bool allow_write, int64_t ttl_micros);

  /// Invalidates a token before its natural expiry.
  void Revoke(const std::string& token_id);

  /// Checks that `token_id` is live, unexpired, and that its scope covers
  /// `path` for `op`. Returns the credential's principal on success (so the
  /// store can attribute the access).
  Result<std::string> Authorize(const std::string& token_id,
                                const std::string& path, StorageOp op) const;

  /// Number of currently registered (possibly expired) tokens.
  size_t ActiveTokenCount() const;

  /// Returns a copy of the credential behind `token_id` (live or expired),
  /// or NotFound. Read-only: used by the PlanVerifier to check that tokens
  /// referenced by a plan carry no broader scope than the plan needs.
  Result<StorageCredential> Inspect(const std::string& token_id) const;

 private:
  Clock* clock_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, StorageCredential> tokens_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_CREDENTIAL_H_
