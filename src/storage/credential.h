#ifndef LAKEGUARD_STORAGE_CREDENTIAL_H_
#define LAKEGUARD_STORAGE_CREDENTIAL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "core/thread_annotations.h"

namespace lakeguard {

/// Storage operations a credential can authorize.
enum class StorageOp { kRead = 0, kWrite = 1, kList = 2, kDelete = 3 };

const char* StorageOpName(StorageOp op);

/// A temporary, scoped storage credential — the unit Unity Catalog vends to
/// engines (§2.2, Fig. 2). A credential carries the requesting user
/// identity, the compute that requested it, the path prefixes it unlocks,
/// whether writes are allowed, and an expiry instant. Data access is
/// *user-bound*: every token references a principal and every storage access
/// is attributable to that principal in the audit trail.
struct StorageCredential {
  std::string token_id;
  std::string principal;
  std::string compute_id;
  std::vector<std::string> allowed_prefixes;  // wildcard patterns
  bool allow_write = false;
  int64_t expires_at_micros = 0;
};

/// Issues and validates credentials. The object store only honors tokens
/// registered here and not yet expired or revoked — modeling the cloud
/// vendor's STS. The catalog is the sole issuer in a correctly-wired
/// platform; tests also use it directly.
///
/// Concurrency: the token table is sharded by token-id hash, each shard
/// behind its own reader-writer lock. Authorization (the per-storage-access
/// hot path) takes only a shared lock on one shard, so concurrent reads
/// never serialize against each other; Issue/Revoke take the exclusive lock
/// on a single shard. Token ids are derived from a SHA-256 of a per-process
/// random seed and a counter — unguessable, so holding one token gives no
/// purchase on enumerating or forging others (confused-deputy hardening;
/// the seed's sequential ids were an oracle).
class CredentialAuthority {
 public:
  explicit CredentialAuthority(Clock* clock);

  CredentialAuthority(const CredentialAuthority&) = delete;
  CredentialAuthority& operator=(const CredentialAuthority&) = delete;

  /// Issues a credential valid for `ttl_micros` from now.
  StorageCredential Issue(const std::string& principal,
                          const std::string& compute_id,
                          std::vector<std::string> allowed_prefixes,
                          bool allow_write, int64_t ttl_micros);

  /// Invalidates a token before its natural expiry.
  void Revoke(const std::string& token_id);

  /// Checks that `token_id` is live, unexpired, and that its scope covers
  /// `path` for `op`. Returns the credential's principal on success (so the
  /// store can attribute the access).
  Result<std::string> Authorize(const std::string& token_id,
                                const std::string& path, StorageOp op) const;

  /// Number of currently registered (possibly expired) tokens.
  size_t ActiveTokenCount() const;

  /// Returns a copy of the credential behind `token_id` (live or expired),
  /// or NotFound. Read-only: used by the PlanVerifier to check that tokens
  /// referenced by a plan carry no broader scope than the plan needs.
  Result<StorageCredential> Inspect(const std::string& token_id) const;

  static constexpr size_t kShards = 16;

 private:
  struct Shard {
    mutable SharedMutex mu;
    std::unordered_map<std::string, StorageCredential> tokens
        LG_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& token_id) const;
  std::string NewTokenId();

  Clock* clock_;
  std::string seed_;
  std::atomic<uint64_t> counter_{0};
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_CREDENTIAL_H_
