#ifndef LAKEGUARD_STORAGE_OBJECT_STORE_H_
#define LAKEGUARD_STORAGE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/credential.h"

namespace lakeguard {

/// Counters the store keeps per lifetime; used by benchmarks to show where
/// bytes move (e.g. eFGAC spill vs inline results).
struct ObjectStoreStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t access_denied = 0;
};

/// In-memory cloud object store. Objects are immutable blobs addressed by
/// path ("mem://bucket/tables/sales/part-0"). Every operation requires a
/// token issued by the `CredentialAuthority`; access control is enforced at
/// *object* granularity — exactly the property §2.3/Fig. 3 points out makes
/// sub-object (row/cell) enforcement impossible at the storage layer, and
/// hence motivates engine-level FGAC.
class ObjectStore {
 public:
  explicit ObjectStore(CredentialAuthority* authority)
      : authority_(authority) {}

  ObjectStore(const ObjectStore&) = delete;
  ObjectStore& operator=(const ObjectStore&) = delete;

  Status Put(const std::string& token, const std::string& path,
             std::vector<uint8_t> data);

  Result<std::vector<uint8_t>> Get(const std::string& token,
                                   const std::string& path) const;

  /// Paths with the given literal prefix, sorted.
  Result<std::vector<std::string>> List(const std::string& token,
                                        const std::string& prefix) const;

  Status Delete(const std::string& token, const std::string& path);

  bool Exists(const std::string& path) const;
  size_t ObjectCount() const;

  /// Simulation hooks for crash–restart tests: real cloud storage survives
  /// a control-plane restart, but this in-memory store dies with the
  /// process. Export before tearing a platform down, import into the
  /// restarted platform's store. Bypasses credential checks by design —
  /// this models the storage medium itself, not a data path.
  std::map<std::string, std::vector<uint8_t>> ExportObjects() const;
  void ImportObjects(std::map<std::string, std::vector<uint8_t>> objects);

  ObjectStoreStats stats() const;
  void ResetStats();

 private:
  CredentialAuthority* authority_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<uint8_t>> objects_;
  mutable ObjectStoreStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_OBJECT_STORE_H_
