#include "storage/delta_table.h"

#include "columnar/ipc.h"
#include "common/serde.h"

namespace lakeguard {

namespace {

std::string ManifestPath(const std::string& root, uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(version));
  return root + "/_log/" + buf + ".manifest";
}

std::string PartPath(const std::string& root, uint64_t version, size_t idx) {
  return root + "/part-" + std::to_string(version) + "-" +
         std::to_string(idx);
}

std::vector<uint8_t> EncodeManifest(const TableManifest& m) {
  ByteWriter w;
  w.PutVarint(m.version);
  ipc::SerializeSchema(m.schema, &w);
  w.PutVarint(m.parts.size());
  for (const DataPart& part : m.parts) {
    w.PutString(part.path);
    w.PutVarint(part.num_rows);
    w.PutVarint(part.num_bytes);
  }
  return w.Release();
}

Result<TableManifest> DecodeManifest(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  TableManifest m;
  LG_ASSIGN_OR_RETURN(m.version, r.ReadVarint());
  LG_ASSIGN_OR_RETURN(m.schema, ipc::DeserializeSchema(&r));
  LG_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  for (uint64_t i = 0; i < n; ++i) {
    DataPart part;
    LG_ASSIGN_OR_RETURN(part.path, r.ReadString());
    LG_ASSIGN_OR_RETURN(part.num_rows, r.ReadVarint());
    LG_ASSIGN_OR_RETURN(part.num_bytes, r.ReadVarint());
    m.parts.push_back(std::move(part));
  }
  return m;
}

}  // namespace

uint64_t TableManifest::TotalRows() const {
  uint64_t rows = 0;
  for (const DataPart& part : parts) {
    rows += part.num_rows;
  }
  return rows;
}

Status DeltaTableFormat::WriteParts(const std::string& token,
                                    const std::string& root, uint64_t version,
                                    const Table& table,
                                    std::vector<DataPart>* parts) {
  size_t idx = 0;
  for (const RecordBatch& batch : table.batches()) {
    if (batch.num_rows() == 0) continue;
    DataPart part;
    part.path = PartPath(root, version, idx++);
    part.num_rows = batch.num_rows();
    std::vector<uint8_t> frame = ipc::SerializeBatch(batch);
    part.num_bytes = frame.size();
    LG_RETURN_IF_ERROR(store_->Put(token, part.path, std::move(frame)));
    parts->push_back(std::move(part));
  }
  return Status::OK();
}

Status DeltaTableFormat::WriteManifest(const std::string& token,
                                       const std::string& root,
                                       const TableManifest& manifest) {
  return store_->Put(token, ManifestPath(root, manifest.version),
                     EncodeManifest(manifest));
}

Status DeltaTableFormat::CreateTable(const std::string& token,
                                     const std::string& root,
                                     const Table& table) {
  if (store_->Exists(ManifestPath(root, 0))) {
    return Status::AlreadyExists("table already exists at " + root);
  }
  TableManifest manifest;
  manifest.version = 0;
  manifest.schema = table.schema();
  LG_RETURN_IF_ERROR(WriteParts(token, root, 0, table, &manifest.parts));
  return WriteManifest(token, root, manifest);
}

Status DeltaTableFormat::AppendToTable(const std::string& token,
                                       const std::string& root,
                                       const Table& rows) {
  LG_ASSIGN_OR_RETURN(TableManifest latest, LoadManifest(token, root));
  if (!rows.schema().Equals(latest.schema)) {
    return Status::InvalidArgument("append schema " +
                                   rows.schema().ToString() +
                                   " does not match table schema " +
                                   latest.schema.ToString());
  }
  TableManifest next;
  next.version = latest.version + 1;
  next.schema = latest.schema;
  next.parts = latest.parts;
  LG_RETURN_IF_ERROR(WriteParts(token, root, next.version, rows, &next.parts));
  return WriteManifest(token, root, next);
}

Result<TableManifest> DeltaTableFormat::LoadManifest(
    const std::string& token, const std::string& root) const {
  LG_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                      store_->List(token, root + "/_log/"));
  if (entries.empty()) {
    return Status::NotFound("no table at " + root);
  }
  // Entries are zero-padded, so lexical max == latest version.
  LG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                      store_->Get(token, entries.back()));
  return DecodeManifest(bytes);
}

Result<TableManifest> DeltaTableFormat::LoadManifestVersion(
    const std::string& token, const std::string& root,
    uint64_t version) const {
  LG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                      store_->Get(token, ManifestPath(root, version)));
  return DecodeManifest(bytes);
}

Result<RecordBatch> DeltaTableFormat::ReadPart(const std::string& token,
                                               const DataPart& part) const {
  LG_ASSIGN_OR_RETURN(std::vector<uint8_t> frame,
                      store_->Get(token, part.path));
  return ipc::DeserializeBatch(frame);
}

Result<Table> DeltaTableFormat::ReadTable(const std::string& token,
                                          const std::string& root) const {
  LG_ASSIGN_OR_RETURN(TableManifest manifest, LoadManifest(token, root));
  Table out(manifest.schema);
  for (const DataPart& part : manifest.parts) {
    LG_ASSIGN_OR_RETURN(RecordBatch batch, ReadPart(token, part));
    LG_RETURN_IF_ERROR(out.AppendBatch(std::move(batch)));
  }
  return out;
}

}  // namespace lakeguard
