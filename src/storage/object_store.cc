#include "storage/object_store.h"

#include "common/fault.h"
#include "common/strings.h"

namespace lakeguard {

Status ObjectStore::Put(const std::string& token, const std::string& path,
                        std::vector<uint8_t> data) {
  // Cloud object stores fail per-request; callers own the retry budget.
  LG_RETURN_IF_ERROR(fault::Inject("storage.put"));
  auto auth = authority_->Authorize(token, path, StorageOp::kWrite);
  std::lock_guard<std::mutex> lock(mu_);
  if (!auth.ok()) {
    ++stats_.access_denied;
    return auth.status().WithContext("PUT " + path);
  }
  stats_.writes++;
  stats_.bytes_written += data.size();
  objects_[path] = std::move(data);
  return Status::OK();
}

Result<std::vector<uint8_t>> ObjectStore::Get(const std::string& token,
                                              const std::string& path) const {
  LG_RETURN_IF_ERROR(fault::Inject("storage.get"));
  auto auth = authority_->Authorize(token, path, StorageOp::kRead);
  std::lock_guard<std::mutex> lock(mu_);
  if (!auth.ok()) {
    ++stats_.access_denied;
    return auth.status().WithContext("GET " + path);
  }
  auto it = objects_.find(path);
  if (it == objects_.end()) {
    return Status::NotFound("no object at " + path);
  }
  stats_.reads++;
  stats_.bytes_read += it->second.size();
  return it->second;
}

Result<std::vector<std::string>> ObjectStore::List(
    const std::string& token, const std::string& prefix) const {
  auto auth = authority_->Authorize(token, prefix + "*", StorageOp::kList);
  std::lock_guard<std::mutex> lock(mu_);
  if (!auth.ok()) {
    ++stats_.access_denied;
    return auth.status().WithContext("LIST " + prefix);
  }
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.push_back(it->first);
  }
  return out;
}

Status ObjectStore::Delete(const std::string& token, const std::string& path) {
  auto auth = authority_->Authorize(token, path, StorageOp::kDelete);
  std::lock_guard<std::mutex> lock(mu_);
  if (!auth.ok()) {
    ++stats_.access_denied;
    return auth.status().WithContext("DELETE " + path);
  }
  objects_.erase(path);
  return Status::OK();
}

bool ObjectStore::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.count(path) > 0;
}

size_t ObjectStore::ObjectCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

std::map<std::string, std::vector<uint8_t>> ObjectStore::ExportObjects()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_;
}

void ObjectStore::ImportObjects(
    std::map<std::string, std::vector<uint8_t>> objects) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, data] : objects) {
    objects_[path] = std::move(data);
  }
}

ObjectStoreStats ObjectStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ObjectStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = ObjectStoreStats();
}

}  // namespace lakeguard
