#include "storage/credential.h"

#include "common/id.h"
#include "common/strings.h"

namespace lakeguard {

const char* StorageOpName(StorageOp op) {
  switch (op) {
    case StorageOp::kRead:
      return "READ";
    case StorageOp::kWrite:
      return "WRITE";
    case StorageOp::kList:
      return "LIST";
    case StorageOp::kDelete:
      return "DELETE";
  }
  return "?";
}

StorageCredential CredentialAuthority::Issue(
    const std::string& principal, const std::string& compute_id,
    std::vector<std::string> allowed_prefixes, bool allow_write,
    int64_t ttl_micros) {
  StorageCredential cred;
  cred.token_id = IdGenerator::Next("tok");
  cred.principal = principal;
  cred.compute_id = compute_id;
  cred.allowed_prefixes = std::move(allowed_prefixes);
  cred.allow_write = allow_write;
  cred.expires_at_micros = clock_->NowMicros() + ttl_micros;

  std::lock_guard<std::mutex> lock(mu_);
  tokens_[cred.token_id] = cred;
  return cred;
}

void CredentialAuthority::Revoke(const std::string& token_id) {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_.erase(token_id);
}

Result<std::string> CredentialAuthority::Authorize(const std::string& token_id,
                                                   const std::string& path,
                                                   StorageOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tokens_.find(token_id);
  if (it == tokens_.end()) {
    return Status::Unauthenticated("unknown or revoked storage token");
  }
  const StorageCredential& cred = it->second;
  if (clock_->NowMicros() >= cred.expires_at_micros) {
    return Status::Unauthenticated("storage token expired");
  }
  if ((op == StorageOp::kWrite || op == StorageOp::kDelete) &&
      !cred.allow_write) {
    return Status::PermissionDenied(std::string("token is read-only, ") +
                                    StorageOpName(op) + " denied for " + path);
  }
  for (const std::string& prefix : cred.allowed_prefixes) {
    if (MatchesWildcard(prefix, path)) return cred.principal;
  }
  return Status::PermissionDenied("token scope does not cover path " + path);
}

size_t CredentialAuthority::ActiveTokenCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tokens_.size();
}

Result<StorageCredential> CredentialAuthority::Inspect(
    const std::string& token_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tokens_.find(token_id);
  if (it == tokens_.end()) {
    return Status::NotFound("unknown or revoked storage token");
  }
  return it->second;
}

}  // namespace lakeguard
