#include "storage/credential.h"

#include <functional>
#include <random>

#include "common/sha256.h"
#include "common/strings.h"

namespace lakeguard {

const char* StorageOpName(StorageOp op) {
  switch (op) {
    case StorageOp::kRead:
      return "READ";
    case StorageOp::kWrite:
      return "WRITE";
    case StorageOp::kList:
      return "LIST";
    case StorageOp::kDelete:
      return "DELETE";
  }
  return "?";
}

CredentialAuthority::CredentialAuthority(Clock* clock) : clock_(clock) {
  // Per-authority random seed: token ids are SHA-256(seed, counter), so an
  // attacker holding one valid token cannot predict or enumerate others.
  std::random_device rd;
  std::string seed;
  for (int i = 0; i < 4; ++i) {
    seed += std::to_string(static_cast<uint64_t>(rd())) + ":";
  }
  seed_ = std::move(seed);
}

CredentialAuthority::Shard& CredentialAuthority::ShardFor(
    const std::string& token_id) const {
  return shards_[std::hash<std::string>{}(token_id) % kShards];
}

std::string CredentialAuthority::NewTokenId() {
  uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
  std::string digest = Sha256::HexDigest(seed_ + std::to_string(n));
  return "tok-" + digest.substr(0, 16);
}

StorageCredential CredentialAuthority::Issue(
    const std::string& principal, const std::string& compute_id,
    std::vector<std::string> allowed_prefixes, bool allow_write,
    int64_t ttl_micros) {
  StorageCredential cred;
  cred.token_id = NewTokenId();
  cred.principal = principal;
  cred.compute_id = compute_id;
  cred.allowed_prefixes = std::move(allowed_prefixes);
  cred.allow_write = allow_write;
  cred.expires_at_micros = clock_->NowMicros() + ttl_micros;

  Shard& shard = ShardFor(cred.token_id);
  WriterLock lock(shard.mu);
  shard.tokens[cred.token_id] = cred;
  return cred;
}

void CredentialAuthority::Revoke(const std::string& token_id) {
  Shard& shard = ShardFor(token_id);
  WriterLock lock(shard.mu);
  shard.tokens.erase(token_id);
}

Result<std::string> CredentialAuthority::Authorize(const std::string& token_id,
                                                   const std::string& path,
                                                   StorageOp op) const {
  const Shard& shard = ShardFor(token_id);
  ReaderLock lock(shard.mu);
  auto it = shard.tokens.find(token_id);
  if (it == shard.tokens.end()) {
    return Status::Unauthenticated("unknown or revoked storage token");
  }
  const StorageCredential& cred = it->second;
  if (clock_->NowMicros() >= cred.expires_at_micros) {
    return Status::Unauthenticated("storage token expired");
  }
  if ((op == StorageOp::kWrite || op == StorageOp::kDelete) &&
      !cred.allow_write) {
    return Status::PermissionDenied(std::string("token is read-only, ") +
                                    StorageOpName(op) + " denied for " + path);
  }
  for (const std::string& prefix : cred.allowed_prefixes) {
    if (MatchesWildcard(prefix, path)) return cred.principal;
  }
  return Status::PermissionDenied("token scope does not cover path " + path);
}

size_t CredentialAuthority::ActiveTokenCount() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    ReaderLock lock(shard.mu);
    n += shard.tokens.size();
  }
  return n;
}

Result<StorageCredential> CredentialAuthority::Inspect(
    const std::string& token_id) const {
  const Shard& shard = ShardFor(token_id);
  ReaderLock lock(shard.mu);
  auto it = shard.tokens.find(token_id);
  if (it == shard.tokens.end()) {
    return Status::NotFound("unknown or revoked storage token");
  }
  return it->second;
}

}  // namespace lakeguard
