#ifndef LAKEGUARD_STORAGE_DURABLE_SNAPSHOT_STORE_H_
#define LAKEGUARD_STORAGE_DURABLE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// One entry loaded back from a SnapshotStore directory. `status` is OK with
/// the decoded payload, or a typed error (kDataLoss for a corrupt frame) —
/// the caller decides per entry whether to reject or abort, but a corrupt
/// entry NEVER yields a partially decoded payload.
struct SnapshotEntry {
  std::string id;
  Status status = Status::OK();
  std::vector<uint8_t> payload;
};

/// Directory of per-id snapshot files, each published atomically
/// (tmp-write → fsync → rename → dir-fsync) and framed with a CRC32 so a
/// flipped bit is detected at load rather than silently admitted.
///
/// File `<id>.snap`: u64 magic | u32 payload_len | u32 crc32(payload) |
/// payload (little-endian).
///
/// Crash seams: `snapshot.write`, `snapshot.fsync`, `snapshot.rename`. Once
/// a crash fires the store is dead and every later call returns the same
/// simulated-death status.
class SnapshotStore {
 public:
  static Result<std::unique_ptr<SnapshotStore>> Open(const std::string& dir);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Durably publishes `payload` under `id`, replacing any prior snapshot.
  Status Put(const std::string& id, const std::vector<uint8_t>& payload);

  /// Removes the snapshot for `id` (OK if absent).
  Status Remove(const std::string& id);

  /// Loads every `*.snap` file. Corrupt frames come back as entries with a
  /// kDataLoss status, never as partial payloads.
  Result<std::vector<SnapshotEntry>> LoadAll() const;

  const std::string& dir() const { return dir_; }
  uint64_t stale_tmp_removed() const { return stale_tmp_removed_; }

 private:
  explicit SnapshotStore(std::string dir) : dir_(std::move(dir)) {}

  Status CheckAliveLocked() const;

  std::string dir_;
  uint64_t stale_tmp_removed_ = 0;
  mutable std::mutex mu_;
  bool died_ = false;
  std::string death_point_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_DURABLE_SNAPSHOT_STORE_H_
