#include "storage/durable/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/fault.h"

namespace lakeguard {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for '" + path +
                          "': " + std::strerror(errno));
}

}  // namespace

Status WriteAllFd(int fd, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (n > 0) {
    ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("write failed: ") +
                              std::strerror(errno));
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status SyncFd(int fd) {
  if (::fsync(fd) != 0) {
    return Status::Internal(std::string("fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open(dir)", dir);
  Status s = SyncFd(fd);
  ::close(fd);
  return s.ok() ? s : s.WithContext("fsync of directory '" + dir + "'");
}

std::vector<uint8_t> ApplyCrashMangling(const std::vector<uint8_t>& bytes,
                                        const CrashPolicy& policy) {
  switch (policy.mode) {
    case CrashMode::kBeforeWrite:
      return {};
    case CrashMode::kTornWrite: {
      if (bytes.empty()) return {};
      double frac = policy.torn_fraction;
      if (frac < 0.0) frac = 0.0;
      if (frac >= 1.0) frac = 0.99;
      size_t keep = static_cast<size_t>(
          static_cast<double>(bytes.size()) * frac);
      if (keep == 0) keep = 1;
      if (keep >= bytes.size()) keep = bytes.size() - 1;
      return std::vector<uint8_t>(bytes.begin(), bytes.begin() + keep);
    }
    case CrashMode::kBitFlip: {
      std::vector<uint8_t> out = bytes;
      if (!out.empty()) {
        uint64_t bit = policy.flip_bit % (out.size() * 8);
        out[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      }
      return out;
    }
    case CrashMode::kAfterWrite:
      return bytes;
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes,
                       const std::string& crash_prefix) {
  const std::string tmp = path + ".tmp";
  const std::string dir = std::filesystem::path(path).parent_path().string();

  std::vector<uint8_t> to_write = bytes;
  bool die_after_publish = false;
  if (auto crash = fault::CheckCrash((crash_prefix + ".write").c_str())) {
    if (crash->mode == CrashMode::kBeforeWrite) {
      return fault::Death(crash_prefix + ".write");
    }
    to_write = ApplyCrashMangling(bytes, *crash);
    // Torn content never survives the rename barrier — the process dies with
    // an unpublished tmp file. A flipped bit DOES survive publish (the write
    // "completed", just wrong), and kAfterWrite publishes clean bytes; both
    // then die after the rename so recovery must face the published file.
    if (crash->mode == CrashMode::kTornWrite) {
      int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        (void)WriteAllFd(fd, to_write.data(), to_write.size());
        ::close(fd);
      }
      return fault::Death(crash_prefix + ".write");
    }
    die_after_publish = true;
  }

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status s = WriteAllFd(fd, to_write.data(), to_write.size());
  if (!s.ok()) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return s.WithContext("writing '" + tmp + "'");
  }

  if (auto crash = fault::CheckCrash((crash_prefix + ".fsync").c_str())) {
    bool after = crash->mode == CrashMode::kAfterWrite;
    if (after) (void)SyncFd(fd);
    ::close(fd);
    // Either way the rename never happens: the tmp file is a stale leftover
    // recovery must ignore.
    return fault::Death(crash_prefix + ".fsync");
  }
  s = SyncFd(fd);
  ::close(fd);
  if (!s.ok()) return s.WithContext("fsync of '" + tmp + "'");

  if (auto crash = fault::CheckCrash((crash_prefix + ".rename").c_str())) {
    if (crash->mode != CrashMode::kAfterWrite) {
      return fault::Death(crash_prefix + ".rename");
    }
    if (::rename(tmp.c_str(), path.c_str()) == 0) (void)SyncDir(dir);
    return fault::Death(crash_prefix + ".rename");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename", path);
  }
  LG_RETURN_IF_ERROR(SyncDir(dir));
  if (die_after_publish) return fault::Death(crash_prefix + ".write");
  return Status::OK();
}

size_t RemoveStaleTmpFiles(const std::string& dir) {
  size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace lakeguard
