#include "storage/durable/crash_points.h"

namespace lakeguard {

const std::vector<CrashPointInfo>& DurableCrashPoints() {
  static const std::vector<CrashPointInfo>* points =
      new std::vector<CrashPointInfo>{
          {"wal.append", "death mid-append of one WAL record frame", true},
          {"wal.fsync", "death around the group-commit fsync barrier", false},
          {"checkpoint.write",
           "death while writing the checkpoint tmp file (bit-flip here "
           "publishes a corrupt checkpoint)",
           true},
          {"checkpoint.fsync",
           "death between checkpoint tmp write and publish rename", false},
          {"checkpoint.rename", "death around the checkpoint publish rename",
           false},
          {"audit.flush", "death mid-flush of the audit queue batch", false},
          {"snapshot.write",
           "death while writing a session snapshot tmp file", true},
          {"snapshot.fsync",
           "death between snapshot tmp write and publish rename", false},
          {"snapshot.rename", "death around the snapshot publish rename",
           false},
          {"snapshot.import",
           "death while re-importing recovered sessions after restart",
           false},
      };
  return *points;
}

}  // namespace lakeguard
