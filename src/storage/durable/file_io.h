#ifndef LAKEGUARD_STORAGE_DURABLE_FILE_IO_H_
#define LAKEGUARD_STORAGE_DURABLE_FILE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// POSIX file primitives for the durability layer. Everything here goes
/// through raw descriptors — not iostreams — because the crash-consistency
/// story depends on controlling exactly when bytes reach the file and when
/// fsync barriers happen. All paths are plain `std::filesystem`-style strings.

/// Appends `n` bytes to the file at `fd`, retrying short writes.
Status WriteAllFd(int fd, const void* data, size_t n);

/// fsync barrier on an open descriptor.
Status SyncFd(int fd);

/// fsync on a directory — makes renames/creates/unlinks in it durable.
Status SyncDir(const std::string& dir);

/// Applies a crash policy's byte mangling to a buffer: returns the bytes
/// that actually "reach disk" before the simulated death. kBeforeWrite
/// returns empty; kTornWrite a prefix; kBitFlip the full buffer with one bit
/// flipped; kAfterWrite the buffer unchanged (the caller then still dies,
/// but after completing the write). Declared here so the WAL, checkpoint and
/// snapshot writers share one definition of "torn" and "flipped".
struct CrashPolicy;  // from common/fault.h
std::vector<uint8_t> ApplyCrashMangling(const std::vector<uint8_t>& bytes,
                                        const CrashPolicy& policy);

/// Atomically publishes `bytes` at `path`: write to `<path>.tmp`, fsync the
/// file, rename over `path`, fsync the parent directory. Readers therefore
/// see either the previous file or the complete new one — never a partial
/// write.
///
/// Crash seams (see common/fault.h): `<crash_prefix>.write` mangles or skips
/// the tmp-file content, `<crash_prefix>.fsync` dies between write and
/// rename, `<crash_prefix>.rename` dies around the publish rename. After any
/// fired crash the function returns `fault::Death` and the caller must treat
/// the process as dead. Note kBitFlip at `.write` completes the publish with
/// corrupt content — that is the point: a published-but-corrupt file must be
/// caught by the reader's checksum, fail closed.
Status WriteFileAtomic(const std::string& path,
                       const std::vector<uint8_t>& bytes,
                       const std::string& crash_prefix);

/// Removes every `*.tmp` leftover in `dir` (a crashed atomic write leaves
/// its tmp file behind; it was never published, so recovery discards it).
/// Returns how many were removed.
size_t RemoveStaleTmpFiles(const std::string& dir);

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_DURABLE_FILE_IO_H_
