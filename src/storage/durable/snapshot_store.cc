#include "storage/durable/snapshot_store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/fault.h"
#include "storage/durable/file_io.h"

namespace lakeguard {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kSnapshotMagic = 0x4C47534E41503031ULL;  // "LGSNAP01"
constexpr size_t kHeaderBytes = 16;

std::string PathFor(const std::string& dir, const std::string& id) {
  return (fs::path(dir) / (id + ".snap")).string();
}

}  // namespace

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot directory '" + dir +
                            "': " + ec.message());
  }
  std::unique_ptr<SnapshotStore> store(new SnapshotStore(dir));
  store->stale_tmp_removed_ = RemoveStaleTmpFiles(dir);
  return store;
}

Status SnapshotStore::CheckAliveLocked() const {
  if (died_) return fault::Death(death_point_);
  return Status::OK();
}

Status SnapshotStore::Put(const std::string& id,
                          const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  LG_RETURN_IF_ERROR(CheckAliveLocked());
  std::vector<uint8_t> bytes;
  bytes.reserve(kHeaderBytes + payload.size());
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<uint8_t>(kSnapshotMagic >> (8 * i)));
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32::Of(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(len >> (8 * i)));
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  Status s = WriteFileAtomic(PathFor(dir_, id), bytes, "snapshot");
  if (fault::IsDeath(s)) {
    died_ = true;
    death_point_ = "snapshot";
  }
  return s;
}

Status SnapshotStore::Remove(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  LG_RETURN_IF_ERROR(CheckAliveLocked());
  std::error_code ec;
  fs::remove(PathFor(dir_, id), ec);
  if (ec) {
    return Status::Internal("cannot remove snapshot for '" + id +
                            "': " + ec.message());
  }
  return SyncDir(dir_);
}

Result<std::vector<SnapshotEntry>> SnapshotStore::LoadAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  LG_RETURN_IF_ERROR(CheckAliveLocked());
  std::vector<SnapshotEntry> entries;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(dir_, ec)) {
    if (dirent.path().extension() != ".snap") continue;
    SnapshotEntry entry;
    entry.id = dirent.path().stem().string();
    std::ifstream in(dirent.path(), std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    const std::string name = dirent.path().string();
    if (!in || in.bad()) {
      entry.status = Status::Internal("cannot read snapshot '" + name + "'");
    } else if (bytes.size() < kHeaderBytes) {
      entry.status = Status::DataLoss("snapshot '" + name + "' is truncated");
    } else {
      uint64_t magic = 0;
      uint32_t len = 0, crc = 0;
      std::memcpy(&magic, bytes.data(), 8);
      std::memcpy(&len, bytes.data() + 8, 4);
      std::memcpy(&crc, bytes.data() + 12, 4);
      if (magic != kSnapshotMagic) {
        entry.status = Status::DataLoss("snapshot '" + name +
                                        "' has a bad magic — corrupt or "
                                        "tampered");
      } else if (bytes.size() - kHeaderBytes != len) {
        entry.status =
            Status::DataLoss("snapshot '" + name + "' length mismatch");
      } else if (Crc32::Of(bytes.data() + kHeaderBytes, len) != crc) {
        entry.status = Status::DataLoss("snapshot '" + name +
                                        "' fails its CRC — corrupt or "
                                        "tampered");
      } else {
        entry.payload.assign(bytes.begin() + kHeaderBytes, bytes.end());
      }
    }
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.id < b.id;
            });
  return entries;
}

}  // namespace lakeguard
