#include "storage/durable/durable_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/crc32.h"
#include "common/fault.h"
#include "storage/durable/file_io.h"

namespace lakeguard {

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kCheckpointMagic = 0x4C474B5054303031ULL;  // "LGKPT001"
constexpr size_t kFrameHeaderBytes = 24;
constexpr size_t kCheckpointHeaderBytes = 40;
/// Sanity bound on one record: a parsed length beyond this is garbage, not a
/// huge record.
constexpr uint64_t kMaxRecordBytes = 64ULL << 20;

void PutFixed32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutFixed64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetFixed32(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetFixed64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.seg",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

std::string CheckpointName(uint64_t seq) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "ckpt-%020llu.ckpt",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parses the numeric id out of `prefix-<20 digits>.<ext>`; false otherwise.
bool ParseNumberedName(const std::string& name, const std::string& prefix,
                       const std::string& ext, uint64_t* out) {
  if (name.size() != prefix.size() + 20 + ext.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(prefix.size() + 20, ext.size(), ext) != 0) return false;
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

Result<std::vector<uint8_t>> ReadWholeFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Internal("cannot open '" + path.string() + "' for read");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal("read failed for '" + path.string() + "'");
  }
  return bytes;
}

/// CRC of one record frame: lsn ‖ stamp ‖ payload (everything after the
/// header's own crc field).
uint32_t FrameCrc(const uint8_t* frame, size_t payload_len) {
  return Crc32::Of(frame + 8, 16 + payload_len);
}

std::vector<uint8_t> BuildFrame(uint64_t lsn, uint64_t stamp,
                                const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed32(&frame, 0);  // crc patched below
  PutFixed64(&frame, lsn);
  PutFixed64(&frame, stamp);
  frame.insert(frame.end(), payload.begin(), payload.end());
  uint32_t crc = FrameCrc(frame.data(), payload.size());
  std::memcpy(frame.data() + 4, &crc, 4);
  return frame;
}

}  // namespace

DurableLog::DurableLog(DurableLogOptions options)
    : options_(std::move(options)) {}

DurableLog::~DurableLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status DurableLog::DieLocked(const std::string& point) {
  died_ = true;
  death_point_ = point;
  return fault::Death(point);
}

Status DurableLog::CheckAliveLocked() const {
  if (died_) return fault::Death(death_point_);
  return Status::OK();
}

Result<std::unique_ptr<DurableLog>> DurableLog::Open(
    DurableLogOptions options, DurableLogRecovery* recovery) {
  DurableLogRecovery local;
  if (recovery == nullptr) recovery = &local;
  *recovery = DurableLogRecovery();

  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("cannot create durable log directory '" +
                            options.dir + "': " + ec.message());
  }
  recovery->stale_tmp_removed = RemoveStaleTmpFiles(options.dir);

  std::vector<std::pair<uint64_t, fs::path>> checkpoints;
  std::vector<std::pair<uint64_t, fs::path>> segments;
  for (const auto& entry : fs::directory_iterator(options.dir)) {
    const std::string name = entry.path().filename().string();
    uint64_t id = 0;
    if (ParseNumberedName(name, "ckpt-", ".ckpt", &id)) {
      checkpoints.emplace_back(id, entry.path());
    } else if (ParseNumberedName(name, "wal-", ".seg", &id)) {
      segments.emplace_back(id, entry.path());
    }
  }
  std::sort(checkpoints.begin(), checkpoints.end());
  std::sort(segments.begin(), segments.end());

  std::unique_ptr<DurableLog> log(new DurableLog(std::move(options)));

  // --- Checkpoint: only the newest counts. An unreadable newest checkpoint
  // is kDataLoss — falling back to an older one would silently roll the
  // recovered state (and its privileges) backwards.
  if (!checkpoints.empty()) {
    const auto& [seq, path] = checkpoints.back();
    LG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
    if (bytes.size() < kCheckpointHeaderBytes) {
      return Status::DataLoss("checkpoint '" + path.string() +
                              "' is truncated (" +
                              std::to_string(bytes.size()) + " bytes)");
    }
    const uint8_t* p = bytes.data();
    if (GetFixed64(p) != kCheckpointMagic) {
      return Status::DataLoss("checkpoint '" + path.string() +
                              "' has a bad magic — corrupt or tampered");
    }
    uint64_t file_seq = GetFixed64(p + 8);
    uint64_t covered = GetFixed64(p + 16);
    uint64_t stamp = GetFixed64(p + 24);
    uint32_t len = GetFixed32(p + 32);
    uint32_t crc = GetFixed32(p + 36);
    if (file_seq != seq) {
      return Status::DataLoss(
          "checkpoint '" + path.string() +
          "' sequence does not match its filename — rollback or tampering");
    }
    if (bytes.size() - kCheckpointHeaderBytes != len) {
      return Status::DataLoss("checkpoint '" + path.string() +
                              "' payload length mismatch");
    }
    uint32_t actual = Crc32::Extend(Crc32::kInitial, p + 8, 24);
    actual = Crc32::Finish(
        Crc32::Extend(actual, p + kCheckpointHeaderBytes, len));
    if (actual != crc) {
      return Status::DataLoss("checkpoint '" + path.string() +
                              "' fails its CRC — corrupt or tampered");
    }
    recovery->has_checkpoint = true;
    recovery->checkpoint_seq = seq;
    recovery->checkpoint_stamp = stamp;
    recovery->checkpoint_covered_lsn = covered;
    recovery->checkpoint_payload.assign(p + kCheckpointHeaderBytes,
                                        p + kCheckpointHeaderBytes + len);
    log->checkpoint_seq_ = seq;
    log->checkpoint_covered_lsn_ = covered;
    // Older checkpoints are pruned leftovers of interrupted GC.
    for (size_t i = 0; i + 1 < checkpoints.size(); ++i) {
      fs::remove(checkpoints[i].second, ec);
    }
  }

  // --- WAL replay.
  const uint64_t covered = log->checkpoint_covered_lsn_;
  uint64_t expected = covered + 1;
  for (size_t seg_index = 0; seg_index < segments.size(); ++seg_index) {
    const auto& [first_lsn, path] = segments[seg_index];
    const bool last_segment = seg_index + 1 == segments.size();
    LG_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadWholeFile(path));
    ++recovery->segments_scanned;
    size_t pos = 0;
    bool truncated_tail = false;
    while (pos < bytes.size()) {
      const size_t remaining = bytes.size() - pos;
      const uint8_t* frame = bytes.data() + pos;
      // Classify a bad frame: an unacked torn/flipped tail is recoverable
      // only when it runs through EOF of the final segment. Anything else is
      // mid-log corruption — acknowledged records may be affected, so the
      // only safe answer is kDataLoss.
      bool frame_ok = remaining >= kFrameHeaderBytes;
      uint64_t len = 0;
      if (frame_ok) {
        len = GetFixed32(frame);
        frame_ok = len <= kMaxRecordBytes &&
                   kFrameHeaderBytes + len <= remaining;
      }
      bool reaches_eof = true;  // a short/oversized frame consumes the rest
      if (frame_ok) {
        uint32_t stored_crc = GetFixed32(frame + 4);
        frame_ok = FrameCrc(frame, len) == stored_crc;
        reaches_eof = pos + kFrameHeaderBytes + len == bytes.size();
      }
      if (!frame_ok) {
        if (last_segment && reaches_eof) {
          recovery->torn_bytes_discarded += bytes.size() - pos;
          fs::resize_file(path, pos, ec);
          if (ec) {
            return Status::Internal("cannot truncate torn WAL tail of '" +
                                    path.string() + "': " + ec.message());
          }
          truncated_tail = true;
          break;
        }
        return Status::DataLoss(
            "WAL record at '" + path.string() + "' offset " +
            std::to_string(pos) +
            " fails its frame check with valid data after it — corrupt or "
            "tampered log, refusing to recover");
      }
      uint64_t lsn = GetFixed64(frame + 8);
      uint64_t stamp = GetFixed64(frame + 16);
      if (lsn > covered) {
        if (lsn != expected) {
          return Status::DataLoss(
              "WAL LSN gap in '" + path.string() + "': expected " +
              std::to_string(expected) + ", found " + std::to_string(lsn) +
              " — stale-checkpoint rollback or missing segment");
        }
        ReplayedRecord record;
        record.lsn = lsn;
        record.stamp = stamp;
        record.payload.assign(frame + kFrameHeaderBytes,
                              frame + kFrameHeaderBytes + len);
        recovery->records.push_back(std::move(record));
        ++expected;
      }
      pos += kFrameHeaderBytes + len;
    }
    if (truncated_tail) break;
  }
  log->last_lsn_ = expected - 1;
  log->last_synced_lsn_ = log->last_lsn_;

  // --- Reopen the tail for appends.
  for (const auto& [first_lsn, path] : segments) {
    log->segment_first_lsns_.push_back(first_lsn);
  }
  if (segments.empty()) {
    LG_RETURN_IF_ERROR(log->OpenSegmentLocked(log->last_lsn_ + 1));
  } else {
    const fs::path& tail = segments.back().second;
    int fd = ::open(tail.string().c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) {
      return Status::Internal("cannot reopen WAL segment '" + tail.string() +
                              "' for append");
    }
    log->fd_ = fd;
    log->segment_bytes_ = fs::file_size(tail, ec);
  }
  return log;
}

Status DurableLog::OpenSegmentLocked(uint64_t first_lsn) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path =
      (fs::path(options_.dir) / SegmentName(first_lsn)).string();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create WAL segment '" + path + "'");
  }
  fd_ = fd;
  segment_bytes_ = 0;
  segment_first_lsns_.push_back(first_lsn);
  ++stats_.segments_created;
  // The segment file itself must survive a crash right after creation.
  return SyncDir(options_.dir);
}

Status DurableLog::RotateIfNeededLocked() {
  if (segment_bytes_ < options_.max_segment_bytes) return Status::OK();
  LG_RETURN_IF_ERROR(SyncFd(fd_));
  return OpenSegmentLocked(last_lsn_ + 1);
}

Result<uint64_t> DurableLog::Append(uint64_t stamp,
                                    const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  LG_RETURN_IF_ERROR(CheckAliveLocked());
  LG_RETURN_IF_ERROR(RotateIfNeededLocked());
  const uint64_t lsn = last_lsn_ + 1;
  std::vector<uint8_t> frame = BuildFrame(lsn, stamp, payload);
  if (auto crash = fault::CheckCrash("wal.append")) {
    if (crash->mode != CrashMode::kBeforeWrite) {
      std::vector<uint8_t> mangled = ApplyCrashMangling(frame, *crash);
      (void)WriteAllFd(fd_, mangled.data(), mangled.size());
    }
    return DieLocked("wal.append");
  }
  LG_RETURN_IF_ERROR(WriteAllFd(fd_, frame.data(), frame.size()));
  segment_bytes_ += frame.size();
  last_lsn_ = lsn;
  ++stats_.appends;
  stats_.bytes_appended += frame.size();
  return lsn;
}

Status DurableLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  LG_RETURN_IF_ERROR(CheckAliveLocked());
  if (auto crash = fault::CheckCrash("wal.fsync")) {
    if (crash->mode == CrashMode::kAfterWrite) (void)SyncFd(fd_);
    return DieLocked("wal.fsync");
  }
  LG_RETURN_IF_ERROR(SyncFd(fd_));
  last_synced_lsn_ = last_lsn_;
  ++stats_.syncs;
  return Status::OK();
}

Status DurableLog::AppendSync(uint64_t stamp,
                              const std::vector<uint8_t>& payload) {
  LG_RETURN_IF_ERROR(Append(stamp, payload).status());
  return Sync();
}

Status DurableLog::WriteCheckpoint(uint64_t stamp,
                                   const std::vector<uint8_t>& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  LG_RETURN_IF_ERROR(CheckAliveLocked());
  // The checkpoint covers everything appended so far; make that durable
  // first so GC can never delete records only the (not-yet-read) WAL holds.
  LG_RETURN_IF_ERROR(SyncFd(fd_));
  last_synced_lsn_ = last_lsn_;

  const uint64_t seq = checkpoint_seq_ + 1;
  std::vector<uint8_t> bytes;
  bytes.reserve(kCheckpointHeaderBytes + payload.size());
  PutFixed64(&bytes, kCheckpointMagic);
  PutFixed64(&bytes, seq);
  PutFixed64(&bytes, last_lsn_);
  PutFixed64(&bytes, stamp);
  PutFixed32(&bytes, static_cast<uint32_t>(payload.size()));
  uint32_t crc = Crc32::Extend(Crc32::kInitial, bytes.data() + 8, 24);
  crc = Crc32::Finish(Crc32::Extend(crc, payload.data(), payload.size()));
  PutFixed32(&bytes, crc);
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const std::string path =
      (fs::path(options_.dir) / CheckpointName(seq)).string();
  Status published = WriteFileAtomic(path, bytes, "checkpoint");
  if (fault::IsDeath(published)) {
    died_ = true;
    death_point_ = "checkpoint";
    return published;
  }
  LG_RETURN_IF_ERROR(published);
  const uint64_t covered = last_lsn_;
  checkpoint_seq_ = seq;
  checkpoint_covered_lsn_ = covered;
  ++stats_.checkpoints_written;

  // GC: start a fresh segment at covered+1, then every older segment is
  // wholly covered by the checkpoint and can go, as can older checkpoints.
  std::vector<uint64_t> old_segments = segment_first_lsns_;
  segment_first_lsns_.clear();
  LG_RETURN_IF_ERROR(OpenSegmentLocked(covered + 1));
  std::error_code ec;
  for (uint64_t first : old_segments) {
    fs::remove(fs::path(options_.dir) / SegmentName(first), ec);
    if (!ec) ++stats_.segments_deleted;
  }
  fs::remove(fs::path(options_.dir) / CheckpointName(seq - 1), ec);
  return SyncDir(options_.dir);
}

uint64_t DurableLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

DurableLogStats DurableLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lakeguard
