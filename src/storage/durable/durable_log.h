#ifndef LAKEGUARD_STORAGE_DURABLE_DURABLE_LOG_H_
#define LAKEGUARD_STORAGE_DURABLE_DURABLE_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// Options of one durable log directory.
struct DurableLogOptions {
  std::string dir;
  /// Segment rotation threshold: a segment that reaches this many bytes is
  /// sealed and a new one started (bounds replay work per segment and lets
  /// checkpoint GC delete whole files).
  uint64_t max_segment_bytes = 256 * 1024;
};

/// One record replayed at recovery.
struct ReplayedRecord {
  uint64_t lsn = 0;
  /// Caller-defined monotonic stamp carried with the record — the catalog
  /// stores its epoch here, the audit log its event sequence.
  uint64_t stamp = 0;
  std::vector<uint8_t> payload;
};

/// Everything `DurableLog::Open` recovered from disk. The caller rebuilds
/// its in-memory state from the checkpoint payload (if any) plus the
/// replayed records in LSN order.
struct DurableLogRecovery {
  bool has_checkpoint = false;
  uint64_t checkpoint_seq = 0;
  uint64_t checkpoint_stamp = 0;
  uint64_t checkpoint_covered_lsn = 0;
  std::vector<uint8_t> checkpoint_payload;
  /// Records with lsn > checkpoint_covered_lsn, strictly consecutive.
  std::vector<ReplayedRecord> records;
  /// Bytes discarded from the final segment as an unacked torn/corrupt tail
  /// (0 when the log was clean).
  uint64_t torn_bytes_discarded = 0;
  uint64_t segments_scanned = 0;
  uint64_t stale_tmp_removed = 0;
};

struct DurableLogStats {
  uint64_t appends = 0;
  uint64_t syncs = 0;
  uint64_t checkpoints_written = 0;
  uint64_t segments_created = 0;
  uint64_t segments_deleted = 0;
  uint64_t bytes_appended = 0;
};

/// Segmented write-ahead log with periodic checkpoint snapshots.
///
/// Write path: `Append` frames the payload with a CRC32 and buffers it into
/// the active segment (an OS write, no fsync); `Sync` is the group-commit
/// barrier — callers append a batch and pay one fsync for all of it. A
/// record is DURABLE only after the Sync that covers it returns; the replay
/// contract below is what makes losing unsynced tail records safe.
///
/// Record frame (little-endian):
///   u32 payload_len | u32 crc32(lsn ‖ stamp ‖ payload) | u64 lsn |
///   u64 stamp | payload
///
/// Checkpoints: `WriteCheckpoint` publishes the caller's full-state payload
/// via tmp-write → fsync → rename → dir-fsync, then garbage-collects
/// segments wholly covered by it. Only the NEWEST checkpoint is ever used at
/// recovery; an unreadable newest checkpoint is `kDataLoss`, never a silent
/// fallback to an older (staler, possibly broader-privileged) one.
///
/// Replay rules (fail closed):
///   * a frame that fails to parse and runs through end-of-file of the LAST
///     segment is an unacked torn/flipped tail — truncated, recovery
///     succeeds (those records were never acknowledged: their Sync never
///     returned);
///   * any bad frame with more bytes after it, or in a non-final segment, is
///     mid-log corruption/tampering — `kDataLoss`;
///   * LSNs must be strictly consecutive from `checkpoint_covered_lsn + 1`
///     (gap or reorder — e.g. a rolled-back checkpoint next to a GC'd WAL —
///     is `kDataLoss`).
///
/// Crash seams: `wal.append`, `wal.fsync`, `checkpoint.write`,
/// `checkpoint.fsync`, `checkpoint.rename`. Once a crash fires, this object
/// is dead: every later call returns the same simulated-death status without
/// touching the files (a dead process writes nothing).
class DurableLog {
 public:
  /// Opens (creating the directory if needed) and recovers. On corruption
  /// the open itself fails with `kDataLoss` — the caller must fail closed,
  /// not serve from a partially recovered log.
  static Result<std::unique_ptr<DurableLog>> Open(DurableLogOptions options,
                                                  DurableLogRecovery* recovery);

  ~DurableLog();
  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Appends one record (buffered; durable only after the next `Sync`).
  /// Returns the record's LSN.
  Result<uint64_t> Append(uint64_t stamp, const std::vector<uint8_t>& payload);

  /// Group-commit barrier: fsyncs the active segment.
  Status Sync();

  /// Append + Sync in one call (single-record commit).
  Status AppendSync(uint64_t stamp, const std::vector<uint8_t>& payload);

  /// Publishes `payload` as a checkpoint covering every record appended so
  /// far, then deletes wholly covered segments and older checkpoints.
  Status WriteCheckpoint(uint64_t stamp, const std::vector<uint8_t>& payload);

  uint64_t last_lsn() const;
  uint64_t next_lsn() const { return last_lsn() + 1; }
  const std::string& dir() const { return options_.dir; }
  DurableLogStats stats() const;

 private:
  explicit DurableLog(DurableLogOptions options);

  Status OpenSegmentLocked(uint64_t first_lsn);
  Status RotateIfNeededLocked();
  Status DieLocked(const std::string& point);
  Status CheckAliveLocked() const;

  DurableLogOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;                   // active segment descriptor
  uint64_t segment_bytes_ = 0;    // bytes in the active segment
  uint64_t last_lsn_ = 0;
  uint64_t last_synced_lsn_ = 0;
  uint64_t checkpoint_seq_ = 0;
  uint64_t checkpoint_covered_lsn_ = 0;
  std::vector<uint64_t> segment_first_lsns_;  // sorted; last = active
  bool died_ = false;
  std::string death_point_;
  DurableLogStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_DURABLE_DURABLE_LOG_H_
