#ifndef LAKEGUARD_STORAGE_DURABLE_CRASH_POINTS_H_
#define LAKEGUARD_STORAGE_DURABLE_CRASH_POINTS_H_

#include <vector>

namespace lakeguard {

/// One named seam where the durability layer can simulate process death.
/// The crash–restart harness iterates this catalog so that adding a crash
/// point to the code automatically adds it to the recovery matrix.
struct CrashPointInfo {
  const char* name;
  const char* description;
  /// True when torn-write / bit-flip mangling is meaningful at this point
  /// (the seam writes bytes); false for pure control-flow seams where only
  /// before/after death applies.
  bool writes_bytes;
};

/// The registered crash points of the durable subsystem, in the order the
/// write path reaches them.
const std::vector<CrashPointInfo>& DurableCrashPoints();

}  // namespace lakeguard

#endif  // LAKEGUARD_STORAGE_DURABLE_CRASH_POINTS_H_
