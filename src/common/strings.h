#ifndef LAKEGUARD_COMMON_STRINGS_H_
#define LAKEGUARD_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lakeguard {

/// Joins `parts` with `sep` ("a", "b" -> "a.b").
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Splits `s` on `sep`, keeping empty segments.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpperAscii(std::string_view s);

/// Case-insensitive ASCII equality (SQL identifiers/keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `name` matches `pattern` where '*' matches any suffix; used by
/// storage-prefix grants and sandbox egress allow-lists
/// ("s3://bucket/raw/*", "*.aqi.com").
bool MatchesWildcard(std::string_view pattern, std::string_view name);

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_STRINGS_H_
