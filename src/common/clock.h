#ifndef LAKEGUARD_COMMON_CLOCK_H_
#define LAKEGUARD_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace lakeguard {

/// Abstract time source. Credential expiry, session idle-timeouts, sandbox
/// provisioning latency and autoscaling decisions are all driven through a
/// `Clock` so tests and benchmarks can use virtual time deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Advances time by `micros` (virtual clocks) or sleeps (real clocks).
  virtual void AdvanceMicros(int64_t micros) = 0;

  int64_t NowMillis() const { return NowMicros() / 1000; }
};

/// Wall-clock backed by std::chrono::steady_clock. `AdvanceMicros` sleeps.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void AdvanceMicros(int64_t micros) override;

  /// Process-wide instance (never destroyed; trivially leaked by design).
  static RealClock* Instance();
};

/// Manually-advanced clock for deterministic tests and latency modeling.
/// The Lakeguard paper's 2s sandbox cold-start is replayed on this clock so
/// benchmarks report the modeled latency without actually sleeping.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override { return now_.load(); }
  void AdvanceMicros(int64_t micros) override { now_ += micros; }
  void SetMicros(int64_t micros) { now_ = micros; }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_CLOCK_H_
