#include "common/serde.h"

namespace lakeguard {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutZigzag(int64_t v) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
            static_cast<uint64_t>(v >> 63));
}

void ByteWriter::PutFixed64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(bits);
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void ByteWriter::PutTag(uint32_t field, WireType type) {
  PutVarint((static_cast<uint64_t>(field) << 3) |
            static_cast<uint64_t>(type));
}

void ByteWriter::PutTaggedVarint(uint32_t field, uint64_t v) {
  PutTag(field, WireType::kVarint);
  PutVarint(v);
}

void ByteWriter::PutTaggedZigzag(uint32_t field, int64_t v) {
  PutTag(field, WireType::kVarint);
  PutZigzag(v);
}

void ByteWriter::PutTaggedDouble(uint32_t field, double v) {
  PutTag(field, WireType::kFixed64);
  PutDouble(v);
}

void ByteWriter::PutTaggedString(uint32_t field, std::string_view s) {
  PutTag(field, WireType::kBytes);
  PutString(s);
}

void ByteWriter::PutTaggedBytes(uint32_t field,
                                const std::vector<uint8_t>& bytes) {
  PutTag(field, WireType::kBytes);
  PutVarint(bytes.size());
  PutRaw(bytes.data(), bytes.size());
}

void ByteWriter::PutTaggedMessage(uint32_t field, const ByteWriter& nested) {
  PutTag(field, WireType::kBytes);
  PutVarint(nested.size());
  PutRaw(nested.data().data(), nested.size());
}

Status ByteReader::Truncated(const char* what) const {
  return Status::DataLoss(std::string("truncated input while reading ") +
                          what);
}

Result<uint8_t> ByteReader::ReadByte() {
  if (pos_ >= size_) return Truncated("byte");
  return data_[pos_++];
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Truncated("varint");
    if (shift >= 64) return Status::DataLoss("varint too long");
    uint8_t b = data_[pos_++];
    result |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

Result<int64_t> ByteReader::ReadZigzag() {
  LG_ASSIGN_OR_RETURN(uint64_t u, ReadVarint());
  return static_cast<int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Result<uint64_t> ByteReader::ReadFixed64() {
  if (remaining() < 8) return Truncated("fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> ByteReader::ReadDouble() {
  LG_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::ReadString() {
  LG_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (remaining() < len) return Truncated("string body");
  std::string s(reinterpret_cast<const char*>(data_ + pos_),
                static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return s;
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes() {
  LG_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (remaining() < len) return Truncated("bytes body");
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += static_cast<size_t>(len);
  return out;
}

Result<bool> ByteReader::ReadBool() {
  LG_ASSIGN_OR_RETURN(uint64_t v, ReadVarint());
  return v != 0;
}

Result<ByteReader::Tag> ByteReader::ReadTag() {
  LG_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
  uint8_t wire = static_cast<uint8_t>(raw & 0x7);
  if (wire > 2) {
    return Status::DataLoss("unknown wire type " + std::to_string(wire));
  }
  Tag tag;
  tag.field = static_cast<uint32_t>(raw >> 3);
  tag.type = static_cast<WireType>(wire);
  return tag;
}

Status ByteReader::SkipValue(WireType type) {
  switch (type) {
    case WireType::kVarint: {
      auto r = ReadVarint();
      return r.status();
    }
    case WireType::kFixed64: {
      auto r = ReadFixed64();
      return r.status();
    }
    case WireType::kBytes: {
      LG_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
      if (remaining() < len) return Truncated("skipped bytes");
      pos_ += static_cast<size_t>(len);
      return Status::OK();
    }
  }
  return Status::DataLoss("unknown wire type");
}

Result<ByteReader> ByteReader::ReadMessage() {
  LG_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
  if (remaining() < len) return Truncated("nested message");
  ByteReader sub(data_ + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return sub;
}

}  // namespace lakeguard
