#ifndef LAKEGUARD_COMMON_STATUS_H_
#define LAKEGUARD_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace lakeguard {

/// Canonical error space used across the whole library. Mirrors the error
/// classes a governance platform has to distinguish: authorization failures
/// (`kPermissionDenied`), authentication failures (`kUnauthenticated`),
/// missing securables (`kNotFound`), protocol violations
/// (`kInvalidArgument`), and engine-internal faults (`kInternal`).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kUnauthenticated = 5,
  kFailedPrecondition = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
  kAborted = 9,
  kUnimplemented = 10,
  kDataLoss = 11,
  kInternal = 12,
  kCancelled = 13,
  kUnavailable = 14,
};

/// Returns the canonical lower_snake name of `code` (e.g. "permission_denied").
const char* StatusCodeToString(StatusCode code);

/// Inverse of `StatusCodeToString`; unknown names map to `kInternal`. Used
/// to reconstruct a typed `Status` from the error code a peer sent over the
/// wire (the Connect client needs the real code to classify retryability).
StatusCode StatusCodeFromString(const std::string& name);

/// Result of a fallible operation that produces no value. All public APIs in
/// this library report failure through `Status` / `Result<T>`; exceptions are
/// never thrown across module boundaries.
///
/// `[[nodiscard]]` at class level: silently dropping a returned `Status`
/// swallows the error — call sites that genuinely do not care must say so
/// with an explicit `(void)` cast and a comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsUnauthenticated() const {
    return code_ == StatusCode::kUnauthenticated;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// Human-readable "code: message" rendering.
  std::string ToString() const;

  /// Prefixes `context` to the message, preserving the code. No-op on OK.
  Status WithContext(const std::string& context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Result of a fallible operation that produces a `T` on success.
/// Modeled after `arrow::Result`: holds either an OK value or a non-OK
/// `Status`, never both. `[[nodiscard]]` for the same reason as `Status`.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` when the result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lakeguard

/// Propagates a non-OK `Status` to the caller.
#define LG_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::lakeguard::Status _lg_status = (expr);           \
    if (!_lg_status.ok()) return _lg_status;           \
  } while (false)

#define LG_CONCAT_IMPL(a, b) a##b
#define LG_CONCAT(a, b) LG_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a `Result<T>`), propagating the error or binding the
/// value to `lhs`. `lhs` may include a declaration, e.g.
/// `LG_ASSIGN_OR_RETURN(auto batch, ReadBatch());`.
#define LG_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto LG_CONCAT(_lg_result_, __LINE__) = (rexpr);             \
  if (!LG_CONCAT(_lg_result_, __LINE__).ok())                  \
    return LG_CONCAT(_lg_result_, __LINE__).status();          \
  lhs = std::move(LG_CONCAT(_lg_result_, __LINE__)).value()

#endif  // LAKEGUARD_COMMON_STATUS_H_
