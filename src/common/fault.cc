#include "common/fault.h"

namespace lakeguard {

namespace {

/// splitmix64 — mixes the process seed with the point-name hash so each
/// point gets an independent, order-insensitive stream.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xorshift64* step; never returns 0 for non-zero state.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

/// Uniform double in [0, 1) from the top 53 bits.
double ToUnit(uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

uint64_t FaultInjector::StreamSeed(const std::string& point) const {
  uint64_t h = seed_;
  for (char c : point) h = Mix64(h ^ static_cast<uint8_t>(c));
  return h == 0 ? 0x9e3779b9 : h;
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [name, state] : points_) {
    state.rng_state = StreamSeed(name);
    state.stats = FaultPointStats();
  }
}

void FaultInjector::SetDefaultClock(Clock* clock) {
  std::lock_guard<std::mutex> lock(mu_);
  default_clock_ = clock;
}

void FaultInjector::Arm(const std::string& point, FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  if (!state.armed) {
    state.armed = true;
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  state.policy = std::move(policy);
  state.rng_state = StreamSeed(point);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.armed) return;
  it->second.armed = false;
  it->second.policy = FaultPolicy();
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, state] : points_) {
    if (state.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
    if (state.crash_armed) {
      crash_armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    (void)name;
  }
  points_.clear();
}

void FaultInjector::ArmCrash(const std::string& point, CrashPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  if (!state.crash_armed) {
    state.crash_armed = true;
    crash_armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  state.crash_policy = policy;
  state.crash_fired = false;
  state.crash_evaluations = 0;
}

void FaultInjector::DisarmCrash(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.crash_armed) return;
  it->second.crash_armed = false;
  it->second.crash_fired = false;
  it->second.crash_policy = CrashPolicy();
  crash_armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

std::optional<CrashPolicy> FaultInjector::EvaluateCrash(
    const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || !it->second.crash_armed) return std::nullopt;
  PointState& state = it->second;
  // A fired crash point keeps firing: the simulated process died, and any
  // thread that reaches this point afterwards is a zombie that must not be
  // allowed to touch the durable files again.
  if (!state.crash_fired) {
    if (state.crash_evaluations < state.crash_policy.skip_evaluations) {
      ++state.crash_evaluations;
      return std::nullopt;
    }
    state.crash_fired = true;
    ++state.stats.faults_injected;
  }
  ++state.stats.evaluations;
  return state.crash_policy;
}

Status FaultInjector::Inject(const std::string& point, Clock* clock) {
  int64_t latency = 0;
  Status result = Status::OK();
  Clock* charge_to = clock;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || !it->second.armed) return Status::OK();
    PointState& state = it->second;
    ++state.stats.evaluations;
    latency = state.policy.latency_micros;
    if (latency > 0) state.stats.latency_micros += latency;
    if (charge_to == nullptr) charge_to = default_clock_;

    bool fire = false;
    if (state.policy.fail_count > 0) {
      --state.policy.fail_count;
      fire = true;
    } else if (state.policy.fail_probability > 0.0 &&
               ToUnit(NextRand(&state.rng_state)) <
                   state.policy.fail_probability) {
      fire = true;
    }
    if (fire) {
      ++state.stats.faults_injected;
      result = Status(state.policy.code,
                      state.policy.message + " at fault point '" + point + "'");
    }
  }
  // Charge latency outside the lock: clocks may sleep (RealClock).
  if (latency > 0 && charge_to != nullptr) charge_to->AdvanceMicros(latency);
  return result;
}

FaultPointStats FaultInjector::StatsFor(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? FaultPointStats() : it->second.stats;
}

namespace fault {

namespace {
constexpr const char kDeathPrefix[] = "simulated process death";
}  // namespace

Status Death(const std::string& point) {
  return Status::Aborted(std::string(kDeathPrefix) + " at crash point '" +
                         point + "'");
}

bool IsDeath(const Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().rfind(kDeathPrefix, 0) == 0;
}

}  // namespace fault

uint64_t FaultInjector::TotalInjected() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, state] : points_) {
    total += state.stats.faults_injected;
    (void)name;
  }
  return total;
}

}  // namespace lakeguard
