#include "common/memory_budget.h"

namespace lakeguard {

void MemoryBudget::ChargeSelf(uint64_t bytes) {
  uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

Status MemoryBudget::TryReserve(uint64_t bytes) {
  if (bytes == 0) return Status::OK();
  if (limit_ > 0) {
    uint64_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      if (cur + bytes > limit_) {
        refusals_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceExhausted(
            "memory budget '" + name_ + "' exhausted: " +
            std::to_string(cur) + " of " + std::to_string(limit_) +
            " bytes in use, requested " + std::to_string(bytes));
      }
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_relaxed)) {
        break;
      }
    }
    uint64_t now = cur + bytes;
    uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak && !peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  } else {
    ChargeSelf(bytes);
  }
  if (parent_) {
    Status up = parent_->TryReserve(bytes);
    if (!up.ok()) {
      // Undo the local charge so a refusal higher in the chain leaves the
      // whole hierarchy untouched.
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      return up;
    }
  }
  return Status::OK();
}

void MemoryBudget::ForceReserve(uint64_t bytes) {
  if (bytes == 0) return;
  ChargeSelf(bytes);
  if (parent_) parent_->ForceReserve(bytes);
}

void MemoryBudget::Release(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t cur = used_.load(std::memory_order_relaxed);
  uint64_t take;
  do {
    take = bytes < cur ? bytes : cur;
  } while (!used_.compare_exchange_weak(cur, cur - take,
                                        std::memory_order_relaxed));
  if (parent_) parent_->Release(bytes);
}

std::shared_ptr<MemoryBudget> MemoryGovernor::SessionBudget(
    const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(session_id);
  if (it != sessions_.end()) return it->second;
  auto budget = std::make_shared<MemoryBudget>(
      "session/" + session_id, config_.session_limit_bytes, service_);
  sessions_.emplace(session_id, budget);
  return budget;
}

std::shared_ptr<MemoryBudget> MemoryGovernor::CreateOperationBudget(
    const std::string& session_id, const std::string& operation_id) {
  return std::make_shared<MemoryBudget>("operation/" + operation_id,
                                        config_.operation_limit_bytes,
                                        SessionBudget(session_id));
}

void MemoryGovernor::ReleaseSession(const std::string& session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

size_t MemoryGovernor::TrackedSessionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace lakeguard
