#include "common/clock.h"

#include <chrono>
#include <thread>

namespace lakeguard {

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::AdvanceMicros(int64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

RealClock* RealClock::Instance() {
  static RealClock* const kInstance = new RealClock();
  return kInstance;
}

}  // namespace lakeguard
