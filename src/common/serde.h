#ifndef LAKEGUARD_COMMON_SERDE_H_
#define LAKEGUARD_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// Wire types of the tagged binary encoding used by the Connect protocol and
/// the columnar IPC format. The encoding deliberately mirrors Protocol
/// Buffers' field-tagged varint scheme (the paper's Spark Connect is
/// protobuf-based) so that unknown fields can be skipped and old clients can
/// talk to new servers — the property §6.3 ("versionless workloads") rests on.
enum class WireType : uint8_t {
  kVarint = 0,   // varint-encoded unsigned integer (zigzag for signed)
  kFixed64 = 1,  // 8 little-endian bytes (doubles, fixed ids)
  kBytes = 2,    // varint length followed by raw bytes
};

/// Append-only byte sink with varint/tagged-field encoders.
class ByteWriter {
 public:
  ByteWriter() = default;

  void PutByte(uint8_t b) { buf_.push_back(b); }
  void PutRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  void PutVarint(uint64_t v);
  void PutZigzag(int64_t v);
  void PutFixed64(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutBool(bool b) { PutVarint(b ? 1 : 0); }

  /// Writes a field tag: (field_number << 3) | wire_type.
  void PutTag(uint32_t field, WireType type);

  // Tagged-field convenience writers. Zero/empty values are still written;
  // the protocol relies on explicit presence, not proto3 default-elision.
  void PutTaggedVarint(uint32_t field, uint64_t v);
  void PutTaggedZigzag(uint32_t field, int64_t v);
  void PutTaggedDouble(uint32_t field, double v);
  void PutTaggedString(uint32_t field, std::string_view s);
  void PutTaggedBytes(uint32_t field, const std::vector<uint8_t>& bytes);
  void PutTaggedBool(uint32_t field, bool b) { PutTaggedVarint(field, b); }

  /// Writes a nested message as a length-delimited bytes field.
  void PutTaggedMessage(uint32_t field, const ByteWriter& nested);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Cursor over an immutable byte span with varint/tagged-field decoders.
/// All reads are bounds-checked and report `kDataLoss` on truncation.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  bool AtEnd() const { return pos_ >= size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  Result<uint8_t> ReadByte();
  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadZigzag();
  Result<uint64_t> ReadFixed64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<uint8_t>> ReadBytes();
  Result<bool> ReadBool();

  /// Reads a field tag. Returns {field_number, wire_type}.
  struct Tag {
    uint32_t field;
    WireType type;
  };
  Result<Tag> ReadTag();

  /// Skips one value of the given wire type (unknown-field tolerance).
  Status SkipValue(WireType type);

  /// Returns a sub-reader over the next length-delimited region and advances
  /// past it. Used to decode nested messages without copying.
  Result<ByteReader> ReadMessage();

 private:
  Status Truncated(const char* what) const;

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_SERDE_H_
