#include "common/retry.h"

#include <algorithm>

namespace lakeguard {

namespace {

uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

double ToUnit(uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

Backoff::Backoff(Options options) : options_(options) { Reset(); }

void Backoff::Reset() {
  attempts_ = 0;
  current_micros_ = static_cast<double>(options_.initial_micros);
  rng_state_ = options_.seed != 0 ? options_.seed : 0x5eedULL;
}

int64_t Backoff::NextDelayMicros() {
  double delay = std::min(current_micros_,
                          static_cast<double>(options_.max_micros));
  if (options_.jitter > 0.0) {
    delay *= 1.0 - options_.jitter * ToUnit(NextRand(&rng_state_));
  }
  current_micros_ *= options_.multiplier;
  ++attempts_;
  return std::max<int64_t>(0, static_cast<int64_t>(delay));
}

Status AnnotateRetries(const Status& status, int retries) {
  if (status.ok() || retries <= 0) return status;
  return Status(status.code(), status.message() + " (after " +
                                   std::to_string(retries) + " retr" +
                                   (retries == 1 ? "y" : "ies") + ")");
}

Status RetryStatusCall(const RetryPolicy& policy, Clock* clock,
                       const std::function<Status()>& fn, RetryStats* stats) {
  // Reuse the Result<T> loop with a unit payload so the two helpers cannot
  // drift apart.
  struct Unit {};
  Result<Unit> result = RetryCall<Unit>(
      policy, clock,
      [&fn]() -> Result<Unit> {
        Status s = fn();
        if (!s.ok()) return s;
        return Unit{};
      },
      stats);
  return result.ok() ? Status::OK() : result.status();
}

}  // namespace lakeguard
