#ifndef LAKEGUARD_COMMON_CANCELLATION_H_
#define LAKEGUARD_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace lakeguard {

namespace internal {

/// Shared state behind a CancellationSource and its tokens. A state may
/// carry a deadline (absolute, on a `Clock`) and may be *linked* to a parent
/// state — a child is cancelled whenever its parent is, which is how a
/// query stream inherits the cancellation of its Connect operation without
/// the two owning each other.
struct CancelState {
  std::atomic<bool> cancelled{false};
  mutable std::mutex mu;
  std::string reason;  // guarded by mu; set once, before `cancelled`

  Clock* clock = nullptr;       // non-null iff a deadline is armed
  int64_t deadline_micros = 0;  // absolute on `clock`

  std::shared_ptr<CancelState> parent;  // may be null
};

}  // namespace internal

/// Read side of cooperative cancellation. Copyable and cheap; a
/// default-constructed token can never be cancelled (the "no lifecycle
/// owner" case — direct engine calls without a session). Pipelines call
/// `Check()` once per batch pull, which bounds abort latency to one batch.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// False for the default token: no source can ever cancel it.
  bool CanBeCancelled() const { return state_ != nullptr; }

  /// True once the source (or any linked ancestor) cancelled, or a deadline
  /// passed. Cancellation is sticky — it never resets.
  bool IsCancelled() const { return !Check().ok(); }

  /// OK while live; `kCancelled` (with the cancel reason) after an explicit
  /// cancel; `kDeadlineExceeded` once an armed deadline passes. Explicit
  /// cancel wins over a simultaneously-expired deadline.
  Status Check() const;

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<internal::CancelState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::CancelState> state_;
};

/// Write side: owns the right to cancel. Copies share the same state (an
/// Operation moved inside a map keeps its identity). Destroying all sources
/// does NOT cancel outstanding tokens — cancellation is always explicit or
/// deadline-driven, so a caller that abandons a stream without cancelling
/// simply lets it run to completion.
class CancellationSource {
 public:
  /// A live source with no deadline and no parent.
  CancellationSource()
      : state_(std::make_shared<internal::CancelState>()) {}

  /// Source whose tokens report `kDeadlineExceeded` once `clock` reaches
  /// `deadline_micros` (absolute).
  static CancellationSource WithDeadline(Clock* clock, int64_t deadline_micros);

  /// Source cancelled transitively whenever `parent` is (and additionally
  /// cancellable on its own). A null parent token degrades to a plain source.
  static CancellationSource LinkedTo(const CancellationToken& parent);

  /// Linked source with its own deadline on top.
  static CancellationSource LinkedWithDeadline(const CancellationToken& parent,
                                               Clock* clock,
                                               int64_t deadline_micros);

  /// Requests cancellation. Returns true on the first call, false if the
  /// state was already cancelled (the recorded reason is never overwritten).
  bool Cancel(const std::string& reason = "cancelled");

  bool cancelled() const { return token().IsCancelled(); }

  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<internal::CancelState> state_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_CANCELLATION_H_
