#include "common/strings.h"

#include <cctype>

namespace lakeguard {

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool MatchesWildcard(std::string_view pattern, std::string_view name) {
  // Supported forms: exact match, "prefix*", "*suffix", and "prefix*suffix".
  size_t star = pattern.find('*');
  if (star == std::string_view::npos) return pattern == name;
  std::string_view prefix = pattern.substr(0, star);
  std::string_view suffix = pattern.substr(star + 1);
  if (name.size() < prefix.size() + suffix.size()) return false;
  return StartsWith(name, prefix) &&
         name.substr(name.size() - suffix.size()) == suffix;
}

}  // namespace lakeguard
