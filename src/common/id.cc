#include "common/id.h"

namespace lakeguard {

namespace {
std::atomic<uint64_t> g_next{1};
}  // namespace

std::string IdGenerator::Next(const std::string& prefix) {
  return prefix + "-" + std::to_string(NextInt());
}

uint64_t IdGenerator::NextInt() { return g_next.fetch_add(1); }

}  // namespace lakeguard
