#ifndef LAKEGUARD_COMMON_CRC32_H_
#define LAKEGUARD_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace lakeguard {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame checksum
/// of the durable WAL/checkpoint formats. Software table implementation; the
/// durability layer's frames are small (one catalog image or audit event), so
/// a hardware CRC is not worth a dependency.
///
/// `Extend` continues a running checksum so a frame's checksum can cover
/// discontiguous header fields and payload without copying them into one
/// buffer. Start from `kInitial`, finish with `Finish` (the usual final
/// inversion).
class Crc32 {
 public:
  static constexpr uint32_t kInitial = 0xFFFFFFFFu;

  static uint32_t Extend(uint32_t crc, const void* data, size_t n);
  static uint32_t Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

  /// One-shot checksum of a buffer.
  static uint32_t Of(const void* data, size_t n) {
    return Finish(Extend(kInitial, data, n));
  }
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_CRC32_H_
