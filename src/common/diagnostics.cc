#include "common/diagnostics.h"

namespace lakeguard {

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = DiagSeverityName(severity);
  out += " ";
  out += code;
  if (!plan_path.empty()) {
    out += " at ";
    out += plan_path;
  }
  out += ": ";
  out += message;
  return out;
}

void Diagnostics::AddError(std::string code, std::string plan_path,
                           std::string message) {
  items_.push_back(Diagnostic{std::move(code), DiagSeverity::kError,
                              std::move(plan_path), std::move(message)});
}

void Diagnostics::AddWarning(std::string code, std::string plan_path,
                             std::string message) {
  items_.push_back(Diagnostic{std::move(code), DiagSeverity::kWarning,
                              std::move(plan_path), std::move(message)});
}

size_t Diagnostics::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : items_) {
    if (d.severity == DiagSeverity::kError) ++n;
  }
  return n;
}

bool Diagnostics::HasCode(const std::string& code) const {
  for (const Diagnostic& d : items_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Diagnostics::ToString() const {
  std::string out;
  for (const Diagnostic& d : items_) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

Status Diagnostics::ToStatus(const std::string& context) const {
  if (!HasErrors()) return Status::OK();
  return Status::FailedPrecondition(context + ": " + ToString());
}

void Diagnostics::Merge(const Diagnostics& other) {
  items_.insert(items_.end(), other.items_.begin(), other.items_.end());
}

}  // namespace lakeguard
