#include "common/crc32.h"

#include <array>

namespace lakeguard {

namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32::Extend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace lakeguard
