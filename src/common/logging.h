#ifndef LAKEGUARD_COMMON_LOGGING_H_
#define LAKEGUARD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace lakeguard {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger. Messages below the global threshold are dropped;
/// the threshold defaults to kWarn so tests and benchmarks stay quiet.
class Logger {
 public:
  static void SetLevel(LogLevel level);
  static LogLevel GetLevel();
  static void Log(LogLevel level, const std::string& message);
};

/// Stream-style log statement: `LG_LOG(kInfo) << "session " << id;`
#define LG_LOG(level_suffix)                                        \
  for (bool _lg_once =                                              \
           ::lakeguard::Logger::GetLevel() <=                       \
           ::lakeguard::LogLevel::level_suffix;                     \
       _lg_once; _lg_once = false)                                  \
  ::lakeguard::internal_logging::LogMessage(                        \
      ::lakeguard::LogLevel::level_suffix)                          \
      .stream()

namespace internal_logging {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_LOGGING_H_
