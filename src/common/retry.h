#ifndef LAKEGUARD_COMMON_RETRY_H_
#define LAKEGUARD_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/status.h"

namespace lakeguard {

/// True for error codes a caller may reasonably retry: the failure is a
/// property of the *attempt* (dropped stream, contended resource, corrupted
/// frame in transit), not of the request. Permission, auth, not-found and
/// invalid-argument failures are deterministic and must never be retried —
/// retrying a `kPermissionDenied` would hammer the governance layer with
/// requests it already answered.
inline bool IsTransientError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kAborted:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDataLoss:
    // A draining replica or an open circuit breaker answers kUnavailable:
    // the request is fine, this server (right now) is not — retry elsewhere
    // or later. Cancellation/deadline are *caller* decisions and are never
    // retried.
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

/// Deterministic exponential backoff schedule with optional jitter. Delays
/// are *charged to a `Clock`* by the retry helpers, so under
/// `SimulatedClock` a whole retry storm runs in zero wall time while still
/// exercising deadline math. Jitter is drawn from a seeded xorshift stream,
/// making schedules reproducible run-to-run.
class Backoff {
 public:
  struct Options {
    int64_t initial_micros = 50'000;   ///< first delay
    double multiplier = 2.0;           ///< growth factor per retry
    int64_t max_micros = 2'000'000;    ///< delay cap
    /// Fraction of the delay randomized away: delay *= (1 - jitter * u),
    /// u uniform in [0, 1). 0 disables jitter.
    double jitter = 0.0;
    uint64_t seed = 0x5eedULL;         ///< jitter stream seed
  };

  Backoff() : Backoff(Options()) {}
  explicit Backoff(Options options);

  /// Delay before the next retry; advances the schedule.
  int64_t NextDelayMicros();

  /// Restarts the schedule (and the jitter stream).
  void Reset();

  int attempts() const { return attempts_; }

 private:
  Options options_;
  int attempts_ = 0;
  double current_micros_ = 0;
  uint64_t rng_state_ = 0;
};

/// Bounds a retried operation: at most `max_attempts` tries, backing off
/// between them, giving up early when the accumulated clock time would
/// exceed `deadline_micros`.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  int max_attempts = 3;
  Backoff::Options backoff;
  /// Overall budget measured on the clock from the first attempt;
  /// 0 = unbounded.
  int64_t deadline_micros = 0;

  static RetryPolicy NoRetry() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }
};

/// Counters a retry loop reports back to its owner's stats block.
struct RetryStats {
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t deadline_hits = 0;
  uint64_t backoff_micros = 0;
};

/// Appends a retry-count annotation to a terminal failure so operators can
/// see "gave up after N retries" instead of just the last error.
Status AnnotateRetries(const Status& status, int retries);

/// Runs `fn` under `policy`. Retries only `IsTransientError` failures,
/// charging each backoff delay to `clock` (nullptr = no delay charging and
/// no deadline enforcement). On success returns the value; on exhaustion
/// returns the last error annotated with the retry count; on deadline
/// overrun returns `kDeadlineExceeded` wrapping the last error. `stats`,
/// when non-null, is incremented (not reset) so call sites can aggregate.
template <typename T>
Result<T> RetryCall(const RetryPolicy& policy, Clock* clock,
                    const std::function<Result<T>()>& fn,
                    RetryStats* stats = nullptr) {
  Backoff backoff(policy.backoff);
  const int64_t start_micros = clock != nullptr ? clock->NowMicros() : 0;
  Status last = Status::Internal("retry loop made no attempts");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (stats != nullptr) ++stats->attempts;
    Result<T> result = fn();
    if (result.ok()) return result;
    last = result.status();
    if (!IsTransientError(last) || attempt + 1 >= policy.max_attempts) break;
    int64_t delay = backoff.NextDelayMicros();
    if (clock != nullptr && policy.deadline_micros > 0 &&
        (clock->NowMicros() - start_micros) + delay > policy.deadline_micros) {
      if (stats != nullptr) ++stats->deadline_hits;
      return Status::DeadlineExceeded(
          "retry budget of " + std::to_string(policy.deadline_micros) +
          "us exhausted after " + std::to_string(attempt + 1) +
          " attempts; last error: " + last.ToString());
    }
    if (clock != nullptr) clock->AdvanceMicros(delay);
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_micros += static_cast<uint64_t>(delay);
    }
  }
  return AnnotateRetries(last, backoff.attempts());
}

/// `Status` counterpart of `RetryCall` for operations without a value.
Status RetryStatusCall(const RetryPolicy& policy, Clock* clock,
                       const std::function<Status()>& fn,
                       RetryStats* stats = nullptr);

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_RETRY_H_
