#include "common/cancellation.h"

namespace lakeguard {

namespace {

Status CheckState(const internal::CancelState* state) {
  if (state == nullptr) return Status::OK();
  if (state->cancelled.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(state->mu);
    return Status::Cancelled(state->reason);
  }
  if (state->clock != nullptr &&
      state->clock->NowMicros() >= state->deadline_micros) {
    return Status::DeadlineExceeded(
        "operation deadline passed at " +
        std::to_string(state->deadline_micros) + "us");
  }
  return CheckState(state->parent.get());
}

}  // namespace

Status CancellationToken::Check() const { return CheckState(state_.get()); }

CancellationSource CancellationSource::WithDeadline(Clock* clock,
                                                    int64_t deadline_micros) {
  CancellationSource source;
  source.state_->clock = clock;
  source.state_->deadline_micros = deadline_micros;
  return source;
}

CancellationSource CancellationSource::LinkedTo(
    const CancellationToken& parent) {
  CancellationSource source;
  source.state_->parent = parent.state_;
  return source;
}

CancellationSource CancellationSource::LinkedWithDeadline(
    const CancellationToken& parent, Clock* clock, int64_t deadline_micros) {
  CancellationSource source = LinkedTo(parent);
  source.state_->clock = clock;
  source.state_->deadline_micros = deadline_micros;
  return source;
}

bool CancellationSource::Cancel(const std::string& reason) {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (state_->cancelled.load(std::memory_order_relaxed)) return false;
  state_->reason = reason;
  state_->cancelled.store(true, std::memory_order_release);
  return true;
}

}  // namespace lakeguard
