#include "common/status.h"

namespace lakeguard {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kPermissionDenied:
      return "permission_denied";
    case StatusCode::kUnauthenticated:
      return "unauthenticated";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline_exceeded";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kDataLoss:
      return "data_loss";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

StatusCode StatusCodeFromString(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kUnavailable); ++i) {
    StatusCode code = static_cast<StatusCode>(i);
    if (name == StatusCodeToString(code)) return code;
  }
  // Unknown names (e.g. from a newer peer) degrade to kInternal, which the
  // retry layer treats as permanent — the safe direction for unknowns.
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::WithContext(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace lakeguard
