#ifndef LAKEGUARD_COMMON_MEMORY_BUDGET_H_
#define LAKEGUARD_COMMON_MEMORY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace lakeguard {

/// One node in the hierarchical byte budget (service → session → operation).
/// A reservation charges this node and every ancestor atomically-per-node:
/// TryReserve either charges the whole chain or nothing. A refusal anywhere
/// in the chain surfaces as a typed kResourceExhausted, which IsTransientError
/// treats as retryable — callers can shrink, spill, or back off and retry.
///
/// Limits are soft caps on *tracked* allocations: operators charge their
/// resident working set (input runs, build tables, cached chunk frames), not
/// every transient vector. A limit of 0 means unlimited (accounting only).
class MemoryBudget {
 public:
  MemoryBudget(std::string name, uint64_t limit_bytes,
               std::shared_ptr<MemoryBudget> parent = nullptr)
      : name_(std::move(name)), limit_(limit_bytes),
        parent_(std::move(parent)) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// A destroyed budget returns whatever it still holds to its ancestors, so
  /// an operation torn down mid-query cannot leak charge into its session.
  ~MemoryBudget() {
    uint64_t residual = used_.exchange(0, std::memory_order_relaxed);
    if (parent_ && residual > 0) parent_->Release(residual);
  }

  /// Charges `bytes` against this node and all ancestors, or nothing at all.
  /// Refusal is typed kResourceExhausted naming the exhausted node.
  Status TryReserve(uint64_t bytes);

  /// Unconditional charge, allowed to exceed the limit. Used for the one
  /// in-flight batch an operator must hold to make progress ("+1 batch
  /// slack") — overshoot is visible in peak_bytes, never refused.
  void ForceReserve(uint64_t bytes);

  /// Returns `bytes` to this node and all ancestors. Releases are clamped at
  /// zero per node so an accounting bug degrades to lost tracking, not
  /// underflow wrap.
  void Release(uint64_t bytes);

  uint64_t used_bytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  uint64_t limit_bytes() const { return limit_; }
  uint64_t refusals() const {
    return refusals_.load(std::memory_order_relaxed);
  }
  /// used/limit, or 0.0 when unlimited — drives the degradation ladder.
  double UsageFraction() const {
    if (limit_ == 0) return 0.0;
    return static_cast<double>(used_bytes()) / static_cast<double>(limit_);
  }
  const std::string& name() const { return name_; }
  const std::shared_ptr<MemoryBudget>& parent() const { return parent_; }

 private:
  void ChargeSelf(uint64_t bytes);

  std::string name_;
  uint64_t limit_;
  std::shared_ptr<MemoryBudget> parent_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> refusals_{0};
};

/// RAII handle over a running total of reserved bytes. Movable; releases the
/// outstanding total on destruction. Operators grow it per input batch and
/// shrink it when they spill a run or emit their output.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(std::shared_ptr<MemoryBudget> budget)
      : budget_(std::move(budget)) {}

  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(std::move(other.budget_)), bytes_(other.bytes_) {
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      budget_ = std::move(other.budget_);
      bytes_ = other.bytes_;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  ~MemoryReservation() { ReleaseAll(); }

  Status Grow(uint64_t bytes) {
    if (budget_) LG_RETURN_IF_ERROR(budget_->TryReserve(bytes));
    bytes_ += bytes;
    return Status::OK();
  }
  void GrowForced(uint64_t bytes) {
    if (budget_) budget_->ForceReserve(bytes);
    bytes_ += bytes;
  }
  void Shrink(uint64_t bytes) {
    if (bytes > bytes_) bytes = bytes_;
    if (budget_) budget_->Release(bytes);
    bytes_ -= bytes;
  }
  void ReleaseAll() { Shrink(bytes_); }

  uint64_t bytes() const { return bytes_; }
  const std::shared_ptr<MemoryBudget>& budget() const { return budget_; }

 private:
  std::shared_ptr<MemoryBudget> budget_;
  uint64_t bytes_ = 0;
};

/// Per-tier limits for the governor. 0 at any tier means unlimited there.
struct MemoryGovernorConfig {
  uint64_t service_limit_bytes = 0;
  uint64_t session_limit_bytes = 0;
  uint64_t operation_limit_bytes = 0;
};

/// Owns the service-level budget root and vends session / operation children.
/// Session budgets are created on first use and dropped via ReleaseSession;
/// operation budgets are plain shared_ptrs whose destructors return any
/// residual charge up the chain, so teardown order is never a leak.
class MemoryGovernor {
 public:
  explicit MemoryGovernor(MemoryGovernorConfig config = {})
      : config_(config),
        service_(std::make_shared<MemoryBudget>(
            "service", config.service_limit_bytes)) {}

  const std::shared_ptr<MemoryBudget>& service_budget() const {
    return service_;
  }
  const MemoryGovernorConfig& config() const { return config_; }

  /// Get-or-create the session's budget node.
  std::shared_ptr<MemoryBudget> SessionBudget(const std::string& session_id);

  /// A fresh operation-level child of the session's budget.
  std::shared_ptr<MemoryBudget> CreateOperationBudget(
      const std::string& session_id, const std::string& operation_id);

  /// Forgets the session node. Outstanding operation budgets keep the node
  /// alive through their parent pointer and still release correctly.
  void ReleaseSession(const std::string& session_id);

  size_t TrackedSessionCount() const;

 private:
  MemoryGovernorConfig config_;
  std::shared_ptr<MemoryBudget> service_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<MemoryBudget>> sessions_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_MEMORY_BUDGET_H_
