#ifndef LAKEGUARD_COMMON_FAULT_H_
#define LAKEGUARD_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace lakeguard {

/// Per-fault-point counters, readable while the point is armed or after it
/// has been disarmed (counters survive disarming until `Reset`).
struct FaultPointStats {
  uint64_t evaluations = 0;       ///< times the point was reached while armed
  uint64_t faults_injected = 0;   ///< times the point actually fired
  uint64_t latency_micros = 0;    ///< total injected latency charged to clocks
};

/// Process-wide, seeded, deterministic fault injector.
///
/// Components advertise *named fault points* at their failure seams —
/// `fault::Inject("dispatcher.provision")` — and return the resulting
/// `Status` through their normal error path. In production nothing is armed
/// and the call is a single relaxed atomic load. Tests arm points with a
/// `ScopedFault` guard and a `FaultPolicy`:
///
///   * fail-N-times            — the next `fail_count` evaluations fail;
///   * fail-with-probability   — each evaluation fails with `fail_probability`
///                               drawn from a PRNG stream seeded from the
///                               process seed and the point name (so the
///                               sequence is independent of arming order and
///                               reproducible across runs with the same seed);
///   * add-latency-micros      — every evaluation charges `latency_micros`
///                               to the call-site clock (or the injector's
///                               default clock), modeling slow dependencies.
///
/// Determinism contract: with the same seed, the same arming sequence and
/// the same order of `Inject` calls, the injector fires the exact same fault
/// sequence. All state is guarded by one mutex; the unarmed fast path takes
/// no lock.
struct FaultPolicy {
  /// Fail the next `fail_count` evaluations with `code`. 0 = no count-based
  /// failures.
  uint64_t fail_count = 0;
  /// Probability in [0, 1] that an evaluation fails (after `fail_count` is
  /// exhausted). Drawn deterministically from the seeded per-point stream.
  double fail_probability = 0.0;
  /// Status code injected failures carry. Defaults to `kAborted`, which the
  /// retry layer classifies as transient.
  StatusCode code = StatusCode::kAborted;
  /// Message of injected failures (the point name is appended).
  std::string message = "injected fault";
  /// Latency charged to the clock on *every* evaluation while armed.
  int64_t latency_micros = 0;

  static FaultPolicy FailTimes(uint64_t n,
                               StatusCode c = StatusCode::kAborted) {
    FaultPolicy p;
    p.fail_count = n;
    p.code = c;
    return p;
  }
  static FaultPolicy FailWithProbability(double prob,
                                         StatusCode c = StatusCode::kAborted) {
    FaultPolicy p;
    p.fail_probability = prob;
    p.code = c;
    return p;
  }
  static FaultPolicy AddLatencyMicros(int64_t micros) {
    FaultPolicy p;
    p.latency_micros = micros;
    return p;
  }
};

/// How a simulated process death mangles the bytes in flight at a crash
/// point. The durability code applies the effect itself (it owns the file
/// descriptor), then aborts the operation with `fault::Death`.
enum class CrashMode : uint8_t {
  /// Die before any byte of the write reaches the file.
  kBeforeWrite = 0,
  /// Die mid-write: a prefix of the bytes lands on disk (torn tail).
  kTornWrite = 1,
  /// The write lands completely but one bit is flipped (media/firmware
  /// corruption surfacing at the worst moment).
  kBitFlip = 2,
  /// The write (and any rename/fsync it belongs to) completes, then the
  /// process dies before acknowledging — durable but unacked.
  kAfterWrite = 3,
};

/// Arms one crash point for the deterministic crash–restart harness.
struct CrashPolicy {
  CrashMode mode = CrashMode::kBeforeWrite;
  /// The crash fires on the (skip_evaluations + 1)-th evaluation; earlier
  /// evaluations pass through. Lets a scenario kill the N-th WAL append.
  uint64_t skip_evaluations = 0;
  /// kTornWrite: fraction of the payload that lands before death, in [0, 1).
  double torn_fraction = 0.5;
  /// kBitFlip: which bit of the payload is flipped (index % payload bits).
  uint64_t flip_bit = 7;
};

class FaultInjector {
 public:
  /// The process-wide instance (never destroyed; trivially leaked by design,
  /// like `RealClock::Instance`).
  static FaultInjector& Instance();

  /// Reseeds every per-point PRNG stream and clears counters. Armed
  /// policies stay armed. Tests call this first for reproducible runs.
  void Reseed(uint64_t seed);

  /// Clock charged with injected latency when the call site passes none.
  void SetDefaultClock(Clock* clock);

  /// Arms `point` with `policy` (replacing any existing policy).
  void Arm(const std::string& point, FaultPolicy policy);

  /// Disarms `point`. Counters are kept until `Reset`.
  void Disarm(const std::string& point);

  /// Disarms everything and clears all counters and PRNG streams.
  void Reset();

  /// Evaluates the fault point: OK when unarmed (or when the armed policy
  /// decides not to fire this time). Injected latency is charged to `clock`
  /// if non-null, else to the default clock, else dropped.
  Status Inject(const std::string& point, Clock* clock = nullptr);

  /// True when at least one point is armed — lets hot paths skip building
  /// point-name strings.
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // -- Crash simulation (durability harness) ---------------------------------
  /// Arms `point` as a crash point. Independent of `Arm`: a point can carry
  /// both a FaultPolicy and a CrashPolicy (they answer different questions —
  /// "does this call fail?" vs "does the process die mid-write here?").
  void ArmCrash(const std::string& point, CrashPolicy policy);
  void DisarmCrash(const std::string& point);

  /// Evaluates a crash point: nullopt when unarmed or still skipping;
  /// otherwise the policy to apply. Once it fires it KEEPS firing for every
  /// later evaluation while armed — a dead process stays dead, so zombie
  /// threads (e.g. a background flusher) cannot keep writing to "disk".
  std::optional<CrashPolicy> EvaluateCrash(const std::string& point);

  bool AnyCrashArmed() const {
    return crash_armed_count_.load(std::memory_order_relaxed) > 0;
  }

  FaultPointStats StatsFor(const std::string& point) const;
  uint64_t TotalInjected() const;

 private:
  struct PointState {
    FaultPolicy policy;
    bool armed = false;
    uint64_t rng_state = 0;
    FaultPointStats stats;
    // Crash-point state (see ArmCrash).
    CrashPolicy crash_policy;
    bool crash_armed = false;
    bool crash_fired = false;
    uint64_t crash_evaluations = 0;
  };

  FaultInjector() = default;
  uint64_t StreamSeed(const std::string& point) const;

  mutable std::mutex mu_;
  std::atomic<int> armed_count_{0};
  std::atomic<int> crash_armed_count_{0};
  uint64_t seed_ = 0x9e3779b97f4a7c15ULL;
  Clock* default_clock_ = nullptr;
  std::map<std::string, PointState> points_;
};

/// RAII guard arming one fault point on the process-wide injector for the
/// enclosing scope. Destruction disarms the point, so a failing test cannot
/// leak faults into later tests.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultPolicy policy)
      : point_(std::move(point)) {
    FaultInjector::Instance().Arm(point_, std::move(policy));
  }
  ~ScopedFault() { FaultInjector::Instance().Disarm(point_); }

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  /// Faults fired at this point so far (including before this guard).
  uint64_t injected() const {
    return FaultInjector::Instance().StatsFor(point_).faults_injected;
  }
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// RAII guard arming one crash point for the enclosing scope (the crash
/// analogue of ScopedFault).
class ScopedCrash {
 public:
  ScopedCrash(std::string point, CrashPolicy policy)
      : point_(std::move(point)) {
    FaultInjector::Instance().ArmCrash(point_, policy);
  }
  ~ScopedCrash() { FaultInjector::Instance().DisarmCrash(point_); }

  ScopedCrash(const ScopedCrash&) = delete;
  ScopedCrash& operator=(const ScopedCrash&) = delete;

  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

namespace fault {

/// Shorthand for `FaultInjector::Instance().Inject(point, clock)`. The
/// unarmed fast path is one relaxed atomic load — cheap enough for RPC and
/// storage hot seams.
inline Status Inject(const char* point, Clock* clock = nullptr) {
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.AnyArmed()) return Status::OK();
  return injector.Inject(point, clock);
}

/// Evaluates a crash point (see FaultInjector::EvaluateCrash). The unarmed
/// fast path is one relaxed atomic load.
inline std::optional<CrashPolicy> CheckCrash(const char* point) {
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.AnyCrashArmed()) return std::nullopt;
  return injector.EvaluateCrash(point);
}

/// The status a durable-layer operation returns after applying a crash
/// effect: the simulated process is dead from this point on. kAborted so
/// nothing upstream misreads it as corruption — the *recovery* path is what
/// turns actually-corrupt state into kDataLoss.
Status Death(const std::string& point);

/// True iff `status` is a simulated process death from a crash point.
bool IsDeath(const Status& status);

}  // namespace fault

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_FAULT_H_
