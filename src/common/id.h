#ifndef LAKEGUARD_COMMON_ID_H_
#define LAKEGUARD_COMMON_ID_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace lakeguard {

/// Process-wide monotonically increasing id generator. Ids are prefixed by
/// kind ("sess-42", "sbx-7", "tok-19") so logs and audit entries are
/// self-describing. Deterministic within a process, which keeps tests stable.
class IdGenerator {
 public:
  /// Returns "<prefix>-<n>" with a process-unique n.
  static std::string Next(const std::string& prefix);

  /// Returns a bare increasing integer id.
  static uint64_t NextInt();
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_ID_H_
