#ifndef LAKEGUARD_COMMON_SHA256_H_
#define LAKEGUARD_COMMON_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace lakeguard {

/// Incremental SHA-256 (FIPS 180-4). Used by the Hash-UDF workload of the
/// paper's Table 2 (100×SHA256 per row), by column-masking helpers, and by
/// the IPC checksum path.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the 32-byte digest. The object must be Reset()
  /// before reuse.
  std::array<uint8_t, 32> Finish();

  /// One-shot digest.
  static std::array<uint8_t, 32> Digest(std::string_view data);

  /// One-shot digest rendered as lowercase hex.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Stable 64-bit FNV-1a hash; used for checksums and hash partitioning where
/// cryptographic strength is unnecessary.
uint64_t Fnv1a64(const void* data, size_t len);
inline uint64_t Fnv1a64(std::string_view s) {
  return Fnv1a64(s.data(), s.size());
}

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_SHA256_H_
