#ifndef LAKEGUARD_COMMON_DIAGNOSTICS_H_
#define LAKEGUARD_COMMON_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace lakeguard {

/// Severity of one diagnostic. Errors make a plan unexecutable; warnings are
/// advisory (reported but never block admission).
enum class DiagSeverity : uint8_t {
  kWarning = 0,
  kError = 1,
};

const char* DiagSeverityName(DiagSeverity severity);

/// One finding of a static analysis pass, in the spirit of an MLIR/LLVM IR
/// verifier diagnostic: a stable error code (grep-able, asserted by the
/// mutation suite), a severity, the *plan path* of the offending node (a
/// slash-separated chain of node descriptions from the root, so the finding
/// is locatable in a printed tree), and a human message.
struct Diagnostic {
  std::string code;       // e.g. "PV001"
  DiagSeverity severity = DiagSeverity::kError;
  std::string plan_path;  // e.g. "Limit/SecureView(main.s.t)/Filter"
  std::string message;

  /// "error PV001 at Limit/SecureView(main.s.t)/Filter: ..." rendering.
  std::string ToString() const;
};

/// Ordered collection of diagnostics produced by one verifier run, plus the
/// conversion to the typed `Status` the query path surfaces. Deterministic:
/// findings appear in plan-walk order, so the same broken plan always
/// produces the same payload.
class Diagnostics {
 public:
  void AddError(std::string code, std::string plan_path, std::string message);
  void AddWarning(std::string code, std::string plan_path,
                  std::string message);

  bool empty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  const std::vector<Diagnostic>& items() const { return items_; }

  size_t error_count() const;
  bool HasErrors() const { return error_count() > 0; }

  /// True if any diagnostic carries `code`.
  bool HasCode(const std::string& code) const;

  /// Multi-line payload: one `Diagnostic::ToString()` line per finding.
  std::string ToString() const;

  /// OK when no *errors* are present; otherwise a non-retryable
  /// `kFailedPrecondition` whose message is "`context`: " followed by the
  /// full diagnostic payload — the typed failure ExecutePlan admission
  /// surfaces to Connect clients.
  Status ToStatus(const std::string& context) const;

  /// Appends all findings of `other`.
  void Merge(const Diagnostics& other);

 private:
  std::vector<Diagnostic> items_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_COMMON_DIAGNOSTICS_H_
