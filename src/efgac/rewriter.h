#ifndef LAKEGUARD_EFGAC_REWRITER_H_
#define LAKEGUARD_EFGAC_REWRITER_H_

#include "efgac/serverless_backend.h"
#include "engine/engine.h"

namespace lakeguard {

/// Statistics on what the rewriter pushed into remote scans.
struct EfgacRewriteStats {
  uint64_t relations_externalized = 0;
  uint64_t filters_pushed = 0;
  uint64_t projects_pushed = 0;
  uint64_t limits_pushed = 0;
  uint64_t aggregates_pushed = 0;
};

/// The eFGAC query rewrite of §3.4, installed as the pre-analysis hook of a
/// Dedicated cluster's engine. Operating on the *unresolved* plan:
///
///  1. every relation Unity Catalog reports as externally-enforced is
///     replaced by a RemoteScan leaf capturing the relation reference;
///  2. refinement pushdown: Filters, Projects, Limits and whole Aggregates
///     sitting directly on a RemoteScan move into the captured sub-plan
///     (never user code — UDF-bearing expressions stay local);
///  3. each final sub-plan is submitted to the serverless endpoint's
///     AnalyzePlan to type the RemoteScan.
///
/// The rewritten tree never contains policy expressions: the origin cluster
/// learned only that the relations "cannot be processed locally".
class EfgacRewriter : public PreAnalysisRewriter {
 public:
  EfgacRewriter(UnityCatalog* catalog, ServerlessBackend* backend,
                const ExtensionRegistry* extensions = nullptr)
      : catalog_(catalog), backend_(backend), extensions_(extensions) {}

  Result<PlanPtr> Rewrite(const PlanPtr& plan,
                          const ExecutionContext& context) override;

  const EfgacRewriteStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EfgacRewriteStats(); }

 private:
  Result<PlanPtr> RewriteNode(const PlanPtr& plan,
                              const ExecutionContext& context);
  /// Re-analyzes `remote_plan` remotely and returns a typed RemoteScan.
  Result<PlanPtr> TypedRemoteScan(PlanPtr remote_plan,
                                  const ExecutionContext& context);

  UnityCatalog* catalog_;
  ServerlessBackend* backend_;
  const ExtensionRegistry* extensions_;
  EfgacRewriteStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_EFGAC_REWRITER_H_
