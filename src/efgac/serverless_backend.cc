#include "efgac/serverless_backend.h"

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"

namespace lakeguard {

ExecutionContext ServerlessBackend::MakeContext(
    const std::string& user) const {
  ExecutionContext context;
  context.user = user;
  context.session_id = IdGenerator::Next("efgac-sess");
  context.compute.compute_id = "serverless-efgac";
  context.compute.can_isolate_user_code = true;
  context.compute.privileged_access = false;
  return context;
}

Result<Schema> ServerlessBackend::AnalyzeRemote(const PlanPtr& plan,
                                                const std::string& user) {
  ++stats_.analyze_calls;
  // The analyze RPC crosses the same service boundary as execution.
  LG_RETURN_IF_ERROR(fault::Inject("efgac.analyze", clock_));
  LG_ASSIGN_OR_RETURN(AnalysisResult analysis,
                      engine_->AnalyzePlan(plan, MakeContext(user)));
  return analysis.output_schema;
}

namespace {

/// Storage IO gets a small per-call retry budget of its own — object
/// stores fail per-request.
RetryPolicy SpillIoPolicy() {
  RetryPolicy io_retry;
  io_retry.max_attempts = 3;
  io_retry.backoff.initial_micros = 20'000;
  return io_retry;
}

}  // namespace

/// Consume phase of a spilled remote result: reads one part object per
/// pull, deletes it once consumed (spill objects are ephemeral and managed
/// by the trusted control plane). If the consumer stops early — LIMIT on
/// the origin side — the destructor removes the unread remainder.
class SpillPartIterator : public BatchIterator {
 public:
  SpillPartIterator(ServerlessBackend* backend, Schema schema,
                    std::vector<std::string> paths, CancellationToken cancel)
      : backend_(backend), schema_(std::move(schema)),
        paths_(std::move(paths)), cancel_(std::move(cancel)) {}

  ~SpillPartIterator() override {
    for (; index_ < paths_.size(); ++index_) {
      // Best-effort cleanup; an unreachable store leaves the ephemeral
      // object for the control plane's garbage sweep.
      if (backend_->store_
              ->Delete(backend_->catalog_->system_token(), paths_[index_])
              .ok()) {
        ++backend_->stats_.spill_parts_deleted;
      }
    }
  }

  const Schema& schema() const override { return schema_; }

  Result<std::optional<RecordBatch>> Next() override {
    // Cancelled consumers stop here; the destructor sweeps the unread parts.
    LG_RETURN_IF_ERROR(cancel_.Check());
    if (index_ >= paths_.size()) return std::optional<RecordBatch>();
    const std::string& token = backend_->catalog_->system_token();
    const std::string& path = paths_[index_];
    RetryStats io_stats;
    LG_ASSIGN_OR_RETURN(
        std::vector<uint8_t> frame,
        RetryCall<std::vector<uint8_t>>(
            SpillIoPolicy(), backend_->clock_,
            [&] { return backend_->store_->Get(token, path); }, &io_stats));
    backend_->stats_.remote_retries += io_stats.retries;
    LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(frame));
    LG_RETURN_IF_ERROR(backend_->store_->Delete(token, path));
    ++backend_->stats_.spill_parts_deleted;
    ++index_;
    return std::optional<RecordBatch>(std::move(batch));
  }

 private:
  ServerlessBackend* backend_;
  Schema schema_;
  std::vector<std::string> paths_;
  CancellationToken cancel_;
  size_t index_ = 0;
};

Result<ServerlessBackend::ProducedResult> ServerlessBackend::ProduceOnce(
    const PlanPtr& plan, const std::string& user,
    const CancellationToken& cancel) {
  // Remote-scan seam: the serverless endpoint is a separate service the
  // origin cluster reaches over the network (§3.4).
  LG_RETURN_IF_ERROR(cancel.Check());
  LG_RETURN_IF_ERROR(fault::Inject("efgac.execute", clock_));
  ExecutionContext context = MakeContext(user);
  // The serverless pipeline inherits the origin query's cancellation: an
  // abort on the origin side stops the remote execution within one batch.
  context.cancel = cancel;
  LG_ASSIGN_OR_RETURN(QueryResultStreamPtr stream,
                      engine_->ExecutePlanStreaming(plan, context));

  ProducedResult out;
  out.schema = stream->schema();
  Table buffer(out.schema);
  size_t buffered_bytes = 0;
  bool spilling = false;
  const std::string& token = catalog_->system_token();
  std::string prefix;
  size_t index = 0;
  RetryStats io_stats;

  auto spill_batch = [&](const RecordBatch& batch) -> Status {
    std::vector<uint8_t> frame = ipc::SerializeBatch(batch);
    stats_.spilled_bytes += frame.size();
    std::string path = prefix + "part-" + std::to_string(index++);
    LG_RETURN_IF_ERROR(RetryStatusCall(
        SpillIoPolicy(), clock_,
        [&] { return store_->Put(token, path, frame); }, &io_stats));
    out.paths.push_back(std::move(path));
    return Status::OK();
  };

  // The inline result buffer is charged against the backend's budget; a
  // refusal flips to spill mode early, capping the produce-phase footprint
  // at whatever the governor granted instead of the byte threshold.
  MemoryReservation reservation(memory_budget_);
  auto produce = [&]() -> Status {
    while (true) {
      // Checked per pull on top of the pipeline's own check: bounds abort
      // latency to one batch even if the plan bypasses the executor.
      LG_RETURN_IF_ERROR(cancel.Check());
      LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, stream->Next());
      if (!batch.has_value()) break;
      if (batch->num_rows() == 0) continue;
      if (spilling) {
        LG_RETURN_IF_ERROR(spill_batch(*batch));
        continue;
      }
      bool budget_refused = false;
      if (memory_budget_ != nullptr &&
          !reservation.Grow(batch->ByteSize()).ok()) {
        budget_refused = true;
        ++stats_.budget_spills;
      }
      buffered_bytes += batch->ByteSize();
      LG_RETURN_IF_ERROR(buffer.AppendBatch(std::move(*batch)));
      if (buffered_bytes > spill_threshold_bytes_ || budget_refused) {
        // Crossed the inline threshold: persist intermediate data in cloud
        // storage (parallel on a real deployment) and have the origin side
        // read it back part by part. From here on each batch goes straight
        // to storage — the backend never holds the full result.
        spilling = true;
        ++stats_.spilled_results;
        prefix = "mem://efgac-spill/" + IdGenerator::Next("res") + "/";
        for (const RecordBatch& b : buffer.batches()) {
          LG_RETURN_IF_ERROR(spill_batch(b));
        }
        buffer = Table(out.schema);
        reservation.ReleaseAll();  // the buffer now lives in cloud storage
      }
    }
    return Status::OK();
  };
  Status produce_status = produce();
  stats_.remote_retries += io_stats.retries;
  if (!produce_status.ok()) {
    // A half-produced spill can never be consumed — sweep the parts written
    // so far instead of leaking them (cancel/deadline/fault mid-produce).
    for (const std::string& path : out.paths) {
      if (store_->Delete(token, path).ok()) ++stats_.spill_parts_deleted;
    }
    return produce_status;
  }
  if (spilling) {
    out.spilled = true;
  } else {
    ++stats_.inline_results;
    out.inline_table = std::move(buffer);
  }
  return out;
}

Result<BatchIteratorPtr> ServerlessBackend::ExecuteRemoteStream(
    const PlanPtr& plan, const std::string& user, CancellationToken cancel) {
  ++stats_.execute_calls;
  RetryStats retry_stats;
  // kCancelled / kDeadlineExceeded are not transient, so a cancelled
  // produce attempt is never retried — the typed status surfaces directly.
  Result<ProducedResult> produced = RetryCall<ProducedResult>(
      retry_policy_, clock_, [&] { return ProduceOnce(plan, user, cancel); },
      &retry_stats);
  stats_.remote_retries += retry_stats.retries;
  stats_.deadline_hits += retry_stats.deadline_hits;
  if (!produced.ok()) {
    ++stats_.remote_failures;
    return produced.status().WithContext("eFGAC remote execution");
  }
  if (!produced->spilled) {
    return MakeTableIterator(std::move(produced->inline_table));
  }
  return BatchIteratorPtr(std::make_unique<SpillPartIterator>(
      this, std::move(produced->schema), std::move(produced->paths),
      std::move(cancel)));
}

Result<Table> ServerlessBackend::ExecuteRemote(const PlanPtr& plan,
                                               const std::string& user,
                                               CancellationToken cancel) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr stream,
                      ExecuteRemoteStream(plan, user, std::move(cancel)));
  return DrainIterator(stream.get());
}

Result<Table> EfgacRemoteExecutor::ExecuteRemote(
    const RemoteScanNode& scan, const ExecutionContext& context) {
  if (!scan.remote_plan()) {
    return Status::InvalidArgument("RemoteScan has no captured sub-plan");
  }
  return backend_->ExecuteRemote(scan.remote_plan(), context.user,
                                 context.cancel);
}

Result<BatchIteratorPtr> EfgacRemoteExecutor::ExecuteRemoteStream(
    const RemoteScanNode& scan, const ExecutionContext& context) {
  if (!scan.remote_plan()) {
    return Status::InvalidArgument("RemoteScan has no captured sub-plan");
  }
  return backend_->ExecuteRemoteStream(scan.remote_plan(), context.user,
                                       context.cancel);
}

}  // namespace lakeguard
