#include "efgac/serverless_backend.h"

#include "columnar/ipc.h"
#include "common/id.h"

namespace lakeguard {

ExecutionContext ServerlessBackend::MakeContext(
    const std::string& user) const {
  ExecutionContext context;
  context.user = user;
  context.session_id = IdGenerator::Next("efgac-sess");
  context.compute.compute_id = "serverless-efgac";
  context.compute.can_isolate_user_code = true;
  context.compute.privileged_access = false;
  return context;
}

Result<Schema> ServerlessBackend::AnalyzeRemote(const PlanPtr& plan,
                                                const std::string& user) {
  ++stats_.analyze_calls;
  LG_ASSIGN_OR_RETURN(AnalysisResult analysis,
                      engine_->AnalyzePlan(plan, MakeContext(user)));
  return analysis.output_schema;
}

Result<Table> ServerlessBackend::ExecuteRemote(const PlanPtr& plan,
                                               const std::string& user) {
  ++stats_.execute_calls;
  LG_ASSIGN_OR_RETURN(Table result,
                      engine_->ExecutePlan(plan, MakeContext(user)));

  if (result.ByteSize() <= spill_threshold_bytes_) {
    ++stats_.inline_results;
    return result;
  }

  // Large result: persist intermediate data in cloud storage (parallel on a
  // real deployment) and re-read on the origin side. The spill objects are
  // managed by the trusted control plane.
  ++stats_.spilled_results;
  const std::string& token = catalog_->system_token();
  std::string prefix = "mem://efgac-spill/" + IdGenerator::Next("res") + "/";
  size_t index = 0;
  std::vector<std::string> paths;
  for (const RecordBatch& batch : result.batches()) {
    std::vector<uint8_t> frame = ipc::SerializeBatch(batch);
    stats_.spilled_bytes += frame.size();
    std::string path = prefix + "part-" + std::to_string(index++);
    LG_RETURN_IF_ERROR(store_->Put(token, path, std::move(frame)));
    paths.push_back(std::move(path));
  }

  Table reread(result.schema());
  for (const std::string& path : paths) {
    LG_ASSIGN_OR_RETURN(std::vector<uint8_t> frame, store_->Get(token, path));
    LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(frame));
    LG_RETURN_IF_ERROR(reread.AppendBatch(std::move(batch)));
  }
  // Spill objects are ephemeral; delete after the origin has consumed them.
  for (const std::string& path : paths) {
    LG_RETURN_IF_ERROR(store_->Delete(token, path));
  }
  return reread;
}

Result<Table> EfgacRemoteExecutor::ExecuteRemote(
    const RemoteScanNode& scan, const ExecutionContext& context) {
  if (!scan.remote_plan()) {
    return Status::InvalidArgument("RemoteScan has no captured sub-plan");
  }
  return backend_->ExecuteRemote(scan.remote_plan(), context.user);
}

}  // namespace lakeguard
