#include "efgac/serverless_backend.h"

#include "columnar/ipc.h"
#include "common/fault.h"
#include "common/id.h"

namespace lakeguard {

ExecutionContext ServerlessBackend::MakeContext(
    const std::string& user) const {
  ExecutionContext context;
  context.user = user;
  context.session_id = IdGenerator::Next("efgac-sess");
  context.compute.compute_id = "serverless-efgac";
  context.compute.can_isolate_user_code = true;
  context.compute.privileged_access = false;
  return context;
}

Result<Schema> ServerlessBackend::AnalyzeRemote(const PlanPtr& plan,
                                                const std::string& user) {
  ++stats_.analyze_calls;
  // The analyze RPC crosses the same service boundary as execution.
  LG_RETURN_IF_ERROR(fault::Inject("efgac.analyze", clock_));
  LG_ASSIGN_OR_RETURN(AnalysisResult analysis,
                      engine_->AnalyzePlan(plan, MakeContext(user)));
  return analysis.output_schema;
}

Result<Table> ServerlessBackend::ExecuteOnce(const PlanPtr& plan,
                                             const std::string& user) {
  // Remote-scan seam: the serverless endpoint is a separate service the
  // origin cluster reaches over the network (§3.4).
  LG_RETURN_IF_ERROR(fault::Inject("efgac.execute", clock_));
  LG_ASSIGN_OR_RETURN(Table result,
                      engine_->ExecutePlan(plan, MakeContext(user)));

  if (result.ByteSize() <= spill_threshold_bytes_) {
    ++stats_.inline_results;
    return result;
  }

  // Large result: persist intermediate data in cloud storage (parallel on a
  // real deployment) and re-read on the origin side. The spill objects are
  // managed by the trusted control plane. Storage IO gets a small per-call
  // retry budget of its own — object stores fail per-request.
  RetryPolicy io_retry;
  io_retry.max_attempts = 3;
  io_retry.backoff.initial_micros = 20'000;
  ++stats_.spilled_results;
  const std::string& token = catalog_->system_token();
  std::string prefix = "mem://efgac-spill/" + IdGenerator::Next("res") + "/";
  size_t index = 0;
  std::vector<std::string> paths;
  RetryStats io_stats;
  for (const RecordBatch& batch : result.batches()) {
    std::vector<uint8_t> frame = ipc::SerializeBatch(batch);
    stats_.spilled_bytes += frame.size();
    std::string path = prefix + "part-" + std::to_string(index++);
    LG_RETURN_IF_ERROR(RetryStatusCall(
        io_retry, clock_,
        [&] { return store_->Put(token, path, frame); }, &io_stats));
    paths.push_back(std::move(path));
  }

  Table reread(result.schema());
  for (const std::string& path : paths) {
    LG_ASSIGN_OR_RETURN(
        std::vector<uint8_t> frame,
        RetryCall<std::vector<uint8_t>>(
            io_retry, clock_, [&] { return store_->Get(token, path); },
            &io_stats));
    LG_ASSIGN_OR_RETURN(RecordBatch batch, ipc::DeserializeBatch(frame));
    LG_RETURN_IF_ERROR(reread.AppendBatch(std::move(batch)));
  }
  stats_.remote_retries += io_stats.retries;
  // Spill objects are ephemeral; delete after the origin has consumed them.
  for (const std::string& path : paths) {
    LG_RETURN_IF_ERROR(store_->Delete(token, path));
  }
  return reread;
}

Result<Table> ServerlessBackend::ExecuteRemote(const PlanPtr& plan,
                                               const std::string& user) {
  ++stats_.execute_calls;
  RetryStats retry_stats;
  Result<Table> result = RetryCall<Table>(
      retry_policy_, clock_, [&] { return ExecuteOnce(plan, user); },
      &retry_stats);
  stats_.remote_retries += retry_stats.retries;
  stats_.deadline_hits += retry_stats.deadline_hits;
  if (!result.ok()) {
    ++stats_.remote_failures;
    return result.status().WithContext("eFGAC remote execution");
  }
  return result;
}

Result<Table> EfgacRemoteExecutor::ExecuteRemote(
    const RemoteScanNode& scan, const ExecutionContext& context) {
  if (!scan.remote_plan()) {
    return Status::InvalidArgument("RemoteScan has no captured sub-plan");
  }
  return backend_->ExecuteRemote(scan.remote_plan(), context.user);
}

}  // namespace lakeguard
