#ifndef LAKEGUARD_EFGAC_SERVERLESS_BACKEND_H_
#define LAKEGUARD_EFGAC_SERVERLESS_BACKEND_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "engine/engine.h"

namespace lakeguard {

/// Counters distinguishing the two result-return modes of §3.4.
struct EfgacStats {
  uint64_t analyze_calls = 0;
  uint64_t execute_calls = 0;
  uint64_t inline_results = 0;
  uint64_t spilled_results = 0;
  uint64_t spilled_bytes = 0;
};

/// The Serverless Spark endpoint that executes eFGAC sub-queries (§3.4).
/// It is a Standard-architecture engine: the incoming plan is analyzed with
/// the *same user identity* but a trusted, isolating compute context — so
/// Unity Catalog releases the row filters / masks here, and they are
/// enforced before any byte returns to the privileged origin cluster.
class ServerlessBackend {
 public:
  /// `engine` must be wired with a Standard-cluster dispatcher; `store` is
  /// used for large-result spill.
  ServerlessBackend(QueryEngine* engine, ObjectStore* store,
                    UnityCatalog* catalog,
                    size_t spill_threshold_bytes = 256 * 1024)
      : engine_(engine),
        store_(store),
        catalog_(catalog),
        spill_threshold_bytes_(spill_threshold_bytes) {}

  /// Remote AnalyzePlan: types the sub-query for the origin cluster's
  /// RemoteScan node without releasing policy details.
  Result<Schema> AnalyzeRemote(const PlanPtr& plan, const std::string& user);

  /// Remote ExecutePlan. Results at most `spill_threshold_bytes` return
  /// inline; larger results are persisted to cloud storage as IPC frames
  /// and re-read by the origin side (both modes produce the same Table).
  Result<Table> ExecuteRemote(const PlanPtr& plan, const std::string& user);

  const EfgacStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EfgacStats(); }

 private:
  ExecutionContext MakeContext(const std::string& user) const;

  QueryEngine* engine_;
  ObjectStore* store_;
  UnityCatalog* catalog_;
  size_t spill_threshold_bytes_;
  EfgacStats stats_;
};

/// Engine-side RemoteScan operator implementation: forwards the captured
/// sub-plan to the serverless backend under the querying user's identity.
class EfgacRemoteExecutor : public RemoteQueryExecutor {
 public:
  explicit EfgacRemoteExecutor(ServerlessBackend* backend)
      : backend_(backend) {}

  Result<Table> ExecuteRemote(const RemoteScanNode& scan,
                              const ExecutionContext& context) override;

 private:
  ServerlessBackend* backend_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_EFGAC_SERVERLESS_BACKEND_H_
