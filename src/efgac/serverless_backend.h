#ifndef LAKEGUARD_EFGAC_SERVERLESS_BACKEND_H_
#define LAKEGUARD_EFGAC_SERVERLESS_BACKEND_H_

#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/memory_budget.h"
#include "common/retry.h"
#include "engine/engine.h"

namespace lakeguard {

/// Counters distinguishing the two result-return modes of §3.4, plus
/// resilience counters for the remote-scan seam (the origin cluster calls a
/// *different service* here, so transient failures and deadlines are part of
/// the contract, not exceptional).
struct EfgacStats {
  uint64_t analyze_calls = 0;
  uint64_t execute_calls = 0;
  uint64_t inline_results = 0;
  uint64_t spilled_results = 0;
  uint64_t spilled_bytes = 0;
  uint64_t remote_retries = 0;   ///< retried remote executions / spill IO
  uint64_t deadline_hits = 0;    ///< retry budgets that ran out of time
  uint64_t remote_failures = 0;  ///< remote calls that failed terminally
  uint64_t spill_parts_deleted = 0;  ///< spill objects removed (consumed
                                     ///< per-pull or swept on early teardown)
  uint64_t budget_spills = 0;  ///< spills forced by a memory-budget refusal
                               ///< (before the byte threshold was crossed)
};

/// The Serverless Spark endpoint that executes eFGAC sub-queries (§3.4).
/// It is a Standard-architecture engine: the incoming plan is analyzed with
/// the *same user identity* but a trusted, isolating compute context — so
/// Unity Catalog releases the row filters / masks here, and they are
/// enforced before any byte returns to the privileged origin cluster.
class ServerlessBackend {
 public:
  /// `engine` must be wired with a Standard-cluster dispatcher; `store` is
  /// used for large-result spill. `clock`, when provided, charges retry
  /// backoff and enforces the remote-call deadline; without one, retries
  /// are attempt-bounded only.
  ServerlessBackend(QueryEngine* engine, ObjectStore* store,
                    UnityCatalog* catalog,
                    size_t spill_threshold_bytes = 256 * 1024,
                    Clock* clock = nullptr)
      : engine_(engine),
        store_(store),
        catalog_(catalog),
        spill_threshold_bytes_(spill_threshold_bytes),
        clock_(clock) {
    // Remote sub-queries get a modest retry budget under an overall
    // deadline: the origin cluster must fail a query with a typed error
    // rather than hang when the serverless endpoint is down (§3.4).
    retry_policy_.max_attempts = 3;
    retry_policy_.backoff.initial_micros = 100'000;
    retry_policy_.backoff.multiplier = 4.0;
    retry_policy_.backoff.max_micros = 5'000'000;
    retry_policy_.deadline_micros = 30'000'000;
  }

  /// Remote AnalyzePlan: types the sub-query for the origin cluster's
  /// RemoteScan node without releasing policy details.
  Result<Schema> AnalyzeRemote(const PlanPtr& plan, const std::string& user);

  /// Remote ExecutePlan. Results at most `spill_threshold_bytes` return
  /// inline; larger results are persisted to cloud storage as IPC frames
  /// and re-read by the origin side (both modes produce the same Table).
  Result<Table> ExecuteRemote(const PlanPtr& plan, const std::string& user,
                              CancellationToken cancel = {});

  /// Batched remote execution. The produce phase (serverless execution and,
  /// for large results, the spill writes) runs eagerly under the remote
  /// retry policy — a retry never re-runs a half-consumed stream. The
  /// returned iterator is the consume phase: inline results replay from
  /// memory; spilled results read one part object per pull and delete it
  /// once consumed (remaining objects are cleaned up if the consumer stops
  /// early). `cancel` aborts both phases cooperatively: the produce loop and
  /// every consume pull check it, and a cancelled spilled result deletes its
  /// pending part objects on teardown.
  Result<BatchIteratorPtr> ExecuteRemoteStream(const PlanPtr& plan,
                                               const std::string& user,
                                               CancellationToken cancel = {});

  const EfgacStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EfgacStats(); }

  /// Replaces the remote-call retry policy (tests tighten deadlines here).
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }

  /// Attaches a memory budget for the produce-phase result buffer. When a
  /// reservation is refused, the backend switches to spill mode early —
  /// before the byte threshold — instead of growing the buffer.
  void set_memory_budget(std::shared_ptr<MemoryBudget> budget) {
    memory_budget_ = std::move(budget);
  }

 private:
  friend class SpillPartIterator;

  /// Result of one produce attempt: the data either buffered in memory
  /// (inline mode) or persisted as spill objects (paths, in order).
  struct ProducedResult {
    Schema schema;
    bool spilled = false;
    Table inline_table;
    std::vector<std::string> paths;
  };

  ExecutionContext MakeContext(const std::string& user) const;
  Result<ProducedResult> ProduceOnce(const PlanPtr& plan,
                                     const std::string& user,
                                     const CancellationToken& cancel);

  QueryEngine* engine_;
  ObjectStore* store_;
  UnityCatalog* catalog_;
  size_t spill_threshold_bytes_;
  Clock* clock_;
  RetryPolicy retry_policy_;
  std::shared_ptr<MemoryBudget> memory_budget_;
  EfgacStats stats_;
};

/// Engine-side RemoteScan operator implementation: forwards the captured
/// sub-plan to the serverless backend under the querying user's identity.
class EfgacRemoteExecutor : public RemoteQueryExecutor {
 public:
  explicit EfgacRemoteExecutor(ServerlessBackend* backend)
      : backend_(backend) {}

  Result<Table> ExecuteRemote(const RemoteScanNode& scan,
                              const ExecutionContext& context) override;

  Result<BatchIteratorPtr> ExecuteRemoteStream(
      const RemoteScanNode& scan, const ExecutionContext& context) override;

 private:
  ServerlessBackend* backend_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_EFGAC_SERVERLESS_BACKEND_H_
