#include "efgac/rewriter.h"

namespace lakeguard {

Result<PlanPtr> EfgacRewriter::Rewrite(const PlanPtr& plan,
                                       const ExecutionContext& context) {
  if (!context.compute.privileged_access) {
    return plan;  // Standard compute enforces locally; nothing to do.
  }
  return RewriteNode(plan, context);
}

Result<PlanPtr> EfgacRewriter::TypedRemoteScan(
    PlanPtr remote_plan, const ExecutionContext& context) {
  LG_ASSIGN_OR_RETURN(Schema schema,
                      backend_->AnalyzeRemote(remote_plan, context.user));
  return MakeRemoteScan(std::move(remote_plan), "serverless-efgac",
                        std::move(schema));
}

Result<PlanPtr> EfgacRewriter::RewriteNode(const PlanPtr& plan,
                                           const ExecutionContext& context) {
  switch (plan->kind()) {
    case PlanKind::kTableRef: {
      const auto& ref = static_cast<const TableRefNode&>(*plan);
      LG_ASSIGN_OR_RETURN(RelationResolution res,
                          catalog_->ResolveRelation(
                              context.user, context.compute, ref.name()));
      if (res.enforcement == EnforcementMode::kLocal) return plan;
      ++stats_.relations_externalized;
      return TypedRemoteScan(plan, context);
    }
    case PlanKind::kLocalRelation:
    case PlanKind::kResolvedScan:
    case PlanKind::kRemoteScan:
      return plan;

    case PlanKind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child, RewriteNode(node.child(), context));
      if (child->kind() == PlanKind::kRemoteScan &&
          !ContainsUdfCall(node.condition())) {
        const auto& scan = static_cast<const RemoteScanNode&>(*child);
        ++stats_.filters_pushed;
        return TypedRemoteScan(
            MakeFilter(scan.remote_plan(), node.condition()), context);
      }
      return MakeFilter(std::move(child), node.condition());
    }
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child, RewriteNode(node.child(), context));
      bool udf_free = true;
      for (const ExprPtr& e : node.exprs()) {
        if (ContainsUdfCall(e)) udf_free = false;
      }
      if (child->kind() == PlanKind::kRemoteScan && udf_free) {
        const auto& scan = static_cast<const RemoteScanNode&>(*child);
        ++stats_.projects_pushed;
        return TypedRemoteScan(
            MakeProject(scan.remote_plan(), node.exprs(), node.names()),
            context);
      }
      return MakeProject(std::move(child), node.exprs(), node.names());
    }
    case PlanKind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child, RewriteNode(node.child(), context));
      if (child->kind() == PlanKind::kRemoteScan) {
        const auto& scan = static_cast<const RemoteScanNode&>(*child);
        ++stats_.limits_pushed;
        return TypedRemoteScan(MakeLimit(scan.remote_plan(), node.limit()),
                               context);
      }
      return MakeLimit(std::move(child), node.limit());
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child, RewriteNode(node.child(), context));
      bool udf_free = true;
      for (const ExprPtr& e : node.group_exprs()) {
        if (ContainsUdfCall(e)) udf_free = false;
      }
      for (const ExprPtr& e : node.agg_exprs()) {
        if (ContainsUdfCall(e)) udf_free = false;
      }
      // The aggregate's entire input is remote, so the complete aggregation
      // can run remotely (§3.4's pushed partial aggregation, taken to its
      // exact special case).
      if (child->kind() == PlanKind::kRemoteScan && udf_free) {
        const auto& scan = static_cast<const RemoteScanNode&>(*child);
        ++stats_.aggregates_pushed;
        return TypedRemoteScan(
            MakeAggregate(scan.remote_plan(), node.group_exprs(),
                          node.group_names(), node.agg_exprs(),
                          node.agg_names()),
            context);
      }
      return MakeAggregate(std::move(child), node.group_exprs(),
                           node.group_names(), node.agg_exprs(),
                           node.agg_names());
    }
    case PlanKind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr left, RewriteNode(node.left(), context));
      LG_ASSIGN_OR_RETURN(PlanPtr right, RewriteNode(node.right(), context));
      return MakeJoin(std::move(left), std::move(right), node.join_type(),
                      node.condition());
    }
    case PlanKind::kSort: {
      const auto& node = static_cast<const SortNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child, RewriteNode(node.child(), context));
      return MakeSort(std::move(child), node.keys());
    }
    case PlanKind::kSecureView: {
      const auto& node = static_cast<const SecureViewNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child, RewriteNode(node.child(), context));
      return MakeSecureView(std::move(child), node.securable_name());
    }
    case PlanKind::kExtension: {
      // Expand first so relations the extension references get the same
      // external-enforcement treatment as hand-written ones.
      const auto& node = static_cast<const ExtensionNode&>(*plan);
      if (extensions_ == nullptr) return plan;
      LG_ASSIGN_OR_RETURN(ConnectExtension * ext,
                          extensions_->Lookup(node.extension_name()));
      LG_ASSIGN_OR_RETURN(PlanPtr expanded,
                          ext->Expand(node.payload(), context));
      return RewriteNode(expanded, context);
    }
  }
  return Status::Internal("unreachable plan kind in eFGAC rewrite");
}

}  // namespace lakeguard
