#ifndef LAKEGUARD_ENGINE_PLAN_VERIFIER_H_
#define LAKEGUARD_ENGINE_PLAN_VERIFIER_H_

#include <string>

#include "catalog/unity_catalog.h"
#include "common/diagnostics.h"
#include "engine/analysis.h"
#include "plan/plan.h"

namespace lakeguard {

/// When the query pipeline runs the verifier. `verify_rewrites` only takes
/// effect in builds configured with -DLAKEGUARD_VERIFY_REWRITES=ON (the
/// per-rewrite hook is compiled out otherwise — it turns the optimizer into
/// a single-step machine and is strictly a debugging mode).
struct PlanVerifierOptions {
  bool verify_after_analysis = true;
  bool verify_after_optimize = true;
  bool verify_rewrites = true;
};

/// Policy-soundness static analysis over resolved logical plans, in the
/// spirit of an MLIR/LLVM IR verifier. Lakeguard's security argument is that
/// analysis *injects* FGAC enforcement and rewrites *preserve* it; this pass
/// is the machine check of that claim. Invariants:
///
///   V1 (PV001) every scan of a securable carrying a row filter or column
///      mask is dominated by the corresponding Filter/mask-Project region
///      under a SecureView barrier — no policy-free leaf escapes;
///   V2 (PV002) nothing inside a policy region was reordered, altered or
///      augmented — the region is exactly [mask Project] -> [policy Filter]
///      -> Scan with expressions equal (modulo constant folding) to the
///      cataloged policies;
///   V3 (PV003) no UDF pipeline spans two trust domains — a UdfCall never
///      feeds a UdfCall of a different owner;
///   V4 (PV004) every relation the catalog flags as externally enforced on
///      this compute was actually replaced by an eFGAC RemoteScan — no
///      residual local scan on privileged clusters;
///   V5 (PV005) vended credentials referenced by the plan carry no broader
///      scope than the scans need: read-only, principal-bound to the
///      effective (definer-aware) user, prefixes confined to the table's
///      storage root — and, conversely, every locally enforced scan carries
///      a vended credential at all (a pre-resolved scan smuggled into a
///      plan without catalog resolution has none and is rejected);
///   V6 (PV006) the analysis the plan executes with is bound to the same
///      principal and compute as the execution context — a prepared plan
///      replayed under another identity fails verification even if the
///      engine-level replay check were bypassed.
///   V8 (PV008) every sandbox-dispatched UDF in an admitted plan carries a
///      bytecode-verifier certificate compatible with its trust domain's
///      sandbox policy: the program verifies, its reachable host calls are
///      granted, its cost bound fits the fuel budget, and no argument fed
///      from a masked/filter-protected column can reach an exfiltration
///      sink. Checked pre-admission so a hostile program is rejected before
///      any sandbox is provisioned.
///
/// PV000 flags malformed input (unresolved relations/columns in a plan that
/// claims to be analyzed). The verifier is read-only end to end: it uses
/// `UnityCatalog::InspectPolicies` / `GetFunction` and
/// `CredentialAuthority::Inspect`, which audit nothing and vend nothing.
class PlanVerifier {
 public:
  // Diagnostic codes (stable; asserted by the mutation suite).
  static constexpr const char* kMalformed = "PV000";
  static constexpr const char* kPolicyMissing = "PV001";
  static constexpr const char* kRegionContaminated = "PV002";
  static constexpr const char* kTrustDomainFusion = "PV003";
  static constexpr const char* kResidualLocalScan = "PV004";
  static constexpr const char* kOverbroadCredential = "PV005";
  static constexpr const char* kContextMismatch = "PV006";
  static constexpr const char* kFusedMismatch = "PV007";
  static constexpr const char* kUdfUnverified = "PV008";

  /// `check_udf_admission` gates V8. On an engine that runs UDFs in-process
  /// (`ExecutionOptions::isolate_udfs` off — the legacy-JVM baseline) there
  /// is no sandbox or trust-domain policy to admit against, so PV008 is
  /// skipped there; every other invariant still applies.
  explicit PlanVerifier(const UnityCatalog* catalog,
                        bool check_udf_admission = true)
      : catalog_(catalog), check_udf_admission_(check_udf_admission) {}

  /// Checks V1..V5 over `plan` for the identity/compute in `context`.
  /// `analysis` (optional) supplies the vended read tokens for V5; without
  /// it the credential checks are skipped (execution then fails closed on
  /// the missing tokens anyway).
  Diagnostics Verify(const PlanPtr& plan, const ExecutionContext& context,
                     const AnalysisResult* analysis) const;

  /// Verify + `Diagnostics::ToStatus(label)`: OK or a typed non-retryable
  /// kFailedPrecondition carrying the full diagnostic payload.
  Status VerifyToStatus(const PlanPtr& plan, const ExecutionContext& context,
                        const AnalysisResult* analysis,
                        const std::string& label) const;

  /// V7 (PV007): a fused scan evaluator must be semantically equal to the
  /// policy-dominated expression it claims to implement. Three checks, all
  /// from the instruction stream (never from the program's own `source`
  /// back-pointer, which a mutation could leave untouched):
  ///   1. the program decompiles cleanly;
  ///   2. the decompiled tree is equivalent (modulo folding and markers) to
  ///      `expected` — the plan-side policy tree PV001/PV002 already checked
  ///      against the catalog;
  ///   3. recompiling the decompiled tree reproduces the exact instruction
  ///      stream — catching mutations equivalence over trees cannot see
  ///      (kernel selection, result types, register wiring).
  /// Runs once per compile (not per batch); the executor rejects the fused
  /// path and falls back to interpreted evaluation on failure.
  static Status VerifyFusedProgram(const CompiledExpr& program,
                                   const ExprPtr& expected);

 private:
  const UnityCatalog* catalog_;
  const bool check_udf_admission_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_PLAN_VERIFIER_H_
