#ifndef LAKEGUARD_ENGINE_ANALYZER_H_
#define LAKEGUARD_ENGINE_ANALYZER_H_

#include "engine/analysis.h"
#include "engine/extensions.h"

namespace lakeguard {

/// The analyzer binds an unresolved logical plan to the catalog under a
/// (user, compute) pair. This is where governance becomes structural:
///
///  * TableRef -> ResolvedScan, with row filters / column masks injected as
///    Filter/Project nodes under a SecureView barrier (Fig. 8's "resolved"
///    tree). Policies come from Unity Catalog, already filtered by the
///    compute's privilege scope.
///  * Views expand recursively: SELECT is checked for the querying user,
///    underlying relations resolve under the *view owner* (definer's
///    rights), while CURRENT_USER()/IS_ACCOUNT_GROUP_MEMBER() keep binding
///    to the querying user — exactly the dynamic-view semantics of §2.3.
///  * Unknown function names resolve against cataloged UDFs (EXECUTE
///    check); the call becomes an UdfCallExpr tagged with its trust domain.
///  * Qualified column references ("o.region") resolve against the *scope*
///    of the subtree: each relation contributes a part named by its alias
///    (or its table's last name segment).
///  * If the catalog reports kExternal enforcement, analysis FAILS — on
///    privileged compute the eFGAC rewrite (src/efgac) must replace the
///    relation before analysis; reaching the analyzer with an external-only
///    relation means a bypass attempt.
class Analyzer {
 public:
  Analyzer(UnityCatalog* catalog, ExecutionContext context,
           const ExtensionRegistry* extensions = nullptr)
      : catalog_(catalog),
        context_(std::move(context)),
        extensions_(extensions) {}

  /// Resolves `plan`. On success the result plan contains no kTableRef and
  /// no unresolved column references.
  Result<AnalysisResult> Analyze(const PlanPtr& plan);

  /// Computes the output schema of an already-resolved plan.
  static Result<Schema> ResolvedSchema(const PlanPtr& plan);

 private:
  /// One named relation visible in a subtree's output.
  struct ScopePart {
    std::string alias;  // "" when anonymous (projections, aggregates)
    Schema schema;
  };
  using ScopeInfo = std::vector<ScopePart>;

  Result<PlanPtr> ResolveNode(const PlanPtr& plan, const std::string& as_user,
                              int depth, AnalysisResult* out,
                              ScopeInfo* scope);
  Result<PlanPtr> ResolveTableRef(const TableRefNode& node,
                                  const std::string& as_user, int depth,
                                  AnalysisResult* out, ScopeInfo* scope);
  Result<ExprPtr> ResolveExpr(const ExprPtr& expr, const ScopeInfo& scope,
                              AnalysisResult* out);

  UnityCatalog* catalog_;
  ExecutionContext context_;
  const ExtensionRegistry* extensions_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_ANALYZER_H_
