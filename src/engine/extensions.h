#ifndef LAKEGUARD_ENGINE_EXTENSIONS_H_
#define LAKEGUARD_ENGINE_EXTENSIONS_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "engine/analysis.h"
#include "plan/plan.h"

namespace lakeguard {

/// Server-side handler of one Connect protocol extension (§3.2.2): given
/// the opaque payload a client plugin embedded in the plan, produce the
/// logical plan it stands for. The expansion is *unresolved* — it goes
/// through the normal analyzer afterwards, so extensions cannot bypass
/// governance (every relation they reference is still resolved, checked
/// and policy-wrapped for the querying user).
class ConnectExtension {
 public:
  virtual ~ConnectExtension() = default;
  virtual Result<PlanPtr> Expand(const std::vector<uint8_t>& payload,
                                 const ExecutionContext& context) = 0;
};

/// Registry of installed extensions, keyed by name. Mirrors how the paper's
/// Delta extension plugs custom relation/command types into Spark Connect
/// without modifying the core protocol.
class ExtensionRegistry {
 public:
  /// Registers `extension` under `name`; replaces an existing handler.
  void Register(const std::string& name,
                std::shared_ptr<ConnectExtension> extension);

  Result<ConnectExtension*> Lookup(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<ConnectExtension>> extensions_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_EXTENSIONS_H_
