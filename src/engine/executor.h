#ifndef LAKEGUARD_ENGINE_EXECUTOR_H_
#define LAKEGUARD_ENGINE_EXECUTOR_H_

#include "catalog/unity_catalog.h"
#include "columnar/table.h"
#include "engine/analysis.h"
#include "expr/evaluator.h"
#include "sandbox/dispatcher.h"
#include "sandbox/host_env.h"
#include "storage/object_store.h"

namespace lakeguard {

/// Executes an eFGAC RemoteScan on a Serverless endpoint (implemented in
/// src/efgac; injected here to keep the engine free of a dependency cycle).
class RemoteQueryExecutor {
 public:
  virtual ~RemoteQueryExecutor() = default;
  virtual Result<Table> ExecuteRemote(const RemoteScanNode& scan,
                                      const ExecutionContext& context) = 0;
};

/// Execution-time switches. `isolate_udfs=false` reproduces the legacy
/// "user code in the engine" world — the unisolated baseline of Table 2 and
/// of the escape tests (it must be *vulnerable*).
struct ExecutionOptions {
  bool isolate_udfs = true;
  bool fuse_udfs = true;
};

/// Everything the executor touches outside the plan.
struct EngineServices {
  UnityCatalog* catalog = nullptr;
  ObjectStore* store = nullptr;
  /// Sandbox dispatcher of the executing host (isolated UDF path).
  Dispatcher* dispatcher = nullptr;
  /// The machine itself (unisolated UDF path reaches it directly — that is
  /// the point of the baseline).
  SimulatedHostEnvironment* host_env = nullptr;
  RemoteQueryExecutor* remote = nullptr;
  /// Installed Connect protocol extensions (may be null).
  const class ExtensionRegistry* extensions = nullptr;
};

/// Operator counters for one execution.
struct ExecutorStats {
  uint64_t batches_scanned = 0;
  uint64_t rows_scanned = 0;
  uint64_t udf_sandbox_batches = 0;
  uint64_t udf_rows = 0;
};

/// Vectorized recursive executor over resolved plans. UDF-bearing
/// expressions route user code through the Dispatcher into sandboxes (or
/// the in-process VM in the unisolated baseline); everything else is
/// evaluated by the trusted expression evaluator.
class Executor {
 public:
  Executor(EngineServices services, ExecutionOptions options,
           ExecutionContext context, const AnalysisResult* analysis)
      : services_(services),
        options_(options),
        context_(std::move(context)),
        analysis_(analysis) {}

  Result<Table> Execute(const PlanPtr& plan);

  const ExecutorStats& stats() const { return stats_; }

 private:
  Result<Table> ExecNode(const PlanPtr& plan);
  Result<Table> ExecScan(const ResolvedScanNode& node);
  Result<Table> ExecProject(const ProjectNode& node);
  Result<Table> ExecFilter(const FilterNode& node);
  Result<Table> ExecAggregate(const AggregateNode& node);
  Result<Table> ExecJoin(const JoinNode& node);
  Result<Table> ExecSort(const SortNode& node);
  Result<Table> ExecLimit(const LimitNode& node);

  /// Evaluates `exprs` over `batch`, executing embedded UDF calls according
  /// to the isolation/fusion options. Core of the user-code data path.
  Result<std::vector<Column>> EvaluateWithUdfs(
      const std::vector<ExprPtr>& exprs, const RecordBatch& batch);

  EvalContext MakeEvalContext() const;

  EngineServices services_;
  ExecutionOptions options_;
  ExecutionContext context_;
  const AnalysisResult* analysis_;
  ExecutorStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_EXECUTOR_H_
