#ifndef LAKEGUARD_ENGINE_EXECUTOR_H_
#define LAKEGUARD_ENGINE_EXECUTOR_H_

#include <map>
#include <string>

#include "catalog/unity_catalog.h"
#include "columnar/batch_iterator.h"
#include "columnar/table.h"
#include "engine/analysis.h"
#include "expr/evaluator.h"
#include "sandbox/dispatcher.h"
#include "sandbox/host_env.h"
#include "storage/object_store.h"

namespace lakeguard {

/// Executes an eFGAC RemoteScan on a Serverless endpoint (implemented in
/// src/efgac; injected here to keep the engine free of a dependency cycle).
class RemoteQueryExecutor {
 public:
  virtual ~RemoteQueryExecutor() = default;
  virtual Result<Table> ExecuteRemote(const RemoteScanNode& scan,
                                      const ExecutionContext& context) = 0;

  /// Batched counterpart: the remote result arrives as a pull stream so the
  /// origin pipeline never holds more than one remote batch at a time. The
  /// default wraps the monolithic call for implementations that predate
  /// streaming.
  virtual Result<BatchIteratorPtr> ExecuteRemoteStream(
      const RemoteScanNode& scan, const ExecutionContext& context) {
    LG_ASSIGN_OR_RETURN(Table table, ExecuteRemote(scan, context));
    return MakeTableIterator(std::move(table));
  }
};

/// Execution-time switches. `isolate_udfs=false` reproduces the legacy
/// "user code in the engine" world — the unisolated baseline of Table 2 and
/// of the escape tests (it must be *vulnerable*).
struct ExecutionOptions {
  bool isolate_udfs = true;
  bool fuse_udfs = true;
  /// Compiled policy-region evaluation (row filter + masks + pushed-down
  /// user filter as one cached program per scan). Off = every policy region
  /// runs on the interpreted operators — the oracle/ablation baseline.
  bool fuse_policies = true;
  /// Upper bound on rows per batch flowing through the pipeline. Scan
  /// re-slices stored parts to this size; pipeline stages are batch-in /
  /// batch-out, so this caps per-operator resident memory.
  size_t batch_size = 1024;
  /// Base directory for pipeline-breaker spill runs (empty = system temp
  /// dir). Each query gets its own subdirectory, removed on teardown.
  std::string spill_dir;
  /// When false, a breaker that exceeds its operation budget surfaces the
  /// typed kResourceExhausted instead of degrading to spilled execution.
  bool enable_spill = true;
};

/// Everything the executor touches outside the plan.
struct EngineServices {
  UnityCatalog* catalog = nullptr;
  ObjectStore* store = nullptr;
  /// Sandbox dispatcher of the executing host (isolated UDF path).
  Dispatcher* dispatcher = nullptr;
  /// The machine itself (unisolated UDF path reaches it directly — that is
  /// the point of the baseline).
  SimulatedHostEnvironment* host_env = nullptr;
  RemoteQueryExecutor* remote = nullptr;
  /// Installed Connect protocol extensions (may be null).
  const class ExtensionRegistry* extensions = nullptr;
  /// Shared cache of compiled per-(table, principal, policy-version) scan
  /// evaluators. Null disables the fused path entirely (every policy region
  /// then runs interpreted — the fallback/oracle mode).
  PolicyEvalCache* policy_cache = nullptr;
};

/// Operator counters for one execution. Scan counters advance as batches
/// are *pulled*, so a short-circuiting LIMIT shows up directly as
/// `batches_scanned` < stored batches.
struct ExecutorStats {
  uint64_t batches_scanned = 0;
  uint64_t rows_scanned = 0;
  uint64_t udf_sandbox_batches = 0;
  uint64_t udf_rows = 0;
  /// Batches emitted across all operators, and per operator kind
  /// ("scan", "filter", "project", ...).
  uint64_t batches_emitted = 0;
  std::map<std::string, uint64_t> operator_batches;
  /// Memory proxy: batches concurrently held by the pipeline (streaming
  /// stages hold at most one in flight; pipeline breakers hold their whole
  /// materialized input). `peak_resident_batches` is the high-water mark —
  /// O(pipeline depth) for streaming plans, O(result) across a breaker.
  uint64_t resident_batches = 0;
  uint64_t peak_resident_batches = 0;
  /// Byte-accurate companion to the batch proxy: bytes the pipeline holds
  /// resident right now (governor-charged when a budget is attached), and
  /// its high-water mark. Breaker outputs are charged by ByteSize — string
  /// heap capacity included — so this agrees with governor accounting.
  uint64_t bytes_reserved = 0;
  uint64_t peak_bytes = 0;
  /// Degradation-ladder transitions for this execution.
  uint64_t budget_refusals = 0;  ///< budget TryReserve refusals observed
  uint64_t spill_runs = 0;       ///< breaker runs written to local disk
  uint64_t spill_bytes = 0;      ///< bytes written across those runs
  uint64_t batch_shrinks = 0;    ///< ladder step 1: batch_size halvings
  uint64_t udf_batch_splits = 0; ///< sandbox arg batches split on byte cap
  /// Fused policy evaluation (PolicyEvalCache) counters for this execution.
  uint64_t policy_cache_hits = 0;    ///< fused programs served from cache
  uint64_t policy_cache_misses = 0;  ///< lookups that found no valid entry
  uint64_t policy_compiles = 0;      ///< fused programs compiled

  void OnEmit(const char* op) {
    ++batches_emitted;
    ++operator_batches[op];
  }
  void AddResident(uint64_t n) {
    resident_batches += n;
    if (resident_batches > peak_resident_batches) {
      peak_resident_batches = resident_batches;
    }
  }
  void SubResident(uint64_t n) {
    resident_batches -= (n > resident_batches) ? resident_batches : n;
  }
  void AddBytes(uint64_t n) {
    bytes_reserved += n;
    if (bytes_reserved > peak_bytes) peak_bytes = bytes_reserved;
  }
  void SubBytes(uint64_t n) {
    bytes_reserved -= (n > bytes_reserved) ? bytes_reserved : n;
  }
};

/// Streaming Volcano-vectorized executor over resolved plans. `Open`
/// builds a pull-based BatchIterator pipeline: Scan yields bounded batches
/// straight from storage parts, Project/Filter (and the row-filter /
/// column-mask stages the analyzer compiled into them) transform batch-in /
/// batch-out — UDF-bearing expressions route each batch through the
/// Dispatcher into sandboxes (or the in-process VM in the unisolated
/// baseline) — while Sort/Aggregate/the build side of Join materialize as
/// explicit pipeline breakers. Limit stops pulling its child once
/// satisfied. `Execute` is the collect-all wrapper over `Open` that every
/// pre-streaming call site keeps using.
///
/// Lifetime: iterators returned by `Open` borrow the Executor (services,
/// analysis, stats) and the plan tree; both must outlive the iterator.
class Executor {
 public:
  Executor(EngineServices services, ExecutionOptions options,
           ExecutionContext context, const AnalysisResult* analysis)
      : services_(services),
        options_(options),
        context_(std::move(context)),
        analysis_(analysis) {}

  /// Streaming entry point: the root of the operator pipeline.
  Result<BatchIteratorPtr> Open(const PlanPtr& plan);

  /// Collect-all wrapper: drains the pipeline into a Table.
  Result<Table> Execute(const PlanPtr& plan);

  const ExecutorStats& stats() const { return stats_; }
  const ExecutionOptions& options() const { return options_; }

  /// Ladder bookkeeping: the engine shrinks batch_size under session
  /// pressure before constructing the executor and records it here.
  void NoteBatchShrinks(uint64_t n) { stats_.batch_shrinks += n; }

 private:
  friend class ExecIterators;  // operator iterators (executor.cc)

  Result<BatchIteratorPtr> OpenNode(const PlanPtr& plan);
  Result<BatchIteratorPtr> OpenScan(const ResolvedScanNode& node);
  Result<BatchIteratorPtr> OpenProject(const ProjectNode& node,
                                       const PlanPtr& self);
  Result<BatchIteratorPtr> OpenFilter(const FilterNode& node);
  /// Attempts the compiled fast path for a policy region: matches the exact
  /// SecureView -> [mask Project] -> [policy Filter] -> Scan shape (with
  /// FusedPolicyExpr markers on every policy expression), fetches or builds
  /// the fused program through the shared PolicyEvalCache, verifies it
  /// (PV007) when freshly compiled, and returns a single "fused_scan" stage
  /// evaluating row filter + masks (+ the optional pushed-down UDF-free
  /// `user_filter`) in one pass per batch. Returns nullopt — never an error
  /// — whenever the region is not fusable, so callers fall back to the
  /// interpreted operators.
  Result<std::optional<BatchIteratorPtr>> TryOpenFusedScan(
      const SecureViewNode& sv, const ExprPtr& user_filter);
  Result<BatchIteratorPtr> OpenAggregate(const AggregateNode& node,
                                         const PlanPtr& self);
  Result<BatchIteratorPtr> OpenJoin(const JoinNode& node);
  Result<BatchIteratorPtr> OpenSort(const SortNode& node);
  Result<BatchIteratorPtr> OpenLimit(const LimitNode& node);

  /// Pipeline-breaker bodies (operate on a fully collected child).
  Result<Table> AggregateTable(const AggregateNode& node,
                               const RecordBatch& input,
                               const Schema& out_schema);
  Result<Table> SortTable(const SortNode& node, const RecordBatch& input);

  /// Cancellation/deadline gate, called by every operator iterator at the
  /// top of `Next()` — abort latency is bounded by one batch regardless of
  /// pipeline depth (breakers drain their child through the same pulls).
  Status CheckCancel() const { return context_.cancel.Check(); }

  /// Evaluates `exprs` over `batch`, executing embedded UDF calls according
  /// to the isolation/fusion options. Core of the user-code data path.
  Result<std::vector<Column>> EvaluateWithUdfs(
      const std::vector<ExprPtr>& exprs, const RecordBatch& batch);

  /// Sandbox dispatch that recovers from the dispatcher's per-batch byte
  /// cap: a typed kResourceExhausted splits the argument batch in half and
  /// retries, down to single rows.
  Result<RecordBatch> DispatchWithSplit(
      const std::string& key, const SandboxPolicy& policy,
      const RecordBatch& arg_batch,
      const std::vector<UdfInvocation>& invocations);

  /// Memory accounting, shared by every operator iterator. Bytes flow to
  /// the operation budget (when attached) and to the stats mirror. Try
  /// refuses with typed kResourceExhausted; Forced is the "+1 in-flight
  /// batch" slack that keeps pipelines deadlock-free.
  Status TryChargeBytes(uint64_t bytes);
  void ChargeBytesForced(uint64_t bytes);
  void ReleaseBytes(uint64_t bytes);

  EvalContext MakeEvalContext() const;

  EngineServices services_;
  ExecutionOptions options_;
  ExecutionContext context_;
  const AnalysisResult* analysis_;
  ExecutorStats stats_;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_EXECUTOR_H_
