#ifndef LAKEGUARD_ENGINE_OPTIMIZER_H_
#define LAKEGUARD_ENGINE_OPTIMIZER_H_

#include "plan/plan.h"

namespace lakeguard {

struct OptimizerOptions {
  /// Project-collapse fusion: brings UDF calls into as few Project nodes
  /// (and hence sandbox round-trips) as possible (§3.3). Ablation toggle.
  bool enable_fusion = true;
  bool enable_filter_pushdown = true;
  bool enable_constant_folding = true;
  int max_passes = 5;
};

/// Rule-based optimizer over *resolved* plans. Security-relevant behaviour:
///  * SecureView is a barrier — no user expression is ever pushed below it
///    (the policy Filter/Project underneath must see raw data first);
///  * Project collapse never crosses trust-domain boundaries and never
///    duplicates a UDF call.
class Optimizer {
 public:
  explicit Optimizer(OptimizerOptions options = {}) : options_(options) {}

  Result<PlanPtr> Optimize(const PlanPtr& plan) const;

 private:
  Result<PlanPtr> OptimizeOnce(const PlanPtr& plan, bool* changed) const;
  Result<PlanPtr> TryCollapseProjects(const ProjectNode& outer,
                                      bool* changed) const;
  Result<PlanPtr> TryPushFilter(const FilterNode& filter, bool* changed) const;
  ExprPtr FoldConstants(const ExprPtr& expr, bool* changed) const;

  OptimizerOptions options_;
};

/// Owners (trust domains) of all UDF calls in `expr`, deduplicated.
std::vector<std::string> CollectUdfOwners(const ExprPtr& expr);

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_OPTIMIZER_H_
