#ifndef LAKEGUARD_ENGINE_OPTIMIZER_H_
#define LAKEGUARD_ENGINE_OPTIMIZER_H_

#include <functional>

#include "plan/plan.h"

namespace lakeguard {

struct OptimizerOptions {
  /// Project-collapse fusion: brings UDF calls into as few Project nodes
  /// (and hence sandbox round-trips) as possible (§3.3). Ablation toggle.
  bool enable_fusion = true;
  bool enable_filter_pushdown = true;
  bool enable_constant_folding = true;
  int max_passes = 5;
};

/// Rule-based optimizer over *resolved* plans. Security-relevant behaviour:
///  * SecureView is a barrier — no user expression is ever pushed below it
///    (the policy Filter/Project underneath must see raw data first);
///  * Project collapse never crosses trust-domain boundaries and never
///    duplicates a UDF call.
class Optimizer {
 public:
  /// Called after each individual rewrite when installed (the
  /// LAKEGUARD_VERIFY_REWRITES debug mode): receives the whole plan after
  /// the rewrite plus the name of the rule that fired, so a verifier
  /// failure names the rewrite that *introduced* the violation. A non-OK
  /// return aborts optimization with that status.
  using RewriteVerifyHook =
      std::function<Status(const PlanPtr& plan, const char* rule)>;

  explicit Optimizer(OptimizerOptions options = {}) : options_(options) {}

  void set_verify_hook(RewriteVerifyHook hook) {
    verify_hook_ = std::move(hook);
  }

  Result<PlanPtr> Optimize(const PlanPtr& plan) const;

 private:
  /// Single-step mode: when non-null, at most one rule application happens
  /// per OptimizeOnce traversal and its name is recorded — this is how the
  /// verify hook attributes a violation to one rewrite. The rules are
  /// monotone and confluent, so the stepwise fixpoint equals the batched
  /// one.
  struct StepState {
    bool fired = false;
    const char* rule = "";
  };

  Result<PlanPtr> OptimizeOnce(const PlanPtr& plan, bool* changed,
                               StepState* step) const;
  Result<PlanPtr> TryCollapseProjects(const ProjectNode& outer,
                                      bool* changed) const;
  Result<PlanPtr> TryPushFilter(const FilterNode& filter, bool* changed) const;

  OptimizerOptions options_;
  RewriteVerifyHook verify_hook_;
};

/// Owners (trust domains) of all UDF calls in `expr`, deduplicated.
std::vector<std::string> CollectUdfOwners(const ExprPtr& expr);

/// Replaces pure, input-free, non-context-dependent, non-aggregate subtrees
/// of `expr` by their literal value. This is the optimizer's constant-fold
/// rule, exported so the PlanVerifier can compare policy expressions modulo
/// folding (a folded mask must still count as the mask). `changed` (when
/// non-null) is set to true iff anything folded.
ExprPtr FoldPureConstants(const ExprPtr& expr, bool* changed = nullptr);

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_OPTIMIZER_H_
