#ifndef LAKEGUARD_ENGINE_ENGINE_H_
#define LAKEGUARD_ENGINE_ENGINE_H_

#include <memory>
#include <string>

#include "engine/analyzer.h"
#include "engine/executor.h"
#include "engine/optimizer.h"
#include "engine/plan_verifier.h"
#include "sql/ast.h"

namespace lakeguard {

/// A live streaming query: owns the whole execution state (analysis result,
/// optimized plan, executor, root iterator) so batches can be pulled long
/// after the engine call returned. `stats()` is live — it advances as the
/// stream is pulled, which is how callers observe lazy-scan short-circuits.
///
/// Lifecycle: the stream owns a `CancellationSource` linked to the caller's
/// `ExecutionContext::cancel` token, so the query dies either way — when the
/// caller's operation is cancelled (or its deadline passes) or when
/// `Cancel()` is invoked on the stream directly. Cancelling tears the
/// operator pipeline down immediately, releasing every resident batch and
/// any breaker/spill state; further pulls return the typed status.
class QueryResultStream {
 public:
  const Schema& schema() const { return schema_; }
  Result<std::optional<RecordBatch>> Next() {
    LG_RETURN_IF_ERROR(cancel_source_.token().Check());
    if (!iterator_) {
      return Status::Cancelled("query stream was torn down");
    }
    return iterator_->Next();
  }
  /// Cancels the query and destroys the operator pipeline. Idempotent; the
  /// first call's reason sticks. Safe while no `Next()` is in flight.
  void Cancel(const std::string& reason = "query cancelled") {
    cancel_source_.Cancel(reason);
    iterator_.reset();
  }
  bool cancelled() const { return cancel_source_.cancelled(); }
  /// Executor counters so far. Command statements have no executor; their
  /// counters stay zero.
  const ExecutorStats& stats() const {
    return executor_ ? executor_->stats() : fallback_stats_;
  }
  const PlanPtr& optimized_plan() const { return optimized_; }

 private:
  friend class QueryEngine;
  QueryResultStream() = default;

  std::unique_ptr<AnalysisResult> analysis_;  // referenced by executor_
  PlanPtr optimized_;                         // referenced by iterator_
  std::unique_ptr<Executor> executor_;
  BatchIteratorPtr iterator_;
  Schema schema_;
  CancellationSource cancel_source_;
  ExecutorStats fallback_stats_;
};

using QueryResultStreamPtr = std::unique_ptr<QueryResultStream>;

/// Pre-analysis plan rewriting hook. The eFGAC rewriter (src/efgac) plugs in
/// here on privileged compute: it replaces externally-enforced relations
/// with RemoteScan leaves *before* the analyzer runs (§3.4 operates on the
/// unresolved plan level).
class PreAnalysisRewriter {
 public:
  virtual ~PreAnalysisRewriter() = default;
  virtual Result<PlanPtr> Rewrite(const PlanPtr& plan,
                                  const ExecutionContext& context) = 0;
};

struct QueryEngineConfig {
  ExecutionOptions exec;
  OptimizerOptions opt;
  PlanVerifierOptions verify;
};

/// A query that went through rewrite/analysis/optimization — and through
/// the PlanVerifier — but has not started executing. Splitting preparation
/// from execution lets the Connect service verify a plan *before* spending
/// an admission slot on it, without re-running analysis (which has side
/// effects: credential vending and audit records). Commands (DDL/DML) defer
/// entirely: their side effects belong to execution, not preparation.
struct PreparedQuery {
  PlanPtr source;
  PlanPtr rewritten;  // after the pre-analysis (eFGAC) rewrite
  /// Null for commands. Heap-pinned: the executor keeps a pointer to it.
  std::unique_ptr<AnalysisResult> analysis;
  PlanPtr optimized;  // null for commands
  /// Set for non-SELECT SQL; executed when the prepared query runs.
  std::optional<ParsedStatement> command;
};

/// The query engine of one cluster: SQL/plan in, table out, governance
/// enforced. Pipeline: [pre-analysis rewrite] -> analyze -> optimize ->
/// execute. Also executes *commands* (DDL, INSERT, GRANT, policy DDL) —
/// the side-effecting half of the Connect protocol.
class QueryEngine {
 public:
  QueryEngine(EngineServices services, QueryEngineConfig config = {})
      : services_(services), config_(config) {}

  /// Hook used on Dedicated clusters (set by the platform wiring).
  void set_pre_rewriter(PreAnalysisRewriter* rewriter) {
    pre_rewriter_ = rewriter;
  }
  void set_config(QueryEngineConfig config) { config_ = config; }
  const QueryEngineConfig& config() const { return config_; }
  EngineServices& services() { return services_; }

  /// Analyze only: resolved plan + output schema (Connect AnalyzePlan).
  Result<AnalysisResult> AnalyzePlan(const PlanPtr& plan,
                                     const ExecutionContext& context);

  /// Runs rewrite -> analyze -> [verify] -> optimize -> [verify] without
  /// executing. Verifier failures surface here as kFailedPrecondition with
  /// the diagnostic payload. In LAKEGUARD_VERIFY_REWRITES builds the
  /// optimizer additionally re-verifies after every individual rewrite, so
  /// a violation names the rule that introduced it.
  Result<PreparedQuery> PreparePlan(const PlanPtr& plan,
                                    const ExecutionContext& context);

  /// SQL counterpart: SELECT prepares like PreparePlan; other statements
  /// come back as a deferred command (side effects happen at execution).
  Result<PreparedQuery> PrepareSql(const std::string& sql,
                                   const ExecutionContext& context);

  /// Executes a prepared query as a pull stream (commands run eagerly and
  /// wrap their one-row status table).
  Result<QueryResultStreamPtr> ExecutePrepared(PreparedQuery prepared,
                                               const ExecutionContext& context);

  /// Full pipeline for a relation plan (collect-all wrapper over the
  /// streaming pipeline).
  Result<Table> ExecutePlan(const PlanPtr& plan,
                            const ExecutionContext& context);

  /// Streaming pipeline: rewrite/analyze/optimize eagerly (errors surface
  /// here), then return a pull stream — batches are produced on demand, so
  /// a consumer that stops early never materializes the full result.
  Result<QueryResultStreamPtr> ExecutePlanStreaming(
      const PlanPtr& plan, const ExecutionContext& context);

  /// SQL counterpart of ExecutePlanStreaming. Commands still execute
  /// eagerly (they are side effects); their one-row status table is wrapped
  /// in a stream for a uniform caller interface.
  Result<QueryResultStreamPtr> ExecuteSqlStreaming(
      const std::string& sql, const ExecutionContext& context);

  /// Like ExecutePlan, also returning the intermediate plans (Fig. 8
  /// demonstrations print these).
  struct ExplainedExecution {
    PlanPtr source;
    PlanPtr rewritten;  // after the pre-analysis (eFGAC) rewrite
    PlanPtr resolved;   // after analysis
    PlanPtr optimized;
    Table result;
  };
  Result<ExplainedExecution> ExecutePlanExplained(
      const PlanPtr& plan, const ExecutionContext& context);

  /// SQL entry point: SELECT goes through the relation pipeline; DDL/DML/
  /// grants execute as commands. Command results are one-row status tables.
  Result<Table> ExecuteSql(const std::string& sql,
                           const ExecutionContext& context);

  /// Re-runs a materialized view's definition as its owner and stores the
  /// result; afterwards the MV serves reads as a table.
  Status RefreshMaterializedView(const std::string& view_name,
                                 const ExecutionContext& context);

 private:
  Result<Table> RunCommand(const ParsedStatement& stmt,
                           const ExecutionContext& context);

  EngineServices services_;
  QueryEngineConfig config_;
  PreAnalysisRewriter* pre_rewriter_ = nullptr;
};

/// One-row, one-column status table ("OK", row counts, ...).
Table CommandResult(const std::string& message);

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_ENGINE_H_
