#ifndef LAKEGUARD_ENGINE_ANALYSIS_H_
#define LAKEGUARD_ENGINE_ANALYSIS_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "catalog/securable.h"
#include "catalog/unity_catalog.h"
#include "common/cancellation.h"
#include "common/memory_budget.h"
#include "plan/plan.h"

namespace lakeguard {

/// Identity and placement of one query execution.
struct ExecutionContext {
  std::string user;         // the querying identity (audit, CURRENT_USER())
  std::string session_id;   // sandbox pooling key
  ComputeContext compute;   // privilege scope of the cluster
  /// Session-scoped temporary views (name -> SELECT text). Owned by the
  /// Connect session (§3.2.3); never visible to other sessions. Null means
  /// "no session state".
  std::shared_ptr<std::map<std::string, std::string>> temp_views;
  /// Lifecycle control: the executor checks this once per batch pull, so a
  /// CancelOperation or a per-operation deadline aborts the query within one
  /// batch. The default token is never cancelled (no lifecycle owner).
  CancellationToken cancel;
  /// Operation-level memory budget (child of the session's budget in the
  /// MemoryGovernor hierarchy). Null means unbudgeted: the executor still
  /// tracks bytes in its stats but never refuses or spills on budget.
  std::shared_ptr<MemoryBudget> memory;
};

/// Output of the analyzer: the fully resolved plan plus the side state the
/// executor needs — user-bound storage tokens per table and the resolved
/// function bodies per cataloged UDF. Keeping tokens/bodies out of the plan
/// tree keeps serialized plans free of credentials and user code.
struct AnalysisResult {
  PlanPtr plan;
  Schema output_schema;
  /// table full name -> vended read token (user-bound).
  std::map<std::string, std::string> read_tokens;
  /// function full name -> resolved definition (body, owner, egress).
  std::map<std::string, FunctionInfo> udfs;
  /// Lower-cased names of columns protected by a mask or referenced by a row
  /// filter on any scanned table. UDF arguments over these columns are taint
  /// sources: the executor stamps `UdfInvocation::tainted_args` from this set
  /// and the dispatcher refuses programs whose certificate lets such an
  /// argument reach an exfiltration sink.
  std::set<std::string> protected_columns;

  /// Binding stamp: the identity and placement the plan was analyzed and
  /// verified under, plus the catalog epoch at preparation time. Execution
  /// rechecks these — a prepared plan replayed by a different principal or
  /// compute is rejected outright, and one executed after the catalog moved
  /// past `catalog_epoch` is re-verified against current policy.
  std::string bound_principal;
  std::string bound_compute_id;
  uint64_t catalog_epoch = 0;
};

}  // namespace lakeguard

#endif  // LAKEGUARD_ENGINE_ANALYSIS_H_
