#include "engine/executor.h"

#include <algorithm>
#include <map>

#include "common/strings.h"
#include "engine/analyzer.h"
#include "expr/evaluator.h"
#include "storage/delta_table.h"
#include "udf/vm.h"

namespace lakeguard {

namespace {

/// Host interface of the *unisolated* baseline: user code runs inside the
/// engine process with the engine's ambient authority — full file system,
/// environment (credentials!) and unrestricted network. This is the §2.4
/// vulnerability, kept on purpose for comparison tests and Table 2.
class UnrestrictedHost : public HostInterface {
 public:
  explicit UnrestrictedHost(SimulatedHostEnvironment* env) : env_(env) {}

  Result<Value> CallHost(HostFn fn, const std::vector<Value>& args) override {
    switch (fn) {
      case HostFn::kReadFile: {
        LG_ASSIGN_OR_RETURN(std::string data,
                            env_->ReadFile(args[0].string_value()));
        return Value::String(std::move(data));
      }
      case HostFn::kWriteFile:
        env_->WriteFile(args[0].string_value(), args[1].ToString());
        return Value::Bool(true);
      case HostFn::kHttpGet: {
        LG_ASSIGN_OR_RETURN(
            std::string body,
            env_->HttpGet(args[0].string_value(), "", /*allowed=*/true));
        return Value::String(std::move(body));
      }
      case HostFn::kGetEnv: {
        LG_ASSIGN_OR_RETURN(std::string v,
                            env_->GetEnv(args[0].string_value()));
        return Value::String(std::move(v));
      }
      case HostFn::kClockNow:
        return Value::Int(env_->clock()->NowMicros());
      case HostFn::kLog:
        return Value::Null();
    }
    return Status::Internal("unreachable host fn");
  }

 private:
  SimulatedHostEnvironment* env_;
};

/// Lexicographic row-key comparator for grouping/sorting (NULLs first).
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

struct AggState {
  int64_t count = 0;       // non-null inputs seen
  int64_t rows = 0;        // rows seen (COUNT semantics over literal args)
  int64_t int_sum = 0;
  double double_sum = 0;
  bool saw_double = false;
  Value min_value;
  Value max_value;
  bool has_minmax = false;
};

/// Collects distinct UdfCall subtrees of `exprs` (structural dedup).
std::vector<std::shared_ptr<const UdfCallExpr>> CollectUdfCalls(
    const std::vector<ExprPtr>& exprs) {
  std::vector<std::shared_ptr<const UdfCallExpr>> calls;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kUdfCall) {
      for (const auto& existing : calls) {
        if (existing->Equals(*e)) return;
      }
      calls.push_back(std::static_pointer_cast<const UdfCallExpr>(e));
      return;  // analyzer bans nested UDFs in arguments
    }
    for (const ExprPtr& child : e->children()) walk(child);
  };
  for (const ExprPtr& e : exprs) walk(e);
  return calls;
}

/// Extracts pure equi-join key pairs from `cond`: a conjunction of
/// `left_col = right_col` over *resolved* refs. Returns false when the
/// condition has any other shape (the caller falls back to nested-loop).
bool ExtractEquiKeys(const ExprPtr& cond, size_t left_fields,
                     std::vector<std::pair<int, int>>* keys) {
  if (cond->kind() == ExprKind::kBinaryOp) {
    const auto& bin = static_cast<const BinaryOpExpr&>(*cond);
    if (bin.op() == BinaryOpKind::kAnd) {
      return ExtractEquiKeys(bin.left(), left_fields, keys) &&
             ExtractEquiKeys(bin.right(), left_fields, keys);
    }
    if (bin.op() == BinaryOpKind::kEq &&
        bin.left()->kind() == ExprKind::kColumnRef &&
        bin.right()->kind() == ExprKind::kColumnRef) {
      const auto& a = static_cast<const ColumnRefExpr&>(*bin.left());
      const auto& b = static_cast<const ColumnRefExpr&>(*bin.right());
      if (!a.resolved() || !b.resolved()) return false;
      int ai = a.index(), bi = b.index();
      int ln = static_cast<int>(left_fields);
      if (ai < ln && bi >= ln) {
        keys->emplace_back(ai, bi - ln);
        return true;
      }
      if (bi < ln && ai >= ln) {
        keys->emplace_back(bi, ai - ln);
        return true;
      }
    }
  }
  return false;
}

/// Non-owning alias for passing a stack node to Analyzer::ResolvedSchema.
PlanPtr Alias(const PlanNode& node) {
  return PlanPtr(&node, [](const PlanNode*) {});
}

/// Batches a breaker's materialized output occupies, as the resident-memory
/// proxy (breakers usually hold one combined batch; charge its bounded-batch
/// equivalent so streaming and materialized plans compare apples-to-apples).
uint64_t ResidentProxy(size_t rows, size_t batch_size) {
  if (batch_size == 0) return 1;
  return std::max<uint64_t>(1, (rows + batch_size - 1) / batch_size);
}

}  // namespace

// ---- Operator iterators ----------------------------------------------------
//
// Nested in one access-granting class so the pipeline stages can use the
// Executor's private evaluation helpers and stats without widening its API.

class ExecIterators {
 public:
  /// Leaf: streams a stored table part by part, re-slicing each part into
  /// bounded batches. Parts are read lazily — a short-circuiting consumer
  /// (LIMIT) leaves the tail of the table untouched on storage.
  class ScanIterator : public BatchIterator {
   public:
    ScanIterator(Executor* exec, DeltaTableFormat format, std::string token,
                 TableManifest manifest)
        : exec_(exec),
          format_(format),
          token_(std::move(token)),
          manifest_(std::move(manifest)) {}

    ~ScanIterator() override {
      if (has_part_) exec_->stats_.SubResident(1);
    }

    const Schema& schema() const override { return manifest_.schema; }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      const size_t batch_size = exec_->options_.batch_size;
      while (true) {
        if (has_part_ && offset_ < part_.num_rows()) {
          size_t take = batch_size == 0
                            ? part_.num_rows() - offset_
                            : std::min(batch_size, part_.num_rows() - offset_);
          RecordBatch out = (offset_ == 0 && take == part_.num_rows())
                                ? part_
                                : part_.Slice(offset_, take);
          offset_ += take;
          if (offset_ >= part_.num_rows()) {
            part_ = RecordBatch();
            has_part_ = false;
            exec_->stats_.SubResident(1);
          }
          ++exec_->stats_.batches_scanned;
          exec_->stats_.rows_scanned += out.num_rows();
          exec_->stats_.OnEmit("scan");
          return std::optional<RecordBatch>(std::move(out));
        }
        if (part_index_ >= manifest_.parts.size()) return std::optional<RecordBatch>();
        LG_ASSIGN_OR_RETURN(
            part_, format_.ReadPart(token_, manifest_.parts[part_index_]));
        ++part_index_;
        offset_ = 0;
        has_part_ = true;
        exec_->stats_.AddResident(1);
      }
    }

   private:
    Executor* exec_;
    DeltaTableFormat format_;
    std::string token_;
    TableManifest manifest_;
    size_t part_index_ = 0;
    RecordBatch part_;
    size_t offset_ = 0;
    bool has_part_ = false;
  };

  /// Streaming batch-in/batch-out stage (Project, Filter, masking, the UDF
  /// data path). `fn` returning nullopt means "this input batch produced no
  /// output" (fully filtered) — the stage pulls again instead of emitting
  /// empties downstream.
  class StageIterator : public BatchIterator {
   public:
    using Fn =
        std::function<Result<std::optional<RecordBatch>>(RecordBatch)>;

    StageIterator(Executor* exec, const char* name, Schema schema,
                  BatchIteratorPtr child, Fn fn)
        : exec_(exec),
          name_(name),
          schema_(std::move(schema)),
          child_(std::move(child)),
          fn_(std::move(fn)) {}

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      while (true) {
        LG_RETURN_IF_ERROR(exec_->CheckCancel());
        LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> input,
                            child_->Next());
        if (!input.has_value()) return std::optional<RecordBatch>();
        exec_->stats_.AddResident(1);
        Result<std::optional<RecordBatch>> out = fn_(std::move(*input));
        exec_->stats_.SubResident(1);
        LG_RETURN_IF_ERROR(out.status());
        if (!out->has_value()) continue;
        exec_->stats_.OnEmit(name_);
        return std::move(*out);
      }
    }

   private:
    Executor* exec_;
    const char* name_;
    Schema schema_;
    BatchIteratorPtr child_;
    Fn fn_;
  };

  /// Explicit pipeline breaker: on first pull, runs `produce` (which drains
  /// the child pipeline), then streams the materialized result in bounded
  /// batches. The materialized batches stay resident until the iterator is
  /// dropped — that is the breaker's O(result) cost, and the stats make it
  /// visible.
  class MaterializingIterator : public BatchIterator {
   public:
    MaterializingIterator(Executor* exec, const char* name, Schema schema,
                          std::function<Result<Table>()> produce)
        : exec_(exec),
          name_(name),
          schema_(std::move(schema)),
          produce_(std::move(produce)) {}

    ~MaterializingIterator() override { exec_->stats_.SubResident(resident_); }

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      if (!inner_) {
        LG_ASSIGN_OR_RETURN(Table table, produce_());
        resident_ = ResidentProxy(table.num_rows(), exec_->options_.batch_size);
        exec_->stats_.AddResident(resident_);
        inner_ = MakeTableIterator(std::move(table),
                                   exec_->options_.batch_size);
      }
      LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, inner_->Next());
      if (batch.has_value()) exec_->stats_.OnEmit(name_);
      return batch;
    }

   private:
    Executor* exec_;
    const char* name_;
    Schema schema_;
    std::function<Result<Table>()> produce_;
    BatchIteratorPtr inner_;
    uint64_t resident_ = 0;
  };

  /// Join: the right (build) side is a pipeline breaker — collected once,
  /// hashed for equi-joins — while the left (probe) side streams through
  /// batch by batch.
  class JoinIterator : public BatchIterator {
   public:
    JoinIterator(Executor* exec, const JoinNode& node, BatchIteratorPtr left,
                 BatchIteratorPtr right, Schema out_schema)
        : exec_(exec),
          node_(node),
          left_(std::move(left)),
          right_(std::move(right)),
          schema_(std::move(out_schema)) {}

    ~JoinIterator() override { exec_->stats_.SubResident(resident_); }

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      if (!built_) {
        LG_RETURN_IF_ERROR(Build());
      }
      while (true) {
        LG_RETURN_IF_ERROR(exec_->CheckCancel());
        LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> lbatch,
                            left_->Next());
        if (!lbatch.has_value()) return std::optional<RecordBatch>();
        exec_->stats_.AddResident(1);
        Result<RecordBatch> out = ProbeBatch(*lbatch);
        exec_->stats_.SubResident(1);
        LG_RETURN_IF_ERROR(out.status());
        if (out->num_rows() == 0) continue;
        exec_->stats_.OnEmit("join");
        return std::optional<RecordBatch>(std::move(*out));
      }
    }

   private:
    Status Build() {
      LG_ASSIGN_OR_RETURN(Table right_table, DrainIterator(right_.get()));
      LG_ASSIGN_OR_RETURN(rbatch_, right_table.Combine());
      right_.reset();  // the upstream pipeline can release its state
      resident_ = ResidentProxy(rbatch_.num_rows(), exec_->options_.batch_size);
      exec_->stats_.AddResident(resident_);

      const size_t left_fields =
          schema_.num_fields() - rbatch_.schema().num_fields();
      is_equi_ = node_.condition() != nullptr &&
                 ExtractEquiKeys(node_.condition(), left_fields, &equi_keys_);
      if (is_equi_) {
        for (size_t j = 0; j < rbatch_.num_rows(); ++j) {
          std::vector<Value> key;
          key.reserve(equi_keys_.size());
          bool has_null = false;
          for (auto [li, ri] : equi_keys_) {
            Value v = rbatch_.column(static_cast<size_t>(ri)).GetValue(j);
            has_null |= v.is_null();
            key.push_back(std::move(v));
          }
          if (has_null) continue;  // SQL: NULL keys never match
          hash_table_[std::move(key)].push_back(static_cast<int64_t>(j));
        }
      }
      ctx_ = exec_->MakeEvalContext();
      built_ = true;
      return Status::OK();
    }

    Result<RecordBatch> ProbeBatch(const RecordBatch& lbatch) {
      const size_t ln = lbatch.num_rows();
      const size_t rn = rbatch_.num_rows();
      const size_t rcols = rbatch_.num_columns();

      std::vector<int64_t> left_indices;
      std::vector<int64_t> right_indices;  // -1 = null-padded (left join)

      if (is_equi_) {
        // Hash join: probe the built right side with this left batch.
        for (size_t i = 0; i < ln; ++i) {
          std::vector<Value> key;
          key.reserve(equi_keys_.size());
          bool has_null = false;
          for (auto [li, ri] : equi_keys_) {
            Value v = lbatch.column(static_cast<size_t>(li)).GetValue(i);
            has_null |= v.is_null();
            key.push_back(std::move(v));
          }
          auto it = has_null ? hash_table_.end() : hash_table_.find(key);
          if (it != hash_table_.end()) {
            for (int64_t j : it->second) {
              left_indices.push_back(static_cast<int64_t>(i));
              right_indices.push_back(j);
            }
          } else if (node_.join_type() == JoinType::kLeft) {
            left_indices.push_back(static_cast<int64_t>(i));
            right_indices.push_back(-1);
          }
        }
      } else {
        // Vectorized nested loop: evaluate the predicate for one left row
        // against ALL right rows at once.
        for (size_t i = 0; i < ln; ++i) {
          std::vector<uint8_t> mask(rn, 1);
          if (node_.condition() && rn > 0) {
            std::vector<Column> combined_cols;
            combined_cols.reserve(lbatch.num_columns() + rcols);
            for (size_t c = 0; c < lbatch.num_columns(); ++c) {
              ColumnBuilder b(lbatch.column(c).kind());
              b.Reserve(rn);
              Value v = lbatch.column(c).GetValue(i);
              for (size_t j = 0; j < rn; ++j) {
                LG_RETURN_IF_ERROR(b.AppendValue(v));
              }
              combined_cols.push_back(b.Finish());
            }
            for (size_t c = 0; c < rcols; ++c) {
              combined_cols.push_back(rbatch_.column(c));
            }
            RecordBatch combined(schema_, std::move(combined_cols));
            LG_ASSIGN_OR_RETURN(
                mask, EvaluatePredicateMask(node_.condition(), combined, ctx_));
          }
          bool matched = false;
          for (size_t j = 0; j < rn; ++j) {
            if (!mask[j]) continue;
            matched = true;
            left_indices.push_back(static_cast<int64_t>(i));
            right_indices.push_back(static_cast<int64_t>(j));
          }
          if (!matched && node_.join_type() == JoinType::kLeft) {
            left_indices.push_back(static_cast<int64_t>(i));
            right_indices.push_back(-1);
          }
        }
      }

      // Materialize this probe batch's output from the index pairs.
      std::vector<Column> out_cols;
      out_cols.reserve(schema_.num_fields());
      for (size_t c = 0; c < lbatch.num_columns(); ++c) {
        out_cols.push_back(lbatch.column(c).Take(left_indices));
      }
      for (size_t c = 0; c < rcols; ++c) {
        ColumnBuilder b(rbatch_.column(c).kind());
        b.Reserve(right_indices.size());
        for (int64_t j : right_indices) {
          if (j < 0) {
            b.AppendNull();
          } else {
            LG_RETURN_IF_ERROR(b.AppendValue(
                rbatch_.column(c).GetValue(static_cast<size_t>(j))));
          }
        }
        out_cols.push_back(b.Finish());
      }
      return RecordBatch(schema_, std::move(out_cols));
    }

    Executor* exec_;
    const JoinNode& node_;
    BatchIteratorPtr left_;
    BatchIteratorPtr right_;
    Schema schema_;
    bool built_ = false;
    bool is_equi_ = false;
    RecordBatch rbatch_;
    std::vector<std::pair<int, int>> equi_keys_;
    std::map<std::vector<Value>, std::vector<int64_t>, ValueVectorLess>
        hash_table_;
    EvalContext ctx_;
    uint64_t resident_ = 0;
  };

  /// Limit short-circuits its upstream: once satisfied it never pulls the
  /// child again, so lazily-produced inputs (scans, remote fetches) stop.
  class LimitIterator : public BatchIterator {
   public:
    LimitIterator(Executor* exec, BatchIteratorPtr child, int64_t limit)
        : exec_(exec), child_(std::move(child)), remaining_(limit) {}

    const Schema& schema() const override { return child_->schema(); }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      if (remaining_ <= 0) return std::optional<RecordBatch>();
      LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, child_->Next());
      if (!batch.has_value()) {
        remaining_ = 0;
        return std::optional<RecordBatch>();
      }
      RecordBatch out = std::move(*batch);
      if (static_cast<int64_t>(out.num_rows()) > remaining_) {
        out = out.Slice(0, static_cast<size_t>(remaining_));
      }
      remaining_ -= static_cast<int64_t>(out.num_rows());
      exec_->stats_.OnEmit("limit");
      return std::optional<RecordBatch>(std::move(out));
    }

   private:
    Executor* exec_;
    BatchIteratorPtr child_;
    int64_t remaining_;
  };
};

// ---- Executor --------------------------------------------------------------

EvalContext Executor::MakeEvalContext() const {
  EvalContext ctx;
  ctx.current_user = context_.user;
  const UserDirectory* directory = &services_.catalog->users();
  ctx.is_group_member = [directory](const std::string& user,
                                    const std::string& group) {
    return directory->IsMember(user, group);
  };
  ctx.user_attribute = [directory](const std::string& user,
                                   const std::string& key) {
    auto value = directory->GetAttribute(user, key);
    return value.ok() ? *value : std::string();
  };
  return ctx;
}

Result<BatchIteratorPtr> Executor::Open(const PlanPtr& plan) {
  return OpenNode(plan);
}

Result<Table> Executor::Execute(const PlanPtr& plan) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr it, Open(plan));
  return DrainIterator(it.get());
}

Result<BatchIteratorPtr> Executor::OpenNode(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kTableRef:
      return Status::FailedPrecondition(
          "executor received an unresolved relation: " + plan->Describe());
    case PlanKind::kLocalRelation: {
      const auto& node = static_cast<const LocalRelationNode&>(*plan);
      return MakeBatchIterator(node.data().schema(), node.data(),
                               options_.batch_size);
    }
    case PlanKind::kResolvedScan:
      return OpenScan(static_cast<const ResolvedScanNode&>(*plan));
    case PlanKind::kRemoteScan: {
      if (services_.remote == nullptr) {
        return Status::FailedPrecondition(
            "plan contains a RemoteScan but no serverless endpoint is "
            "configured");
      }
      return services_.remote->ExecuteRemoteStream(
          static_cast<const RemoteScanNode&>(*plan), context_);
    }
    case PlanKind::kProject:
      return OpenProject(static_cast<const ProjectNode&>(*plan), plan);
    case PlanKind::kFilter:
      return OpenFilter(static_cast<const FilterNode&>(*plan));
    case PlanKind::kAggregate:
      return OpenAggregate(static_cast<const AggregateNode&>(*plan), plan);
    case PlanKind::kJoin:
      return OpenJoin(static_cast<const JoinNode&>(*plan));
    case PlanKind::kSort:
      return OpenSort(static_cast<const SortNode&>(*plan));
    case PlanKind::kLimit:
      return OpenLimit(static_cast<const LimitNode&>(*plan));
    case PlanKind::kSecureView:
      // Execution-time no-op; its meaning is an analysis/optimizer barrier.
      return OpenNode(static_cast<const SecureViewNode&>(*plan).child());
    case PlanKind::kExtension:
      return Status::FailedPrecondition(
          "extension node reached the executor without analysis: " +
          plan->Describe());
  }
  return Status::Internal("unreachable plan kind in executor");
}

Result<BatchIteratorPtr> Executor::OpenScan(const ResolvedScanNode& node) {
  auto token_it = analysis_ == nullptr
                      ? std::map<std::string, std::string>::const_iterator()
                      : analysis_->read_tokens.find(node.table_name());
  if (analysis_ == nullptr ||
      token_it == analysis_->read_tokens.end()) {
    return Status::PermissionDenied(
        "no user-bound storage token for table '" + node.table_name() +
        "' (scan without catalog resolution)");
  }
  DeltaTableFormat format(services_.store);
  // Only the manifest is read up front; parts stream on demand.
  LG_ASSIGN_OR_RETURN(
      TableManifest manifest,
      format.LoadManifest(token_it->second, node.storage_root()));
  return BatchIteratorPtr(std::make_unique<ExecIterators::ScanIterator>(
      this, format, token_it->second, std::move(manifest)));
}

Result<BatchIteratorPtr> Executor::OpenProject(const ProjectNode& node,
                                               const PlanPtr& self) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  LG_ASSIGN_OR_RETURN(Schema out_schema, Analyzer::ResolvedSchema(self));
  const std::vector<ExprPtr>& exprs = node.exprs();
  Schema schema_copy = out_schema;
  auto fn = [this, exprs, schema_copy](RecordBatch batch)
      -> Result<std::optional<RecordBatch>> {
    LG_ASSIGN_OR_RETURN(std::vector<Column> columns,
                        EvaluateWithUdfs(exprs, batch));
    return std::optional<RecordBatch>(
        RecordBatch(schema_copy, std::move(columns)));
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::StageIterator>(
      this, "project", std::move(out_schema), std::move(child), std::move(fn)));
}

Result<BatchIteratorPtr> Executor::OpenFilter(const FilterNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  Schema schema = child->schema();
  ExprPtr condition = node.condition();
  EvalContext ctx = MakeEvalContext();
  const bool has_udf = ContainsUdfCall(condition);
  auto fn = [this, condition, ctx, has_udf](RecordBatch batch)
      -> Result<std::optional<RecordBatch>> {
    std::vector<uint8_t> mask;
    if (has_udf) {
      LG_ASSIGN_OR_RETURN(std::vector<Column> cols,
                          EvaluateWithUdfs({condition}, batch));
      mask = BoolColumnToMask(cols[0]);
    } else {
      LG_ASSIGN_OR_RETURN(mask, EvaluatePredicateMask(condition, batch, ctx));
    }
    if (MaskCountSet(mask) == 0) {
      return std::optional<RecordBatch>();  // fully filtered: pull again
    }
    return std::optional<RecordBatch>(ApplyMask(batch, mask));
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::StageIterator>(
      this, "filter", std::move(schema), std::move(child), std::move(fn)));
}

Result<Table> Executor::AggregateTable(const AggregateNode& node,
                                       const RecordBatch& input,
                                       const Schema& out_schema) {
  EvalContext ctx = MakeEvalContext();

  // Evaluate group keys and aggregate argument columns.
  std::vector<Column> group_cols;
  for (const ExprPtr& e : node.group_exprs()) {
    LG_ASSIGN_OR_RETURN(std::vector<Column> c, EvaluateWithUdfs({e}, input));
    group_cols.push_back(std::move(c[0]));
  }
  struct AggSpec {
    std::string func;  // SUM/COUNT/AVG/MIN/MAX (uppercased)
    Column arg;
  };
  std::vector<AggSpec> specs;
  for (const ExprPtr& e : node.agg_exprs()) {
    const auto& call = static_cast<const FunctionCallExpr&>(*e);
    AggSpec spec;
    spec.func = ToUpperAscii(call.name());
    if (call.args().empty()) {
      return Status::InvalidArgument("aggregate " + spec.func +
                                     " needs an argument");
    }
    LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                        EvaluateWithUdfs({call.args()[0]}, input));
    spec.arg = std::move(c[0]);
    specs.push_back(std::move(spec));
  }

  std::map<std::vector<Value>, std::vector<AggState>, ValueVectorLess> groups;
  const size_t rows = input.num_rows();
  const bool global = node.group_exprs().empty();
  if (global) {
    groups[{}] = std::vector<AggState>(specs.size());
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> key;
    key.reserve(group_cols.size());
    for (const Column& c : group_cols) key.push_back(c.GetValue(r));
    auto [it, inserted] =
        groups.try_emplace(std::move(key), std::vector<AggState>(specs.size()));
    std::vector<AggState>& states = it->second;
    for (size_t s = 0; s < specs.size(); ++s) {
      AggState& state = states[s];
      ++state.rows;
      Value v = specs[s].arg.GetValue(r);
      if (v.is_null()) continue;
      ++state.count;
      if (v.is_double()) {
        state.saw_double = true;
        state.double_sum += v.double_value();
      } else if (v.is_int()) {
        state.int_sum += v.int_value();
        state.double_sum += static_cast<double>(v.int_value());
      } else if (v.is_bool()) {
        state.int_sum += v.bool_value() ? 1 : 0;
        state.double_sum += v.bool_value() ? 1 : 0;
      }
      if (!state.has_minmax) {
        state.min_value = v;
        state.max_value = v;
        state.has_minmax = true;
      } else {
        if (v.Compare(state.min_value) < 0) state.min_value = v;
        if (v.Compare(state.max_value) > 0) state.max_value = v;
      }
    }
  }

  TableBuilder builder(out_schema);
  for (const auto& [key, states] : groups) {
    std::vector<Value> row = key;
    for (size_t s = 0; s < specs.size(); ++s) {
      const AggState& state = states[s];
      const std::string& func = specs[s].func;
      if (func == "COUNT") {
        row.push_back(Value::Int(state.count));
      } else if (func == "SUM") {
        if (state.count == 0) {
          row.push_back(Value::Null());
        } else if (state.saw_double) {
          row.push_back(Value::Double(state.double_sum));
        } else {
          row.push_back(Value::Int(state.int_sum));
        }
      } else if (func == "AVG") {
        row.push_back(state.count == 0
                          ? Value::Null()
                          : Value::Double(state.double_sum /
                                          static_cast<double>(state.count)));
      } else if (func == "MIN") {
        row.push_back(state.has_minmax ? state.min_value : Value::Null());
      } else if (func == "MAX") {
        row.push_back(state.has_minmax ? state.max_value : Value::Null());
      } else {
        return Status::InvalidArgument("unknown aggregate " + func);
      }
    }
    LG_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  return builder.Build();
}

Result<BatchIteratorPtr> Executor::OpenAggregate(const AggregateNode& node,
                                                 const PlanPtr& self) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  LG_ASSIGN_OR_RETURN(Schema out_schema, Analyzer::ResolvedSchema(self));
  std::shared_ptr<BatchIterator> shared_child(child.release());
  const AggregateNode* node_ptr = &node;
  Schema schema_copy = out_schema;
  auto produce = [this, shared_child, node_ptr,
                  schema_copy]() -> Result<Table> {
    LG_ASSIGN_OR_RETURN(Table collected, DrainIterator(shared_child.get()));
    LG_ASSIGN_OR_RETURN(RecordBatch input, collected.Combine());
    return AggregateTable(*node_ptr, input, schema_copy);
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::MaterializingIterator>(
      this, "aggregate", std::move(out_schema), std::move(produce)));
}

Result<Table> Executor::SortTable(const SortNode& node,
                                  const RecordBatch& input) {
  std::vector<Column> key_cols;
  for (const SortKey& key : node.keys()) {
    LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                        EvaluateWithUdfs({key.expr}, input));
    key_cols.push_back(std::move(c[0]));
  }
  std::vector<int64_t> indices(input.num_rows());
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int64_t a, int64_t b) {
                     for (size_t k = 0; k < key_cols.size(); ++k) {
                       Value va = key_cols[k].GetValue(static_cast<size_t>(a));
                       Value vb = key_cols[k].GetValue(static_cast<size_t>(b));
                       int c = va.Compare(vb);
                       if (c != 0) {
                         return node.keys()[k].ascending ? c < 0 : c > 0;
                       }
                     }
                     return false;
                   });
  Table out(input.schema());
  LG_RETURN_IF_ERROR(out.AppendBatch(input.Take(indices)));
  return out;
}

Result<BatchIteratorPtr> Executor::OpenSort(const SortNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  Schema schema = child->schema();
  std::shared_ptr<BatchIterator> shared_child(child.release());
  const SortNode* node_ptr = &node;
  auto produce = [this, shared_child, node_ptr]() -> Result<Table> {
    LG_ASSIGN_OR_RETURN(Table collected, DrainIterator(shared_child.get()));
    LG_ASSIGN_OR_RETURN(RecordBatch input, collected.Combine());
    return SortTable(*node_ptr, input);
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::MaterializingIterator>(
      this, "sort", std::move(schema), std::move(produce)));
}

Result<BatchIteratorPtr> Executor::OpenJoin(const JoinNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr left, OpenNode(node.left()));
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr right, OpenNode(node.right()));
  std::vector<FieldDef> fields = left->schema().fields();
  for (const FieldDef& f : right->schema().fields()) fields.push_back(f);
  Schema out_schema(std::move(fields));
  return BatchIteratorPtr(std::make_unique<ExecIterators::JoinIterator>(
      this, node, std::move(left), std::move(right), std::move(out_schema)));
}

Result<BatchIteratorPtr> Executor::OpenLimit(const LimitNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  return BatchIteratorPtr(std::make_unique<ExecIterators::LimitIterator>(
      this, std::move(child), node.limit()));
}

Result<std::vector<Column>> Executor::EvaluateWithUdfs(
    const std::vector<ExprPtr>& exprs, const RecordBatch& batch) {
  EvalContext ctx = MakeEvalContext();
  auto calls = CollectUdfCalls(exprs);

  std::vector<ExprPtr> rewritten = exprs;
  RecordBatch extended = batch;

  if (!calls.empty()) {
    // 1) Evaluate every call's argument columns (UDF-free by construction).
    // 2) Execute calls grouped by trust domain (fusion) or singly.
    // 3) Append result columns and rewrite calls into column references.
    struct PendingCall {
      std::shared_ptr<const UdfCallExpr> call;
      std::vector<Column> arg_columns;
      int result_index = -1;
    };
    std::vector<PendingCall> pending;
    for (const auto& call : calls) {
      PendingCall p;
      p.call = call;
      for (const ExprPtr& arg : call->args()) {
        LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(arg, batch, ctx));
        p.arg_columns.push_back(std::move(c));
      }
      pending.push_back(std::move(p));
    }

    // Group: fusion on -> one group per trust domain; off -> one per call.
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < pending.size(); ++i) {
      std::string key = pending[i].call->owner();
      if (!options_.fuse_udfs) {
        key += "#" + pending[i].call->function_name() + "#" +
               std::to_string(i);
      }
      groups[key].push_back(i);
    }

    std::vector<FieldDef> extended_fields = batch.schema().fields();
    std::vector<Column> extended_columns = batch.columns();

    for (const auto& [key, members] : groups) {
      // Assemble the argument batch shipped to this sandbox. Identical
      // argument expressions across fused invocations share one column —
      // the batch crosses the boundary once, not once per UDF (§3.3).
      std::vector<FieldDef> arg_fields;
      std::vector<Column> arg_columns;
      std::vector<ExprPtr> arg_exprs_shipped;
      std::vector<UdfInvocation> invocations;
      for (size_t member : members) {
        PendingCall& p = pending[member];
        UdfInvocation inv;
        auto fn_it = analysis_ == nullptr
                         ? std::map<std::string, FunctionInfo>::const_iterator()
                         : analysis_->udfs.find(p.call->function_name());
        if (analysis_ == nullptr || fn_it == analysis_->udfs.end()) {
          return Status::FailedPrecondition(
              "UDF '" + p.call->function_name() +
              "' was not resolved by the analyzer");
        }
        inv.bytecode = fn_it->second.body;
        inv.result_name = "__udf" + std::to_string(member);
        inv.result_type = p.call->return_type();
        for (size_t j = 0; j < p.arg_columns.size(); ++j) {
          const ExprPtr& arg_expr = p.call->args()[j];
          size_t existing = arg_exprs_shipped.size();
          for (size_t k = 0; k < arg_exprs_shipped.size(); ++k) {
            if (arg_exprs_shipped[k]->Equals(*arg_expr)) {
              existing = k;
              break;
            }
          }
          if (existing < arg_exprs_shipped.size()) {
            inv.arg_indices.push_back(existing);
            continue;
          }
          inv.arg_indices.push_back(arg_columns.size());
          arg_fields.push_back({"a" + std::to_string(arg_columns.size()),
                                p.arg_columns[j].kind(), true});
          arg_exprs_shipped.push_back(arg_expr);
          arg_columns.push_back(std::move(p.arg_columns[j]));
        }
        invocations.push_back(std::move(inv));
      }
      if (arg_columns.empty()) {
        // Zero-arg UDFs: ship a row-count carrier column so the sandbox
        // still evaluates once per input row.
        ColumnBuilder rows_col(TypeKind::kInt64);
        rows_col.Reserve(batch.num_rows());
        for (size_t r = 0; r < batch.num_rows(); ++r) {
          rows_col.AppendInt(0);
        }
        arg_fields.push_back({"__rows", TypeKind::kInt64, false});
        arg_columns.push_back(rows_col.Finish());
      }
      RecordBatch arg_batch(Schema(std::move(arg_fields)),
                            std::move(arg_columns));

      const std::string& owner = pending[members.front()].call->owner();
      RecordBatch results;
      if (options_.isolate_udfs) {
        if (services_.dispatcher == nullptr) {
          return Status::FailedPrecondition(
              "isolated UDF execution requires a dispatcher");
        }
        // Egress policy: union of the members' allow-lists (same owner).
        SandboxPolicy policy = SandboxPolicy::LockedDown();
        for (size_t member : members) {
          auto fn_it =
              analysis_->udfs.find(pending[member].call->function_name());
          for (const std::string& host : fn_it->second.allowed_egress) {
            policy.egress_allow.push_back(host);
          }
        }
        // Supervised dispatch: the dispatcher pins the sandbox for the
        // batch, detects a crash, quarantines the container and charges the
        // owner's circuit breaker — the executor only sees the typed error.
        LG_ASSIGN_OR_RETURN(
            results, services_.dispatcher->Dispatch(context_.session_id, key,
                                                    policy, arg_batch,
                                                    invocations));
        ++stats_.udf_sandbox_batches;
      } else {
        // Unisolated baseline: run the VM in-process with full authority.
        UnrestrictedHost host(services_.host_env);
        std::vector<FieldDef> out_fields;
        std::vector<Column> out_columns;
        for (const UdfInvocation& inv : invocations) {
          ColumnBuilder builder(inv.result_type);
          builder.Reserve(arg_batch.num_rows());
          std::vector<Value> row_args(inv.arg_indices.size());
          for (size_t r = 0; r < arg_batch.num_rows(); ++r) {
            for (size_t j = 0; j < inv.arg_indices.size(); ++j) {
              row_args[j] = arg_batch.column(inv.arg_indices[j]).GetValue(r);
            }
            auto value = ExecuteUdf(inv.bytecode, row_args, &host);
            if (!value.ok()) {
              return value.status().WithContext("UDF '" + inv.bytecode.name +
                                                "' (unisolated)");
            }
            LG_ASSIGN_OR_RETURN(Value casted,
                                value->CastTo(inv.result_type));
            LG_RETURN_IF_ERROR(builder.AppendValue(casted));
          }
          out_fields.push_back({inv.result_name, inv.result_type, true});
          out_columns.push_back(builder.Finish());
        }
        results = RecordBatch(Schema(std::move(out_fields)),
                              std::move(out_columns));
      }
      stats_.udf_rows += results.num_rows();

      for (size_t i = 0; i < members.size(); ++i) {
        pending[members[i]].result_index =
            static_cast<int>(extended_columns.size());
        extended_fields.push_back(results.schema().field(i));
        extended_columns.push_back(results.column(i));
      }
    }

    extended = RecordBatch(Schema(extended_fields), extended_columns);

    // Rewrite each expression: UdfCall -> reference to its result column.
    for (ExprPtr& e : rewritten) {
      e = RewriteExpr(e, [&](const ExprPtr& sub) -> ExprPtr {
        if (sub->kind() != ExprKind::kUdfCall) return nullptr;
        for (const PendingCall& p : pending) {
          if (p.call->Equals(*sub)) {
            return ColIdx(extended.schema()
                              .field(static_cast<size_t>(p.result_index))
                              .name,
                          p.result_index);
          }
        }
        return nullptr;
      });
    }
  }

  std::vector<Column> out;
  out.reserve(rewritten.size());
  for (const ExprPtr& e : rewritten) {
    LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e, extended, ctx));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace lakeguard
