#include "engine/executor.h"

#include <algorithm>
#include <map>

#include "columnar/spill.h"
#include "common/strings.h"
#include "engine/analyzer.h"
#include "engine/plan_verifier.h"
#include "expr/evaluator.h"
#include "expr/compiler/policy_eval_cache.h"
#include "storage/delta_table.h"
#include "udf/verifier/verifier.h"
#include "udf/vm.h"

namespace lakeguard {

namespace {

/// Host interface of the *unisolated* baseline: user code runs inside the
/// engine process with the engine's ambient authority — full file system,
/// environment (credentials!) and unrestricted network. This is the §2.4
/// vulnerability, kept on purpose for comparison tests and Table 2.
class UnrestrictedHost : public HostInterface {
 public:
  explicit UnrestrictedHost(SimulatedHostEnvironment* env) : env_(env) {}

  Result<Value> CallHost(HostFn fn, const std::vector<Value>& args) override {
    switch (fn) {
      case HostFn::kReadFile: {
        LG_ASSIGN_OR_RETURN(std::string data,
                            env_->ReadFile(args[0].string_value()));
        return Value::String(std::move(data));
      }
      case HostFn::kWriteFile:
        env_->WriteFile(args[0].string_value(), args[1].ToString());
        return Value::Bool(true);
      case HostFn::kHttpGet: {
        LG_ASSIGN_OR_RETURN(
            std::string body,
            env_->HttpGet(args[0].string_value(), "", /*allowed=*/true));
        return Value::String(std::move(body));
      }
      case HostFn::kGetEnv: {
        LG_ASSIGN_OR_RETURN(std::string v,
                            env_->GetEnv(args[0].string_value()));
        return Value::String(std::move(v));
      }
      case HostFn::kClockNow:
        return Value::Int(env_->clock()->NowMicros());
      case HostFn::kLog:
        return Value::Null();
    }
    return Status::Internal("unreachable host fn");
  }

 private:
  SimulatedHostEnvironment* env_;
};

/// Lexicographic row-key comparator for grouping/sorting (NULLs first).
struct ValueVectorLess {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

struct AggState {
  int64_t count = 0;       // non-null inputs seen
  int64_t rows = 0;        // rows seen (COUNT semantics over literal args)
  int64_t int_sum = 0;
  double double_sum = 0;
  bool saw_double = false;
  Value min_value;
  Value max_value;
  bool has_minmax = false;
};

/// Folds one input value into an aggregate accumulator. Shared between the
/// in-memory hash aggregation and the spilled streaming group-merge so both
/// paths accumulate identically (same order, same double summation).
void UpdateAggState(AggState& state, const Value& v) {
  ++state.rows;
  if (v.is_null()) return;
  ++state.count;
  if (v.is_double()) {
    state.saw_double = true;
    state.double_sum += v.double_value();
  } else if (v.is_int()) {
    state.int_sum += v.int_value();
    state.double_sum += static_cast<double>(v.int_value());
  } else if (v.is_bool()) {
    state.int_sum += v.bool_value() ? 1 : 0;
    state.double_sum += v.bool_value() ? 1 : 0;
  }
  if (!state.has_minmax) {
    state.min_value = v;
    state.max_value = v;
    state.has_minmax = true;
  } else {
    if (v.Compare(state.min_value) < 0) state.min_value = v;
    if (v.Compare(state.max_value) > 0) state.max_value = v;
  }
}

Result<Value> FinalizeAggValue(const std::string& func,
                               const AggState& state) {
  if (func == "COUNT") return Value::Int(state.count);
  if (func == "SUM") {
    if (state.count == 0) return Value::Null();
    return state.saw_double ? Value::Double(state.double_sum)
                            : Value::Int(state.int_sum);
  }
  if (func == "AVG") {
    return state.count == 0
               ? Value::Null()
               : Value::Double(state.double_sum /
                               static_cast<double>(state.count));
  }
  if (func == "MIN") {
    return state.has_minmax ? state.min_value : Value::Null();
  }
  if (func == "MAX") {
    return state.has_minmax ? state.max_value : Value::Null();
  }
  return Status::InvalidArgument("unknown aggregate " + func);
}

/// Stable sort permutation of `rows` rows by the evaluated key columns.
std::vector<int64_t> SortedIndices(const std::vector<Column>& key_cols,
                                   const std::vector<SortKey>& keys,
                                   size_t rows) {
  std::vector<int64_t> indices(rows);
  for (size_t i = 0; i < rows; ++i) indices[i] = static_cast<int64_t>(i);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int64_t a, int64_t b) {
                     for (size_t k = 0; k < key_cols.size(); ++k) {
                       Value va = key_cols[k].GetValue(static_cast<size_t>(a));
                       Value vb = key_cols[k].GetValue(static_cast<size_t>(b));
                       int c = va.Compare(vb);
                       if (c != 0) return keys[k].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return indices;
}

bool KeysEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

/// Collects distinct UdfCall subtrees of `exprs` (structural dedup).
std::vector<std::shared_ptr<const UdfCallExpr>> CollectUdfCalls(
    const std::vector<ExprPtr>& exprs) {
  std::vector<std::shared_ptr<const UdfCallExpr>> calls;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kUdfCall) {
      for (const auto& existing : calls) {
        if (existing->Equals(*e)) return;
      }
      calls.push_back(std::static_pointer_cast<const UdfCallExpr>(e));
      return;  // analyzer bans nested UDFs in arguments
    }
    for (const ExprPtr& child : e->children()) walk(child);
  };
  for (const ExprPtr& e : exprs) walk(e);
  return calls;
}

/// True when `expr` reads any column whose (lower-cased) name is in
/// `protected_names` — the taint-source test for UDF arguments.
bool ExprTouchesProtected(const ExprPtr& expr,
                          const std::set<std::string>& protected_names) {
  if (expr == nullptr || protected_names.empty()) return false;
  if (expr->kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
    return protected_names.count(ToLowerAscii(ref.name())) > 0;
  }
  for (const ExprPtr& child : expr->children()) {
    if (ExprTouchesProtected(child, protected_names)) return true;
  }
  return false;
}

/// Extracts pure equi-join key pairs from `cond`: a conjunction of
/// `left_col = right_col` over *resolved* refs. Returns false when the
/// condition has any other shape (the caller falls back to nested-loop).
bool ExtractEquiKeys(const ExprPtr& cond, size_t left_fields,
                     std::vector<std::pair<int, int>>* keys) {
  if (cond->kind() == ExprKind::kBinaryOp) {
    const auto& bin = static_cast<const BinaryOpExpr&>(*cond);
    if (bin.op() == BinaryOpKind::kAnd) {
      return ExtractEquiKeys(bin.left(), left_fields, keys) &&
             ExtractEquiKeys(bin.right(), left_fields, keys);
    }
    if (bin.op() == BinaryOpKind::kEq &&
        bin.left()->kind() == ExprKind::kColumnRef &&
        bin.right()->kind() == ExprKind::kColumnRef) {
      const auto& a = static_cast<const ColumnRefExpr&>(*bin.left());
      const auto& b = static_cast<const ColumnRefExpr&>(*bin.right());
      if (!a.resolved() || !b.resolved()) return false;
      int ai = a.index(), bi = b.index();
      int ln = static_cast<int>(left_fields);
      if (ai < ln && bi >= ln) {
        keys->emplace_back(ai, bi - ln);
        return true;
      }
      if (bi < ln && ai >= ln) {
        keys->emplace_back(bi, ai - ln);
        return true;
      }
    }
  }
  return false;
}

/// Batches a breaker's materialized output occupies, as the resident-memory
/// proxy (breakers usually hold one combined batch; charge its bounded-batch
/// equivalent so streaming and materialized plans compare apples-to-apples).
uint64_t ResidentProxy(size_t rows, size_t batch_size) {
  if (batch_size == 0) return 1;
  return std::max<uint64_t>(1, (rows + batch_size - 1) / batch_size);
}

}  // namespace

// ---- Operator iterators ----------------------------------------------------
//
// Nested in one access-granting class so the pipeline stages can use the
// Executor's private evaluation helpers and stats without widening its API.

class ExecIterators {
 public:
  /// Leaf: streams a stored table part by part, re-slicing each part into
  /// bounded batches. Parts are read lazily — a short-circuiting consumer
  /// (LIMIT) leaves the tail of the table untouched on storage.
  class ScanIterator : public BatchIterator {
   public:
    ScanIterator(Executor* exec, DeltaTableFormat format, std::string token,
                 TableManifest manifest)
        : exec_(exec),
          format_(format),
          token_(std::move(token)),
          manifest_(std::move(manifest)) {}

    ~ScanIterator() override {
      if (has_part_) {
        exec_->stats_.SubResident(1);
        exec_->ReleaseBytes(part_bytes_);
      }
    }

    const Schema& schema() const override { return manifest_.schema; }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      const size_t batch_size = exec_->options_.batch_size;
      while (true) {
        if (has_part_ && offset_ < part_.num_rows()) {
          size_t take = batch_size == 0
                            ? part_.num_rows() - offset_
                            : std::min(batch_size, part_.num_rows() - offset_);
          RecordBatch out = (offset_ == 0 && take == part_.num_rows())
                                ? part_
                                : part_.Slice(offset_, take);
          offset_ += take;
          if (offset_ >= part_.num_rows()) {
            part_ = RecordBatch();
            has_part_ = false;
            exec_->stats_.SubResident(1);
            exec_->ReleaseBytes(part_bytes_);
            part_bytes_ = 0;
          }
          ++exec_->stats_.batches_scanned;
          exec_->stats_.rows_scanned += out.num_rows();
          exec_->stats_.OnEmit("scan");
          return std::optional<RecordBatch>(std::move(out));
        }
        if (part_index_ >= manifest_.parts.size()) return std::optional<RecordBatch>();
        LG_ASSIGN_OR_RETURN(
            part_, format_.ReadPart(token_, manifest_.parts[part_index_]));
        ++part_index_;
        offset_ = 0;
        has_part_ = true;
        exec_->stats_.AddResident(1);
        // The loaded part is the scan's resident working set: forced (the
        // scan must hold one part to make progress), released on advance.
        part_bytes_ = part_.ByteSize();
        exec_->ChargeBytesForced(part_bytes_);
      }
    }

   private:
    Executor* exec_;
    DeltaTableFormat format_;
    std::string token_;
    TableManifest manifest_;
    size_t part_index_ = 0;
    RecordBatch part_;
    size_t offset_ = 0;
    bool has_part_ = false;
    uint64_t part_bytes_ = 0;
  };

  /// Streaming batch-in/batch-out stage (Project, Filter, masking, the UDF
  /// data path). `fn` returning nullopt means "this input batch produced no
  /// output" (fully filtered) — the stage pulls again instead of emitting
  /// empties downstream.
  class StageIterator : public BatchIterator {
   public:
    using Fn =
        std::function<Result<std::optional<RecordBatch>>(RecordBatch)>;

    StageIterator(Executor* exec, const char* name, Schema schema,
                  BatchIteratorPtr child, Fn fn)
        : exec_(exec),
          name_(name),
          schema_(std::move(schema)),
          child_(std::move(child)),
          fn_(std::move(fn)) {}

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      while (true) {
        LG_RETURN_IF_ERROR(exec_->CheckCancel());
        LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> input,
                            child_->Next());
        if (!input.has_value()) return std::optional<RecordBatch>();
        exec_->stats_.AddResident(1);
        const uint64_t in_bytes = input->ByteSize();
        exec_->ChargeBytesForced(in_bytes);
        Result<std::optional<RecordBatch>> out = fn_(std::move(*input));
        exec_->stats_.SubResident(1);
        exec_->ReleaseBytes(in_bytes);
        LG_RETURN_IF_ERROR(out.status());
        if (!out->has_value()) continue;
        exec_->stats_.OnEmit(name_);
        return std::move(*out);
      }
    }

   private:
    Executor* exec_;
    const char* name_;
    Schema schema_;
    BatchIteratorPtr child_;
    Fn fn_;
  };

  /// A pipeline breaker's collected child: either a fully buffered table
  /// (budget permitting) or a set of sorted spill runs on local disk. The
  /// SpillDir owns the run files and removes them on destruction.
  struct CollectedInput {
    Schema schema{std::vector<FieldDef>{}};
    bool spilled = false;
    Table table{Schema(std::vector<FieldDef>{})};  // valid when !spilled
    uint64_t charged = 0;  // bytes charged for the buffered table
    std::vector<spill::SpillRun> runs;
    std::unique_ptr<spill::SpillDir> dir;
  };

  /// Drains `child` under the operation budget. Each buffered batch is
  /// charged via TryReserve; a refusal flushes the buffer as one run —
  /// sorted by `keys` when given (stable) so runs can be merge-read — and
  /// keeps going. The one in-flight batch is force-charged if even the
  /// emptied buffer cannot fit it ("+1 batch slack").
  static Result<CollectedInput> CollectWithSpill(
      Executor* exec, BatchIterator* child,
      const std::vector<SortKey>* keys) {
    CollectedInput out;
    out.schema = child->schema();
    out.table = Table(out.schema);
    uint64_t buffered = 0;

    auto flush_to_run = [&]() -> Status {
      if (out.table.num_rows() == 0) return Status::OK();
      LG_ASSIGN_OR_RETURN(RecordBatch combined, out.table.Combine());
      RecordBatch sorted = std::move(combined);
      if (keys != nullptr && !keys->empty() && sorted.num_rows() > 0) {
        std::vector<Column> key_cols;
        for (const SortKey& k : *keys) {
          LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                              exec->EvaluateWithUdfs({k.expr}, sorted));
          key_cols.push_back(std::move(c[0]));
        }
        sorted = sorted.Take(SortedIndices(key_cols, *keys,
                                           sorted.num_rows()));
      }
      const size_t bs = exec->options_.batch_size == 0
                            ? sorted.num_rows()
                            : exec->options_.batch_size;
      std::vector<RecordBatch> slices;
      for (size_t off = 0; off < sorted.num_rows(); off += bs) {
        slices.push_back(
            sorted.Slice(off, std::min(bs, sorted.num_rows() - off)));
      }
      if (!out.dir) {
        LG_ASSIGN_OR_RETURN(out.dir,
                            spill::SpillDir::Create(exec->options_.spill_dir));
      }
      LG_ASSIGN_OR_RETURN(spill::SpillRun run, out.dir->WriteRun(slices));
      ++exec->stats_.spill_runs;
      exec->stats_.spill_bytes += run.bytes;
      out.runs.push_back(std::move(run));
      out.table = Table(out.schema);
      exec->ReleaseBytes(buffered);
      buffered = 0;
      return Status::OK();
    };

    Status collect = [&]() -> Status {
      while (true) {
        LG_RETURN_IF_ERROR(exec->CheckCancel());
        LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, child->Next());
        if (!batch.has_value()) break;
        if (batch->num_rows() == 0) continue;
        const uint64_t bytes = batch->ByteSize();
        Status charge = exec->TryChargeBytes(bytes);
        if (!charge.ok()) {
          if (!exec->options_.enable_spill) return charge;
          // Ladder step 2: degrade to spilled execution instead of failing.
          LG_RETURN_IF_ERROR(flush_to_run());
          if (!exec->TryChargeBytes(bytes).ok()) {
            exec->ChargeBytesForced(bytes);
          }
        }
        buffered += bytes;
        LG_RETURN_IF_ERROR(out.table.AppendBatch(std::move(*batch)));
      }
      if (!out.runs.empty()) {
        LG_RETURN_IF_ERROR(flush_to_run());
        out.spilled = true;
        out.table = Table(out.schema);
      } else {
        out.charged = buffered;
        buffered = 0;
      }
      return Status::OK();
    }();
    if (!collect.ok()) {
      exec->ReleaseBytes(buffered);
      return collect;
    }
    return out;
  }

  /// K-way merge over sorted spill runs. Holds one loaded batch (plus its
  /// evaluated key columns) per run — the merge working set is K batches,
  /// charged forced. Ties break on the lowest run index; runs are written
  /// from consecutive input prefixes and sorted stably, so the merge output
  /// equals a global stable sort of the input. Exhausted runs are deleted
  /// eagerly (best effort — the SpillDir sweep reclaims stragglers).
  class MergeIterator : public BatchIterator {
   public:
    /// `name` labels emitted batches in operator stats; nullptr when the
    /// merge feeds a downstream wrapper that does its own accounting.
    MergeIterator(Executor* exec, const char* name,
                  std::vector<SortKey> keys, CollectedInput input)
        : exec_(exec),
          name_(name),
          schema_(input.schema),
          keys_(std::move(keys)),
          runs_(std::move(input.runs)),
          dir_(std::move(input.dir)) {}

    ~MergeIterator() override {
      for (Source& s : sources_) ReleaseSource(s);
    }

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      if (!initialized_) {
        LG_RETURN_IF_ERROR(Init());
      }
      const size_t bs = std::max<size_t>(1, exec_->options_.batch_size);
      TableBuilder builder(schema_);
      size_t emitted = 0;
      while (emitted < bs) {
        int best = -1;
        for (size_t s = 0; s < sources_.size(); ++s) {
          if (!sources_[s].loaded) continue;
          if (best < 0 || Less(sources_[s], sources_[static_cast<size_t>(
                                                best)])) {
            best = static_cast<int>(s);
          }
        }
        if (best < 0) break;
        Source& src = sources_[static_cast<size_t>(best)];
        LG_RETURN_IF_ERROR(builder.AppendRow(src.batch.Row(src.row)));
        ++emitted;
        LG_RETURN_IF_ERROR(Advance(src));
      }
      if (emitted == 0) return std::optional<RecordBatch>();
      Table t = builder.Build();
      LG_ASSIGN_OR_RETURN(RecordBatch out, t.Combine());
      if (name_ != nullptr) exec_->stats_.OnEmit(name_);
      return std::optional<RecordBatch>(std::move(out));
    }

   private:
    struct Source {
      spill::SpillRunReader reader;
      size_t run_index = 0;
      RecordBatch batch;
      std::vector<Column> key_cols;
      size_t row = 0;
      bool loaded = false;
      uint64_t charged = 0;
    };

    Status Init() {
      sources_.reserve(runs_.size());
      for (size_t r = 0; r < runs_.size(); ++r) {
        LG_ASSIGN_OR_RETURN(spill::SpillRunReader reader,
                            spill::SpillRunReader::Open(runs_[r]));
        Source src{std::move(reader), r, RecordBatch(), {}, 0, false, 0};
        LG_RETURN_IF_ERROR(LoadNextBatch(src));
        sources_.push_back(std::move(src));
      }
      initialized_ = true;
      return Status::OK();
    }

    Status LoadNextBatch(Source& src) {
      ReleaseSource(src);
      while (true) {
        LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch,
                            src.reader.Next());
        if (!batch.has_value()) {
          src.loaded = false;
          if (dir_) {
            // Consumed: drop the file now rather than at teardown.
            (void)dir_->DeleteRun(runs_[src.run_index]);
          }
          return Status::OK();
        }
        if (batch->num_rows() == 0) continue;
        src.batch = std::move(*batch);
        src.row = 0;
        src.loaded = true;
        src.charged = src.batch.ByteSize();
        exec_->ChargeBytesForced(src.charged);
        exec_->stats_.AddResident(1);
        src.key_cols.clear();
        for (const SortKey& k : keys_) {
          LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                              exec_->EvaluateWithUdfs({k.expr}, src.batch));
          src.key_cols.push_back(std::move(c[0]));
        }
        return Status::OK();
      }
    }

    void ReleaseSource(Source& src) {
      if (!src.loaded) return;
      exec_->ReleaseBytes(src.charged);
      exec_->stats_.SubResident(1);
      src.charged = 0;
      src.loaded = false;
    }

    Status Advance(Source& src) {
      ++src.row;
      if (src.row >= src.batch.num_rows()) {
        LG_RETURN_IF_ERROR(LoadNextBatch(src));
      }
      return Status::OK();
    }

    bool Less(const Source& a, const Source& b) const {
      for (size_t k = 0; k < keys_.size(); ++k) {
        Value va = a.key_cols[k].GetValue(a.row);
        Value vb = b.key_cols[k].GetValue(b.row);
        int c = va.Compare(vb);
        if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
      }
      return a.run_index < b.run_index;  // stable: earlier input first
    }

    Executor* exec_;
    const char* name_;
    Schema schema_;
    std::vector<SortKey> keys_;
    std::vector<spill::SpillRun> runs_;
    std::unique_ptr<spill::SpillDir> dir_;
    std::vector<Source> sources_;
    bool initialized_ = false;
  };

  /// Explicit pipeline breaker: on first pull, runs `produce` (which drains
  /// the child pipeline under the budget) and then streams from whatever
  /// inner iterator it built — a bounded table replay when the input fit in
  /// budget, a spill merge when it did not. Byte and resident charges for a
  /// materialized result are owned here and released when the breaker is
  /// dropped.
  class BreakerIterator : public BatchIterator {
   public:
    struct Inner {
      BatchIteratorPtr iter;
      uint64_t charged_bytes = 0;
      uint64_t resident = 0;
    };
    using Producer = std::function<Result<Inner>()>;

    BreakerIterator(Executor* exec, const char* name, Schema schema,
                    Producer produce)
        : exec_(exec),
          name_(name),
          schema_(std::move(schema)),
          produce_(std::move(produce)) {}

    ~BreakerIterator() override {
      exec_->stats_.SubResident(inner_.resident);
      exec_->ReleaseBytes(inner_.charged_bytes);
    }

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      if (!inner_.iter) {
        LG_ASSIGN_OR_RETURN(inner_, produce_());
      }
      LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch,
                          inner_.iter->Next());
      if (batch.has_value()) exec_->stats_.OnEmit(name_);
      return batch;
    }

   private:
    Executor* exec_;
    const char* name_;
    Schema schema_;
    Producer produce_;
    Inner inner_;
  };

  /// Streaming group-by over a key-sorted merge: finalizes a group when its
  /// key changes, so only the open group's accumulators are resident. The
  /// merge is a global stable sort on the group key with the same comparator
  /// as the in-memory std::map aggregation — output group order and
  /// accumulation order within a group both match the in-memory run.
  class GroupMergeIterator : public BatchIterator {
   public:
    GroupMergeIterator(Executor* exec, const AggregateNode& node,
                       Schema out_schema, BatchIteratorPtr child)
        : exec_(exec),
          node_(node),
          schema_(std::move(out_schema)),
          child_(std::move(child)) {}

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      if (done_) return std::optional<RecordBatch>();
      if (!prepared_) {
        LG_RETURN_IF_ERROR(Prepare());
      }
      const size_t bs = std::max<size_t>(1, exec_->options_.batch_size);
      TableBuilder builder(schema_);
      size_t emitted = 0;
      while (emitted < bs && !done_) {
        if (!have_batch_) {
          LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch,
                              child_->Next());
          if (!batch.has_value()) {
            if (open_group_) {
              LG_RETURN_IF_ERROR(AppendGroup(builder));
              ++emitted;
              open_group_ = false;
            }
            done_ = true;
            break;
          }
          if (batch->num_rows() == 0) continue;
          batch_ = std::move(*batch);
          LG_RETURN_IF_ERROR(EvalBatchColumns());
          row_ = 0;
          have_batch_ = true;
        }
        while (row_ < batch_.num_rows() && emitted < bs) {
          std::vector<Value> key;
          key.reserve(group_cols_.size());
          for (const Column& c : group_cols_) key.push_back(c.GetValue(row_));
          if (open_group_ && !KeysEqual(key, key_)) {
            LG_RETURN_IF_ERROR(AppendGroup(builder));
            ++emitted;
            open_group_ = false;
            continue;  // re-examine this row (emitted may be at the cap now)
          }
          if (!open_group_) {
            key_ = std::move(key);
            states_.assign(agg_specs_.size(), AggState());
            open_group_ = true;
          }
          for (size_t s = 0; s < agg_specs_.size(); ++s) {
            UpdateAggState(states_[s], agg_cols_[s].GetValue(row_));
          }
          ++row_;
        }
        if (row_ >= batch_.num_rows()) have_batch_ = false;
      }
      if (emitted == 0) return std::optional<RecordBatch>();
      Table t = builder.Build();
      // No OnEmit here: the wrapping BreakerIterator counts the emission.
      LG_ASSIGN_OR_RETURN(RecordBatch out, t.Combine());
      return std::optional<RecordBatch>(std::move(out));
    }

   private:
    Status Prepare() {
      for (const ExprPtr& e : node_.agg_exprs()) {
        const auto& call = static_cast<const FunctionCallExpr&>(*e);
        if (call.args().empty()) {
          return Status::InvalidArgument("aggregate " +
                                         ToUpperAscii(call.name()) +
                                         " needs an argument");
        }
        agg_specs_.push_back({ToUpperAscii(call.name()), call.args()[0]});
      }
      prepared_ = true;
      return Status::OK();
    }

    Status EvalBatchColumns() {
      group_cols_.clear();
      for (const ExprPtr& e : node_.group_exprs()) {
        LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                            exec_->EvaluateWithUdfs({e}, batch_));
        group_cols_.push_back(std::move(c[0]));
      }
      agg_cols_.clear();
      for (const auto& [func, arg] : agg_specs_) {
        LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                            exec_->EvaluateWithUdfs({arg}, batch_));
        agg_cols_.push_back(std::move(c[0]));
      }
      return Status::OK();
    }

    Status AppendGroup(TableBuilder& builder) {
      std::vector<Value> row = key_;
      for (size_t s = 0; s < agg_specs_.size(); ++s) {
        LG_ASSIGN_OR_RETURN(Value v,
                            FinalizeAggValue(agg_specs_[s].first, states_[s]));
        row.push_back(std::move(v));
      }
      return builder.AppendRow(row);
    }

    Executor* exec_;
    const AggregateNode& node_;
    Schema schema_;
    BatchIteratorPtr child_;
    std::vector<std::pair<std::string, ExprPtr>> agg_specs_;
    bool prepared_ = false;
    RecordBatch batch_;
    std::vector<Column> group_cols_;
    std::vector<Column> agg_cols_;
    size_t row_ = 0;
    bool have_batch_ = false;
    std::vector<Value> key_;
    std::vector<AggState> states_;
    bool open_group_ = false;
    bool done_ = false;
  };

  /// Join: the right (build) side is a pipeline breaker — collected once,
  /// hashed for equi-joins — while the left (probe) side streams through
  /// batch by batch.
  class JoinIterator : public BatchIterator {
   public:
    JoinIterator(Executor* exec, const JoinNode& node, BatchIteratorPtr left,
                 BatchIteratorPtr right, Schema out_schema)
        : exec_(exec),
          node_(node),
          left_(std::move(left)),
          right_(std::move(right)),
          schema_(std::move(out_schema)) {}

    ~JoinIterator() override {
      exec_->stats_.SubResident(resident_);
      exec_->ReleaseBytes(build_charged_);
    }

    const Schema& schema() const override { return schema_; }

    Result<std::optional<RecordBatch>> Next() override {
      if (!built_) {
        LG_RETURN_IF_ERROR(Build());
      }
      while (true) {
        LG_RETURN_IF_ERROR(exec_->CheckCancel());
        LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> lbatch,
                            left_->Next());
        if (!lbatch.has_value()) return std::optional<RecordBatch>();
        exec_->stats_.AddResident(1);
        const uint64_t probe_bytes = lbatch->ByteSize();
        exec_->ChargeBytesForced(probe_bytes);
        Result<RecordBatch> out = spilled_build_ ? ProbeBatchSpilled(*lbatch)
                                                 : ProbeBatch(*lbatch);
        exec_->stats_.SubResident(1);
        exec_->ReleaseBytes(probe_bytes);
        LG_RETURN_IF_ERROR(out.status());
        if (out->num_rows() == 0) continue;
        exec_->stats_.OnEmit("join");
        return std::optional<RecordBatch>(std::move(*out));
      }
    }

   private:
    Status Build() {
      // The build side is collected under the budget; past it, the build
      // input lands in insertion-ordered spill runs and every probe batch
      // block-scans them from disk instead of holding the table resident.
      LG_ASSIGN_OR_RETURN(CollectedInput in,
                          CollectWithSpill(exec_, right_.get(), nullptr));
      right_.reset();  // the upstream pipeline can release its state
      right_schema_ = in.schema;
      const size_t left_fields =
          schema_.num_fields() - right_schema_.num_fields();
      is_equi_ = node_.condition() != nullptr &&
                 ExtractEquiKeys(node_.condition(), left_fields, &equi_keys_);

      if (in.spilled) {
        spilled_build_ = true;
        runs_ = std::move(in.runs);
        dir_ = std::move(in.dir);
      } else {
        LG_ASSIGN_OR_RETURN(rbatch_, in.table.Combine());
        in.table = Table(right_schema_);
        // Re-charge the combined build batch by its actual byte size
        // (string heap capacity included) in place of the buffered input.
        build_charged_ = rbatch_.ByteSize();
        exec_->ChargeBytesForced(build_charged_);
        exec_->ReleaseBytes(in.charged);
        in.charged = 0;
        resident_ =
            ResidentProxy(rbatch_.num_rows(), exec_->options_.batch_size);
        exec_->stats_.AddResident(resident_);
        if (is_equi_) {
          for (size_t j = 0; j < rbatch_.num_rows(); ++j) {
            std::vector<Value> key;
            key.reserve(equi_keys_.size());
            bool has_null = false;
            for (auto [li, ri] : equi_keys_) {
              Value v = rbatch_.column(static_cast<size_t>(ri)).GetValue(j);
              has_null |= v.is_null();
              key.push_back(std::move(v));
            }
            if (has_null) continue;  // SQL: NULL keys never match
            hash_table_[std::move(key)].push_back(static_cast<int64_t>(j));
          }
        }
      }
      ctx_ = exec_->MakeEvalContext();
      built_ = true;
      return Status::OK();
    }

    /// Block-nested-loop probe against the spilled build side: streams the
    /// runs block by block, buffering only this probe batch's matched build
    /// rows. Match pairs are re-ordered to (probe row asc, build row asc) —
    /// runs hold consecutive build prefixes, so block order IS global build
    /// order and the output is row-identical to the in-memory join.
    Result<RecordBatch> ProbeBatchSpilled(const RecordBatch& lbatch) {
      const size_t ln = lbatch.num_rows();
      TableBuilder matched(right_schema_);
      size_t matched_rows = 0;
      // (probe row, index into `matched`); -1 never appears here — left-join
      // padding is added after the scan from the per-row matched flags.
      std::vector<std::pair<int64_t, int64_t>> pairs;

      // Probe keys are computed once per probe batch.
      std::vector<std::vector<Value>> probe_keys(is_equi_ ? ln : 0);
      std::vector<uint8_t> probe_key_null(is_equi_ ? ln : 0, 0);
      if (is_equi_) {
        for (size_t i = 0; i < ln; ++i) {
          probe_keys[i].reserve(equi_keys_.size());
          for (auto [li, ri] : equi_keys_) {
            Value v = lbatch.column(static_cast<size_t>(li)).GetValue(i);
            probe_key_null[i] |= v.is_null() ? 1 : 0;
            probe_keys[i].push_back(std::move(v));
          }
        }
      }

      for (const spill::SpillRun& run : runs_) {
        LG_ASSIGN_OR_RETURN(spill::SpillRunReader reader,
                            spill::SpillRunReader::Open(run));
        while (true) {
          LG_RETURN_IF_ERROR(exec_->CheckCancel());
          LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> block_opt,
                              reader.Next(nullptr));
          if (!block_opt.has_value()) break;
          const RecordBatch& block = *block_opt;
          const size_t rn = block.num_rows();
          if (rn == 0) continue;
          if (is_equi_) {
            std::map<std::vector<Value>, std::vector<int64_t>,
                     ValueVectorLess>
                block_table;
            for (size_t j = 0; j < rn; ++j) {
              std::vector<Value> key;
              key.reserve(equi_keys_.size());
              bool has_null = false;
              for (auto [li, ri] : equi_keys_) {
                Value v = block.column(static_cast<size_t>(ri)).GetValue(j);
                has_null |= v.is_null();
                key.push_back(std::move(v));
              }
              if (has_null) continue;
              block_table[std::move(key)].push_back(static_cast<int64_t>(j));
            }
            for (size_t i = 0; i < ln; ++i) {
              if (probe_key_null[i]) continue;
              auto it = block_table.find(probe_keys[i]);
              if (it == block_table.end()) continue;
              for (int64_t j : it->second) {
                LG_RETURN_IF_ERROR(
                    matched.AppendRow(block.Row(static_cast<size_t>(j))));
                pairs.emplace_back(static_cast<int64_t>(i),
                                   static_cast<int64_t>(matched_rows++));
              }
            }
          } else {
            for (size_t i = 0; i < ln; ++i) {
              std::vector<uint8_t> mask(rn, 1);
              if (node_.condition()) {
                std::vector<Column> combined_cols;
                combined_cols.reserve(lbatch.num_columns() +
                                      block.num_columns());
                for (size_t c = 0; c < lbatch.num_columns(); ++c) {
                  ColumnBuilder b(lbatch.column(c).kind());
                  b.Reserve(rn);
                  Value v = lbatch.column(c).GetValue(i);
                  for (size_t j = 0; j < rn; ++j) {
                    LG_RETURN_IF_ERROR(b.AppendValue(v));
                  }
                  combined_cols.push_back(b.Finish());
                }
                for (size_t c = 0; c < block.num_columns(); ++c) {
                  combined_cols.push_back(block.column(c));
                }
                RecordBatch combined(schema_, std::move(combined_cols));
                LG_ASSIGN_OR_RETURN(
                    mask,
                    EvaluatePredicateMask(node_.condition(), combined, ctx_));
              }
              for (size_t j = 0; j < rn; ++j) {
                if (!mask[j]) continue;
                LG_RETURN_IF_ERROR(matched.AppendRow(block.Row(j)));
                pairs.emplace_back(static_cast<int64_t>(i),
                                   static_cast<int64_t>(matched_rows++));
              }
            }
          }
        }
      }

      // Pairs were appended block-major: stable sort by probe row leaves,
      // per probe row, global build order — identical to the in-memory path.
      std::stable_sort(pairs.begin(), pairs.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
      Table mt = matched.Build();
      LG_ASSIGN_OR_RETURN(RecordBatch mbatch, mt.Combine());

      std::vector<int64_t> left_indices;
      std::vector<int64_t> buffer_indices;  // -1 = null-padded (left join)
      size_t p = 0;
      for (size_t i = 0; i < ln; ++i) {
        bool any = false;
        while (p < pairs.size() &&
               pairs[p].first == static_cast<int64_t>(i)) {
          left_indices.push_back(static_cast<int64_t>(i));
          buffer_indices.push_back(pairs[p].second);
          any = true;
          ++p;
        }
        if (!any && node_.join_type() == JoinType::kLeft) {
          left_indices.push_back(static_cast<int64_t>(i));
          buffer_indices.push_back(-1);
        }
      }

      std::vector<Column> out_cols;
      out_cols.reserve(schema_.num_fields());
      for (size_t c = 0; c < lbatch.num_columns(); ++c) {
        out_cols.push_back(lbatch.column(c).Take(left_indices));
      }
      for (size_t c = 0; c < right_schema_.num_fields(); ++c) {
        ColumnBuilder b(mbatch.column(c).kind());
        b.Reserve(buffer_indices.size());
        for (int64_t j : buffer_indices) {
          if (j < 0) {
            b.AppendNull();
          } else {
            LG_RETURN_IF_ERROR(b.AppendValue(
                mbatch.column(c).GetValue(static_cast<size_t>(j))));
          }
        }
        out_cols.push_back(b.Finish());
      }
      return RecordBatch(schema_, std::move(out_cols));
    }

    Result<RecordBatch> ProbeBatch(const RecordBatch& lbatch) {
      const size_t ln = lbatch.num_rows();
      const size_t rn = rbatch_.num_rows();
      const size_t rcols = rbatch_.num_columns();

      std::vector<int64_t> left_indices;
      std::vector<int64_t> right_indices;  // -1 = null-padded (left join)

      if (is_equi_) {
        // Hash join: probe the built right side with this left batch.
        for (size_t i = 0; i < ln; ++i) {
          std::vector<Value> key;
          key.reserve(equi_keys_.size());
          bool has_null = false;
          for (auto [li, ri] : equi_keys_) {
            Value v = lbatch.column(static_cast<size_t>(li)).GetValue(i);
            has_null |= v.is_null();
            key.push_back(std::move(v));
          }
          auto it = has_null ? hash_table_.end() : hash_table_.find(key);
          if (it != hash_table_.end()) {
            for (int64_t j : it->second) {
              left_indices.push_back(static_cast<int64_t>(i));
              right_indices.push_back(j);
            }
          } else if (node_.join_type() == JoinType::kLeft) {
            left_indices.push_back(static_cast<int64_t>(i));
            right_indices.push_back(-1);
          }
        }
      } else {
        // Vectorized nested loop: evaluate the predicate for one left row
        // against ALL right rows at once.
        for (size_t i = 0; i < ln; ++i) {
          std::vector<uint8_t> mask(rn, 1);
          if (node_.condition() && rn > 0) {
            std::vector<Column> combined_cols;
            combined_cols.reserve(lbatch.num_columns() + rcols);
            for (size_t c = 0; c < lbatch.num_columns(); ++c) {
              ColumnBuilder b(lbatch.column(c).kind());
              b.Reserve(rn);
              Value v = lbatch.column(c).GetValue(i);
              for (size_t j = 0; j < rn; ++j) {
                LG_RETURN_IF_ERROR(b.AppendValue(v));
              }
              combined_cols.push_back(b.Finish());
            }
            for (size_t c = 0; c < rcols; ++c) {
              combined_cols.push_back(rbatch_.column(c));
            }
            RecordBatch combined(schema_, std::move(combined_cols));
            LG_ASSIGN_OR_RETURN(
                mask, EvaluatePredicateMask(node_.condition(), combined, ctx_));
          }
          bool matched = false;
          for (size_t j = 0; j < rn; ++j) {
            if (!mask[j]) continue;
            matched = true;
            left_indices.push_back(static_cast<int64_t>(i));
            right_indices.push_back(static_cast<int64_t>(j));
          }
          if (!matched && node_.join_type() == JoinType::kLeft) {
            left_indices.push_back(static_cast<int64_t>(i));
            right_indices.push_back(-1);
          }
        }
      }

      // Materialize this probe batch's output from the index pairs.
      std::vector<Column> out_cols;
      out_cols.reserve(schema_.num_fields());
      for (size_t c = 0; c < lbatch.num_columns(); ++c) {
        out_cols.push_back(lbatch.column(c).Take(left_indices));
      }
      for (size_t c = 0; c < rcols; ++c) {
        ColumnBuilder b(rbatch_.column(c).kind());
        b.Reserve(right_indices.size());
        for (int64_t j : right_indices) {
          if (j < 0) {
            b.AppendNull();
          } else {
            LG_RETURN_IF_ERROR(b.AppendValue(
                rbatch_.column(c).GetValue(static_cast<size_t>(j))));
          }
        }
        out_cols.push_back(b.Finish());
      }
      return RecordBatch(schema_, std::move(out_cols));
    }

    Executor* exec_;
    const JoinNode& node_;
    BatchIteratorPtr left_;
    BatchIteratorPtr right_;
    Schema schema_;
    Schema right_schema_{std::vector<FieldDef>{}};
    bool built_ = false;
    bool is_equi_ = false;
    bool spilled_build_ = false;
    RecordBatch rbatch_;
    std::vector<std::pair<int, int>> equi_keys_;
    std::map<std::vector<Value>, std::vector<int64_t>, ValueVectorLess>
        hash_table_;
    std::vector<spill::SpillRun> runs_;
    std::unique_ptr<spill::SpillDir> dir_;
    EvalContext ctx_;
    uint64_t resident_ = 0;
    uint64_t build_charged_ = 0;
  };

  /// Limit short-circuits its upstream: once satisfied it never pulls the
  /// child again, so lazily-produced inputs (scans, remote fetches) stop.
  class LimitIterator : public BatchIterator {
   public:
    LimitIterator(Executor* exec, BatchIteratorPtr child, int64_t limit)
        : exec_(exec), child_(std::move(child)), remaining_(limit) {}

    const Schema& schema() const override { return child_->schema(); }

    Result<std::optional<RecordBatch>> Next() override {
      LG_RETURN_IF_ERROR(exec_->CheckCancel());
      if (remaining_ <= 0) return std::optional<RecordBatch>();
      LG_ASSIGN_OR_RETURN(std::optional<RecordBatch> batch, child_->Next());
      if (!batch.has_value()) {
        remaining_ = 0;
        return std::optional<RecordBatch>();
      }
      RecordBatch out = std::move(*batch);
      if (static_cast<int64_t>(out.num_rows()) > remaining_) {
        out = out.Slice(0, static_cast<size_t>(remaining_));
      }
      remaining_ -= static_cast<int64_t>(out.num_rows());
      exec_->stats_.OnEmit("limit");
      return std::optional<RecordBatch>(std::move(out));
    }

   private:
    Executor* exec_;
    BatchIteratorPtr child_;
    int64_t remaining_;
  };
};

// ---- Executor --------------------------------------------------------------

EvalContext Executor::MakeEvalContext() const {
  EvalContext ctx;
  ctx.current_user = context_.user;
  const UserDirectory* directory = &services_.catalog->users();
  ctx.is_group_member = [directory](const std::string& user,
                                    const std::string& group) {
    return directory->IsMember(user, group);
  };
  ctx.user_attribute = [directory](const std::string& user,
                                   const std::string& key) {
    auto value = directory->GetAttribute(user, key);
    return value.ok() ? *value : std::string();
  };
  return ctx;
}

Result<BatchIteratorPtr> Executor::Open(const PlanPtr& plan) {
  return OpenNode(plan);
}

Status Executor::TryChargeBytes(uint64_t bytes) {
  if (context_.memory) {
    Status s = context_.memory->TryReserve(bytes);
    if (!s.ok()) {
      ++stats_.budget_refusals;
      return s;
    }
  }
  stats_.AddBytes(bytes);
  return Status::OK();
}

void Executor::ChargeBytesForced(uint64_t bytes) {
  if (context_.memory) context_.memory->ForceReserve(bytes);
  stats_.AddBytes(bytes);
}

void Executor::ReleaseBytes(uint64_t bytes) {
  if (context_.memory) context_.memory->Release(bytes);
  stats_.SubBytes(bytes);
}

Result<RecordBatch> Executor::DispatchWithSplit(
    const std::string& key, const SandboxPolicy& policy,
    const RecordBatch& arg_batch,
    const std::vector<UdfInvocation>& invocations) {
  Result<RecordBatch> result = services_.dispatcher->Dispatch(
      context_.session_id, key, policy, arg_batch, invocations);
  if (result.ok()) {
    ++stats_.udf_sandbox_batches;
    return result;
  }
  if (result.status().code() != StatusCode::kResourceExhausted ||
      arg_batch.num_rows() <= 1) {
    return result;
  }
  // The batch exceeds the sandbox transfer cap: halve and recurse. Single
  // rows that still refuse surface the typed error unchanged.
  ++stats_.udf_batch_splits;
  const size_t half = arg_batch.num_rows() / 2;
  LG_ASSIGN_OR_RETURN(
      RecordBatch lo,
      DispatchWithSplit(key, policy, arg_batch.Slice(0, half), invocations));
  LG_ASSIGN_OR_RETURN(
      RecordBatch hi,
      DispatchWithSplit(key, policy,
                        arg_batch.Slice(half, arg_batch.num_rows() - half),
                        invocations));
  std::vector<RecordBatch> parts;
  parts.push_back(std::move(lo));
  parts.push_back(std::move(hi));
  return ConcatBatches(parts[0].schema(), parts);
}

Result<Table> Executor::Execute(const PlanPtr& plan) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr it, Open(plan));
  return DrainIterator(it.get());
}

Result<BatchIteratorPtr> Executor::OpenNode(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kTableRef:
      return Status::FailedPrecondition(
          "executor received an unresolved relation: " + plan->Describe());
    case PlanKind::kLocalRelation: {
      const auto& node = static_cast<const LocalRelationNode&>(*plan);
      return MakeBatchIterator(node.data().schema(), node.data(),
                               options_.batch_size);
    }
    case PlanKind::kResolvedScan:
      return OpenScan(static_cast<const ResolvedScanNode&>(*plan));
    case PlanKind::kRemoteScan: {
      if (services_.remote == nullptr) {
        return Status::FailedPrecondition(
            "plan contains a RemoteScan but no serverless endpoint is "
            "configured");
      }
      return services_.remote->ExecuteRemoteStream(
          static_cast<const RemoteScanNode&>(*plan), context_);
    }
    case PlanKind::kProject:
      return OpenProject(static_cast<const ProjectNode&>(*plan), plan);
    case PlanKind::kFilter:
      return OpenFilter(static_cast<const FilterNode&>(*plan));
    case PlanKind::kAggregate:
      return OpenAggregate(static_cast<const AggregateNode&>(*plan), plan);
    case PlanKind::kJoin:
      return OpenJoin(static_cast<const JoinNode&>(*plan));
    case PlanKind::kSort:
      return OpenSort(static_cast<const SortNode&>(*plan));
    case PlanKind::kLimit:
      return OpenLimit(static_cast<const LimitNode&>(*plan));
    case PlanKind::kSecureView: {
      const auto& sv = static_cast<const SecureViewNode&>(*plan);
      // Fast path: evaluate the whole policy region as one compiled, cached
      // program. Falls through to the interpreted operators whenever the
      // region is not fusable.
      LG_ASSIGN_OR_RETURN(std::optional<BatchIteratorPtr> fused,
                          TryOpenFusedScan(sv, nullptr));
      if (fused.has_value()) return std::move(*fused);
      // Otherwise an execution-time no-op; its meaning is an
      // analysis/optimizer barrier.
      return OpenNode(sv.child());
    }
    case PlanKind::kExtension:
      return Status::FailedPrecondition(
          "extension node reached the executor without analysis: " +
          plan->Describe());
  }
  return Status::Internal("unreachable plan kind in executor");
}

Result<BatchIteratorPtr> Executor::OpenScan(const ResolvedScanNode& node) {
  auto token_it = analysis_ == nullptr
                      ? std::map<std::string, std::string>::const_iterator()
                      : analysis_->read_tokens.find(node.table_name());
  if (analysis_ == nullptr ||
      token_it == analysis_->read_tokens.end()) {
    return Status::PermissionDenied(
        "no user-bound storage token for table '" + node.table_name() +
        "' (scan without catalog resolution)");
  }
  DeltaTableFormat format(services_.store);
  // Only the manifest is read up front; parts stream on demand.
  LG_ASSIGN_OR_RETURN(
      TableManifest manifest,
      format.LoadManifest(token_it->second, node.storage_root()));
  return BatchIteratorPtr(std::make_unique<ExecIterators::ScanIterator>(
      this, format, token_it->second, std::move(manifest)));
}

Result<BatchIteratorPtr> Executor::OpenProject(const ProjectNode& node,
                                               const PlanPtr& self) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  LG_ASSIGN_OR_RETURN(Schema out_schema, Analyzer::ResolvedSchema(self));
  const std::vector<ExprPtr>& exprs = node.exprs();
  Schema schema_copy = out_schema;
  auto fn = [this, exprs, schema_copy](RecordBatch batch)
      -> Result<std::optional<RecordBatch>> {
    LG_ASSIGN_OR_RETURN(std::vector<Column> columns,
                        EvaluateWithUdfs(exprs, batch));
    return std::optional<RecordBatch>(
        RecordBatch(schema_copy, std::move(columns)));
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::StageIterator>(
      this, "project", std::move(out_schema), std::move(child), std::move(fn)));
}

Result<BatchIteratorPtr> Executor::OpenFilter(const FilterNode& node) {
  // A UDF-free user predicate directly above a fusable policy region is
  // folded into the fused scan program (policies run first on raw values,
  // the user predicate last on masked values — same order as the
  // interpreted operators, one pass instead of three).
  if (node.child()->kind() == PlanKind::kSecureView &&
      !ContainsUdfCall(node.condition())) {
    const auto& sv = static_cast<const SecureViewNode&>(*node.child());
    LG_ASSIGN_OR_RETURN(std::optional<BatchIteratorPtr> fused,
                        TryOpenFusedScan(sv, node.condition()));
    if (fused.has_value()) return std::move(*fused);
  }
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  Schema schema = child->schema();
  ExprPtr condition = node.condition();
  EvalContext ctx = MakeEvalContext();
  const bool has_udf = ContainsUdfCall(condition);
  auto fn = [this, condition, ctx, has_udf](RecordBatch batch)
      -> Result<std::optional<RecordBatch>> {
    std::vector<uint8_t> mask;
    if (has_udf) {
      LG_ASSIGN_OR_RETURN(std::vector<Column> cols,
                          EvaluateWithUdfs({condition}, batch));
      mask = BoolColumnToMask(cols[0]);
    } else {
      LG_ASSIGN_OR_RETURN(mask, EvaluatePredicateMask(condition, batch, ctx));
    }
    if (MaskCountSet(mask) == 0) {
      return std::optional<RecordBatch>();  // fully filtered: pull again
    }
    return std::optional<RecordBatch>(ApplyMask(batch, mask));
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::StageIterator>(
      this, "filter", std::move(schema), std::move(child), std::move(fn)));
}

Result<std::optional<BatchIteratorPtr>> Executor::TryOpenFusedScan(
    const SecureViewNode& sv, const ExprPtr& user_filter) {
  if (!options_.fuse_policies || services_.policy_cache == nullptr ||
      services_.catalog == nullptr) {
    return std::optional<BatchIteratorPtr>();
  }

  // Match the exact policy-region shape the analyzer emits:
  //   SecureView -> [Project(masks)] -> [Filter(row filter)] -> Scan.
  // Anything else (optimizer experiments, adversarial plans, UDF-bearing
  // policies) stays on the interpreted operators.
  PlanPtr cur = sv.child();
  const ProjectNode* mask_project = nullptr;
  if (cur->kind() == PlanKind::kProject) {
    mask_project = static_cast<const ProjectNode*>(cur.get());
    cur = mask_project->child();
  }
  ExprPtr row_filter;
  if (cur->kind() == PlanKind::kFilter) {
    const auto& filter = static_cast<const FilterNode&>(*cur);
    if (filter.condition()->kind() != ExprKind::kFusedPolicy) {
      return std::optional<BatchIteratorPtr>();
    }
    row_filter = filter.condition();
    cur = filter.child();
  }
  if (cur->kind() != PlanKind::kResolvedScan) return std::optional<BatchIteratorPtr>();
  const auto& scan = static_cast<const ResolvedScanNode&>(*cur);
  const Schema& raw = scan.schema();

  // Collect per-column masks and build the policy-version key: the exact
  // rendering of every policy expression in the region. Equal keys mean
  // equal policy text — no hashing, no collisions.
  std::vector<ExprPtr> masks(raw.num_fields());
  std::string version;
  if (row_filter != nullptr) {
    if (ContainsUdfCall(row_filter)) return std::optional<BatchIteratorPtr>();
    version += "F:" + StripFusedPolicyMarkers(row_filter)->ToString() + ";";
  }
  if (mask_project != nullptr) {
    if (mask_project->exprs().size() != raw.num_fields()) return std::optional<BatchIteratorPtr>();
    bool any_mask = false;
    for (size_t i = 0; i < raw.num_fields(); ++i) {
      const ExprPtr& e = mask_project->exprs()[i];
      if (e->kind() == ExprKind::kFusedPolicy) {
        if (ContainsUdfCall(e)) return std::optional<BatchIteratorPtr>();
        masks[i] = e;
        any_mask = true;
        version += "M" + std::to_string(i) + ":" +
                   StripFusedPolicyMarkers(e)->ToString() + ";";
        continue;
      }
      // Unmasked columns must be plain positional passthroughs.
      if (e->kind() != ExprKind::kColumnRef ||
          static_cast<const ColumnRefExpr&>(*e).index() !=
              static_cast<int>(i)) {
        return std::optional<BatchIteratorPtr>();
      }
    }
    if (!any_mask) mask_project = nullptr;
  }
  if (row_filter == nullptr && mask_project == nullptr) {
    return std::optional<BatchIteratorPtr>();  // policy-free region: nothing to fuse
  }

  const std::string& table = scan.table_name();
  const std::string& principal = context_.user;
  const uint64_t epoch = services_.catalog->epoch();
  UnityCatalog* catalog = services_.catalog;
  const ComputeContext compute = context_.compute;
  auto stamp_fn = [catalog, principal, compute,
                   table]() -> Result<PolicyVersionStamp> {
    return catalog->InspectPolicyStamp(principal, compute, table);
  };
  auto compile_fn = [&]() -> Result<FusedPolicyProgram> {
    return CompileFusedPolicy(table, principal, epoch, raw, row_filter, masks);
  };
  auto lookup = services_.policy_cache->GetOrCompile(
      table, principal, version, epoch, stamp_fn, compile_fn);
  if (!lookup.ok()) return std::optional<BatchIteratorPtr>();  // uncompilable: interpreted fallback
  if (lookup->hit) {
    ++stats_.policy_cache_hits;
  } else {
    ++stats_.policy_cache_misses;
  }
  if (lookup->compiled) ++stats_.policy_compiles;
  std::shared_ptr<const FusedPolicyProgram> program = lookup->program;

  // PV007: every program taken from the cache must still be semantically
  // equal to the plan's policy-dominated expressions (which PV001/PV002
  // checked against the catalog). Runs per scan open, never per batch.
  if (program->row_filter.has_value() != (row_filter != nullptr)) {
    return std::optional<BatchIteratorPtr>();
  }
  if (row_filter != nullptr &&
      !PlanVerifier::VerifyFusedProgram(*program->row_filter, row_filter)
           .ok()) {
    return std::optional<BatchIteratorPtr>();
  }
  if (program->columns.size() != masks.size()) return std::optional<BatchIteratorPtr>();
  for (size_t i = 0; i < masks.size(); ++i) {
    if (program->columns[i].masked != (masks[i] != nullptr)) {
      return std::optional<BatchIteratorPtr>();
    }
    if (masks[i] != nullptr &&
        !PlanVerifier::VerifyFusedProgram(*program->columns[i].program,
                                          masks[i])
             .ok()) {
      return std::optional<BatchIteratorPtr>();
    }
  }

  // The pushed-down user predicate compiles per query (it is not part of
  // the cached policy program) against the post-mask schema.
  std::shared_ptr<CompiledExpr> user_program;
  if (user_filter != nullptr) {
    auto compiled = CompileExpr(user_filter, program->output_schema);
    if (!compiled.ok()) return std::optional<BatchIteratorPtr>();
    user_program = std::make_shared<CompiledExpr>(std::move(*compiled));
  }

  LG_ASSIGN_OR_RETURN(BatchIteratorPtr source, OpenScan(scan));
  EvalContext ctx = MakeEvalContext();
  auto fn = [program, user_program,
             ctx](RecordBatch batch) -> Result<std::optional<RecordBatch>> {
    return RunFusedPolicy(*program, user_program.get(), batch, ctx);
  };
  Schema out_schema = program->output_schema;
  return std::optional<BatchIteratorPtr>(
      std::make_unique<ExecIterators::StageIterator>(
          this, "fused_scan", std::move(out_schema), std::move(source),
          std::move(fn)));
}

Result<Table> Executor::AggregateTable(const AggregateNode& node,
                                       const RecordBatch& input,
                                       const Schema& out_schema) {
  EvalContext ctx = MakeEvalContext();

  // Evaluate group keys and aggregate argument columns.
  std::vector<Column> group_cols;
  for (const ExprPtr& e : node.group_exprs()) {
    LG_ASSIGN_OR_RETURN(std::vector<Column> c, EvaluateWithUdfs({e}, input));
    group_cols.push_back(std::move(c[0]));
  }
  struct AggSpec {
    std::string func;  // SUM/COUNT/AVG/MIN/MAX (uppercased)
    Column arg;
  };
  std::vector<AggSpec> specs;
  for (const ExprPtr& e : node.agg_exprs()) {
    const auto& call = static_cast<const FunctionCallExpr&>(*e);
    AggSpec spec;
    spec.func = ToUpperAscii(call.name());
    if (call.args().empty()) {
      return Status::InvalidArgument("aggregate " + spec.func +
                                     " needs an argument");
    }
    LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                        EvaluateWithUdfs({call.args()[0]}, input));
    spec.arg = std::move(c[0]);
    specs.push_back(std::move(spec));
  }

  std::map<std::vector<Value>, std::vector<AggState>, ValueVectorLess> groups;
  const size_t rows = input.num_rows();
  const bool global = node.group_exprs().empty();
  if (global) {
    groups[{}] = std::vector<AggState>(specs.size());
  }
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> key;
    key.reserve(group_cols.size());
    for (const Column& c : group_cols) key.push_back(c.GetValue(r));
    auto [it, inserted] =
        groups.try_emplace(std::move(key), std::vector<AggState>(specs.size()));
    std::vector<AggState>& states = it->second;
    for (size_t s = 0; s < specs.size(); ++s) {
      UpdateAggState(states[s], specs[s].arg.GetValue(r));
    }
  }

  TableBuilder builder(out_schema);
  for (const auto& [key, states] : groups) {
    std::vector<Value> row = key;
    for (size_t s = 0; s < specs.size(); ++s) {
      LG_ASSIGN_OR_RETURN(Value v, FinalizeAggValue(specs[s].func, states[s]));
      row.push_back(std::move(v));
    }
    LG_RETURN_IF_ERROR(builder.AppendRow(row));
  }
  return builder.Build();
}

Result<BatchIteratorPtr> Executor::OpenAggregate(const AggregateNode& node,
                                                 const PlanPtr& self) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  LG_ASSIGN_OR_RETURN(Schema out_schema, Analyzer::ResolvedSchema(self));
  std::shared_ptr<BatchIterator> shared_child(child.release());
  const AggregateNode* node_ptr = &node;
  Schema schema_copy = out_schema;
  auto produce = [this, shared_child, node_ptr,
                  schema_copy]() -> Result<ExecIterators::BreakerIterator::Inner> {
    // Group keys double as run-sort keys: spilled input merges back in key
    // order, so grouping degrades to a streaming scan over the merge.
    std::vector<SortKey> keys;
    for (const ExprPtr& e : node_ptr->group_exprs()) {
      keys.push_back({e, /*ascending=*/true});
    }
    LG_ASSIGN_OR_RETURN(
        ExecIterators::CollectedInput in,
        ExecIterators::CollectWithSpill(this, shared_child.get(), &keys));
    ExecIterators::BreakerIterator::Inner inner;
    if (in.spilled) {
      auto merge = std::make_unique<ExecIterators::MergeIterator>(
          this, nullptr, keys, std::move(in));
      inner.iter =
          BatchIteratorPtr(std::make_unique<ExecIterators::GroupMergeIterator>(
              this, *node_ptr, schema_copy, std::move(merge)));
      return inner;
    }
    LG_ASSIGN_OR_RETURN(RecordBatch input, in.table.Combine());
    in.table = Table(in.schema);
    LG_ASSIGN_OR_RETURN(Table result,
                        AggregateTable(*node_ptr, input, schema_copy));
    input = RecordBatch();
    // Satellite accounting fix: the breaker output is charged by ByteSize
    // (string heap capacity included), replacing the buffered-input charge.
    inner.charged_bytes = result.ByteSize();
    ChargeBytesForced(inner.charged_bytes);
    ReleaseBytes(in.charged);
    in.charged = 0;
    inner.resident = ResidentProxy(result.num_rows(), options_.batch_size);
    stats_.AddResident(inner.resident);
    inner.iter = MakeTableIterator(std::move(result), options_.batch_size);
    return inner;
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::BreakerIterator>(
      this, "aggregate", std::move(out_schema), std::move(produce)));
}

Result<Table> Executor::SortTable(const SortNode& node,
                                  const RecordBatch& input) {
  std::vector<Column> key_cols;
  for (const SortKey& key : node.keys()) {
    LG_ASSIGN_OR_RETURN(std::vector<Column> c,
                        EvaluateWithUdfs({key.expr}, input));
    key_cols.push_back(std::move(c[0]));
  }
  std::vector<int64_t> indices(input.num_rows());
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  std::stable_sort(indices.begin(), indices.end(),
                   [&](int64_t a, int64_t b) {
                     for (size_t k = 0; k < key_cols.size(); ++k) {
                       Value va = key_cols[k].GetValue(static_cast<size_t>(a));
                       Value vb = key_cols[k].GetValue(static_cast<size_t>(b));
                       int c = va.Compare(vb);
                       if (c != 0) {
                         return node.keys()[k].ascending ? c < 0 : c > 0;
                       }
                     }
                     return false;
                   });
  Table out(input.schema());
  LG_RETURN_IF_ERROR(out.AppendBatch(input.Take(indices)));
  return out;
}

Result<BatchIteratorPtr> Executor::OpenSort(const SortNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  Schema schema = child->schema();
  std::shared_ptr<BatchIterator> shared_child(child.release());
  const SortNode* node_ptr = &node;
  auto produce =
      [this, shared_child,
       node_ptr]() -> Result<ExecIterators::BreakerIterator::Inner> {
    LG_ASSIGN_OR_RETURN(ExecIterators::CollectedInput in,
                        ExecIterators::CollectWithSpill(
                            this, shared_child.get(), &node_ptr->keys()));
    ExecIterators::BreakerIterator::Inner inner;
    if (in.spilled) {
      // Runs are stably sorted prefixes; the tie-on-run-index merge is a
      // global stable sort — row-identical to the in-memory path.
      inner.iter = BatchIteratorPtr(std::make_unique<ExecIterators::MergeIterator>(
          this, nullptr, node_ptr->keys(), std::move(in)));
      return inner;
    }
    LG_ASSIGN_OR_RETURN(RecordBatch input, in.table.Combine());
    in.table = Table(in.schema);
    LG_ASSIGN_OR_RETURN(Table sorted, SortTable(*node_ptr, input));
    input = RecordBatch();
    inner.charged_bytes = sorted.ByteSize();
    ChargeBytesForced(inner.charged_bytes);
    ReleaseBytes(in.charged);
    in.charged = 0;
    inner.resident = ResidentProxy(sorted.num_rows(), options_.batch_size);
    stats_.AddResident(inner.resident);
    inner.iter = MakeTableIterator(std::move(sorted), options_.batch_size);
    return inner;
  };
  return BatchIteratorPtr(std::make_unique<ExecIterators::BreakerIterator>(
      this, "sort", std::move(schema), std::move(produce)));
}

Result<BatchIteratorPtr> Executor::OpenJoin(const JoinNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr left, OpenNode(node.left()));
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr right, OpenNode(node.right()));
  std::vector<FieldDef> fields = left->schema().fields();
  for (const FieldDef& f : right->schema().fields()) fields.push_back(f);
  Schema out_schema(std::move(fields));
  return BatchIteratorPtr(std::make_unique<ExecIterators::JoinIterator>(
      this, node, std::move(left), std::move(right), std::move(out_schema)));
}

Result<BatchIteratorPtr> Executor::OpenLimit(const LimitNode& node) {
  LG_ASSIGN_OR_RETURN(BatchIteratorPtr child, OpenNode(node.child()));
  return BatchIteratorPtr(std::make_unique<ExecIterators::LimitIterator>(
      this, std::move(child), node.limit()));
}

Result<std::vector<Column>> Executor::EvaluateWithUdfs(
    const std::vector<ExprPtr>& exprs, const RecordBatch& batch) {
  EvalContext ctx = MakeEvalContext();
  auto calls = CollectUdfCalls(exprs);

  std::vector<ExprPtr> rewritten = exprs;
  RecordBatch extended = batch;

  if (!calls.empty()) {
    // 1) Evaluate every call's argument columns (UDF-free by construction).
    // 2) Execute calls grouped by trust domain (fusion) or singly.
    // 3) Append result columns and rewrite calls into column references.
    struct PendingCall {
      std::shared_ptr<const UdfCallExpr> call;
      std::vector<Column> arg_columns;
      int result_index = -1;
    };
    std::vector<PendingCall> pending;
    for (const auto& call : calls) {
      PendingCall p;
      p.call = call;
      for (const ExprPtr& arg : call->args()) {
        LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(arg, batch, ctx));
        p.arg_columns.push_back(std::move(c));
      }
      pending.push_back(std::move(p));
    }

    // Group: fusion on -> one group per trust domain; off -> one per call.
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < pending.size(); ++i) {
      std::string key = pending[i].call->owner();
      if (!options_.fuse_udfs) {
        key += "#" + pending[i].call->function_name() + "#" +
               std::to_string(i);
      }
      groups[key].push_back(i);
    }

    std::vector<FieldDef> extended_fields = batch.schema().fields();
    std::vector<Column> extended_columns = batch.columns();

    for (const auto& [key, members] : groups) {
      // Assemble the argument batch shipped to this sandbox. Identical
      // argument expressions across fused invocations share one column —
      // the batch crosses the boundary once, not once per UDF (§3.3).
      std::vector<FieldDef> arg_fields;
      std::vector<Column> arg_columns;
      std::vector<ExprPtr> arg_exprs_shipped;
      std::vector<UdfInvocation> invocations;
      for (size_t member : members) {
        PendingCall& p = pending[member];
        UdfInvocation inv;
        auto fn_it = analysis_ == nullptr
                         ? std::map<std::string, FunctionInfo>::const_iterator()
                         : analysis_->udfs.find(p.call->function_name());
        if (analysis_ == nullptr || fn_it == analysis_->udfs.end()) {
          return Status::FailedPrecondition(
              "UDF '" + p.call->function_name() +
              "' was not resolved by the analyzer");
        }
        inv.bytecode = fn_it->second.body;
        inv.result_name = "__udf" + std::to_string(member);
        inv.result_type = p.call->return_type();
        // Taint sources: argument positions fed from masked/filter-protected
        // columns. The dispatcher's admission gate cross-checks these bits
        // against the program's certified sink reachability.
        for (size_t j = 0; j < p.call->args().size(); ++j) {
          if (ExprTouchesProtected(p.call->args()[j],
                                   analysis_->protected_columns)) {
            inv.tainted_args |= UdfCertificate::ArgTaintBit(j);
          }
        }
        for (size_t j = 0; j < p.arg_columns.size(); ++j) {
          const ExprPtr& arg_expr = p.call->args()[j];
          size_t existing = arg_exprs_shipped.size();
          for (size_t k = 0; k < arg_exprs_shipped.size(); ++k) {
            if (arg_exprs_shipped[k]->Equals(*arg_expr)) {
              existing = k;
              break;
            }
          }
          if (existing < arg_exprs_shipped.size()) {
            inv.arg_indices.push_back(existing);
            continue;
          }
          inv.arg_indices.push_back(arg_columns.size());
          arg_fields.push_back({"a" + std::to_string(arg_columns.size()),
                                p.arg_columns[j].kind(), true});
          arg_exprs_shipped.push_back(arg_expr);
          arg_columns.push_back(std::move(p.arg_columns[j]));
        }
        invocations.push_back(std::move(inv));
      }
      if (arg_columns.empty()) {
        // Zero-arg UDFs: ship a row-count carrier column so the sandbox
        // still evaluates once per input row.
        ColumnBuilder rows_col(TypeKind::kInt64);
        rows_col.Reserve(batch.num_rows());
        for (size_t r = 0; r < batch.num_rows(); ++r) {
          rows_col.AppendInt(0);
        }
        arg_fields.push_back({"__rows", TypeKind::kInt64, false});
        arg_columns.push_back(rows_col.Finish());
      }
      RecordBatch arg_batch(Schema(std::move(arg_fields)),
                            std::move(arg_columns));

      RecordBatch results;
      if (options_.isolate_udfs) {
        if (services_.dispatcher == nullptr) {
          return Status::FailedPrecondition(
              "isolated UDF execution requires a dispatcher");
        }
        // Egress policy: union of the members' allow-lists (same owner).
        SandboxPolicy policy = SandboxPolicy::LockedDown();
        for (size_t member : members) {
          auto fn_it =
              analysis_->udfs.find(pending[member].call->function_name());
          for (const std::string& host : fn_it->second.allowed_egress) {
            policy.egress_allow.push_back(host);
          }
        }
        // Supervised dispatch: the dispatcher pins the sandbox for the
        // batch, detects a crash, quarantines the container and charges the
        // owner's circuit breaker — the executor only sees the typed error.
        // An oversized-batch refusal splits the argument batch and retries.
        LG_ASSIGN_OR_RETURN(
            results, DispatchWithSplit(key, policy, arg_batch, invocations));
      } else {
        // Unisolated baseline: run the VM in-process with full authority.
        UnrestrictedHost host(services_.host_env);
        std::vector<FieldDef> out_fields;
        std::vector<Column> out_columns;
        for (const UdfInvocation& inv : invocations) {
          ColumnBuilder builder(inv.result_type);
          builder.Reserve(arg_batch.num_rows());
          std::vector<Value> row_args(inv.arg_indices.size());
          for (size_t r = 0; r < arg_batch.num_rows(); ++r) {
            for (size_t j = 0; j < inv.arg_indices.size(); ++j) {
              row_args[j] = arg_batch.column(inv.arg_indices[j]).GetValue(r);
            }
            auto value = ExecuteUdf(inv.bytecode, row_args, &host);
            if (!value.ok()) {
              return value.status().WithContext("UDF '" + inv.bytecode.name +
                                                "' (unisolated)");
            }
            LG_ASSIGN_OR_RETURN(Value casted,
                                value->CastTo(inv.result_type));
            LG_RETURN_IF_ERROR(builder.AppendValue(casted));
          }
          out_fields.push_back({inv.result_name, inv.result_type, true});
          out_columns.push_back(builder.Finish());
        }
        results = RecordBatch(Schema(std::move(out_fields)),
                              std::move(out_columns));
      }
      stats_.udf_rows += results.num_rows();

      for (size_t i = 0; i < members.size(); ++i) {
        pending[members[i]].result_index =
            static_cast<int>(extended_columns.size());
        extended_fields.push_back(results.schema().field(i));
        extended_columns.push_back(results.column(i));
      }
    }

    extended = RecordBatch(Schema(extended_fields), extended_columns);

    // Rewrite each expression: UdfCall -> reference to its result column.
    for (ExprPtr& e : rewritten) {
      e = RewriteExpr(e, [&](const ExprPtr& sub) -> ExprPtr {
        if (sub->kind() != ExprKind::kUdfCall) return nullptr;
        for (const PendingCall& p : pending) {
          if (p.call->Equals(*sub)) {
            return ColIdx(extended.schema()
                              .field(static_cast<size_t>(p.result_index))
                              .name,
                          p.result_index);
          }
        }
        return nullptr;
      });
    }
  }

  std::vector<Column> out;
  out.reserve(rewritten.size());
  for (const ExprPtr& e : rewritten) {
    LG_ASSIGN_OR_RETURN(Column c, EvaluateExpr(e, extended, ctx));
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace lakeguard
