#include "engine/optimizer.h"

#include <algorithm>
#include <set>

#include "expr/evaluator.h"
#include "expr/functions.h"

#include "common/strings.h"

namespace lakeguard {

namespace {

/// Substitutes resolved column references in `expr` by the corresponding
/// expression from `replacements` (indexed by ordinal).
ExprPtr SubstituteRefs(const ExprPtr& expr,
                       const std::vector<ExprPtr>& replacements) {
  return RewriteExpr(expr, [&](const ExprPtr& e) -> ExprPtr {
    if (e->kind() != ExprKind::kColumnRef) return ExprPtr(nullptr);
    const auto& ref = static_cast<const ColumnRefExpr&>(*e);
    if (!ref.resolved() ||
        ref.index() >= static_cast<int>(replacements.size())) {
      return ExprPtr(nullptr);
    }
    return replacements[static_cast<size_t>(ref.index())];
  });
}

/// Counts how many times each child ordinal is referenced in `expr`.
void CountRefs(const ExprPtr& expr, std::vector<int>* counts) {
  if (expr->kind() == ExprKind::kColumnRef) {
    const auto& ref = static_cast<const ColumnRefExpr&>(*expr);
    if (ref.resolved() && ref.index() < static_cast<int>(counts->size())) {
      ++(*counts)[static_cast<size_t>(ref.index())];
    }
    return;
  }
  for (const ExprPtr& child : expr->children()) CountRefs(child, counts);
}

bool IsContextDependent(const Expr& e) {
  if (e.kind() != ExprKind::kFunctionCall) return false;
  const auto& call = static_cast<const FunctionCallExpr&>(e);
  const std::string& name = call.name();
  if (EqualsIgnoreCase(name, "USER_ATTRIBUTE")) return true;
  return name == "CURRENT_USER" || name == "current_user" ||
         name == "IS_ACCOUNT_GROUP_MEMBER" || name == "IS_MEMBER" ||
         name == "is_account_group_member" || name == "is_member";
}

}  // namespace

std::vector<std::string> CollectUdfOwners(const ExprPtr& expr) {
  std::set<std::string> owners;
  std::function<void(const ExprPtr&)> walk = [&](const ExprPtr& e) {
    if (e->kind() == ExprKind::kUdfCall) {
      owners.insert(static_cast<const UdfCallExpr&>(*e).owner());
    }
    for (const ExprPtr& child : e->children()) walk(child);
  };
  walk(expr);
  return {owners.begin(), owners.end()};
}

ExprPtr FoldPureConstants(const ExprPtr& expr, bool* changed) {
  return RewriteExpr(expr, [&](const ExprPtr& e) -> ExprPtr {
    if (e->kind() == ExprKind::kLiteral) return ExprPtr(nullptr);
    // Only fold pure, input-free, engine-evaluable subtrees.
    bool pure = !ExprContains(e, [](const Expr& sub) {
      return sub.kind() == ExprKind::kColumnRef ||
             sub.kind() == ExprKind::kUdfCall || IsContextDependent(sub);
    });
    if (!pure) return ExprPtr(nullptr);
    // Aggregates cannot be folded either.
    if (ExprContains(e, [](const Expr& sub) {
          return sub.kind() == ExprKind::kFunctionCall &&
                 IsAggregateFunctionName(
                     static_cast<const FunctionCallExpr&>(sub).name());
        })) {
      return ExprPtr(nullptr);
    }
    EvalContext ctx;
    auto value = EvaluateScalar(e, ctx);
    if (!value.ok()) return ExprPtr(nullptr);
    if (changed != nullptr) *changed = true;
    return Lit(std::move(*value));
  });
}

Result<PlanPtr> Optimizer::TryCollapseProjects(const ProjectNode& outer,
                                               bool* changed) const {
  if (outer.child()->kind() != PlanKind::kProject) return PlanPtr(nullptr);
  const auto& inner = static_cast<const ProjectNode&>(*outer.child());

  // Trust domains are pipeline breakers: never merge user code of different
  // owners into one Project (§3.3).
  std::set<std::string> owners;
  for (const ExprPtr& e : outer.exprs()) {
    for (const std::string& o : CollectUdfOwners(e)) owners.insert(o);
  }
  std::set<std::string> inner_owners;
  for (const ExprPtr& e : inner.exprs()) {
    for (const std::string& o : CollectUdfOwners(e)) inner_owners.insert(o);
  }
  if (!owners.empty() && !inner_owners.empty() && owners != inner_owners) {
    return PlanPtr(nullptr);
  }

  // Never duplicate a UDF call: if the outer references a UDF-bearing inner
  // column more than once, collapsing would execute the user code twice.
  std::vector<int> ref_counts(inner.exprs().size(), 0);
  for (const ExprPtr& e : outer.exprs()) CountRefs(e, &ref_counts);
  for (size_t i = 0; i < inner.exprs().size(); ++i) {
    if (ref_counts[i] > 1 && ContainsUdfCall(inner.exprs()[i])) {
      return PlanPtr(nullptr);
    }
  }

  std::vector<ExprPtr> merged;
  merged.reserve(outer.exprs().size());
  for (const ExprPtr& e : outer.exprs()) {
    merged.push_back(SubstituteRefs(e, inner.exprs()));
  }
  *changed = true;
  return MakeProject(inner.child(), std::move(merged), outer.names());
}

Result<PlanPtr> Optimizer::TryPushFilter(const FilterNode& filter,
                                         bool* changed) const {
  const PlanPtr& child = filter.child();
  // Merge adjacent filters.
  if (child->kind() == PlanKind::kFilter) {
    const auto& inner = static_cast<const FilterNode&>(*child);
    *changed = true;
    return MakeFilter(inner.child(),
                      And(filter.condition(), inner.condition()));
  }
  // SecureView is a barrier: user predicates stay above it.
  if (child->kind() != PlanKind::kProject) return PlanPtr(nullptr);
  const auto& project = static_cast<const ProjectNode&>(*child);
  if (ContainsUdfCall(filter.condition())) return PlanPtr(nullptr);

  // Only push when every referenced projection is itself UDF-free (pushing
  // would re-evaluate those expressions below; never move user code).
  std::vector<int> ref_counts(project.exprs().size(), 0);
  CountRefs(filter.condition(), &ref_counts);
  for (size_t i = 0; i < project.exprs().size(); ++i) {
    if (ref_counts[i] > 0 && ContainsUdfCall(project.exprs()[i])) {
      return PlanPtr(nullptr);
    }
  }
  ExprPtr pushed = SubstituteRefs(filter.condition(), project.exprs());
  *changed = true;
  return MakeProject(MakeFilter(project.child(), std::move(pushed)),
                     project.exprs(), project.names());
}

Result<PlanPtr> Optimizer::OptimizeOnce(const PlanPtr& plan, bool* changed,
                                        StepState* step) const {
  // In single-step mode at most one rule fires per traversal; after it
  // fires, the rest of the walk only reassembles unchanged nodes.
  auto may_fire = [&] { return step == nullptr || !step->fired; };
  auto record = [&](const char* rule) {
    if (step != nullptr) {
      step->fired = true;
      step->rule = rule;
    }
  };

  // Bottom-up: optimize children first.
  PlanPtr node = plan;
  switch (plan->kind()) {
    case PlanKind::kProject: {
      const auto& p = static_cast<const ProjectNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child,
                          OptimizeOnce(p.child(), changed, step));
      std::vector<ExprPtr> exprs = p.exprs();
      if (options_.enable_constant_folding && may_fire()) {
        bool folded = false;
        for (ExprPtr& e : exprs) e = FoldPureConstants(e, &folded);
        if (folded) {
          *changed = true;
          record("fold_constants");
        }
      }
      node = MakeProject(std::move(child), std::move(exprs), p.names());
      if (options_.enable_fusion && may_fire()) {
        bool fused = false;
        LG_ASSIGN_OR_RETURN(
            PlanPtr collapsed,
            TryCollapseProjects(static_cast<const ProjectNode&>(*node),
                                &fused));
        if (fused) {
          *changed = true;
          record("collapse_projects");
        }
        if (collapsed) node = collapsed;
      }
      return node;
    }
    case PlanKind::kFilter: {
      const auto& f = static_cast<const FilterNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child,
                          OptimizeOnce(f.child(), changed, step));
      ExprPtr cond = f.condition();
      if (options_.enable_constant_folding && may_fire()) {
        bool folded = false;
        cond = FoldPureConstants(cond, &folded);
        if (folded) {
          *changed = true;
          record("fold_constants");
        }
      }
      node = MakeFilter(std::move(child), std::move(cond));
      if (options_.enable_filter_pushdown && may_fire()) {
        bool pushed_down = false;
        LG_ASSIGN_OR_RETURN(
            PlanPtr pushed,
            TryPushFilter(static_cast<const FilterNode&>(*node),
                          &pushed_down));
        if (pushed_down) {
          *changed = true;
          record("push_filter");
        }
        if (pushed) node = pushed;
      }
      return node;
    }
    case PlanKind::kAggregate: {
      const auto& a = static_cast<const AggregateNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child,
                          OptimizeOnce(a.child(), changed, step));
      return MakeAggregate(std::move(child), a.group_exprs(), a.group_names(),
                           a.agg_exprs(), a.agg_names());
    }
    case PlanKind::kJoin: {
      const auto& j = static_cast<const JoinNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr left, OptimizeOnce(j.left(), changed, step));
      LG_ASSIGN_OR_RETURN(PlanPtr right,
                          OptimizeOnce(j.right(), changed, step));
      return MakeJoin(std::move(left), std::move(right), j.join_type(),
                      j.condition());
    }
    case PlanKind::kSort: {
      const auto& s = static_cast<const SortNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child,
                          OptimizeOnce(s.child(), changed, step));
      return MakeSort(std::move(child), s.keys());
    }
    case PlanKind::kLimit: {
      const auto& l = static_cast<const LimitNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child,
                          OptimizeOnce(l.child(), changed, step));
      return MakeLimit(std::move(child), l.limit());
    }
    case PlanKind::kSecureView: {
      const auto& sv = static_cast<const SecureViewNode&>(*plan);
      LG_ASSIGN_OR_RETURN(PlanPtr child,
                          OptimizeOnce(sv.child(), changed, step));
      return MakeSecureView(std::move(child), sv.securable_name());
    }
    default:
      return plan;
  }
}

Result<PlanPtr> Optimizer::Optimize(const PlanPtr& plan) const {
  if (verify_hook_) {
    // Verified mode: run to the same fixpoint one rewrite at a time, with
    // the hook inspecting the plan after every step. The step cap is a
    // safety net far above what converging rules can ever need.
    constexpr int kMaxSteps = 10000;
    PlanPtr current = plan;
    for (int i = 0; i < kMaxSteps; ++i) {
      bool changed = false;
      StepState step;
      LG_ASSIGN_OR_RETURN(current, OptimizeOnce(current, &changed, &step));
      if (!step.fired) return current;
      LG_RETURN_IF_ERROR(verify_hook_(current, step.rule));
    }
    return Status::Internal("optimizer did not converge in verified mode");
  }
  PlanPtr current = plan;
  for (int pass = 0; pass < options_.max_passes; ++pass) {
    bool changed = false;
    LG_ASSIGN_OR_RETURN(current, OptimizeOnce(current, &changed, nullptr));
    if (!changed) break;
  }
  return current;
}

}  // namespace lakeguard
