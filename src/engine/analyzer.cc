#include "engine/analyzer.h"

#include "common/strings.h"
#include "expr/evaluator.h"
#include "expr/functions.h"
#include "sql/parser.h"

namespace lakeguard {

namespace {

constexpr int kMaxViewDepth = 16;

std::string LastSegment(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

void CollectColumnNames(const ExprPtr& expr, std::set<std::string>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kColumnRef) {
    out->insert(
        ToLowerAscii(static_cast<const ColumnRefExpr&>(*expr).name()));
  }
  for (const ExprPtr& child : expr->children()) {
    CollectColumnNames(child, out);
  }
}

}  // namespace

Result<Schema> Analyzer::ResolvedSchema(const PlanPtr& plan) {
  switch (plan->kind()) {
    case PlanKind::kTableRef:
    case PlanKind::kExtension:
      return Status::FailedPrecondition(
          "plan still contains an unresolved relation: " + plan->Describe());
    case PlanKind::kLocalRelation:
      return static_cast<const LocalRelationNode&>(*plan).data().schema();
    case PlanKind::kResolvedScan:
      return static_cast<const ResolvedScanNode&>(*plan).schema();
    case PlanKind::kRemoteScan:
      return static_cast<const RemoteScanNode&>(*plan).schema();
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      LG_ASSIGN_OR_RETURN(Schema child, ResolvedSchema(node.child()));
      std::vector<FieldDef> fields;
      for (size_t i = 0; i < node.exprs().size(); ++i) {
        LG_ASSIGN_OR_RETURN(TypeKind type,
                            InferExprType(node.exprs()[i], child));
        fields.push_back({node.names()[i], type, true});
      }
      return Schema(std::move(fields));
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kSecureView:
      return ResolvedSchema(plan->children()[0]);
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      LG_ASSIGN_OR_RETURN(Schema child, ResolvedSchema(node.child()));
      std::vector<FieldDef> fields;
      for (size_t i = 0; i < node.group_exprs().size(); ++i) {
        LG_ASSIGN_OR_RETURN(TypeKind type,
                            InferExprType(node.group_exprs()[i], child));
        fields.push_back({node.group_names()[i], type, true});
      }
      for (size_t i = 0; i < node.agg_exprs().size(); ++i) {
        LG_ASSIGN_OR_RETURN(TypeKind type,
                            InferExprType(node.agg_exprs()[i], child));
        fields.push_back({node.agg_names()[i], type, true});
      }
      return Schema(std::move(fields));
    }
    case PlanKind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      LG_ASSIGN_OR_RETURN(Schema left, ResolvedSchema(node.left()));
      LG_ASSIGN_OR_RETURN(Schema right, ResolvedSchema(node.right()));
      std::vector<FieldDef> fields = left.fields();
      for (const FieldDef& f : right.fields()) fields.push_back(f);
      return Schema(std::move(fields));
    }
  }
  return Status::Internal("unreachable plan kind in schema derivation");
}

Result<AnalysisResult> Analyzer::Analyze(const PlanPtr& plan) {
  AnalysisResult out;
  ScopeInfo scope;
  LG_ASSIGN_OR_RETURN(out.plan,
                      ResolveNode(plan, context_.user, 0, &out, &scope));
  LG_ASSIGN_OR_RETURN(out.output_schema, ResolvedSchema(out.plan));
  return out;
}

Result<ExprPtr> Analyzer::ResolveExpr(const ExprPtr& expr,
                                      const ScopeInfo& scope,
                                      AnalysisResult* out) {
  auto find_column = [&scope](const std::string& name)
      -> Result<std::pair<int, std::string>> {
    // Literal match first (covers fields whose names themselves contain
    // dots, e.g. un-aliased projections of qualified references).
    {
      int offset = 0;
      for (const ScopePart& part : scope) {
        int idx = part.schema.FindField(name);
        if (idx >= 0) {
          return std::make_pair(
              offset + idx, part.schema.field(static_cast<size_t>(idx)).name);
        }
        offset += static_cast<int>(part.schema.num_fields());
      }
    }
    // Qualified lookup.
    size_t dot = name.rfind('.');
    if (dot != std::string::npos) {
      std::string qualifier = name.substr(0, dot);
      std::string column = name.substr(dot + 1);
      // The qualifier itself may be dotted ("main.s.orders.region"):
      // match against the part alias's suffix.
      int offset = 0;
      for (const ScopePart& part : scope) {
        if (!part.alias.empty() &&
            (EqualsIgnoreCase(part.alias, qualifier) ||
             EqualsIgnoreCase(part.alias, LastSegment(qualifier)))) {
          int idx = part.schema.FindField(column);
          if (idx >= 0) {
            return std::make_pair(
                offset + idx,
                part.schema.field(static_cast<size_t>(idx)).name);
          }
        }
        offset += static_cast<int>(part.schema.num_fields());
      }
      // Fall through: treat the last segment as a bare column name.
      offset = 0;
      for (const ScopePart& part : scope) {
        int idx = part.schema.FindField(column);
        if (idx >= 0) {
          return std::make_pair(
              offset + idx, part.schema.field(static_cast<size_t>(idx)).name);
        }
        offset += static_cast<int>(part.schema.num_fields());
      }
      return Status::InvalidArgument("column '" + name + "' not found");
    }
    int offset = 0;
    for (const ScopePart& part : scope) {
      int idx = part.schema.FindField(name);
      if (idx >= 0) {
        return std::make_pair(offset + idx,
                              part.schema.field(static_cast<size_t>(idx)).name);
      }
      offset += static_cast<int>(part.schema.num_fields());
    }
    std::string visible;
    for (const ScopePart& part : scope) {
      visible += (part.alias.empty() ? "?" : part.alias) +
                 part.schema.ToString() + " ";
    }
    return Status::InvalidArgument("column '" + name + "' not found in " +
                                   visible);
  };

  Status failure = Status::OK();
  ExprPtr resolved = RewriteExpr(expr, [&](const ExprPtr& e) -> ExprPtr {
    if (!failure.ok()) return nullptr;
    if (e->kind() == ExprKind::kColumnRef) {
      const auto& ref = static_cast<const ColumnRefExpr&>(*e);
      auto found = find_column(ref.name());
      if (!found.ok()) {
        failure = found.status();
        return nullptr;
      }
      return ColIdx(found->second, found->first);
    }
    if (e->kind() == ExprKind::kFunctionCall) {
      const auto& call = static_cast<const FunctionCallExpr&>(*e);
      if (IsAggregateFunctionName(call.name())) return nullptr;
      if (LookupBuiltin(call.name()).ok()) return nullptr;
      // Cataloged UDF: resolve through the catalog (EXECUTE check + audit).
      auto fn = catalog_->ResolveFunction(context_.user, context_.compute,
                                          call.name());
      if (!fn.ok()) {
        failure = fn.status();
        return nullptr;
      }
      if (call.args().size() != fn->num_args) {
        failure = Status::InvalidArgument(
            "function " + call.name() + " expects " +
            std::to_string(fn->num_args) + " arguments, got " +
            std::to_string(call.args().size()));
        return nullptr;
      }
      for (const ExprPtr& arg : call.args()) {
        if (ContainsUdfCall(arg)) {
          failure = Status::Unimplemented(
              "nested UDF calls are not supported (argument of " +
              call.name() + ")");
          return nullptr;
        }
      }
      out->udfs[fn->full_name] = *fn;
      return Udf(fn->full_name, fn->owner, fn->return_type, call.args());
    }
    return nullptr;
  });
  if (!failure.ok()) return failure;
  return resolved;
}

Result<PlanPtr> Analyzer::ResolveTableRef(const TableRefNode& node,
                                          const std::string& as_user,
                                          int depth, AnalysisResult* out,
                                          ScopeInfo* scope) {
  if (depth > kMaxViewDepth) {
    return Status::InvalidArgument("view expansion too deep (cycle?) at '" +
                                   node.name() + "'");
  }
  // Session-scoped temporary views shadow catalog relations (§3.2.3). They
  // are invoker's-rights macros: the expansion resolves as the querying
  // user, so underlying permissions and policies still apply.
  if (context_.temp_views != nullptr) {
    auto temp_it = context_.temp_views->find(node.name());
    if (temp_it != context_.temp_views->end()) {
      LG_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseSql(temp_it->second));
      auto* select = std::get_if<SelectStatement>(&stmt);
      if (select == nullptr) {
        return Status::Internal("temporary view '" + node.name() +
                                "' definition is not a SELECT");
      }
      return ResolveNode(select->plan, as_user, depth + 1, out, scope);
    }
  }
  LG_ASSIGN_OR_RETURN(
      RelationResolution res,
      catalog_->ResolveRelation(as_user, context_.compute, node.name()));

  if (res.enforcement == EnforcementMode::kExternal) {
    return Status::FailedPrecondition(
        "relation '" + node.name() +
        "' requires external fine-grained access control on this compute; "
        "the eFGAC rewrite must run before analysis");
  }

  const std::string alias =
      node.alias().empty() ? LastSegment(node.name()) : node.alias();

  if (res.type == SecurableType::kView) {
    // Logical view: parse the stored definition and expand it. Underlying
    // relations resolve under the view OWNER (definer's rights); context
    // functions keep binding to the querying user at evaluation time.
    LG_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseSql(res.view.sql_text));
    auto* select = std::get_if<SelectStatement>(&stmt);
    if (select == nullptr) {
      return Status::Internal("view '" + node.name() +
                              "' definition is not a SELECT");
    }
    ScopeInfo inner_scope;
    LG_ASSIGN_OR_RETURN(PlanPtr expanded,
                        ResolveNode(select->plan, res.view.owner, depth + 1,
                                    out, &inner_scope));
    PlanPtr guarded = MakeSecureView(std::move(expanded), node.name());
    LG_ASSIGN_OR_RETURN(Schema view_schema, ResolvedSchema(guarded));
    scope->clear();
    scope->push_back({alias, std::move(view_schema)});
    return guarded;
  }

  // Table (or fresh materialized view behaving as one).
  Schema schema = res.table.schema;
  if (schema.num_fields() == 0) {
    // Materialized view: the catalog recorded the schema at refresh time.
    auto view = catalog_->GetView(node.name());
    if (view.ok()) schema = view->materialized_schema;
  }
  if (schema.num_fields() == 0) {
    return Status::Internal("relation '" + node.name() + "' has no schema");
  }
  PlanPtr scan =
      MakeResolvedScan(res.table.full_name, res.table.storage_root, schema);
  if (!res.read_token.empty()) {
    out->read_tokens[res.table.full_name] = res.read_token;
  }

  scope->clear();
  scope->push_back({alias, schema});

  const bool has_policies =
      res.row_filter.has_value() || !res.column_masks.empty();
  if (!has_policies) return scan;

  // Record the protected columns (taint sources for UDF arguments): every
  // masked column plus every column the row filter reads.
  for (const ColumnMaskPolicy& mask : res.column_masks) {
    out->protected_columns.insert(ToLowerAscii(mask.column));
  }
  if (res.row_filter.has_value()) {
    CollectColumnNames(res.row_filter->predicate, &out->protected_columns);
  }

  // Inject policies (Fig. 8): Filter for the row filter, Project for masks,
  // both under a SecureView barrier so user expressions can never be pushed
  // beneath them. Policy expressions resolve against the raw table scope.
  ScopeInfo table_scope = {{alias, schema}};
  PlanPtr guarded = scan;
  if (res.row_filter.has_value()) {
    LG_ASSIGN_OR_RETURN(
        ExprPtr predicate,
        ResolveExpr(res.row_filter->predicate, table_scope, out));
    // The marker tags this predicate as catalog-injected so the executor can
    // recognize the region as fusable; it is semantically transparent.
    guarded = MakeFilter(std::move(guarded), FusedPolicy(std::move(predicate)));
  }
  if (!res.column_masks.empty()) {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < schema.num_fields(); ++i) {
      const FieldDef& field = schema.field(i);
      ExprPtr column_expr;
      for (const ColumnMaskPolicy& mask : res.column_masks) {
        if (EqualsIgnoreCase(mask.column, field.name)) {
          LG_ASSIGN_OR_RETURN(column_expr,
                              ResolveExpr(mask.mask_expr, table_scope, out));
          column_expr = FusedPolicy(std::move(column_expr));
          break;
        }
      }
      if (!column_expr) {
        column_expr = ColIdx(field.name, static_cast<int>(i));
      }
      exprs.push_back(std::move(column_expr));
      names.push_back(field.name);
    }
    guarded =
        MakeProject(std::move(guarded), std::move(exprs), std::move(names));
  }
  return MakeSecureView(std::move(guarded), res.table.full_name);
}

Result<PlanPtr> Analyzer::ResolveNode(const PlanPtr& plan,
                                      const std::string& as_user, int depth,
                                      AnalysisResult* out, ScopeInfo* scope) {
  switch (plan->kind()) {
    case PlanKind::kTableRef:
      return ResolveTableRef(static_cast<const TableRefNode&>(*plan), as_user,
                             depth, out, scope);
    case PlanKind::kLocalRelation: {
      scope->clear();
      scope->push_back(
          {"", static_cast<const LocalRelationNode&>(*plan).data().schema()});
      return plan;
    }
    case PlanKind::kResolvedScan: {
      const auto& node = static_cast<const ResolvedScanNode&>(*plan);
      scope->clear();
      scope->push_back({LastSegment(node.table_name()), node.schema()});
      return plan;
    }
    case PlanKind::kRemoteScan: {
      // eFGAC leaf produced by the pre-analysis rewrite: already typed by
      // the remote AnalyzePlan round-trip; treated as a leaf relation.
      const auto& node = static_cast<const RemoteScanNode&>(*plan);
      if (node.schema().num_fields() == 0) {
        return Status::FailedPrecondition(
            "RemoteScan has no schema; the eFGAC rewriter must analyze the "
            "remote sub-plan first");
      }
      std::string alias;
      if (node.remote_plan() &&
          node.remote_plan()->kind() == PlanKind::kTableRef) {
        const auto& inner =
            static_cast<const TableRefNode&>(*node.remote_plan());
        alias = inner.alias().empty() ? LastSegment(inner.name())
                                      : inner.alias();
      }
      scope->clear();
      scope->push_back({alias, node.schema()});
      return plan;
    }
    case PlanKind::kProject: {
      const auto& node = static_cast<const ProjectNode&>(*plan);
      ScopeInfo child_scope;
      LG_ASSIGN_OR_RETURN(
          PlanPtr child,
          ResolveNode(node.child(), as_user, depth, out, &child_scope));
      std::vector<ExprPtr> exprs;
      for (const ExprPtr& e : node.exprs()) {
        LG_ASSIGN_OR_RETURN(ExprPtr resolved,
                            ResolveExpr(e, child_scope, out));
        exprs.push_back(std::move(resolved));
      }
      PlanPtr resolved =
          MakeProject(std::move(child), std::move(exprs), node.names());
      LG_ASSIGN_OR_RETURN(Schema schema, ResolvedSchema(resolved));
      scope->clear();
      scope->push_back({"", std::move(schema)});
      return resolved;
    }
    case PlanKind::kFilter: {
      const auto& node = static_cast<const FilterNode&>(*plan);
      LG_ASSIGN_OR_RETURN(
          PlanPtr child, ResolveNode(node.child(), as_user, depth, out, scope));
      LG_ASSIGN_OR_RETURN(ExprPtr cond,
                          ResolveExpr(node.condition(), *scope, out));
      return MakeFilter(std::move(child), std::move(cond));
    }
    case PlanKind::kAggregate: {
      const auto& node = static_cast<const AggregateNode&>(*plan);
      ScopeInfo child_scope;
      LG_ASSIGN_OR_RETURN(
          PlanPtr child,
          ResolveNode(node.child(), as_user, depth, out, &child_scope));
      std::vector<ExprPtr> group_exprs;
      for (const ExprPtr& e : node.group_exprs()) {
        LG_ASSIGN_OR_RETURN(ExprPtr resolved,
                            ResolveExpr(e, child_scope, out));
        group_exprs.push_back(std::move(resolved));
      }
      std::vector<ExprPtr> agg_exprs;
      for (const ExprPtr& e : node.agg_exprs()) {
        LG_ASSIGN_OR_RETURN(ExprPtr resolved,
                            ResolveExpr(e, child_scope, out));
        if (resolved->kind() != ExprKind::kFunctionCall) {
          return Status::InvalidArgument(
              "aggregate item must be an aggregate function call, got " +
              resolved->ToString());
        }
        agg_exprs.push_back(std::move(resolved));
      }
      PlanPtr resolved =
          MakeAggregate(std::move(child), std::move(group_exprs),
                        node.group_names(), std::move(agg_exprs),
                        node.agg_names());
      LG_ASSIGN_OR_RETURN(Schema schema, ResolvedSchema(resolved));
      scope->clear();
      scope->push_back({"", std::move(schema)});
      return resolved;
    }
    case PlanKind::kJoin: {
      const auto& node = static_cast<const JoinNode&>(*plan);
      ScopeInfo left_scope, right_scope;
      LG_ASSIGN_OR_RETURN(
          PlanPtr left,
          ResolveNode(node.left(), as_user, depth, out, &left_scope));
      LG_ASSIGN_OR_RETURN(
          PlanPtr right,
          ResolveNode(node.right(), as_user, depth, out, &right_scope));
      scope->clear();
      for (ScopePart& part : left_scope) scope->push_back(std::move(part));
      for (ScopePart& part : right_scope) scope->push_back(std::move(part));
      ExprPtr cond = node.condition();
      if (cond) {
        LG_ASSIGN_OR_RETURN(cond, ResolveExpr(cond, *scope, out));
      }
      return MakeJoin(std::move(left), std::move(right), node.join_type(),
                      std::move(cond));
    }
    case PlanKind::kSort: {
      const auto& node = static_cast<const SortNode&>(*plan);
      LG_ASSIGN_OR_RETURN(
          PlanPtr child, ResolveNode(node.child(), as_user, depth, out, scope));
      std::vector<SortKey> keys;
      for (const SortKey& key : node.keys()) {
        SortKey resolved;
        resolved.ascending = key.ascending;
        LG_ASSIGN_OR_RETURN(resolved.expr, ResolveExpr(key.expr, *scope, out));
        keys.push_back(std::move(resolved));
      }
      return MakeSort(std::move(child), std::move(keys));
    }
    case PlanKind::kLimit: {
      const auto& node = static_cast<const LimitNode&>(*plan);
      LG_ASSIGN_OR_RETURN(
          PlanPtr child, ResolveNode(node.child(), as_user, depth, out, scope));
      return MakeLimit(std::move(child), node.limit());
    }
    case PlanKind::kSecureView: {
      const auto& node = static_cast<const SecureViewNode&>(*plan);
      LG_ASSIGN_OR_RETURN(
          PlanPtr child, ResolveNode(node.child(), as_user, depth, out, scope));
      return MakeSecureView(std::move(child), node.securable_name());
    }
    case PlanKind::kExtension: {
      // Protocol extension (§3.2.2): expand via the installed server-side
      // handler, then resolve the expansion like any other plan — the
      // extension cannot bypass governance.
      const auto& node = static_cast<const ExtensionNode&>(*plan);
      if (extensions_ == nullptr) {
        return Status::NotFound("no Connect extensions installed; cannot "
                                "expand '" + node.extension_name() + "'");
      }
      LG_ASSIGN_OR_RETURN(ConnectExtension * ext,
                          extensions_->Lookup(node.extension_name()));
      LG_ASSIGN_OR_RETURN(PlanPtr expanded,
                          ext->Expand(node.payload(), context_));
      return ResolveNode(expanded, as_user, depth + 1, out, scope);
    }
  }
  return Status::Internal("unreachable plan kind in analysis");
}

}  // namespace lakeguard
