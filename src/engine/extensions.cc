#include "engine/extensions.h"

namespace lakeguard {

void ExtensionRegistry::Register(const std::string& name,
                                 std::shared_ptr<ConnectExtension> extension) {
  std::lock_guard<std::mutex> lock(mu_);
  extensions_[name] = std::move(extension);
}

Result<ConnectExtension*> ExtensionRegistry::Lookup(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = extensions_.find(name);
  if (it == extensions_.end()) {
    return Status::NotFound("no Connect extension named '" + name +
                            "' installed on this server");
  }
  return it->second.get();
}

std::vector<std::string> ExtensionRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, ext] : extensions_) out.push_back(name);
  return out;
}

}  // namespace lakeguard
